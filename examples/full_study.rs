//! The whole paper in one run: build the scaled population, probe every
//! named registrar, scan the 2015-03-01 → 2016-12-31 window, and print
//! every table, figure, and paper-vs-measured checkpoint. Writes
//! EXPERIMENTS.md-style markdown to stdout at the end.
//!
//! Run in release mode; the default 1:2000 scale signs a few thousand
//! real RSA zones and issues millions of wire-format queries:
//!
//! ```sh
//! cargo run --release --example full_study            # default 1:2000
//! DSEC_SCALE=20000 cargo run --release --example full_study   # faster
//! ```

use dsec::core::{
    experiment_cds_bootstrap, experiment_default_signing_ablation, experiment_rollover, run_study,
    StudyConfig,
};
use dsec::workloads::PopulationConfig;

fn main() {
    let scale: u64 = std::env::var("DSEC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let interval: u32 = std::env::var("DSEC_SCAN_INTERVAL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(14);

    let config = StudyConfig {
        population: PopulationConfig {
            scale,
            tail_operators: if scale <= 4_000 { 400 } else { 40 },
            ..Default::default()
        },
        scan_interval_days: interval,
        run_probe: true,
    };
    eprintln!(
        "running full study at scale 1:{scale}, snapshots every {interval} days…"
    );
    let started = std::time::Instant::now();
    let output = run_study(&config);
    eprintln!(
        "study done in {:.1}s: {} domains, {} snapshots, {} queries",
        started.elapsed().as_secs_f64(),
        output.paper_world.world.domain_count(),
        output.store.snapshots().len(),
        output.paper_world.world.network.query_count(),
    );
    eprintln!(
        "scan cache: {:.1}% hit rate ({} hits / {} misses, {} entries)",
        100.0 * output.cache_stats.hit_rate(),
        output.cache_stats.hits,
        output.cache_stats.misses,
        output.cache_stats.entries,
    );

    println!("{}", output.summary());
    for experiment in &output.experiments {
        println!("{experiment}");
    }
    println!(
        "\n{}/{} experiments reproduced all checkpoints\n",
        output.reproduced_count(),
        output.experiments.len()
    );

    // Extension experiments (§8 recommendations, DESIGN.md E-X1…E-X3).
    let extensions = [
        experiment_cds_bootstrap(12),
        experiment_default_signing_ablation(4, 6),
        experiment_rollover(),
    ];
    for e in &extensions {
        println!("{e}");
    }

    // Ecosystem bookkeeping the paper reports anecdotally.
    let events = &output.paper_world.world.events;
    println!("ecosystem counters:");
    for (kind, count) in events.counters() {
        println!("  {kind:<24} {count}");
    }
    println!("\n{}", dsec::reports::rollover_lifecycle(&output.paper_world.world));

    println!("\n--- EXPERIMENTS.md ---\n");
    println!("{}", output.to_markdown());
    for e in &extensions {
        println!("{}", e.to_markdown());
    }
}
