//! The user-traffic plane, hands on: run a deterministic query load
//! against the simulated ecosystem, print the query-weighted view of
//! DNSSEC protection, then break one popular domain's chain (abrupt key
//! roll, stale DS at the registry) and watch the bogus queries land on
//! the responsible registrar.
//!
//! ```sh
//! cargo run --release --example traffic_load              # 1:20000 scale
//! DSEC_SCALE=2000 cargo run --release --example traffic_load
//! ```

use dsec::ecosystem::Tld;
use dsec::scanner::Snapshot;
use dsec::traffic::{run_load, LoadConfig, TrafficPopulation};
use dsec::workloads::{build, PopulationConfig};

fn main() {
    let scale: u64 = std::env::var("DSEC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let mut pw = build(&PopulationConfig {
        scale,
        ..Default::default()
    });
    eprintln!(
        "world built at scale 1:{scale}: {} domains",
        pw.world.domain_count()
    );

    let config = LoadConfig::default().with_threads(4);
    let report = run_load(&pw.world, &config);
    println!("{}", report.summary_line());
    println!(
        "wall throughput: {:.0} q/s; simulated throughput: {:.0} q/s\n",
        report.wall_qps(),
        report.sim_qps()
    );

    let snapshot = Snapshot::take(&pw.world);
    println!("{}", dsec::reports::user_impact(&report, &snapshot));

    // Now the failure story: the head .nl site rolls its keys without
    // telling the registry. The published DS matches nothing served.
    let population = TrafficPopulation::from_world(&pw.world);
    let victim = population.ranked[&Tld::Nl]
        .iter()
        .map(|&i| &population.sites[i as usize])
        .find(|site| {
            pw.world
                .domain(&site.name)
                .map(|d| d.is_signed())
                .unwrap_or(false)
        })
        .expect("a signed .nl site exists")
        .clone();
    pw.world
        .roll_keys_abrupt(&victim.name)
        .expect("victim is signed");
    println!(
        "--- abrupt key roll at {} (registrar {}, operator {}) ---",
        victim.name, victim.registrar, victim.operator
    );

    let broken = run_load(&pw.world, &config);
    println!("{}", broken.summary_line());
    for (registrar, counts) in &broken.by_registrar {
        if counts.bogus > 0 {
            println!(
                "  {registrar}: {} of {} queries bogus (validation failure at the registry DS)",
                counts.bogus,
                counts.total()
            );
        }
    }
}
