//! Serves a signed zone over a real UDP socket and validates it with a
//! real wire-format exchange — demonstrating that the sans-I/O stack
//! (`dsec-wire` + `dsec-authserver`) binds to actual transports.
//!
//! ```sh
//! cargo run --release --example udp_wire
//! ```

use std::net::UdpSocket;
use std::sync::Arc;

use dsec::authserver::Authority;
use dsec::crypto::{Algorithm, DigestType};
use dsec::dnssec::{authenticate_dnskeys, sign_zone, SignerConfig, ZoneKeys};
use dsec::wire::{Message, Name, RData, Record, RrSet, RrType, SoaRdata, Zone};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> std::io::Result<()> {
    let now = 1_450_000_000u32;
    let origin = Name::parse("example.com").unwrap();

    // Build and sign a small zone.
    let mut rng = StdRng::seed_from_u64(7);
    let keys = ZoneKeys::generate_default(&mut rng, origin.clone(), Algorithm::RsaSha256)
        .expect("keygen");
    let mut zone = Zone::new(origin.clone());
    zone.add(Record::new(
        origin.clone(),
        3600,
        RData::Soa(SoaRdata {
            mname: Name::parse("ns1.example.com").unwrap(),
            rname: Name::parse("hostmaster.example.com").unwrap(),
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 1_209_600,
            minimum: 300,
        }),
    ))
    .unwrap();
    zone.add(Record::new(
        origin.clone(),
        3600,
        RData::Ns(Name::parse("ns1.example.com").unwrap()),
    ))
    .unwrap();
    zone.add(Record::new(
        Name::parse("www.example.com").unwrap(),
        300,
        RData::A("192.0.2.80".parse().unwrap()),
    ))
    .unwrap();
    sign_zone(&mut zone, &keys, &SignerConfig::valid_from(now, 30 * 86_400)).unwrap();
    let ds = keys.ds(DigestType::Sha256);

    let authority = Arc::new(Authority::new());
    authority.upsert_zone(zone);

    // Server half: one thread answering datagrams on a loopback socket.
    let server = UdpSocket::bind("127.0.0.1:0")?;
    let addr = server.local_addr()?;
    println!("authoritative server listening on {addr}");
    let serving = authority.clone();
    let handle = std::thread::spawn(move || {
        let mut buf = [0u8; 4096];
        // Serve exactly the queries this example sends, then exit.
        for _ in 0..2 {
            let Ok((len, peer)) = server.recv_from(&mut buf) else {
                return;
            };
            if let Some(reply) = serving.handle_datagram(&buf[..len]) {
                let _ = server.send_to(&reply, peer);
            }
        }
    });

    // Client half: DNSSEC-OK queries over the wire.
    let client = UdpSocket::bind("127.0.0.1:0")?;
    client.connect(addr)?;
    let mut buf = [0u8; 4096];

    // Query 1: the A record (+RRSIG).
    let q = Message::query(1, Name::parse("www.example.com").unwrap(), RrType::A, true);
    client.send(&q.to_wire())?;
    let len = client.recv(&mut buf)?;
    let resp = Message::from_wire(&buf[..len]).expect("well-formed response");
    println!(
        "A query answered with {} record(s) over UDP ({} bytes on the wire)",
        resp.answers.len(),
        len
    );
    assert!(resp.answers.iter().any(|r| r.rtype() == RrType::A));
    assert!(resp.answers.iter().any(|r| r.rtype() == RrType::Rrsig));

    // Query 2: DNSKEY, then authenticate it against the DS out-of-band.
    let q = Message::query(2, origin.clone(), RrType::Dnskey, true);
    client.send(&q.to_wire())?;
    let len = client.recv(&mut buf)?;
    let resp = Message::from_wire(&buf[..len]).expect("well-formed response");
    let dnskeys: Vec<Record> = resp
        .answers
        .iter()
        .filter(|r| r.rtype() == RrType::Dnskey)
        .cloned()
        .collect();
    let sigs: Vec<_> = resp
        .answers
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::Rrsig(s) if s.type_covered == RrType::Dnskey => Some(s.clone()),
            _ => None,
        })
        .collect();
    let rrset = RrSet::new(dnskeys).expect("DNSKEY RRset");
    let trusted = authenticate_dnskeys(&origin, &rrset, &sigs, &[ds], now)
        .expect("chain link validates over real UDP");
    println!(
        "DNSKEY RRset authenticated against the DS: {} trusted key(s)",
        trusted.len()
    );

    handle.join().expect("server thread exits cleanly");
    println!("udp_wire OK");
    Ok(())
}
