//! Cache-poisoning resistance, driven end to end through the resolver
//! hardening plane.
//!
//! Part 1 is a live demo on a hand-built world: a Kaminsky attacker
//! races a naive resolver (10-bit TXID, fixed source port, no 0x20, no
//! bailiwick scrubbing) and plants a forged `www` answer pointing at
//! the attacker's sinkhole; the per-query diagnosis and the scanner's
//! per-registrar poison census both catch the forgery. The *same*
//! attacker against the hardened profile (16+16 entropy bits, 0x20,
//! strict bailiwick) must capture nothing — any admitted forgery there
//! is a hard failure (the CI poison-smoke job runs this binary). An
//! RFC 5011 trust-anchor walk shows why revoking an old anchor inside
//! the add hold-down strands followers.
//!
//! Part 2 runs E-A2 on the tiny population: the hardened fleet under a
//! live campaign admits zero forgeries, the naive profile captures at
//! exactly the analytic birthday-bound rate, and a mistimed trust-anchor
//! roll goes bogus for validating users on precisely the stranded
//! window `[revoke, promotion)`.
//!
//! Run with: `cargo run --release --example poison_race`

use std::sync::Arc;

use dsec::core::experiment_poison_resistance;
use dsec::dnssec::{AnchorState, AnchorTracker, ADD_HOLD_DOWN_DAYS};
use dsec::ecosystem::{
    ExternalDs, Hosting, OperatorDnssec, RegistrarPolicy, Tld, TldPolicy, TldRole, World,
    WorldConfig, ALL_TLDS,
};
use dsec::resolver::{
    capture_kind, Cache, CaptureKind, OnPathThreat, Resolver, SpoofGuard, POISON_A,
};
use dsec::scanner::{poison_census, poison_census_table};
use dsec::wire::{Name, RData, RrType};
use dsec::workloads::PopulationConfig;

const SPOOFS: u32 = 300;

/// A world with one registrar sponsoring one unsigned owner-hosted
/// domain — the resolver's entropy profile is the only defense here.
fn demo_world() -> (World, Name) {
    let mut world = World::new(WorldConfig::default());
    let registrar = world.add_registrar(
        "Probed",
        Name::parse("demo-reg.net").unwrap(),
        RegistrarPolicy {
            operator_dnssec: OperatorDnssec::Unsupported,
            external_ds: ExternalDs::Ticket,
            tlds: ALL_TLDS
                .iter()
                .map(|&t| (t, TldPolicy::full(TldRole::Registrar)))
                .collect(),
        },
    );
    let victim = world
        .purchase(registrar, "victim", Tld::Com, Hosting::Owner, "owner@victim.com")
        .unwrap();
    (world, victim)
}

fn main() {
    // ---- Part 1a: the naive profile loses the race. ----
    let (world, victim) = demo_world();
    let now = world.today.epoch_seconds();
    let www = victim.child("www").unwrap();
    let naive = SpoofGuard::naive();
    println!(
        "naive profile: {} entropy bits on {} -> per-race capture p = {:.3}",
        naive.entropy_bits(&www),
        www,
        naive.race_success_probability(&www, SPOOFS),
    );
    // The race draw is a pure function of (seed, name, qtype); search
    // the attacker seed so this demo's www race is deterministically a
    // win (p ≈ 0.25 per seed).
    let seed = (0..64)
        .find(|&s| OnPathThreat::new(victim.clone(), SPOOFS, s).race_won(&naive, &www, RrType::A))
        .expect("some seed wins the www race");
    let threat = OnPathThreat::new(victim.clone(), SPOOFS, seed);
    let cache = Arc::new(Cache::new());
    let poisoned_resolver = Resolver::new(world.network.clone(), Vec::new())
        .with_spoof_guard(naive)
        .with_shared_cache(cache.clone())
        .with_on_path_threat(threat.clone());
    let answer = poisoned_resolver.resolve_cached(&www, RrType::A, now).unwrap();
    let got = answer.records.iter().find_map(|r| match &r.rdata {
        RData::A(ip) => Some(*ip),
        _ => None,
    });
    println!(
        "naive-profile capture: {www} -> {} (poisoned={})",
        got.map(|ip| ip.to_string()).unwrap_or_default(),
        answer.poisoned,
    );
    assert!(answer.poisoned, "the won race plants a forged answer");
    assert_eq!(got, Some(POISON_A), "answer points at the sinkhole");
    assert_eq!(capture_kind(&answer, None), CaptureKind::Poisoned);
    println!("per-query diagnosis: Poisoned");

    // ---- Part 1b: the poison census attributes the damage. ----
    let census = poison_census(&world, &cache, now);
    print!("{}", poison_census_table(&census));
    let row = census.get("Probed").expect("registrar row");
    assert_eq!(row.poisoned_names, 1, "the forged www entry is caught");
    println!(
        "census: Probed has {} poisoned of {} cached answers",
        row.poisoned_names, row.cached_names,
    );

    // ---- Part 1c: the hardened profile repels the same attacker. ----
    let hardened_resolver = Resolver::new(world.network.clone(), Vec::new())
        .with_spoof_guard(SpoofGuard::hardened())
        .with_on_path_threat(threat);
    let mut admitted = 0u64;
    let mut races = 0u64;
    for i in 0..64 {
        let qname = victim.child(&format!("w{i}")).unwrap();
        if let Ok(a) = hardened_resolver.resolve(&qname, RrType::A, now) {
            admitted += u64::from(a.poisoned);
        }
        races += 1;
    }
    if let Ok(a) = hardened_resolver.resolve(&www, RrType::A, now) {
        admitted += u64::from(a.poisoned);
        races += 1;
    }
    println!(
        "hardened profile: {} entropy bits -> p ≈ {:.1e}; {admitted} captures over {races} raced lookups",
        SpoofGuard::hardened().entropy_bits(&www),
        SpoofGuard::hardened().race_success_probability(&www, SPOOFS),
    );
    assert_eq!(admitted, 0, "hardened entropy makes the race unwinnable");
    println!("hardened-profile captures: 0");

    // ---- Part 1d: RFC 5011 — revoking inside the hold-down strands. ----
    let correct = AnchorTracker::seen(0);
    assert_eq!(correct.state_on(ADD_HOLD_DOWN_DAYS - 1), AnchorState::AddPend);
    assert_eq!(correct.state_on(ADD_HOLD_DOWN_DAYS), AnchorState::Valid);
    let mut mistimed = AnchorTracker::seen(0);
    mistimed.revoke(10);
    assert_eq!(mistimed.state_on(10), AnchorState::Revoked);
    assert_eq!(mistimed.state_on(ADD_HOLD_DOWN_DAYS + 10), AnchorState::Revoked);
    println!(
        "rfc 5011: add hold-down {ADD_HOLD_DOWN_DAYS} days; patient roll -> Valid on day {ADD_HOLD_DOWN_DAYS}, \
         revoke on day 10 -> the new anchor never becomes Valid",
    );

    // ---- Part 2: E-A2 on the tiny population. ----
    let result = experiment_poison_resistance(&PopulationConfig::tiny());
    println!("{}", result.to_markdown());
    println!(
        "verdict: {}",
        if result.reproduced() {
            "resolver hardening contract held (E-A2 reproduced)"
        } else {
            "resolver hardening contract broken (see table above)"
        }
    );

    // Any forged answer past the hardened profile — or a broken E-A2 —
    // is a hard failure.
    if admitted != 0 || !result.reproduced() {
        std::process::exit(1);
    }
}
