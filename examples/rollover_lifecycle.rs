//! Key-rollover lifecycle: scheduled transitions, mistimed-DS bogus
//! windows, and rollover-under-outage chaos.
//!
//! Part 1 is a live demo on a hand-built world: a correctly timed
//! double-signature KSK rollover next to one whose registrar pushes the
//! DS five days late, classified day by day through the resolver. The
//! correctly timed arm must never show a bogus day — any leakage is a
//! hard failure (the CI chaos-smoke job runs this binary).
//!
//! Part 2 runs E-K1 on the tiny population: correct rollover ⇒ zero
//! bogus, mistimed DS ⇒ a bogus window matching the injected timing
//! error, and a rollover colliding with an operator outage where
//! serve-stale keeps availability up without masking the bogus window.
//!
//! Run with: `cargo run --release --example rollover_lifecycle`

use dsec::core::experiment_rollover_lifecycle;
use dsec::dnssec::{classify, DeploymentStatus};
use dsec::ecosystem::{
    DsTiming, ExternalDs, Hosting, OperatorDnssec, Plan, RegistrarPolicy, RolloverPlan,
    RolloverStyle, Tld, TldPolicy, TldRole, World, WorldConfig, ALL_TLDS,
};
use dsec::wire::Name;
use dsec::workloads::PopulationConfig;

/// A world with one full-service registrar sponsoring one signed domain.
fn demo_world(label: &str) -> (World, Name) {
    let mut world = World::new(WorldConfig {
        key_pool: 2,
        ..WorldConfig::default()
    });
    let registrar = world.add_registrar(
        "RollReg",
        Name::parse("rollreg.net").unwrap(),
        RegistrarPolicy {
            operator_dnssec: OperatorDnssec::Default,
            external_ds: ExternalDs::Web { validates: true },
            tlds: ALL_TLDS
                .iter()
                .map(|&t| (t, TldPolicy::full(TldRole::Registrar)))
                .collect(),
        },
    );
    let domain = world
        .purchase(
            registrar,
            label,
            Tld::Com,
            Hosting::Registrar { plan: Plan::Free },
            "owner@example.org",
        )
        .unwrap();
    (world, domain)
}

fn status_label(world: &World, domain: &Name) -> &'static str {
    let obs = world.observation_of(domain);
    match classify(domain, &obs, world.today.epoch_seconds()) {
        DeploymentStatus::FullyDeployed => "secure",
        DeploymentStatus::Misconfigured(_) => "BOGUS",
        _ => "other",
    }
}

/// Drives one scheduled rollover day by day, printing the resolver's
/// verdict next to the plan's prediction. Returns the number of bogus
/// days observed.
fn drive(timing: DsTiming) -> u32 {
    let (mut world, domain) = demo_world("roller");
    let plan =
        RolloverPlan::correct(RolloverStyle::DoubleSignatureKsk, world.today.plus_days(1))
            .with_ds_timing(timing);
    let last = plan
        .completion()
        .max(plan.actual_swap().unwrap_or_else(|| plan.completion()))
        .plus_days(1);
    world.schedule_rollover(&domain, plan.clone()).unwrap();

    println!("  {timing:?}: start {:?}, DS swap {:?}", plan.start, plan.actual_swap());
    let mut bogus_days = 0;
    while world.today < last {
        world.tick();
        let verdict = status_label(&world, &domain);
        if verdict == "BOGUS" {
            bogus_days += 1;
        }
        println!(
            "    {:?}  {:<6} {}",
            world.today,
            verdict,
            if plan.is_bogus_on(world.today) { "← predicted bogus" } else { "" }
        );
    }
    println!("{}", dsec::reports::rollover_lifecycle(&world));
    bogus_days
}

fn main() {
    // Part 1: the live demo — a correctly timed rollover vs. the same
    // choreography with the registrar's DS leg five days late.
    println!("correctly timed double-signature KSK rollover:");
    let correct_bogus = drive(DsTiming::OnSchedule);
    println!("correctly timed arm: {correct_bogus} bogus days\n");

    println!("mistimed rollover (DS pushed 5 days late):");
    let late_bogus = drive(DsTiming::Late { days: 5 });
    println!("mistimed arm: {late_bogus} bogus days\n");

    // Part 2: E-K1 — correct / mistimed / rollover-under-outage, with
    // traffic-plane attribution and thread-count invariance.
    let result = experiment_rollover_lifecycle(&PopulationConfig::tiny());
    println!("{}", result.to_markdown());
    println!(
        "verdict: {}",
        if result.reproduced() {
            "rollover lifecycle contract held (E-K1 reproduced)"
        } else {
            "rollover lifecycle contract broken (see table above)"
        }
    );

    // Bogus leakage in the correctly timed arm — or a mistimed plan that
    // somehow stayed secure — is a hard failure.
    if correct_bogus != 0 || late_bogus == 0 || !result.reproduced() {
        std::process::exit(1);
    }
}
