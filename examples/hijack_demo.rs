//! The paper's security anecdotes, end to end: what an attacker can do
//! with a registrar whose DS-by-email channel performs no authentication
//! (§5.3/§6.4), and what the chat channel's copy/paste mishap does to an
//! innocent bystander.
//!
//! ```sh
//! cargo run --release --example hijack_demo
//! ```

use dsec::dnssec::{classify, DeploymentStatus, Misconfiguration};
use dsec::ecosystem::{
    DsSubmission, ExternalDs, Hosting, OperatorDnssec, RegistrarPolicy, Tld, TldPolicy, TldRole,
    UploadOutcome, World, WorldConfig,
};
use dsec::resolver::{Resolver, Security};
use dsec::wire::{DsRdata, Name, RrType};

fn main() {
    let mut world = World::new(WorldConfig::default());

    // A registrar that accepts DS updates by unauthenticated email —
    // two of the three email registrars in Table 2 behaved this way.
    let lax = world.add_registrar(
        "LaxMail",
        Name::parse("laxmail.net").unwrap(),
        RegistrarPolicy {
            operator_dnssec: OperatorDnssec::Unsupported,
            external_ds: ExternalDs::Email {
                verifies_sender: false,
                accepts_foreign_sender: false,
                validates: false,
            },
            tlds: [(Tld::Com, TldPolicy::full(TldRole::Registrar))].into(),
        },
    );

    // The victim runs their own nameservers and deploys DNSSEC correctly.
    let victim = world
        .purchase(lax, "victim", Tld::Com, Hosting::Owner, "owner@victim.com")
        .unwrap();
    let real_ds = world.owner_sign_zone(&victim).unwrap();
    world
        .upload_ds(
            &victim,
            real_ds,
            DsSubmission::Email {
                claimed_from: "owner@victim.com".into(),
                actual_from: "owner@victim.com".into(),
            },
        )
        .unwrap();
    let now = world.today.epoch_seconds();
    let status = classify(&victim, &world.observation_of(&victim), now);
    println!("victim.com correctly deployed: {status:?}");
    assert_eq!(status, DeploymentStatus::FullyDeployed);

    let resolver = Resolver::new(world.network.clone(), world.trust_anchor());
    let www = victim.child("www").unwrap();
    let before = resolver.resolve(&www, RrType::A, now).unwrap();
    println!("before attack: {:?} / {} record(s)", before.security, before.records.len());
    assert_eq!(before.security, Security::Secure);

    // The attacker forges the From: header — email headers are not
    // authenticated — and replaces the victim's DS record.
    let attacker_ds = DsRdata {
        key_tag: 31337,
        algorithm: 8,
        digest_type: 2,
        digest: vec![0x66; 32],
    };
    let outcome = world
        .upload_ds(
            &victim,
            attacker_ds,
            DsSubmission::Email {
                claimed_from: "owner@victim.com".into(), // forged
                actual_from: "mallory@attacker.example".into(),
            },
        )
        .unwrap();
    println!("forged-email DS update: {outcome:?}");
    assert_eq!(outcome, UploadOutcome::Accepted);

    // Consequence 1: the paper's classification sees a DS mismatch.
    let status = classify(&victim, &world.observation_of(&victim), now);
    println!("victim.com after attack: {status:?}");
    assert_eq!(
        status,
        DeploymentStatus::Misconfigured(Misconfiguration::DsMismatch)
    );

    // Consequence 2: validating resolvers now SERVFAIL — the attacker
    // took the domain offline for every DNSSEC-validating client (and a
    // DS matching a key the attacker controls would enable full spoofing).
    let after = resolver.resolve(&www, RrType::A, now).unwrap();
    println!(
        "after attack: rcode {:?}, security {:?}",
        after.rcode, after.security
    );
    assert!(matches!(after.security, Security::Bogus(_)));
    assert!(after.records.is_empty());

    // The audit trail caught it.
    println!("\nsecurity events recorded:");
    for (date, event) in world.events.entries() {
        println!("  {date}: {event:?}");
    }
    assert!(world.events.count("forged_email_accepted") >= 1);
    println!("\nhijack_demo OK (the vulnerability is real, and detectable)");
}
