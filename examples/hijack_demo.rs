//! The paper's security anecdotes (§5.3/§6.4), driven end to end through
//! the attack plane.
//!
//! Part 1 is a live demo on a hand-built world: an [`AttackCampaign`]
//! forges a DS update and then an NS redelegation through a registrar
//! whose DS-by-email channel performs no sender authentication. The
//! forged DS knocks the victim offline for validating clients; the
//! forged NS hands the whole zone to the attacker's authority — a
//! non-validating client walks straight into the forged zone while a
//! validating one is saved by the unchanged DS. Detection rolls both
//! back to a Secure chain. The same two vectors against a
//! verified-sender channel must bounce — any capture there is a hard
//! failure (the CI attack-smoke job runs this binary).
//!
//! Part 2 runs E-A1 on the tiny population: authenticated-channel arm
//! with zero captures, LaxMail arm whose victim queries split exactly
//! into hijacked vs. saved-by-validation across the mixed resolver
//! fleet, and the hijack riding through an operator outage.
//!
//! Run with: `cargo run --release --example hijack_demo`

use dsec::attack::{AttackCampaign, AttackPhase, AttackPlan, AttackVector};
use dsec::core::experiment_attack_plane;
use dsec::dnssec::{classify, DeploymentStatus, Misconfiguration};
use dsec::ecosystem::{
    DsSubmission, ExternalDs, Hosting, OperatorDnssec, RegistrarPolicy, Tld, TldPolicy, TldRole,
    World, WorldConfig,
};
use dsec::resolver::{Resolver, Security};
use dsec::wire::{Name, RData, RrType};
use dsec::workloads::PopulationConfig;

/// A world with one email-channel registrar sponsoring one
/// correctly-deployed owner-hosted domain. `verifies_sender` selects
/// the strong or the lax end of the paper's Table 2.
fn demo_world(verifies_sender: bool) -> (World, Name) {
    let mut world = World::new(WorldConfig::default());
    let registrar = world.add_registrar(
        if verifies_sender { "StrictMail" } else { "LaxMail" },
        Name::parse("demo-reg.net").unwrap(),
        RegistrarPolicy {
            operator_dnssec: OperatorDnssec::Unsupported,
            external_ds: ExternalDs::Email {
                verifies_sender,
                accepts_foreign_sender: false,
                validates: false,
            },
            tlds: [(Tld::Com, TldPolicy::full(TldRole::Registrar))].into(),
        },
    );
    let victim = world
        .purchase(registrar, "victim", Tld::Com, Hosting::Owner, "owner@victim.com")
        .unwrap();
    let ds = world.owner_sign_zone(&victim).unwrap();
    world
        .upload_ds(
            &victim,
            ds,
            DsSubmission::Email {
                claimed_from: "owner@victim.com".into(),
                actual_from: "owner@victim.com".into(),
            },
        )
        .unwrap();
    (world, victim)
}

fn phase_of(campaign: &AttackCampaign, domain: &Name) -> AttackPhase {
    campaign.state(domain).expect("scheduled").phase
}

/// Launches `vector` through the campaign and returns the phase it
/// settled in (plus the world for follow-up checks).
fn run_vector(
    verifies_sender: bool,
    vector: AttackVector,
    detect_after: Option<u32>,
) -> (World, Name, AttackCampaign) {
    let (mut world, victim) = demo_world(verifies_sender);
    let mut campaign = AttackCampaign::new();
    let mut plan = AttackPlan::new(vector, world.today.plus_days(1));
    if let Some(days) = detect_after {
        plan = plan.with_detection(days);
    }
    campaign.schedule(victim.clone(), plan);
    let until = world.today.plus_days(2);
    campaign.advance_to(&mut world, until);
    (world, victim, campaign)
}

fn main() {
    // ---- Part 1a: forged DS through the lax channel (sabotage). ----
    let (world, victim, campaign) = run_vector(false, AttackVector::ForgedDs, None);
    let phase = phase_of(&campaign, &victim);
    println!("forged DS via LaxMail email: phase {phase:?}");
    assert_eq!(phase, AttackPhase::Captured);
    let now = world.today.epoch_seconds();
    let status = classify(&victim, &world.observation_of(&victim), now);
    println!("victim.com classification: {status:?}");
    assert_eq!(
        status,
        DeploymentStatus::Misconfigured(Misconfiguration::DsMismatch)
    );
    let resolver = Resolver::new(world.network.clone(), world.trust_anchor());
    let www = victim.child("www").unwrap();
    let resp = resolver.resolve(&www, RrType::A, now).unwrap();
    println!("validating resolver after forged DS: {:?}", resp.security);
    assert!(matches!(resp.security, Security::Bogus(_)));
    assert!(resp.records.is_empty(), "offline for validating clients");

    // ---- Part 1b: forged NS through the lax channel (takeover). ----
    let (world, victim, campaign) =
        run_vector(false, AttackVector::ForgedNs { stealthy: false }, None);
    println!(
        "forged NS via LaxMail email: phase {:?}",
        phase_of(&campaign, &victim)
    );
    assert_eq!(phase_of(&campaign, &victim), AttackPhase::Captured);
    let now = world.today.epoch_seconds();
    let nv = Resolver::new(world.network.clone(), Vec::new());
    let resp = nv.resolve(&www, RrType::A, now).unwrap();
    let attacker_a = resp.records.iter().find_map(|r| match &r.rdata {
        RData::A(ip) => Some(*ip),
        _ => None,
    });
    println!(
        "non-validating client got attacker address: {}",
        attacker_a.map(|ip| ip.to_string()).unwrap_or_default()
    );
    assert_eq!(attacker_a.map(|ip| ip.to_string()).as_deref(), Some("203.0.113.66"));
    let validating = Resolver::new(world.network.clone(), world.trust_anchor());
    let resp = validating.resolve(&www, RrType::A, now).unwrap();
    println!("validating client saved: {:?}", resp.security);
    assert!(matches!(resp.security, Security::Bogus(_)));
    assert!(resp.records.is_empty());

    // ---- Part 1c: detection and remediation restore the chain. ----
    let (world, victim, campaign) =
        run_vector(false, AttackVector::ForgedNs { stealthy: false }, Some(1));
    println!(
        "detection day reached: phase {:?}",
        phase_of(&campaign, &victim)
    );
    assert_eq!(phase_of(&campaign, &victim), AttackPhase::Restored);
    let now = world.today.epoch_seconds();
    let resolver = Resolver::new(world.network.clone(), world.trust_anchor());
    let resp = resolver.resolve(&www, RrType::A, now).unwrap();
    println!(
        "after remediation: {:?} with {} record(s)",
        resp.security,
        resp.records.len()
    );
    assert_eq!(resp.security, Security::Secure);
    assert!(!resp.records.is_empty());

    // ---- Part 1d: the verified-sender channel repels both vectors. ----
    let mut captures = 0;
    for vector in [AttackVector::ForgedDs, AttackVector::ForgedNs { stealthy: false }] {
        let (world, victim, campaign) = run_vector(true, vector, None);
        let phase = phase_of(&campaign, &victim);
        println!("authenticated channel: {vector:?} {phase:?}");
        assert_eq!(phase, AttackPhase::Repelled);
        captures += campaign.captured().len();
        assert_eq!(
            world.events.count("forged_email_accepted")
                + world.events.count("forged_ns_accepted"),
            0
        );
    }
    println!("authenticated-arm captures: {captures}");

    // ---- Part 2: E-A1 on the tiny population. ----
    let result = experiment_attack_plane(&PopulationConfig::tiny());
    println!("{}", result.to_markdown());
    println!(
        "verdict: {}",
        if result.reproduced() {
            "attack plane contract held (E-A1 reproduced)"
        } else {
            "attack plane contract broken (see table above)"
        }
    );

    // Any capture past the authenticated channel — or a broken E-A1 —
    // is a hard failure.
    if captures != 0 || !result.reproduced() {
        std::process::exit(1);
    }
}
