//! Chaos campaign: the measurement pipeline under a degraded network.
//!
//! Builds the same tiny population twice, runs one scan campaign over a
//! clean network and one with the fault plane injecting a 5%
//! drop/SERVFAIL mix plus a flapping nameserver fleet, then compares the
//! two with experiment E-R1 and prints the degradation record.
//!
//! Run with: `cargo run --release --example chaos_campaign`

use dsec::authserver::FaultProfile;
use dsec::core::experiment_chaos;
use dsec::ecosystem::Tld;
use dsec::scanner::{scan_campaign, CampaignConfig};
use dsec::workloads::{build, PopulationConfig};

const CHAOS_SEED: u64 = 0xC4A05;

fn main() {
    // Clean baseline.
    let mut clean = build(&PopulationConfig::tiny());
    let until = clean.world.today.plus_days(28);
    let clean_store = scan_campaign(&mut clean.world, &CampaignConfig::new(until, 7));

    // Same world, degraded network: 5% drop/SERVFAIL mix everywhere and
    // one registrar fleet flapping 2-days-up / 1-day-down.
    let mut chaos = build(&PopulationConfig::tiny());
    chaos.world.fault_plane().enable(CHAOS_SEED);
    chaos
        .world
        .fault_plane()
        .set_global_profile(FaultProfile::mixed(0.05));
    let delegations = chaos.world.registry(Tld::Com).delegations();
    for ns in chaos.world.registry(Tld::Com).ns_of(&delegations[0]) {
        chaos.world.fault_plane().flap_server(&ns, 2, 1);
    }
    // …and one fleet dead for the whole window: its domains must show up
    // as unreachable, not silently misclassified.
    if let Some(last) = delegations.last() {
        for ns in chaos.world.registry(Tld::Com).ns_of(last) {
            chaos.world.fault_plane().set_down(&ns, true);
        }
    }
    let chaos_store = scan_campaign(&mut chaos.world, &CampaignConfig::new(until, 7));

    let result = experiment_chaos(&clean_store, &chaos_store);
    println!("{}", result.to_markdown());

    let faults = chaos.world.fault_plane().stats();
    println!("injected faults: {faults:?}");
    println!(
        "queries: {} udp / {} tcp-fallback",
        chaos.world.network.query_count(),
        chaos.world.network.tcp_query_count(),
    );
    println!(
        "\nverdict: {}",
        if result.reproduced() {
            "artifact stable under faults (E-R1 reproduced)"
        } else {
            "artifact drifted beyond tolerance (see table above)"
        }
    );
}
