//! Chaos campaign: the measurement pipeline under a degraded network.
//!
//! Part 1 (E-R1): builds the same tiny population twice, runs one scan
//! campaign over a clean network and one with the fault plane injecting
//! a 5% drop/SERVFAIL mix plus a flapping nameserver fleet, then
//! compares the two and prints the degradation record.
//!
//! Part 2 (E-R2): graceful degradation under sustained outages — the
//! serve-stale / negative-caching / circuit-breaker contract against
//! declarative outage scenarios, plus a live breaker transition log and
//! a phase-by-phase availability timeline.
//!
//! Exits nonzero unless both robustness experiments reproduce (the CI
//! chaos-smoke job runs this binary).
//!
//! Run with: `cargo run --release --example chaos_campaign`

use std::sync::Arc;

use dsec::authserver::{FaultProfile, OutageScenario};
use dsec::core::{experiment_chaos, experiment_outage};
use dsec::ecosystem::{Tld, World};
use dsec::resolver::{BreakerPolicy, Cache, Resolver};
use dsec::scanner::{operator_of, scan_campaign, CampaignConfig};
use dsec::traffic::{run_load_shared, LoadConfig};
use dsec::wire::{Name, RrType};
use dsec::workloads::{build, PopulationConfig};

const CHAOS_SEED: u64 = 0xC4A05;

/// The biggest DNS operator (by hosted domains) and its nameserver fleet.
fn largest_operator(world: &World) -> (String, Vec<Name>) {
    let mut sizes: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut fleets: std::collections::BTreeMap<String, std::collections::BTreeSet<Name>> =
        std::collections::BTreeMap::new();
    for d in world.domains() {
        let ns = world.registry(d.tld).ns_of(&d.name);
        let Some(op) = operator_of(&ns) else { continue };
        let key = op.to_string();
        *sizes.entry(key.clone()).or_insert(0) += 1;
        fleets.entry(key).or_default().extend(ns);
    }
    let victim = sizes
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
        .map(|(k, _)| k.clone())
        .expect("populated world");
    let fleet = fleets.remove(&victim).unwrap_or_default().into_iter().collect();
    (victim, fleet)
}

/// Prints the E-R2 demo: breaker transition log + availability timeline.
fn degradation_demo() {
    let pw = build(&PopulationConfig::tiny());
    let world = &pw.world;
    let base = world.today.epoch_seconds();
    let queries: u64 = 2_048;
    let qps: u32 = 4;
    let span = (queries / qps as u64) as u32;
    let (victim, fleet) = largest_operator(world);

    world.fault_plane().enable(CHAOS_SEED);
    OutageScenario::operator_outage("operator-outage", fleet.clone(), base + span, base + 2 * span)
        .install(world.fault_plane());

    // Live breaker transition log: one resolver staring at the dead
    // fleet through the window.
    let victim_domain = world
        .domains()
        .find(|d| {
            let ns = world.registry(d.tld).ns_of(&d.name);
            ns.first().is_some_and(|first| fleet.contains(first))
        })
        .map(|d| d.name.clone())
        .expect("victim operator hosts a domain");
    let resolver = Resolver::new(world.network.clone(), world.trust_anchor()).with_breaker(
        BreakerPolicy {
            failure_threshold: 3,
            probe_interval_s: 60,
        },
    );
    for t in (0..=(2 * span + 120)).step_by(64) {
        let _ = resolver.resolve(&victim_domain, RrType::A, base + span / 2 + t);
    }
    println!("breaker transitions ({victim_domain} via {victim}):");
    for event in resolver.breaker().expect("breaker armed").transitions() {
        println!(
            "  t+{:>5}s  {:<28} {}",
            event.at - base,
            event.authority.to_string(),
            event.transition.label(),
        );
    }

    // Availability timeline: the same stream replayed warm → outage →
    // recovery over one shared serve-stale cache.
    let mut config = LoadConfig::default()
        .with_queries(queries)
        .with_seed(CHAOS_SEED)
        .with_max_stale(7_200)
        .with_breaker(BreakerPolicy {
            failure_threshold: 3,
            probe_interval_s: 30,
        });
    config.sim_qps = qps;
    let cache = Arc::new(Cache::bounded(config.cache_capacity).with_max_stale(7_200));
    println!("\navailability timeline (victim fleet down t+{span}s..t+{}s):", 2 * span);
    println!("  phase      window          avail%  stale%  servfail%  breaker-trips");
    for (label, offset) in [
        ("warm-up", 0),
        ("outage", span),
        ("recovery", 2 * span + 60),
    ] {
        let report = run_load_shared(world, &config.clone().with_now_offset(offset), Arc::clone(&cache));
        println!(
            "  {:<9} t+{:>5}s..{:>5}s {:>6.1} {:>7.1} {:>10.1} {:>14}",
            label,
            offset,
            offset + span,
            100.0 * report.availability(),
            100.0 * report.outcomes.stale as f64 / report.total.max(1) as f64,
            100.0 * report.outcomes.servfail as f64 / report.total.max(1) as f64,
            report.resolver.breaker_trips,
        );
    }
}

fn main() {
    // Clean baseline.
    let mut clean = build(&PopulationConfig::tiny());
    let until = clean.world.today.plus_days(28);
    let clean_store = scan_campaign(&mut clean.world, &CampaignConfig::new(until, 7));

    // Same world, degraded network: 5% drop/SERVFAIL mix everywhere and
    // one registrar fleet flapping 2-days-up / 1-day-down.
    let mut chaos = build(&PopulationConfig::tiny());
    chaos.world.fault_plane().enable(CHAOS_SEED);
    chaos
        .world
        .fault_plane()
        .set_global_profile(FaultProfile::mixed(0.05));
    let delegations = chaos.world.registry(Tld::Com).delegations();
    for ns in chaos.world.registry(Tld::Com).ns_of(&delegations[0]) {
        chaos.world.fault_plane().flap_server(&ns, 2, 1);
    }
    // …and one fleet dead for the whole window: its domains must show up
    // as unreachable, not silently misclassified.
    if let Some(last) = delegations.last() {
        for ns in chaos.world.registry(Tld::Com).ns_of(last) {
            chaos.world.fault_plane().set_down(&ns, true);
        }
    }
    let chaos_store = scan_campaign(&mut chaos.world, &CampaignConfig::new(until, 7));

    let result = experiment_chaos(&clean_store, &chaos_store);
    println!("{}", result.to_markdown());

    let faults = chaos.world.fault_plane().stats();
    println!("injected faults: {faults:?}");
    println!(
        "queries: {} udp / {} tcp-fallback",
        chaos.world.network.query_count(),
        chaos.world.network.tcp_query_count(),
    );
    println!(
        "\nverdict: {}",
        if result.reproduced() {
            "artifact stable under faults (E-R1 reproduced)"
        } else {
            "artifact drifted beyond tolerance (see table above)"
        }
    );

    // Part 2: graceful degradation under sustained outages.
    let outage = experiment_outage(&PopulationConfig::tiny());
    println!("\n{}", outage.to_markdown());
    degradation_demo();
    println!(
        "\nverdict: {}",
        if outage.reproduced() {
            "graceful degradation held (E-R2 reproduced)"
        } else {
            "degradation contract broken (see table above)"
        }
    );

    if !result.reproduced() || !outage.reproduced() {
        std::process::exit(1);
    }
}
