//! A DNSSEC "doctor": the DNSViz-style chain diagnosis the paper's §3
//! points administrators at, run against three domains in the three
//! states the study cares about — healthy, partial, and broken.
//!
//! ```sh
//! cargo run --release --example doctor
//! ```

use dsec::ecosystem::{
    DsSubmission, ExternalDs, Hosting, OperatorDnssec, Plan, RegistrarPolicy, Tld, TldPolicy,
    TldRole, World, WorldConfig, ALL_TLDS,
};
use dsec::resolver::diagnose;
use dsec::wire::{DsRdata, Name};

fn main() {
    let mut world = World::new(WorldConfig::default());
    let registrar = world.add_registrar(
        "DocReg",
        Name::parse("docreg.net").unwrap(),
        RegistrarPolicy {
            operator_dnssec: OperatorDnssec::Default,
            external_ds: ExternalDs::Web { validates: false }, // accepts garbage
            tlds: ALL_TLDS
                .iter()
                .map(|&t| (t, TldPolicy::full(TldRole::Registrar)))
                .collect(),
        },
    );

    // Healthy: registrar-hosted with default signing.
    let healthy = world
        .purchase(registrar, "healthy", Tld::Com, Hosting::Registrar { plan: Plan::Free }, "o@x")
        .unwrap();

    // Partial: owner-signed, DS never conveyed (the paper's 30%).
    let partial = world
        .purchase(registrar, "partial", Tld::Com, Hosting::Owner, "o@x")
        .unwrap();
    world.owner_sign_zone(&partial).unwrap();

    // Broken: owner-signed, garbage DS accepted by the sloppy web form.
    let broken = world
        .purchase(registrar, "broken", Tld::Com, Hosting::Owner, "o@x")
        .unwrap();
    world.owner_sign_zone(&broken).unwrap();
    world
        .upload_ds(
            &broken,
            DsRdata {
                key_tag: 4096,
                algorithm: 8,
                digest_type: 2,
                digest: b"copy paste error strikes again !".to_vec(),
            },
            DsSubmission::Web,
        )
        .unwrap();

    let anchor = world.trust_anchor();
    let now = world.today.epoch_seconds();
    for domain in [&healthy, &partial, &broken] {
        let report = diagnose(&world.network, &anchor, domain, now);
        println!("{report}");
    }

    // Sanity for CI use of the example.
    assert!(diagnose(&world.network, &anchor, &healthy, now).is_secure());
    assert!(!diagnose(&world.network, &anchor, &partial, now).is_secure());
    assert!(!diagnose(&world.network, &anchor, &broken, now).is_secure());
    println!("doctor OK");
}
