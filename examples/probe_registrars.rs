//! Reproduces the paper's hands-on experiment (§5–6): probe the top-20
//! registrars and the top-10 DNSSEC registrars as a customer and print
//! Table 2 and Table 3.
//!
//! ```sh
//! cargo run --release --example probe_registrars
//! ```

use dsec::core::{experiment_table2, experiment_table3, TOP10_DNSSEC, TOP20};
use dsec::probe::probe_all;
use dsec::workloads::{build, PopulationConfig};

fn main() {
    // The probe is scale-independent: policies, not populations, are what
    // it measures, so a tiny world suffices.
    let mut pw = build(&PopulationConfig::tiny());
    println!(
        "built world with {} domains across {} registrars\n",
        pw.world.domain_count(),
        pw.world.registrar_count()
    );

    let top20 = probe_all(&mut pw.world, &TOP20);
    let top10 = probe_all(&mut pw.world, &TOP10_DNSSEC);

    let t2 = experiment_table2(&top20, None);
    println!("{}", t2.artifact);
    println!("{t2}");

    let t3 = experiment_table3(&top10, None);
    println!("{}", t3.artifact);
    println!("{t3}");

    // The paper's security anecdotes, rediscovered.
    println!("security findings:");
    for report in top20.iter().chain(top10.iter()) {
        for note in &report.notes {
            if note.contains("SECURITY") {
                println!("  {}: {note}", report.registrar);
            }
        }
    }

    assert!(t2.reproduced(), "Table 2 checkpoints must hold");
    assert!(t3.reproduced(), "Table 3 checkpoints must hold");
    println!("\nall Table 2 / Table 3 checkpoints hold");
}
