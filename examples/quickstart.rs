//! Quickstart: build a tiny world, deploy DNSSEC on one domain the way a
//! customer would, and watch a validating resolver accept — then reject —
//! the chain.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dsec::dnssec::{classify, DeploymentStatus};
use dsec::ecosystem::{
    DsSubmission, ExternalDs, Hosting, OperatorDnssec, Plan, RegistrarPolicy, Tld, TldPolicy,
    TldRole, World, WorldConfig, ALL_TLDS,
};
use dsec::resolver::{Resolver, Security};
use dsec::wire::{DsRdata, Name, RrType};

fn main() {
    // A world with signed root + TLD registries, starting 2015-03-01.
    let mut world = World::new(WorldConfig::default());
    println!("world starts on {}", world.today);

    // A registrar that does everything right: signs hosted domains by
    // default and validates DS uploads (the OVH/TransIP end of Table 2).
    let registrar = world.add_registrar(
        "GoodReg",
        Name::parse("goodreg.net").unwrap(),
        RegistrarPolicy {
            operator_dnssec: OperatorDnssec::Default,
            external_ds: ExternalDs::Web { validates: true },
            tlds: ALL_TLDS
                .iter()
                .map(|&t| (t, TldPolicy::full(TldRole::Registrar)))
                .collect(),
        },
    );

    // 1. Buy a registrar-hosted domain: signed and chained automatically.
    let domain = world
        .purchase(
            registrar,
            "quickstart",
            Tld::Com,
            Hosting::Registrar { plan: Plan::Free },
            "owner@quickstart.example",
        )
        .expect("purchase succeeds");
    let obs = world.observation_of(&domain);
    let status = classify(&domain, &obs, world.today.epoch_seconds());
    println!("{domain} after purchase: {status:?}");
    assert_eq!(status, DeploymentStatus::FullyDeployed);

    // 2. A validating resolver walks root → com → quickstart.com securely.
    let resolver = Resolver::new(world.network.clone(), world.trust_anchor());
    let www = domain.child("www").unwrap();
    let answer = resolver
        .resolve(&www, RrType::A, world.today.epoch_seconds())
        .expect("resolution completes");
    println!(
        "resolve {www} → {} record(s), security {:?}, chain {:?}",
        answer.records.len(),
        answer.security,
        answer.chain.iter().map(|n| n.to_string()).collect::<Vec<_>>()
    );
    assert_eq!(answer.security, Security::Secure);

    // 3. Move to our own nameserver and redo the deployment by hand —
    //    the workflow the paper's authors walked at 30 registrars.
    let ns = world.switch_to_owner_hosting(&domain).unwrap();
    println!("switched to owner hosting at {ns}");
    let ds = world.owner_sign_zone(&domain).unwrap();
    println!(
        "zone signed; DS to convey: tag {} alg {} digest-type {}",
        ds.key_tag, ds.algorithm, ds.digest_type
    );

    // A garbage DS (the copy/paste error most registrars would accept —
    // but GoodReg validates).
    let garbage = DsRdata {
        key_tag: 4242,
        algorithm: 8,
        digest_type: 2,
        digest: b"oops wrong clipboard".to_vec(),
    };
    let rejected = world
        .upload_ds(&domain, garbage, DsSubmission::Web)
        .unwrap();
    println!("garbage DS upload: {rejected:?}");

    let accepted = world.upload_ds(&domain, ds, DsSubmission::Web).unwrap();
    println!("real DS upload: {accepted:?}");
    let obs = world.observation_of(&domain);
    let status = classify(&domain, &obs, world.today.epoch_seconds());
    println!("{domain} after manual deployment: {status:?}");
    assert_eq!(status, DeploymentStatus::FullyDeployed);

    // 4. Time passes; the world keeps serving and the chain keeps
    //    validating.
    world.advance_to(world.today.plus_days(30));
    let answer = resolver
        .resolve(&www, RrType::A, world.today.epoch_seconds())
        .unwrap();
    println!(
        "30 days later ({}): still {:?}",
        world.today, answer.security
    );
    assert_eq!(answer.security, Security::Secure);

    println!("quickstart OK");
}
