//! Offline stub of criterion: a small wall-clock harness behind the
//! subset of the criterion API this workspace's bench targets use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`/`throughput`, `Bencher::iter`
//! and `iter_batched`). No statistics, no HTML reports: each benchmark
//! runs `sample_size` samples and prints the mean time per iteration,
//! plus derived throughput when one was declared.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup; the stub runs one routine call
/// per batch regardless, so the variants only exist to type-check.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// Measures one benchmark: the closure under test reports its timing
/// through `iter`/`iter_batched`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_one(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // One warm-up call, then `sample_size` measured iterations in a
    // single batch — enough resolution for multi-millisecond workloads.
    let mut warmup = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warmup);
    let mut bencher = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / sample_size as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
            format!(" ({:.1} MiB/s)", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        Throughput::Elements(n) => format!(" ({:.1} elem/s)", n as f64 / per_iter),
    });
    println!(
        "{id:<40} {:>12.3} ms/iter{} [{} samples]",
        per_iter * 1e3,
        rate.unwrap_or_default(),
        sample_size,
    );
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), 10, None, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.as_ref()),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
