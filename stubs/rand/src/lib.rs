//! Offline stub of rand 0.9 with a ChaCha12-based StdRng.
//!
//! API-compatible with the subset this workspace uses: `rngs::StdRng`,
//! `SeedableRng::{from_seed, seed_from_u64}`, `RngCore`, and
//! `Rng::{random, random_range, random_bool}`.

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64, as rand_core does.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable via [`Rng::random`].
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges samplable via [`Rng::random_range`].
pub trait RangeSample {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Unbiased via rejection sampling.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
        impl RangeSample for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

int_range_sample!(u8, u16, u32, u64, usize, i32, i64);

impl RangeSample for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

pub trait Rng: RngCore {
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_range<S: RangeSample>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// ChaCha12-based deterministic RNG (same core as rand 0.9's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buffer: [u32; 16],
        index: usize,
    }

    impl StdRng {
        fn refill(&mut self) {
            const C: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
            let mut state = [0u32; 16];
            state[..4].copy_from_slice(&C);
            state[4..12].copy_from_slice(&self.key);
            state[12] = self.counter as u32;
            state[13] = (self.counter >> 32) as u32;
            state[14] = 0;
            state[15] = 0;
            let mut working = state;
            for _ in 0..6 {
                // 6 double-rounds = 12 rounds.
                quarter(&mut working, 0, 4, 8, 12);
                quarter(&mut working, 1, 5, 9, 13);
                quarter(&mut working, 2, 6, 10, 14);
                quarter(&mut working, 3, 7, 11, 15);
                quarter(&mut working, 0, 5, 10, 15);
                quarter(&mut working, 1, 6, 11, 12);
                quarter(&mut working, 2, 7, 8, 13);
                quarter(&mut working, 3, 4, 9, 14);
            }
            for i in 0..16 {
                self.buffer[i] = working[i].wrapping_add(state[i]);
            }
            self.counter = self.counter.wrapping_add(1);
            self.index = 0;
        }
    }

    fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (i, chunk) in seed.chunks(4).enumerate() {
                key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
            }
            let mut rng = StdRng {
                key,
                counter: 0,
                buffer: [0; 16],
                index: 16,
            };
            rng.refill();
            rng.index = 0;
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= 16 {
                self.refill();
            }
            let v = self.buffer[self.index];
            self.index += 1;
            v
        }

        fn next_u64(&mut self) -> u64 {
            let lo = self.next_u32() as u64;
            let hi = self.next_u32() as u64;
            lo | (hi << 32)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(4) {
                let bytes = self.next_u32().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}
