//! Offline stub of proptest: a deterministic, shrink-free subset of the
//! real API, sufficient for this workspace's property tests.
//!
//! Supported surface:
//! * `proptest::prelude::*` — [`Strategy`], [`Just`], [`any`],
//!   [`ProptestConfig`], and the `proptest!` / `prop_oneof!` macros;
//! * `Strategy::prop_map`, tuple strategies up to arity 4;
//! * `proptest::collection::vec(strategy, range)`;
//! * `proptest! { #![proptest_config(..)] #[test] fn f(x in s) {..} }`.
//!
//! No shrinking is performed: a failing case panics with the generated
//! value's `Debug` rendering (all inputs here are `Debug`), which is
//! enough to reproduce since generation is deterministic — the RNG is
//! seeded per test from the test function's name.

/// Deterministic test RNG (splitmix64). Not exposed by the real
/// proptest API; the macros thread it through generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary byte string (the `proptest!` macro passes
    /// the test function name) so different tests see different, but
    /// run-to-run stable, streams.
    pub fn from_seed_str(seed: &str) -> Self {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for &b in seed.as_bytes() {
            state = state.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
        }
        Self { state }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// A value generator. The stub collapses proptest's `ValueTree` layer:
/// strategies produce final values directly and nothing shrinks.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe boxed strategy, used by `prop_oneof!` to mix arms of
/// different concrete types.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed arms — the expansion of `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// The `any::<T>()` entry point for primitives.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Integer range strategies: `1u32..86400` is itself a strategy.
macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize);

/// Strategy for any value of an [`Arbitrary`] type.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `proptest::collection::vec`: length uniform in `len`, elements
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.len.end - self.len.start;
            let n = self.len.start + rng.below(span.max(1));
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::hash_set`. Duplicate draws collapse, so
    /// the set may come out smaller than the drawn length — the real
    /// proptest retries; for a stub the smaller set is acceptable as
    /// long as the minimum is honoured.
    pub fn hash_set<S>(element: S, len: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        assert!(len.start < len.end, "empty length range");
        HashSetStrategy { element, len }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        type Value = std::collections::HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.len.end - self.len.start;
            let target = self.len.start + rng.below(span.max(1));
            let mut set = std::collections::HashSet::new();
            // Bounded retries keep generation total even for narrow
            // element domains.
            let mut attempts = 0;
            while set.len() < target.max(self.len.start) && attempts < 64 * (target + 1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod string {
    use super::{Strategy, TestRng};

    /// `proptest::string::string_regex`, for the subset of patterns this
    /// workspace uses: a single character class with a bounded repeat,
    /// e.g. `[a-zA-Z0-9-]{1,20}`.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, String> {
        let (class, rest) = parse_class(pattern)?;
        let (min, max) = parse_repeat(rest)?;
        if class.is_empty() {
            return Err(format!("empty character class in {pattern:?}"));
        }
        Ok(RegexStrategy { class, min, max })
    }

    fn parse_class(pattern: &str) -> Result<(Vec<char>, &str), String> {
        let inner = pattern
            .strip_prefix('[')
            .ok_or_else(|| format!("unsupported pattern {pattern:?} (stub handles [class]{{m,n}})"))?;
        let end = inner
            .find(']')
            .ok_or_else(|| format!("unterminated class in {pattern:?}"))?;
        let (body, rest) = (&inner[..end], &inner[end + 1..]);
        let chars: Vec<char> = body.chars().collect();
        let mut class = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                if lo > hi {
                    return Err(format!("inverted range {lo}-{hi} in {pattern:?}"));
                }
                class.extend(lo..=hi);
                i += 3;
            } else {
                class.push(chars[i]);
                i += 1;
            }
        }
        Ok((class, rest))
    }

    fn parse_repeat(rest: &str) -> Result<(usize, usize), String> {
        let inner = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .ok_or_else(|| format!("unsupported repeat {rest:?} (stub handles {{m,n}})"))?;
        let (min, max) = match inner.split_once(',') {
            Some((m, n)) => (
                m.parse().map_err(|e| format!("bad repeat: {e}"))?,
                n.parse().map_err(|e| format!("bad repeat: {e}"))?,
            ),
            None => {
                let n = inner.parse().map_err(|e| format!("bad repeat: {e}"))?;
                (n, n)
            }
        };
        if min > max {
            return Err(format!("inverted repeat {{{min},{max}}}"));
        }
        Ok((min, max))
    }

    pub struct RegexStrategy {
        class: Vec<char>,
        min: usize,
        max: usize,
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let n = self.min + rng.below(self.max - self.min + 1);
            (0..n).map(|_| self.class[rng.below(self.class.len())]).collect()
        }
    }
}

/// Runner configuration. Only `cases` matters to the stub; the other
/// fields exist so `..ProptestConfig::default()` spreads compile.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
    pub max_global_rejects: u32,
    pub fork: bool,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 1024,
            max_global_rejects: 65536,
            fork: false,
        }
    }
}

/// Mirrors `proptest::strategy::*` being reachable via a module path,
/// which some call sites spell out.
pub mod strategy {
    pub use super::{BoxedStrategy, Just, Map, Strategy, Union};
}

pub mod prelude {
    pub use super::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The real proptest's `prop_assert*` return `Err` so shrinking can
/// proceed; with no shrinking a plain panic carries the same
/// information.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the assumption fails. Expands to
/// `continue`, which binds to the per-case loop the `proptest!` macro
/// wraps around each test body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    }};
}

/// The test-harness macro: each `#[test] fn name(pat in strategy, ..)`
/// becomes a plain `#[test]` that runs `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_seed_str(stringify!($name));
                for _case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}
