//! Offline stub of bytes (unused API surface in this workspace).
