//! Offline stub of crossbeam's scoped threads over std::thread::scope.

pub mod thread {
    use std::any::Any;

    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
        }
    }

    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}
