//! DS digest types (IANA "Delegation Signer Digest Algorithms" registry) and
//! the RFC 4034 Appendix B key-tag computation.

use crate::sha::{sha1, sha256, sha384};

/// A DS record digest algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DigestType {
    /// SHA-1 (1) — mandatory to implement per RFC 4034, deprecated for new DS.
    Sha1,
    /// SHA-256 (2) — RFC 4509; the mainstream choice.
    Sha256,
    /// SHA-384 (4) — RFC 6605.
    Sha384,
    /// Any number this library does not implement.
    Unknown(u8),
}

impl DigestType {
    /// IANA digest type number.
    pub fn number(self) -> u8 {
        match self {
            DigestType::Sha1 => 1,
            DigestType::Sha256 => 2,
            DigestType::Sha384 => 4,
            DigestType::Unknown(n) => n,
        }
    }

    /// Maps an IANA number to a digest type.
    pub fn from_number(n: u8) -> Self {
        match n {
            1 => DigestType::Sha1,
            2 => DigestType::Sha256,
            4 => DigestType::Sha384,
            other => DigestType::Unknown(other),
        }
    }

    /// Whether this library can compute the digest.
    pub fn is_supported(self) -> bool {
        !matches!(self, DigestType::Unknown(_))
    }

    /// Digest length in bytes (`None` for unknown types).
    pub fn digest_len(self) -> Option<usize> {
        match self {
            DigestType::Sha1 => Some(20),
            DigestType::Sha256 => Some(32),
            DigestType::Sha384 => Some(48),
            DigestType::Unknown(_) => None,
        }
    }

    /// Computes the digest of `data` (the canonical owner name concatenated
    /// with the DNSKEY RDATA, per RFC 4034 §5.1.4). `None` for unknown types.
    pub fn digest(self, data: &[u8]) -> Option<Vec<u8>> {
        match self {
            DigestType::Sha1 => Some(sha1(data).to_vec()),
            DigestType::Sha256 => Some(sha256(data).to_vec()),
            DigestType::Sha384 => Some(sha384(data).to_vec()),
            DigestType::Unknown(_) => None,
        }
    }
}

/// RFC 4034 Appendix B key tag over DNSKEY RDATA.
///
/// The key tag is a 16-bit non-cryptographic checksum used to pre-select
/// candidate DNSKEYs when validating an RRSIG or matching a DS record.
pub fn key_tag(dnskey_rdata: &[u8]) -> u16 {
    let mut acc: u32 = 0;
    for (i, &b) in dnskey_rdata.iter().enumerate() {
        if i & 1 == 0 {
            acc += (b as u32) << 8;
        } else {
            acc += b as u32;
        }
    }
    acc += (acc >> 16) & 0xFFFF;
    (acc & 0xFFFF) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_round_trip() {
        for n in 0..=255u8 {
            assert_eq!(DigestType::from_number(n).number(), n);
        }
    }

    #[test]
    fn digest_lengths_match_outputs() {
        for dt in [DigestType::Sha1, DigestType::Sha256, DigestType::Sha384] {
            let d = dt.digest(b"abc").unwrap();
            assert_eq!(d.len(), dt.digest_len().unwrap());
        }
        assert!(DigestType::Unknown(3).digest(b"abc").is_none());
        assert!(DigestType::Unknown(3).digest_len().is_none());
    }

    #[test]
    fn sha256_digest_matches_known_vector() {
        let d = DigestType::Sha256.digest(b"abc").unwrap();
        assert_eq!(
            d.iter().map(|b| format!("{b:02x}")).collect::<String>(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn key_tag_rfc4034_appendix_b_vector() {
        // The DNSKEY RDATA from RFC 4034 §5.4 example (dskey.example.com,
        // algorithm 5, flags 256): key tag must be 60485.
        let b64 = "AQOeiiR0GOMYkDshWoSKz9XzfwJr1AYtsmx3TGkJaNXVbfi/2pHm822aJ5iI9BMzNXxeYCmZDRD99WYwYqUSdjMmmAphXdvxegXd/M5+X7OrzKBaMbCVdFLUUh6DhweJBjEVv5f2wwjM9XzcnOf+EPbtG9DMBmADjFDc2w/rljwvFw==";
        let key_bytes = base64_decode(b64);
        let mut rdata = Vec::new();
        rdata.extend_from_slice(&256u16.to_be_bytes()); // flags
        rdata.push(3); // protocol
        rdata.push(5); // algorithm
        rdata.extend_from_slice(&key_bytes);
        assert_eq!(key_tag(&rdata), 60485);
    }

    #[test]
    fn key_tag_is_order_sensitive() {
        assert_ne!(key_tag(&[1, 2, 3, 4]), key_tag(&[4, 3, 2, 1]));
    }

    #[test]
    fn key_tag_empty_is_zero() {
        assert_eq!(key_tag(&[]), 0);
    }

    /// Minimal base64 decoder for the test vector (not exposed).
    fn base64_decode(s: &str) -> Vec<u8> {
        const TABLE: &[u8; 64] =
            b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
        let mut out = Vec::new();
        let mut acc: u32 = 0;
        let mut bits = 0;
        for c in s.bytes() {
            if c == b'=' {
                break;
            }
            let v = TABLE.iter().position(|&t| t == c).expect("valid base64") as u32;
            acc = (acc << 6) | v;
            bits += 6;
            if bits >= 8 {
                bits -= 8;
                out.push((acc >> bits) as u8);
            }
        }
        out
    }
}
