//! Base32hex (RFC 4648 §7), the encoding NSEC3 owner names use
//! (unpadded, lowercase by convention in presentation format).

/// The extended-hex alphabet.
const ALPHABET: &[u8; 32] = b"0123456789abcdefghijklmnopqrstuv";

/// Encodes `data` as unpadded lowercase base32hex.
pub fn encode_hex(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(5) * 8);
    let mut acc: u64 = 0;
    let mut bits = 0u32;
    for &b in data {
        acc = (acc << 8) | b as u64;
        bits += 8;
        while bits >= 5 {
            bits -= 5;
            out.push(ALPHABET[((acc >> bits) & 0x1f) as usize] as char);
        }
    }
    if bits > 0 {
        out.push(ALPHABET[((acc << (5 - bits)) & 0x1f) as usize] as char);
    }
    out
}

/// Decodes unpadded base32hex (case-insensitive).
pub fn decode_hex(s: &str) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(s.len() * 5 / 8);
    let mut acc: u64 = 0;
    let mut bits = 0u32;
    for c in s.bytes() {
        let v = match c.to_ascii_lowercase() {
            b'0'..=b'9' => c - b'0',
            c2 @ b'a'..=b'v' => c2 - b'a' + 10,
            _ => return None,
        } as u64;
        acc = (acc << 5) | v;
        bits += 5;
        if bits >= 8 {
            bits -= 8;
            out.push((acc >> bits) as u8);
        }
    }
    // Dangling bits must be zero padding.
    if acc & ((1 << bits) - 1) != 0 {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_base32hex_vectors() {
        // RFC 4648 §10 vectors, unpadded.
        let cases = [
            ("", ""),
            ("f", "co"),
            ("fo", "cpng"),
            ("foo", "cpnmu"),
            ("foob", "cpnmuog"),
            ("fooba", "cpnmuoj1"),
            ("foobar", "cpnmuoj1e8"),
        ];
        for (plain, enc) in cases {
            assert_eq!(encode_hex(plain.as_bytes()), enc);
            assert_eq!(decode_hex(enc).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn decode_is_case_insensitive() {
        assert_eq!(decode_hex("CPNMUOJ1E8").unwrap(), b"foobar");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_hex("w").is_none()); // outside alphabet
        assert!(decode_hex("c=").is_none());
        assert!(decode_hex("cp1").is_none()); // nonzero dangling bits
    }

    #[test]
    fn binary_round_trip() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode_hex(&encode_hex(&data)).unwrap(), data);
    }

    #[test]
    fn sha1_digest_width_encodes_to_32_chars() {
        // NSEC3 owner labels: 20-byte SHA-1 → 32 base32hex characters.
        assert_eq!(encode_hex(&[0u8; 20]).len(), 32);
    }
}
