//! Base64 (RFC 4648) encode/decode.
//!
//! DNSKEY and RRSIG RDATA are presented in base64 in zone files and reports;
//! this is the shared implementation used by the wire crate's text forms.

/// Base64 alphabet (standard, with padding).
const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes `data` as padded standard base64.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[triple as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes padded or unpadded standard base64; whitespace is ignored
/// (zone-file presentation splits key material across whitespace).
pub fn decode(s: &str) -> Result<Vec<u8>, Base64Error> {
    let mut out = Vec::with_capacity(s.len() / 4 * 3);
    let mut acc: u32 = 0;
    let mut bits = 0u8;
    let mut padding_seen = false;
    for c in s.bytes() {
        if c.is_ascii_whitespace() {
            continue;
        }
        if c == b'=' {
            padding_seen = true;
            continue;
        }
        if padding_seen {
            return Err(Base64Error::DataAfterPadding);
        }
        let v = decode_char(c).ok_or(Base64Error::InvalidCharacter(c as char))?;
        acc = (acc << 6) | v as u32;
        bits += 6;
        if bits >= 8 {
            bits -= 8;
            out.push((acc >> bits) as u8);
        }
    }
    // Leftover bits must be zero padding bits (< 6 of them used).
    if bits >= 6 || (acc & ((1 << bits) - 1)) != 0 {
        return Err(Base64Error::TrailingBits);
    }
    Ok(out)
}

fn decode_char(c: u8) -> Option<u8> {
    match c {
        b'A'..=b'Z' => Some(c - b'A'),
        b'a'..=b'z' => Some(c - b'a' + 26),
        b'0'..=b'9' => Some(c - b'0' + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Errors from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base64Error {
    /// A byte outside the base64 alphabet (and not whitespace/padding).
    InvalidCharacter(char),
    /// Non-padding data appeared after an `=` padding character.
    DataAfterPadding,
    /// The input length left non-zero dangling bits.
    TrailingBits,
}

impl std::fmt::Display for Base64Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Base64Error::InvalidCharacter(c) => write!(f, "invalid base64 character {c:?}"),
            Base64Error::DataAfterPadding => write!(f, "base64 data after padding"),
            Base64Error::TrailingBits => write!(f, "invalid base64 length (dangling bits)"),
        }
    }
}

impl std::error::Error for Base64Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        let cases = [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ];
        for (plain, enc) in cases {
            assert_eq!(encode(plain.as_bytes()), enc);
            assert_eq!(decode(enc).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn decode_ignores_whitespace() {
        assert_eq!(decode("Zm9v\n YmFy").unwrap(), b"foobar");
    }

    #[test]
    fn decode_unpadded() {
        assert_eq!(decode("Zm9vYg").unwrap(), b"foob");
    }

    #[test]
    fn decode_rejects_invalid() {
        assert!(matches!(
            decode("Zm9*"),
            Err(Base64Error::InvalidCharacter('*'))
        ));
        assert!(matches!(decode("Zg==Zg"), Err(Base64Error::DataAfterPadding)));
        assert!(matches!(decode("Z"), Err(Base64Error::TrailingBits)));
        // 'h' = 33 -> low bits non-zero for 1-byte output
        assert!(matches!(decode("Zh=="), Err(Base64Error::TrailingBits)));
    }

    #[test]
    fn binary_round_trip() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }
}
