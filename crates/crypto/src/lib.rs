//! # dsec-crypto — cryptographic substrate for the dsec DNSSEC stack
//!
//! Everything DNSSEC needs, built from scratch per the reproduction rules:
//!
//! - [`bigint`]: arbitrary-precision unsigned arithmetic with Montgomery
//!   modular exponentiation and Miller–Rabin primality testing;
//! - [`sha`]: SHA-1 / SHA-256 / SHA-384 / SHA-512 (FIPS 180-4);
//! - [`rsa`]: RSA key generation and RSASSA-PKCS1-v1_5 (RFC 8017 / RFC 3110);
//! - [`algorithm`]: the IANA DNSSEC algorithm registry and a typed
//!   sign/verify dispatch;
//! - [`digest`]: DS digest types and the RFC 4034 Appendix B key tag;
//! - [`base64`]: RFC 4648 base64 for zone-file presentation forms;
//! - [`base32`]: RFC 4648 base32hex for NSEC3 owner labels.
//!
//! This crate is `std`-only and has a single dependency (`rand`, for key
//! generation). It performs **real** cryptography — signatures made by
//! [`algorithm::SigningKey::sign`] genuinely verify (or fail to) under
//! [`algorithm::verify`] — so every DNSSEC misconfiguration modeled upstream
//! is a real validation failure rather than a simulation flag.
//!
//! ## Security note
//!
//! The implementation is *functionally* correct but not hardened: no
//! constant-time guarantees, no blinding, and the simulation defaults to
//! 512-bit RSA for speed. Do not use it to protect real zones.

#![warn(missing_docs)]

pub mod algorithm;
pub mod base32;
pub mod base64;
pub mod bigint;
pub mod digest;
pub mod rsa;
pub mod sha;

pub use algorithm::{verify, Algorithm, SigningKey};
pub use bigint::BigUint;
pub use digest::{key_tag, DigestType};

/// Errors produced by the crypto layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// The algorithm number is not implemented by this library.
    UnsupportedAlgorithm(u8),
    /// Public key material could not be parsed.
    MalformedKey(&'static str),
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::UnsupportedAlgorithm(n) => {
                write!(f, "unsupported DNSSEC algorithm {n}")
            }
            CryptoError::MalformedKey(why) => write!(f, "malformed key material: {why}"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod proptests {
    use crate::bigint::BigUint;
    use crate::{base64, digest};
    use proptest::prelude::*;

    fn biguint() -> impl Strategy<Value = BigUint> {
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(|b| BigUint::from_bytes_be(&b))
    }

    proptest! {
        #[test]
        fn bytes_round_trip(b in proptest::collection::vec(any::<u8>(), 0..64)) {
            let v = BigUint::from_bytes_be(&b);
            let back = v.to_bytes_be();
            let trimmed: Vec<u8> = b.iter().copied().skip_while(|&x| x == 0).collect();
            prop_assert_eq!(back, trimmed);
        }

        #[test]
        fn add_commutes(a in biguint(), b in biguint()) {
            prop_assert_eq!(a.add(&b), b.add(&a));
        }

        #[test]
        fn add_associates(a in biguint(), b in biguint(), c in biguint()) {
            prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        }

        #[test]
        fn mul_commutes(a in biguint(), b in biguint()) {
            prop_assert_eq!(a.mul(&b), b.mul(&a));
        }

        #[test]
        fn mul_distributes(a in biguint(), b in biguint(), c in biguint()) {
            prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }

        #[test]
        fn sub_inverts_add(a in biguint(), b in biguint()) {
            prop_assert_eq!(a.add(&b).sub(&b), a);
        }

        #[test]
        fn divmod_reconstructs(a in biguint(), b in biguint()) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.divmod(&b);
            prop_assert!(r < b);
            prop_assert_eq!(q.mul(&b).add(&r), a);
        }

        #[test]
        fn shift_round_trip(a in biguint(), s in 0usize..200) {
            prop_assert_eq!(a.shl(s).shr(s), a);
        }

        #[test]
        fn modpow_reduces(a in biguint(), e in biguint(), m in biguint()) {
            prop_assume!(!m.is_zero());
            let r = a.modpow(&e, &m);
            prop_assert!(r < m);
        }

        #[test]
        fn base64_round_trip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            prop_assert_eq!(base64::decode(&base64::encode(&data)).unwrap(), data);
        }

        #[test]
        fn key_tag_total(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            // Never panics, and is stable.
            prop_assert_eq!(digest::key_tag(&data), digest::key_tag(&data));
        }
    }
}
