//! Arbitrary-precision unsigned integer arithmetic.
//!
//! This module provides [`BigUint`], the number-theoretic workhorse behind the
//! RSA implementation in [`crate::rsa`]. It is deliberately self-contained
//! (no external bignum crate) because the reproduction rules require every
//! substrate to be built from scratch.
//!
//! Representation: little-endian `u64` limbs with no trailing zero limbs
//! (canonical form). Zero is the empty limb vector.
//!
//! Operations implemented: comparison, addition, subtraction, schoolbook
//! multiplication, bit operations, long division (Knuth-style, limb by limb
//! via a normalized 128-bit estimate), modular exponentiation (Montgomery
//! ladder over odd moduli with a generic fallback), extended Euclid / modular
//! inverse, and Miller–Rabin probabilistic primality testing.

use std::cmp::Ordering;
use std::fmt;

use rand::RngCore;

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian 64-bit limbs in canonical form (no trailing zero
/// limbs). All arithmetic that could underflow panics — RSA code paths never
/// subtract a larger number from a smaller one.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds from big-endian bytes (the DNS wire convention for RSA material).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut acc: u64 = 0;
        let mut shift = 0u32;
        for &b in bytes.iter().rev() {
            acc |= (b as u64) << shift;
            shift += 8;
            if shift == 64 {
                limbs.push(acc);
                acc = 0;
                shift = 0;
            }
        }
        if acc != 0 {
            limbs.push(acc);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serializes to big-endian bytes with no leading zero byte.
    /// Zero serializes to an empty vector.
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most significant limb.
                let first = bytes.iter().position(|&b| b != 0).unwrap_or(7);
                out.extend_from_slice(&bytes[first..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to big-endian bytes left-padded with zeros to exactly
    /// `len` bytes. Panics if the value needs more than `len` bytes —
    /// callers size the buffer from the modulus.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// True iff the low bit is clear (and the value may be zero).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (counting from the least significant bit).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (a, b) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u64;
        for (i, &ai) in a.iter().enumerate() {
            let bi = b.get(i).copied().unwrap_or(0);
            let (s1, c1) = ai.overflowing_add(bi);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Adds a small value in place.
    pub fn add_u64(&self, v: u64) -> BigUint {
        self.add(&BigUint::from_u64(v))
    }

    /// `self - other`; panics on underflow.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let bi = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(bi);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self * other` (schoolbook; adequate for ≤4096-bit RSA).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u128 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 64;
        let bit_shift = (bits % 64) as u32;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = (bits % 64) as u32;
        let mut out: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            for i in 0..out.len() {
                let high = out.get(i + 1).copied().unwrap_or(0);
                out[i] = (out[i] >> bit_shift) | (high << (64 - bit_shift));
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `(self / divisor, self % divisor)`; panics on division by zero.
    ///
    /// Uses limb-wise long division with a 128-bit quotient estimate against
    /// the divisor's top two limbs (a simplified Knuth algorithm D); each
    /// estimate is corrected by at most a couple of add/sub passes.
    pub fn divmod(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0];
            let mut q = Vec::with_capacity(self.limbs.len());
            let mut rem: u128 = 0;
            for &l in self.limbs.iter().rev() {
                let cur = (rem << 64) | l as u128;
                q.push((cur / d as u128) as u64);
                rem = cur % d as u128;
            }
            q.reverse();
            let mut qn = BigUint { limbs: q };
            qn.normalize();
            return (qn, BigUint::from_u64(rem as u64));
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un = u.limbs.clone();
        un.push(0); // extra headroom limb
        let vtop = v.limbs[n - 1];
        let vsec = v.limbs[n - 2];

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate q̂ from the top three limbs of the current remainder.
            let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = num / vtop as u128;
            let mut rhat = num % vtop as u128;
            while qhat >> 64 != 0
                || qhat * vsec as u128 > ((rhat << 64) | un[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += vtop as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-subtract: un[j..j+n+1] -= qhat * v.
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let p = qhat * v.limbs[i] as u128 + carry;
                carry = p >> 64;
                let t = un[j + i] as i128 - (p as u64) as i128 + borrow;
                un[j + i] = t as u64;
                borrow = t >> 64;
            }
            let t = un[j + n] as i128 - carry as i128 + borrow;
            un[j + n] = t as u64;
            borrow = t >> 64;

            q[j] = qhat as u64;
            if borrow < 0 {
                // q̂ was one too large: add v back.
                q[j] -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let (s1, c1) = un[j + i].overflowing_add(v.limbs[i]);
                    let (s2, c2) = s1.overflowing_add(carry);
                    un[j + i] = s2;
                    carry = (c1 as u64) + (c2 as u64);
                }
                un[j + n] = un[j + n].wrapping_add(carry);
            }
        }

        let mut quot = BigUint { limbs: q };
        quot.normalize();
        let mut rem = BigUint {
            limbs: un[..n].to_vec(),
        };
        rem.normalize();
        (quot, rem.shr(shift))
    }

    /// `self % modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.divmod(modulus).1
    }

    /// `(self * other) % modulus` without intermediate reduction tricks.
    pub fn mulmod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// `self^exponent mod modulus`.
    ///
    /// Uses Montgomery multiplication when the modulus is odd (the RSA case),
    /// and falls back to plain square-and-multiply otherwise.
    pub fn modpow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        if exponent.is_zero() {
            return BigUint::one();
        }
        if modulus.is_even() {
            return self.modpow_plain(exponent, modulus);
        }
        let ctx = Montgomery::new(modulus);
        let base = ctx.to_mont(&self.rem(modulus));
        let mut acc = ctx.to_mont(&BigUint::one());
        for i in (0..exponent.bit_len()).rev() {
            acc = ctx.mont_mul(&acc, &acc);
            if exponent.bit(i) {
                acc = ctx.mont_mul(&acc, &base);
            }
        }
        ctx.from_mont(&acc)
    }

    fn modpow_plain(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        let mut result = BigUint::one();
        let mut base = self.rem(modulus);
        for i in 0..exponent.bit_len() {
            if exponent.bit(i) {
                result = result.mulmod(&base, modulus);
            }
            base = base.mulmod(&base, modulus);
        }
        result
    }

    /// Greatest common divisor (binary-free Euclid; division is cheap here).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse: `self⁻¹ mod modulus`, or `None` if not coprime.
    ///
    /// Extended Euclid tracked with signed coefficients over `BigUint`
    /// (sign carried separately to stay in unsigned arithmetic).
    pub fn modinv(&self, modulus: &BigUint) -> Option<BigUint> {
        if modulus.is_zero() || modulus.is_one() {
            return None;
        }
        // (old_r, r) and signed coefficients (old_s, s) of `self`.
        let mut old_r = self.rem(modulus);
        let mut r = modulus.clone();
        let mut old_s = (BigUint::one(), false); // (magnitude, negative?)
        let mut s = (BigUint::zero(), false);
        while !r.is_zero() {
            let (q, rem) = old_r.divmod(&r);
            old_r = std::mem::replace(&mut r, rem);
            // new_s = old_s - q * s
            let qs = q.mul(&s.0);
            let new_s = signed_sub(&old_s, &(qs, s.1));
            old_s = std::mem::replace(&mut s, new_s);
        }
        if !old_r.is_one() {
            return None;
        }
        let inv = if old_s.1 {
            modulus.sub(&old_s.0.rem(modulus))
        } else {
            old_s.0.rem(modulus)
        };
        Some(inv.rem(modulus))
    }

    /// Draws a uniformly random value with exactly `bits` significant bits
    /// (top bit forced to 1 so products have predictable width).
    pub fn random_bits(rng: &mut dyn RngCore, bits: usize) -> BigUint {
        assert!(bits > 0);
        let limbs = bits.div_ceil(64);
        let mut v = Vec::with_capacity(limbs);
        for _ in 0..limbs {
            v.push(rng.next_u64());
        }
        // Mask excess bits, then force the top bit on.
        let top_bits = bits - (limbs - 1) * 64;
        let mask = if top_bits == 64 {
            u64::MAX
        } else {
            (1u64 << top_bits) - 1
        };
        let last = v.last_mut().unwrap();
        *last &= mask;
        *last |= 1u64 << (top_bits - 1);
        let mut n = BigUint { limbs: v };
        n.normalize();
        n
    }

    /// Draws a uniform value in `[0, bound)` by rejection sampling.
    pub fn random_below(rng: &mut dyn RngCore, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero());
        let bits = bound.bit_len();
        loop {
            // Sample `bits` random bits without forcing the top bit.
            let limbs = bits.div_ceil(64);
            let mut v = Vec::with_capacity(limbs);
            for _ in 0..limbs {
                v.push(rng.next_u64());
            }
            let top_bits = bits - (limbs - 1) * 64;
            let mask = if top_bits == 64 {
                u64::MAX
            } else {
                (1u64 << top_bits) - 1
            };
            *v.last_mut().unwrap() &= mask;
            let mut n = BigUint { limbs: v };
            n.normalize();
            if &n < bound {
                return n;
            }
        }
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases.
    ///
    /// Deterministically handles small primes and even numbers first. With
    /// 24 rounds the error probability is < 4⁻²⁴ per composite.
    pub fn is_probable_prime(&self, rng: &mut dyn RngCore, rounds: u32) -> bool {
        const SMALL_PRIMES: [u64; 15] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47];
        if self.bit_len() <= 6 {
            let v = self.limbs.first().copied().unwrap_or(0);
            return SMALL_PRIMES.contains(&v);
        }
        for &p in &SMALL_PRIMES {
            if self.rem(&BigUint::from_u64(p)).is_zero() {
                return false;
            }
        }
        // Write self - 1 = d * 2^s with d odd.
        let n_minus_1 = self.sub(&BigUint::one());
        let s = trailing_zeros(&n_minus_1);
        let d = n_minus_1.shr(s);
        let two = BigUint::from_u64(2);
        let bound = self.sub(&BigUint::from_u64(3));
        'witness: for _ in 0..rounds {
            // a in [2, n-2]
            let a = BigUint::random_below(rng, &bound).add(&two);
            let mut x = a.modpow(&d, self);
            if x.is_one() || x == n_minus_1 {
                continue;
            }
            for _ in 0..s.saturating_sub(1) {
                x = x.mulmod(&x, self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Generates a random probable prime with exactly `bits` bits.
    pub fn random_prime(rng: &mut dyn RngCore, bits: usize, mr_rounds: u32) -> BigUint {
        assert!(bits >= 8, "prime too small to be useful");
        loop {
            let mut cand = BigUint::random_bits(rng, bits);
            // Force odd.
            cand.limbs[0] |= 1;
            if cand.is_probable_prime(rng, mr_rounds) {
                return cand;
            }
        }
    }
}

/// Count of trailing zero bits; `n` must be nonzero.
fn trailing_zeros(n: &BigUint) -> usize {
    debug_assert!(!n.is_zero());
    let mut tz = 0;
    for &l in &n.limbs {
        if l == 0 {
            tz += 64;
        } else {
            tz += l.trailing_zeros() as usize;
            break;
        }
    }
    tz
}

/// Signed subtraction over (magnitude, negative?) pairs.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with equal signs: compare magnitudes.
        (an, bn) if an == bn => {
            if a.0 >= b.0 {
                (a.0.sub(&b.0), an)
            } else {
                (b.0.sub(&a.0), !an)
            }
        }
        // a - (-b) = a + b ; (-a) - b = -(a + b)
        (an, _) => (a.0.add(&b.0), an),
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0x0");
        }
        write!(f, "0x")?;
        for (i, l) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                write!(f, "{l:x}")?;
            } else {
                write!(f, "{l:016x}")?;
            }
        }
        Ok(())
    }
}

/// Montgomery multiplication context for an odd modulus.
///
/// Precomputes `n' = -n⁻¹ mod 2⁶⁴` and `R² mod n` so that repeated modular
/// multiplications inside [`BigUint::modpow`] avoid long division entirely.
struct Montgomery {
    n: BigUint,
    /// -n⁻¹ mod 2⁶⁴ (for the REDC inner loop).
    n_prime: u64,
    /// R² mod n where R = 2^(64·limbs).
    r2: BigUint,
    limbs: usize,
}

impl Montgomery {
    fn new(modulus: &BigUint) -> Self {
        debug_assert!(!modulus.is_even());
        let limbs = modulus.limbs.len();
        // n' = -n^{-1} mod 2^64 via Newton iteration on the low limb.
        let n0 = modulus.limbs[0];
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n_prime = inv.wrapping_neg();
        // R^2 mod n, R = 2^(64*limbs)
        let r2 = BigUint::one().shl(64 * limbs * 2).rem(modulus);
        Montgomery {
            n: modulus.clone(),
            n_prime,
            r2,
            limbs,
        }
    }

    /// REDC: computes `a * b * R⁻¹ mod n` with interleaved reduction.
    fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let k = self.limbs;
        let mut t = vec![0u64; k + 2];
        for i in 0..k {
            let ai = a.limbs.get(i).copied().unwrap_or(0);
            // t += ai * b
            let mut carry: u128 = 0;
            for (j, tj) in t.iter_mut().enumerate().take(k) {
                let bj = b.limbs.get(j).copied().unwrap_or(0);
                let s = *tj as u128 + ai as u128 * bj as u128 + carry;
                *tj = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = t[k + 1].wrapping_add((s >> 64) as u64);
            // m = t[0] * n' mod 2^64 ; t += m * n ; t >>= 64
            let m = t[0].wrapping_mul(self.n_prime);
            let mut carry: u128 = 0;
            for (tj, nj) in t.iter_mut().zip(&self.n.limbs).take(k) {
                let s = *tj as u128 + m as u128 * *nj as u128 + carry;
                *tj = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = t[k + 1].wrapping_add((s >> 64) as u64);
            // Shift down one limb.
            for j in 0..=k {
                t[j] = t[j + 1];
            }
            t[k + 1] = 0;
        }
        let mut out = BigUint {
            limbs: t[..=k].to_vec(),
        };
        out.normalize();
        if out >= self.n {
            out = out.sub(&self.n);
        }
        out
    }

    fn to_mont(&self, a: &BigUint) -> BigUint {
        self.mont_mul(a, &self.r2)
    }

    // `from_mont` converts *out of* Montgomery form; the `from_` name is
    // domain vocabulary, not a constructor.
    #[allow(clippy::wrong_self_convention)]
    fn from_mont(&self, a: &BigUint) -> BigUint {
        self.mont_mul(a, &BigUint::one())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn zero_and_one_identities() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
        assert_eq!(n(5).add(&BigUint::zero()), n(5));
        assert_eq!(n(5).mul(&BigUint::one()), n(5));
        assert_eq!(n(5).mul(&BigUint::zero()), BigUint::zero());
    }

    #[test]
    fn bytes_round_trip() {
        let cases: &[&[u8]] = &[
            &[],
            &[1],
            &[0xff],
            &[1, 0, 0, 0, 0, 0, 0, 0, 0],
            &[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05],
        ];
        for c in cases {
            let v = BigUint::from_bytes_be(c);
            let back = v.to_bytes_be();
            // Leading zeros are stripped on the way out.
            let trimmed: Vec<u8> = c.iter().copied().skip_while(|&b| b == 0).collect();
            assert_eq!(back, trimmed);
        }
    }

    #[test]
    fn leading_zero_bytes_ignored() {
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 7]), n(7));
    }

    #[test]
    fn padded_serialization() {
        assert_eq!(n(1).to_bytes_be_padded(4), vec![0, 0, 0, 1]);
        assert_eq!(BigUint::zero().to_bytes_be_padded(2), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_serialization_overflow_panics() {
        BigUint::from_bytes_be(&[1, 2, 3]).to_bytes_be_padded(2);
    }

    #[test]
    fn addition_with_carry_chain() {
        let a = BigUint::from_bytes_be(&[0xff; 16]);
        let b = n(1);
        let sum = a.add(&b);
        let mut expect = vec![1u8];
        expect.extend(std::iter::repeat_n(0, 16));
        assert_eq!(sum.to_bytes_be(), expect);
        assert_eq!(sum.sub(&b), a);
    }

    #[test]
    fn subtraction_with_borrow() {
        let a = BigUint::one().shl(128);
        let b = n(1);
        let d = a.sub(&b);
        assert_eq!(d.to_bytes_be(), vec![0xff; 16]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        n(1).sub(&n(2));
    }

    #[test]
    fn multiplication_known_values() {
        assert_eq!(n(12345).mul(&n(6789)), n(12345 * 6789));
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let max = BigUint::from_u64(u64::MAX);
        let sq = max.mul(&max);
        let expect = BigUint::one()
            .shl(128)
            .sub(&BigUint::one().shl(65))
            .add(&BigUint::one());
        assert_eq!(sq, expect);
    }

    #[test]
    fn shifts_compose() {
        let v = BigUint::from_bytes_be(&[0x12, 0x34, 0x56, 0x78, 0x9a]);
        assert_eq!(v.shl(67).shr(67), v);
        assert_eq!(v.shr(200), BigUint::zero());
        assert_eq!(v.shl(0), v);
        assert_eq!(v.shr(0), v);
    }

    #[test]
    fn division_small() {
        let (q, r) = n(100).divmod(&n(7));
        assert_eq!(q, n(14));
        assert_eq!(r, n(2));
        let (q, r) = n(5).divmod(&n(100));
        assert_eq!(q, BigUint::zero());
        assert_eq!(r, n(5));
    }

    #[test]
    fn division_reconstructs() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let abits = 1 + (rng.next_u64() % 512) as usize;
            let bbits = 1 + (rng.next_u64() % 256) as usize;
            let a = BigUint::random_bits(&mut rng, abits);
            let b = BigUint::random_bits(&mut rng, bbits);
            let (q, r) = a.divmod(&b);
            assert!(r < b);
            assert_eq!(q.mul(&b).add(&r), a, "a={a:?} b={b:?}");
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        n(1).divmod(&BigUint::zero());
    }

    #[test]
    fn modpow_small_cases() {
        assert_eq!(n(4).modpow(&n(13), &n(497)), n(445));
        assert_eq!(n(2).modpow(&n(10), &n(1025)), n(1024));
        assert_eq!(n(7).modpow(&BigUint::zero(), &n(13)), BigUint::one());
        assert_eq!(n(7).modpow(&n(5), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn modpow_even_modulus_fallback() {
        // 3^5 mod 16 = 243 mod 16 = 3
        assert_eq!(n(3).modpow(&n(5), &n(16)), n(3));
    }

    #[test]
    fn modpow_fermat_little_theorem() {
        // For prime p and a not divisible by p: a^(p-1) ≡ 1 (mod p).
        let p = n(1_000_000_007);
        let a = n(123_456_789);
        assert_eq!(a.modpow(&p.sub(&BigUint::one()), &p), BigUint::one());
    }

    #[test]
    fn modpow_matches_plain_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let mut m = BigUint::random_bits(&mut rng, 192);
            if m.is_even() {
                m = m.add(&BigUint::one());
            }
            let b = BigUint::random_bits(&mut rng, 160);
            let e = BigUint::random_bits(&mut rng, 48);
            assert_eq!(b.modpow(&e, &m), b.modpow_plain(&e, &m));
        }
    }

    #[test]
    fn gcd_and_modinv() {
        assert_eq!(n(48).gcd(&n(18)), n(6));
        assert_eq!(n(17).gcd(&n(31)), n(1));
        let inv = n(3).modinv(&n(11)).unwrap();
        assert_eq!(inv, n(4)); // 3*4 = 12 ≡ 1 mod 11
        assert!(n(6).modinv(&n(9)).is_none()); // gcd 3
    }

    #[test]
    fn modinv_random_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = BigUint::random_prime(&mut rng, 96, 16);
        for _ in 0..20 {
            let a = BigUint::random_below(&mut rng, &m);
            if a.is_zero() {
                continue;
            }
            let inv = a.modinv(&m).expect("prime modulus → inverse exists");
            assert_eq!(a.mulmod(&inv, &m), BigUint::one());
        }
    }

    #[test]
    fn primality_known_values() {
        let mut rng = StdRng::seed_from_u64(0);
        for p in [2u64, 3, 5, 7, 97, 7919, 1_000_000_007] {
            assert!(n(p).is_probable_prime(&mut rng, 16), "{p} is prime");
        }
        for c in [1u64, 4, 100, 561, 7917, 1_000_000_001] {
            assert!(!n(c).is_probable_prime(&mut rng, 16), "{c} is composite");
        }
    }

    #[test]
    fn random_prime_has_requested_width() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = BigUint::random_prime(&mut rng, 128, 12);
        assert_eq!(p.bit_len(), 128);
        assert!(!p.is_even());
    }

    #[test]
    fn ordering_is_by_magnitude() {
        assert!(n(2) < n(3));
        assert!(BigUint::one().shl(64) > BigUint::from_u64(u64::MAX));
        assert_eq!(n(5).cmp(&n(5)), Ordering::Equal);
    }

    #[test]
    fn debug_renders_hex() {
        assert_eq!(format!("{:?}", n(255)), "0xff");
        assert_eq!(format!("{:?}", BigUint::zero()), "0x0");
        let big = BigUint::one().shl(64);
        assert_eq!(format!("{big:?}"), "0x10000000000000000");
    }
}
