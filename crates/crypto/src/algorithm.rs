//! DNSSEC algorithm numbers (IANA "DNS Security Algorithm Numbers" registry)
//! and the signing/verification dispatch built on top of [`crate::rsa`].

use rand::RngCore;

use crate::rsa::{RsaHash, RsaPrivateKey, RsaPublicKey};
use crate::CryptoError;

/// A DNSSEC signing algorithm, by IANA number.
///
/// Only the RSA family is implemented (it covered the overwhelming majority
/// of signed zones in the paper's 2015–2016 measurement window; ECDSA uptake
/// was just starting per van Rijswijk-Deij et al. 2016). Unknown numbers are
/// preserved so the wire layer can round-trip records it cannot validate —
/// a validator treats them as unsupported, yielding *insecure*, not *bogus*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Algorithm {
    /// RSA/SHA-1 (5) — legacy but still widespread in 2016.
    RsaSha1,
    /// RSA/SHA-256 (8) — the recommended mainstream algorithm.
    RsaSha256,
    /// RSA/SHA-512 (10).
    RsaSha512,
    /// The reserved "delete DS" sentinel (0) used by CDS/CDNSKEY (RFC 8078).
    Delete,
    /// Any algorithm number this library does not implement.
    Unknown(u8),
}

impl Algorithm {
    /// IANA algorithm number.
    pub fn number(self) -> u8 {
        match self {
            Algorithm::Delete => 0,
            Algorithm::RsaSha1 => 5,
            Algorithm::RsaSha256 => 8,
            Algorithm::RsaSha512 => 10,
            Algorithm::Unknown(n) => n,
        }
    }

    /// Maps an IANA number to an algorithm.
    pub fn from_number(n: u8) -> Self {
        match n {
            0 => Algorithm::Delete,
            5 => Algorithm::RsaSha1,
            8 => Algorithm::RsaSha256,
            10 => Algorithm::RsaSha512,
            other => Algorithm::Unknown(other),
        }
    }

    /// Whether this library can produce and check signatures for it.
    pub fn is_supported(self) -> bool {
        self.rsa_hash().is_some()
    }

    /// IANA mnemonic, as printed in zone files and reports.
    pub fn mnemonic(self) -> String {
        match self {
            Algorithm::Delete => "DELETE".into(),
            Algorithm::RsaSha1 => "RSASHA1".into(),
            Algorithm::RsaSha256 => "RSASHA256".into(),
            Algorithm::RsaSha512 => "RSASHA512".into(),
            Algorithm::Unknown(n) => format!("ALG{n}"),
        }
    }

    fn rsa_hash(self) -> Option<RsaHash> {
        match self {
            Algorithm::RsaSha1 => Some(RsaHash::Sha1),
            Algorithm::RsaSha256 => Some(RsaHash::Sha256),
            Algorithm::RsaSha512 => Some(RsaHash::Sha512),
            _ => None,
        }
    }
}

/// A private signing key bound to a DNSSEC algorithm.
#[derive(Debug, Clone)]
pub struct SigningKey {
    /// The algorithm this key signs with.
    pub algorithm: Algorithm,
    key: RsaPrivateKey,
}

impl SigningKey {
    /// Generates a key pair for `algorithm` with an RSA modulus of `bits`.
    ///
    /// Returns [`CryptoError::UnsupportedAlgorithm`] for non-RSA numbers.
    pub fn generate(
        rng: &mut dyn RngCore,
        algorithm: Algorithm,
        bits: usize,
    ) -> Result<Self, CryptoError> {
        if !algorithm.is_supported() {
            return Err(CryptoError::UnsupportedAlgorithm(algorithm.number()));
        }
        // SHA-512's DigestInfo (83 bytes + 11 overhead) needs ≥ 752-bit n.
        let min_bits = match algorithm {
            Algorithm::RsaSha512 => 768,
            _ => 256,
        };
        Ok(SigningKey {
            algorithm,
            key: RsaPrivateKey::generate(rng, bits.max(min_bits)),
        })
    }

    /// The RFC 3110 public key material for the DNSKEY RDATA.
    pub fn public_key_wire(&self) -> Vec<u8> {
        self.key.public.to_dnskey_wire()
    }

    /// Signs `message`; infallible for a constructed key.
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        let hash = self
            .algorithm
            .rsa_hash()
            .expect("SigningKey is only constructed for supported algorithms");
        self.key.sign(hash, message)
    }
}

/// Verifies `signature` over `message` with `public_key` wire material.
///
/// Returns `Ok(true)` / `Ok(false)` for supported algorithms, and an error
/// for unsupported algorithms or malformed key material — callers map the
/// error to *insecure* (unsupported) or *bogus* (malformed) per RFC 4035.
pub fn verify(
    algorithm: Algorithm,
    public_key: &[u8],
    message: &[u8],
    signature: &[u8],
) -> Result<bool, CryptoError> {
    let hash = algorithm
        .rsa_hash()
        .ok_or(CryptoError::UnsupportedAlgorithm(algorithm.number()))?;
    let key = RsaPublicKey::from_dnskey_wire(public_key)?;
    Ok(key.verify(hash, message, signature))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn number_round_trip() {
        for n in 0..=255u8 {
            assert_eq!(Algorithm::from_number(n).number(), n);
        }
    }

    #[test]
    fn mnemonics() {
        assert_eq!(Algorithm::RsaSha256.mnemonic(), "RSASHA256");
        assert_eq!(Algorithm::Delete.mnemonic(), "DELETE");
        assert_eq!(Algorithm::Unknown(13).mnemonic(), "ALG13");
    }

    #[test]
    fn supported_set_is_rsa_family() {
        assert!(Algorithm::RsaSha1.is_supported());
        assert!(Algorithm::RsaSha256.is_supported());
        assert!(Algorithm::RsaSha512.is_supported());
        assert!(!Algorithm::Delete.is_supported());
        assert!(!Algorithm::Unknown(13).is_supported());
    }

    #[test]
    fn signing_key_round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        let key = SigningKey::generate(&mut rng, Algorithm::RsaSha256, 512).unwrap();
        let sig = key.sign(b"rrset data");
        let ok = verify(Algorithm::RsaSha256, &key.public_key_wire(), b"rrset data", &sig);
        assert!(ok.unwrap());
        let bad = verify(Algorithm::RsaSha256, &key.public_key_wire(), b"other", &sig);
        assert!(!bad.unwrap());
    }

    #[test]
    fn sha512_key_is_upsized() {
        let mut rng = StdRng::seed_from_u64(6);
        let key = SigningKey::generate(&mut rng, Algorithm::RsaSha512, 512).unwrap();
        // 512 requested, but SHA-512 needs at least 768 bits of modulus.
        let sig = key.sign(b"x");
        assert!(sig.len() * 8 >= 768);
    }

    #[test]
    fn unsupported_algorithm_errors() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(matches!(
            SigningKey::generate(&mut rng, Algorithm::Unknown(13), 512),
            Err(CryptoError::UnsupportedAlgorithm(13))
        ));
        assert!(matches!(
            verify(Algorithm::Delete, &[1, 2, 3], b"m", b"s"),
            Err(CryptoError::UnsupportedAlgorithm(0))
        ));
    }

    #[test]
    fn malformed_key_errors() {
        assert!(matches!(
            verify(Algorithm::RsaSha256, &[], b"m", b"s"),
            Err(CryptoError::MalformedKey(_))
        ));
    }
}
