//! RSA key generation and PKCS#1 v1.5 signatures (RFC 8017, RFC 3110).
//!
//! DNSSEC's RSA algorithms (RSASHA1 = 5, RSASHA256 = 8, RSASHA512 = 10) all
//! use RSASSA-PKCS1-v1_5 over the canonical RRset data. The public key is
//! carried in DNSKEY RDATA in the RFC 3110 wire format: a 1- or 3-byte
//! exponent length, the exponent, then the modulus.
//!
//! Key sizes: the simulation defaults to 512-bit keys so that signing whole
//! synthetic TLD populations stays fast; the API supports any size ≥ 256
//! bits and the benches exercise 1024/2048.

use rand::RngCore;

use crate::bigint::BigUint;
use crate::sha::{sha1, sha256, sha512};
use crate::CryptoError;

/// Hash function used inside an RSA PKCS#1 v1.5 signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RsaHash {
    /// SHA-1 (DNSSEC algorithm 5; legacy).
    Sha1,
    /// SHA-256 (DNSSEC algorithm 8; the common choice).
    Sha256,
    /// SHA-512 (DNSSEC algorithm 10).
    Sha512,
}

impl RsaHash {
    /// ASN.1 DER `DigestInfo` prefix for this hash (RFC 8017 §9.2 note 1).
    fn digest_info_prefix(self) -> &'static [u8] {
        match self {
            RsaHash::Sha1 => &[
                0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e, 0x03, 0x02, 0x1a, 0x05, 0x00,
                0x04, 0x14,
            ],
            RsaHash::Sha256 => &[
                0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04,
                0x02, 0x01, 0x05, 0x00, 0x04, 0x20,
            ],
            RsaHash::Sha512 => &[
                0x30, 0x51, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04,
                0x02, 0x03, 0x05, 0x00, 0x04, 0x40,
            ],
        }
    }

    fn hash(self, data: &[u8]) -> Vec<u8> {
        match self {
            RsaHash::Sha1 => sha1(data).to_vec(),
            RsaHash::Sha256 => sha256(data).to_vec(),
            RsaHash::Sha512 => sha512(data).to_vec(),
        }
    }
}

/// An RSA public key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RsaPublicKey {
    /// Public exponent (typically 65537).
    pub e: BigUint,
    /// Modulus n = p·q.
    pub n: BigUint,
}

impl RsaPublicKey {
    /// Modulus size in bytes; signatures are exactly this long.
    pub fn modulus_len(&self) -> usize {
        self.n.to_bytes_be().len()
    }

    /// Encodes in the RFC 3110 DNSKEY public-key wire format.
    pub fn to_dnskey_wire(&self) -> Vec<u8> {
        let exp = self.e.to_bytes_be();
        let mut out = Vec::with_capacity(4 + exp.len() + self.modulus_len());
        if exp.len() < 256 {
            out.push(exp.len() as u8);
        } else {
            out.push(0);
            out.extend_from_slice(&(exp.len() as u16).to_be_bytes());
        }
        out.extend_from_slice(&exp);
        out.extend_from_slice(&self.n.to_bytes_be());
        out
    }

    /// Decodes the RFC 3110 DNSKEY public-key wire format.
    pub fn from_dnskey_wire(data: &[u8]) -> Result<Self, CryptoError> {
        if data.is_empty() {
            return Err(CryptoError::MalformedKey("empty RSA key material"));
        }
        let (exp_len, off) = if data[0] != 0 {
            (data[0] as usize, 1)
        } else {
            if data.len() < 3 {
                return Err(CryptoError::MalformedKey("truncated RSA exponent length"));
            }
            (u16::from_be_bytes([data[1], data[2]]) as usize, 3)
        };
        if data.len() < off + exp_len + 1 {
            return Err(CryptoError::MalformedKey("truncated RSA key material"));
        }
        let e = BigUint::from_bytes_be(&data[off..off + exp_len]);
        let n = BigUint::from_bytes_be(&data[off + exp_len..]);
        if e.is_zero() || n.is_zero() {
            return Err(CryptoError::MalformedKey("zero RSA exponent or modulus"));
        }
        Ok(RsaPublicKey { e, n })
    }

    /// Verifies an RSASSA-PKCS1-v1_5 signature over `message`.
    pub fn verify(&self, hash: RsaHash, message: &[u8], signature: &[u8]) -> bool {
        let k = self.modulus_len();
        if signature.len() != k {
            return false;
        }
        let s = BigUint::from_bytes_be(signature);
        if s >= self.n {
            return false;
        }
        let em = s.modpow(&self.e, &self.n).to_bytes_be_padded(k);
        em == emsa_pkcs1_v15(hash, message, k)
    }
}

/// An RSA private key (with the public half embedded).
#[derive(Debug, Clone)]
pub struct RsaPrivateKey {
    /// Public half.
    pub public: RsaPublicKey,
    /// Private exponent d = e⁻¹ mod λ(n).
    d: BigUint,
}

impl RsaPrivateKey {
    /// Generates a fresh key with a modulus of `bits` bits.
    ///
    /// Uses e = 65537 and rejects prime pairs where gcd(e, λ) ≠ 1. Miller–
    /// Rabin rounds are fixed at 24 (error < 4⁻²⁴ per composite accepted).
    pub fn generate(rng: &mut dyn RngCore, bits: usize) -> Self {
        assert!(bits >= 256, "RSA modulus below 256 bits is not supported");
        let e = BigUint::from_u64(65537);
        loop {
            let p = BigUint::random_prime(rng, bits / 2, 24);
            let q = BigUint::random_prime(rng, bits - bits / 2, 24);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            let lambda = p.sub(&BigUint::one()).mul(&q.sub(&BigUint::one()));
            let Some(d) = e.modinv(&lambda) else {
                continue;
            };
            return RsaPrivateKey {
                public: RsaPublicKey { e, n },
                d,
            };
        }
    }

    /// Signs `message` with RSASSA-PKCS1-v1_5.
    pub fn sign(&self, hash: RsaHash, message: &[u8]) -> Vec<u8> {
        let k = self.public.modulus_len();
        let em = emsa_pkcs1_v15(hash, message, k);
        let m = BigUint::from_bytes_be(&em);
        m.modpow(&self.d, &self.public.n).to_bytes_be_padded(k)
    }
}

/// EMSA-PKCS1-v1_5 encoding: `00 01 FF…FF 00 || DigestInfo || H(m)`.
fn emsa_pkcs1_v15(hash: RsaHash, message: &[u8], k: usize) -> Vec<u8> {
    let digest = hash.hash(message);
    let prefix = hash.digest_info_prefix();
    let t_len = prefix.len() + digest.len();
    assert!(
        k >= t_len + 11,
        "modulus too small for {hash:?} PKCS#1 v1.5 encoding"
    );
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(prefix);
    em.extend_from_slice(&digest);
    em
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_key() -> RsaPrivateKey {
        let mut rng = StdRng::seed_from_u64(0xD5EC);
        RsaPrivateKey::generate(&mut rng, 512)
    }

    #[test]
    fn sign_verify_round_trip_all_hashes() {
        let key = test_key();
        for hash in [RsaHash::Sha1, RsaHash::Sha256] {
            let sig = key.sign(hash, b"the quick brown fox");
            assert_eq!(sig.len(), key.public.modulus_len());
            assert!(key.public.verify(hash, b"the quick brown fox", &sig));
        }
        // SHA-512 DigestInfo needs a bigger modulus (k >= 64+19+11).
        let mut rng = StdRng::seed_from_u64(9);
        let big = RsaPrivateKey::generate(&mut rng, 1024);
        let sig = big.sign(RsaHash::Sha512, b"msg");
        assert!(big.public.verify(RsaHash::Sha512, b"msg", &sig));
    }

    #[test]
    fn verify_rejects_tampered_message() {
        let key = test_key();
        let sig = key.sign(RsaHash::Sha256, b"original");
        assert!(!key.public.verify(RsaHash::Sha256, b"0riginal", &sig));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let key = test_key();
        let mut sig = key.sign(RsaHash::Sha256, b"original");
        sig[10] ^= 0x01;
        assert!(!key.public.verify(RsaHash::Sha256, b"original", &sig));
    }

    #[test]
    fn verify_rejects_wrong_length_signature() {
        let key = test_key();
        let sig = key.sign(RsaHash::Sha256, b"m");
        assert!(!key.public.verify(RsaHash::Sha256, b"m", &sig[1..]));
        let mut long = sig.clone();
        long.push(0);
        assert!(!key.public.verify(RsaHash::Sha256, b"m", &long));
    }

    #[test]
    fn verify_rejects_wrong_hash() {
        let key = test_key();
        let sig = key.sign(RsaHash::Sha256, b"m");
        assert!(!key.public.verify(RsaHash::Sha1, b"m", &sig));
    }

    #[test]
    fn verify_rejects_signature_ge_modulus() {
        let key = test_key();
        let k = key.public.modulus_len();
        let too_big = key.public.n.to_bytes_be_padded(k);
        assert!(!key.public.verify(RsaHash::Sha256, b"m", &too_big));
    }

    #[test]
    fn dnskey_wire_round_trip() {
        let key = test_key();
        let wire = key.public.to_dnskey_wire();
        let back = RsaPublicKey::from_dnskey_wire(&wire).unwrap();
        assert_eq!(back, key.public);
        // e = 65537 fits in 3 bytes with a 1-byte length prefix.
        assert_eq!(wire[0], 3);
    }

    #[test]
    fn dnskey_wire_rejects_garbage() {
        assert!(RsaPublicKey::from_dnskey_wire(&[]).is_err());
        assert!(RsaPublicKey::from_dnskey_wire(&[0]).is_err());
        assert!(RsaPublicKey::from_dnskey_wire(&[5, 1, 2]).is_err());
        // Zero exponent.
        assert!(RsaPublicKey::from_dnskey_wire(&[1, 0, 1, 2, 3]).is_err());
    }

    #[test]
    fn dnskey_wire_long_exponent_form() {
        // A 256-byte exponent forces the 3-byte length form.
        let mut e_bytes = vec![1u8];
        e_bytes.extend(std::iter::repeat_n(0, 255));
        e_bytes[255] = 1;
        let key = RsaPublicKey {
            e: BigUint::from_bytes_be(&e_bytes),
            n: BigUint::from_u64(u64::MAX),
        };
        let wire = key.to_dnskey_wire();
        assert_eq!(wire[0], 0);
        let back = RsaPublicKey::from_dnskey_wire(&wire).unwrap();
        assert_eq!(back, key);
    }

    #[test]
    fn distinct_keys_do_not_cross_verify() {
        let mut rng = StdRng::seed_from_u64(1);
        let k1 = RsaPrivateKey::generate(&mut rng, 512);
        let k2 = RsaPrivateKey::generate(&mut rng, 512);
        assert_ne!(k1.public, k2.public);
        let sig = k1.sign(RsaHash::Sha256, b"m");
        assert!(!k2.public.verify(RsaHash::Sha256, b"m", &sig));
    }

    #[test]
    fn deterministic_generation_from_seed() {
        let mut a = StdRng::seed_from_u64(77);
        let mut b = StdRng::seed_from_u64(77);
        let k1 = RsaPrivateKey::generate(&mut a, 512);
        let k2 = RsaPrivateKey::generate(&mut b, 512);
        assert_eq!(k1.public, k2.public);
    }
}
