//! SHA-1 and SHA-2 family hash functions, implemented from FIPS 180-4.
//!
//! DNSSEC needs these for two purposes:
//! - DS records are digests of DNSKEY RDATA (SHA-1 = digest type 1,
//!   SHA-256 = 2, SHA-384 = 4, per RFC 4509 / RFC 6605);
//! - RSA signatures (RSASHA1 / RSASHA256 / RSASHA512) hash the canonical
//!   RRset before the PKCS#1 v1.5 padding is applied.
//!
//! All hashers implement the streaming [`Hasher`] trait; one-shot helpers
//! ([`sha1`], [`sha256`], [`sha384`], [`sha512`]) are provided for callers
//! that have the whole message in memory (the common DNSSEC case).

/// A streaming hash function.
pub trait Hasher {
    /// Absorbs `data` into the hash state.
    fn update(&mut self, data: &[u8]);
    /// Consumes the hasher and returns the digest.
    fn finalize(self) -> Vec<u8>;
    /// Digest length in bytes.
    fn output_len(&self) -> usize;
}

/// One-shot SHA-1 (20-byte digest). Retained for DS digest type 1
/// compatibility; new deployments should prefer SHA-256.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.digest()
}

/// One-shot SHA-256 (32-byte digest).
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.digest()
}

/// One-shot SHA-384 (48-byte digest).
pub fn sha384(data: &[u8]) -> [u8; 48] {
    let mut h = Sha384::new();
    h.update(data);
    h.digest()
}

/// One-shot SHA-512 (64-byte digest).
pub fn sha512(data: &[u8]) -> [u8; 64] {
    let mut h = Sha512::new();
    h.update(data);
    h.digest()
}

// ---------------------------------------------------------------- SHA-1 --

/// SHA-1 streaming state (FIPS 180-4 §6.1).
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Fresh SHA-1 state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let t = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = t;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }

    /// Finalizes and returns the 20-byte digest.
    pub fn digest(&mut self) -> [u8; 20] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update_bytes(&[0x80]);
        while self.buf_len != 56 {
            self.update_bytes(&[0]);
        }
        self.update_bytes(&bit_len.to_be_bytes());
        let mut out = [0u8; 20];
        for (i, s) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&s.to_be_bytes());
        }
        out
    }

    fn update_bytes(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
    }
}

impl Hasher for Sha1 {
    fn update(&mut self, data: &[u8]) {
        self.total_len += data.len() as u64;
        self.update_bytes(data);
    }

    fn finalize(mut self) -> Vec<u8> {
        self.digest().to_vec()
    }

    fn output_len(&self) -> usize {
        20
    }
}

// -------------------------------------------------------------- SHA-256 --

const K256: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 streaming state (FIPS 180-4 §6.2).
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh SHA-256 state.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K256[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }

    /// Finalizes and returns the 32-byte digest.
    pub fn digest(&mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update_bytes(&[0x80]);
        while self.buf_len != 56 {
            self.update_bytes(&[0]);
        }
        self.update_bytes(&bit_len.to_be_bytes());
        let mut out = [0u8; 32];
        for (i, s) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&s.to_be_bytes());
        }
        out
    }

    fn update_bytes(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
    }
}

impl Hasher for Sha256 {
    fn update(&mut self, data: &[u8]) {
        self.total_len += data.len() as u64;
        self.update_bytes(data);
    }

    fn finalize(mut self) -> Vec<u8> {
        self.digest().to_vec()
    }

    fn output_len(&self) -> usize {
        32
    }
}

// ------------------------------------------------------- SHA-384 / 512 --

const K512: [u64; 80] = [
    0x428a2f98d728ae22, 0x7137449123ef65cd, 0xb5c0fbcfec4d3b2f, 0xe9b5dba58189dbbc,
    0x3956c25bf348b538, 0x59f111f1b605d019, 0x923f82a4af194f9b, 0xab1c5ed5da6d8118,
    0xd807aa98a3030242, 0x12835b0145706fbe, 0x243185be4ee4b28c, 0x550c7dc3d5ffb4e2,
    0x72be5d74f27b896f, 0x80deb1fe3b1696b1, 0x9bdc06a725c71235, 0xc19bf174cf692694,
    0xe49b69c19ef14ad2, 0xefbe4786384f25e3, 0x0fc19dc68b8cd5b5, 0x240ca1cc77ac9c65,
    0x2de92c6f592b0275, 0x4a7484aa6ea6e483, 0x5cb0a9dcbd41fbd4, 0x76f988da831153b5,
    0x983e5152ee66dfab, 0xa831c66d2db43210, 0xb00327c898fb213f, 0xbf597fc7beef0ee4,
    0xc6e00bf33da88fc2, 0xd5a79147930aa725, 0x06ca6351e003826f, 0x142929670a0e6e70,
    0x27b70a8546d22ffc, 0x2e1b21385c26c926, 0x4d2c6dfc5ac42aed, 0x53380d139d95b3df,
    0x650a73548baf63de, 0x766a0abb3c77b2a8, 0x81c2c92e47edaee6, 0x92722c851482353b,
    0xa2bfe8a14cf10364, 0xa81a664bbc423001, 0xc24b8b70d0f89791, 0xc76c51a30654be30,
    0xd192e819d6ef5218, 0xd69906245565a910, 0xf40e35855771202a, 0x106aa07032bbd1b8,
    0x19a4c116b8d2d0c8, 0x1e376c085141ab53, 0x2748774cdf8eeb99, 0x34b0bcb5e19b48a8,
    0x391c0cb3c5c95a63, 0x4ed8aa4ae3418acb, 0x5b9cca4f7763e373, 0x682e6ff3d6b2b8a3,
    0x748f82ee5defb2fc, 0x78a5636f43172f60, 0x84c87814a1f0ab72, 0x8cc702081a6439ec,
    0x90befffa23631e28, 0xa4506cebde82bde9, 0xbef9a3f7b2c67915, 0xc67178f2e372532b,
    0xca273eceea26619c, 0xd186b8c721c0c207, 0xeada7dd6cde0eb1e, 0xf57d4f7fee6ed178,
    0x06f067aa72176fba, 0x0a637dc5a2c898a6, 0x113f9804bef90dae, 0x1b710b35131c471b,
    0x28db77f523047d84, 0x32caab7b40c72493, 0x3c9ebe0a15c9bebc, 0x431d67c49c100d4c,
    0x4cc5d4becb3e42b6, 0x597f299cfc657e2a, 0x5fcb6fab3ad6faec, 0x6c44198c4a475817,
];

/// Shared SHA-512 engine; SHA-384 differs only in IV and truncation.
struct Sha512Engine {
    state: [u64; 8],
    buf: [u8; 128],
    buf_len: usize,
    total_len: u128,
}

impl Sha512Engine {
    fn new(iv: [u64; 8]) -> Self {
        Sha512Engine {
            state: iv,
            buf: [0; 128],
            buf_len: 0,
            total_len: 0,
        }
    }

    fn compress(&mut self, block: &[u8; 128]) {
        let mut w = [0u64; 80];
        for (i, chunk) in block.chunks_exact(8).enumerate() {
            w[i] = u64::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..80 {
            let s0 = w[i - 15].rotate_right(1) ^ w[i - 15].rotate_right(8) ^ (w[i - 15] >> 7);
            let s1 = w[i - 2].rotate_right(19) ^ w[i - 2].rotate_right(61) ^ (w[i - 2] >> 6);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..80 {
            let s1 = e.rotate_right(14) ^ e.rotate_right(18) ^ e.rotate_right(41);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K512[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(28) ^ a.rotate_right(34) ^ a.rotate_right(39);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }

    fn update(&mut self, data: &[u8]) {
        self.total_len += data.len() as u128;
        self.update_bytes(data);
    }

    fn update_bytes(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            let take = (128 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 128 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
    }

    fn digest(&mut self) -> [u8; 64] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update_bytes(&[0x80]);
        while self.buf_len != 112 {
            self.update_bytes(&[0]);
        }
        self.update_bytes(&bit_len.to_be_bytes());
        let mut out = [0u8; 64];
        for (i, s) in self.state.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&s.to_be_bytes());
        }
        out
    }
}

/// SHA-384 streaming state (FIPS 180-4 §6.5).
pub struct Sha384(Sha512Engine);

impl Default for Sha384 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha384 {
    /// Fresh SHA-384 state.
    pub fn new() -> Self {
        Sha384(Sha512Engine::new([
            0xcbbb9d5dc1059ed8, 0x629a292a367cd507, 0x9159015a3070dd17, 0x152fecd8f70e5939,
            0x67332667ffc00b31, 0x8eb44a8768581511, 0xdb0c2e0d64f98fa7, 0x47b5481dbefa4fa4,
        ]))
    }

    /// Finalizes and returns the 48-byte digest.
    pub fn digest(&mut self) -> [u8; 48] {
        let full = self.0.digest();
        let mut out = [0u8; 48];
        out.copy_from_slice(&full[..48]);
        out
    }
}

impl Hasher for Sha384 {
    fn update(&mut self, data: &[u8]) {
        self.0.update(data);
    }

    fn finalize(mut self) -> Vec<u8> {
        self.digest().to_vec()
    }

    fn output_len(&self) -> usize {
        48
    }
}

/// SHA-512 streaming state (FIPS 180-4 §6.4).
pub struct Sha512(Sha512Engine);

impl Default for Sha512 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha512 {
    /// Fresh SHA-512 state.
    pub fn new() -> Self {
        Sha512(Sha512Engine::new([
            0x6a09e667f3bcc908, 0xbb67ae8584caa73b, 0x3c6ef372fe94f82b, 0xa54ff53a5f1d36f1,
            0x510e527fade682d1, 0x9b05688c2b3e6c1f, 0x1f83d9abfb41bd6b, 0x5be0cd19137e2179,
        ]))
    }

    /// Finalizes and returns the 64-byte digest.
    pub fn digest(&mut self) -> [u8; 64] {
        self.0.digest()
    }
}

impl Hasher for Sha512 {
    fn update(&mut self, data: &[u8]) {
        self.0.update(data);
    }

    fn finalize(mut self) -> Vec<u8> {
        self.digest().to_vec()
    }

    fn output_len(&self) -> usize {
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-4 / NIST CAVP known-answer vectors.

    #[test]
    fn sha1_vectors() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn sha256_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha384_vectors() {
        assert_eq!(
            hex(&sha384(b"abc")),
            "cb00753f45a35e8bb5a03d699ac65007272c32ab0eded1631a8b605a43ff5bed\
             8086072ba1e7cc2358baeca134c825a7"
        );
        assert_eq!(
            hex(&sha384(b"")),
            "38b060a751ac96384cd9327eb1b1e36a21fdb71114be07434c0cc7bf63f6e1da\
             274edebfe76f65fbd51ad2f14898b95b"
        );
    }

    #[test]
    fn sha512_vectors() {
        assert_eq!(
            hex(&sha512(b"abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
             2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
        );
        assert_eq!(
            hex(&sha512(b"")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce\
             47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
        );
    }

    #[test]
    fn million_a_vector() {
        // FIPS 180-4 long-message vector, exercised through the streaming API.
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.digest()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_block_boundaries() {
        // Exercise every split position around the 64-byte block boundary.
        let data: Vec<u8> = (0..200u8).collect();
        let expect = sha256(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 128, 199, 200] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.digest(), expect, "split at {split}");
        }
    }

    #[test]
    fn streaming_sha512_matches_oneshot() {
        let data: Vec<u8> = (0..255u8).cycle().take(777).collect();
        let expect = sha512(&data);
        let mut h = Sha512::new();
        for chunk in data.chunks(13) {
            h.update(chunk);
        }
        assert_eq!(h.digest(), expect);
    }

    #[test]
    fn output_lengths() {
        assert_eq!(Sha1::new().output_len(), 20);
        assert_eq!(Sha256::new().output_len(), 32);
        assert_eq!(Sha384::new().output_len(), 48);
        assert_eq!(Sha512::new().output_len(), 64);
        assert_eq!(Sha384::new().finalize().len(), 48);
    }
}
