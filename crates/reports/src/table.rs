//! A minimal monospace table builder for terminal reports.

/// A left-aligned monospace table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Appends one row of string slices.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with a header separator line.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| display_width(h)).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(display_width(cell));
            }
        }
        let mut out = String::new();
        render_row(&mut out, &self.header, &widths);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        render_row(&mut out, &sep, &widths);
        for row in &self.rows {
            render_row(&mut out, row, &widths);
        }
        out
    }
}

fn render_row(out: &mut String, cells: &[String], widths: &[usize]) {
    for (i, width) in widths.iter().enumerate() {
        let cell = cells.get(i).map(String::as_str).unwrap_or("");
        out.push_str(cell);
        let pad = width.saturating_sub(display_width(cell));
        out.extend(std::iter::repeat_n(' ', pad));
        if i + 1 != widths.len() {
            out.push_str("  ");
        }
    }
    // Trim trailing spaces for clean diffs.
    while out.ends_with(' ') {
        out.pop();
    }
    out.push('\n');
}

/// Character count (the glyphs used are single-width).
fn display_width(s: &str) -> usize {
    s.chars().count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "count"]);
        t.row_str(&["a", "1"]);
        t.row_str(&["longer-name", "23"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        // All data lines align the second column.
        let col = lines[2].find('1').unwrap();
        assert_eq!(lines[3].find("23").unwrap(), col);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row_str(&["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let out = t.render();
        assert!(out.lines().count() == 3);
    }

    #[test]
    fn unicode_glyphs_count_once() {
        assert_eq!(display_width("●▲✗"), 3);
    }
}
