//! # dsec-reports — tables, figures, and paper-vs-measured records
//!
//! - [`table`]: a monospace table builder;
//! - [`render`]: one renderer per paper artifact (Tables 1–4, Figures
//!   3–8) taking scanner snapshots / stores and probe reports;
//! - [`paper`]: checkpoint records comparing measured values against the
//!   paper's published numbers (the source of EXPERIMENTS.md).

#![warn(missing_docs)]

pub mod paper;
pub mod render;
pub mod table;

pub use paper::{Checkpoint, ExperimentResult};
pub use render::{
    figure3, figure8, figure_series, rollover_lifecycle, study_summary, table1, table2, table3,
    table4, user_impact, GTLDS,
};
pub use table::Table;
