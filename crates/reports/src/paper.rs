//! Paper-vs-measured comparisons: each experiment produces a set of
//! checkpoints (the numbers the paper reports), and the harness records
//! what the reproduction measured next to them. EXPERIMENTS.md is
//! generated from these.

use std::fmt;

/// One checkpoint: a quantity the paper reports for a table/figure.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// What is being measured ("% of .com with DNSKEY").
    pub metric: String,
    /// The paper's value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Acceptable relative deviation for the *shape* to count as
    /// reproduced (absolute tolerance for values near zero).
    pub tolerance: f64,
}

impl Checkpoint {
    /// Builds a checkpoint with a relative tolerance.
    pub fn new(metric: impl Into<String>, paper: f64, measured: f64, tolerance: f64) -> Self {
        Checkpoint {
            metric: metric.into(),
            paper,
            measured,
            tolerance,
        }
    }

    /// Whether the measured value is within tolerance of the paper's.
    pub fn holds(&self) -> bool {
        let scale = self.paper.abs().max(1e-9);
        let rel = (self.measured - self.paper).abs() / scale;
        // Near-zero paper values use the tolerance absolutely.
        if self.paper.abs() < 1e-6 {
            return self.measured.abs() <= self.tolerance;
        }
        rel <= self.tolerance
    }
}

/// One experiment's comparison record.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id (DESIGN.md's index: "E-T1", "E-F3", …).
    pub id: &'static str,
    /// Human title ("Table 1: dataset overview").
    pub title: &'static str,
    /// Checkpoints.
    pub checkpoints: Vec<Checkpoint>,
    /// The rendered artifact (table/series text).
    pub artifact: String,
}

impl ExperimentResult {
    /// A new empty result.
    pub fn new(id: &'static str, title: &'static str) -> Self {
        ExperimentResult {
            id,
            title,
            checkpoints: Vec::new(),
            artifact: String::new(),
        }
    }

    /// Adds a checkpoint.
    pub fn check(
        &mut self,
        metric: impl Into<String>,
        paper: f64,
        measured: f64,
        tolerance: f64,
    ) -> &mut Self {
        self.checkpoints
            .push(Checkpoint::new(metric, paper, measured, tolerance));
        self
    }

    /// All checkpoints within tolerance?
    pub fn reproduced(&self) -> bool {
        self.checkpoints.iter().all(Checkpoint::holds)
    }

    /// Markdown block for EXPERIMENTS.md.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        out.push_str("| metric | paper | measured | within tol. |\n");
        out.push_str("|---|---:|---:|:--:|\n");
        for c in &self.checkpoints {
            out.push_str(&format!(
                "| {} | {:.4} | {:.4} | {} |\n",
                c.metric,
                c.paper,
                c.measured,
                if c.holds() { "yes" } else { "NO" }
            ));
        }
        if !self.artifact.is_empty() {
            out.push_str("\n```text\n");
            out.push_str(&self.artifact);
            if !self.artifact.ends_with('\n') {
                out.push('\n');
            }
            out.push_str("```\n");
        }
        out
    }
}

impl fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] {} — {}/{} checkpoints hold",
            self.id,
            self.title,
            self.checkpoints.iter().filter(|c| c.holds()).count(),
            self.checkpoints.len()
        )?;
        for c in &self.checkpoints {
            writeln!(
                f,
                "  {:<52} paper {:>10.3}  measured {:>10.3}  {}",
                c.metric,
                c.paper,
                c.measured,
                if c.holds() { "ok" } else { "DEVIATES" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_tolerance() {
        assert!(Checkpoint::new("x", 100.0, 110.0, 0.15).holds());
        assert!(!Checkpoint::new("x", 100.0, 150.0, 0.15).holds());
        assert!(Checkpoint::new("x", 0.7, 0.75, 0.10).holds());
    }

    #[test]
    fn absolute_tolerance_near_zero() {
        assert!(Checkpoint::new("x", 0.0, 0.005, 0.01).holds());
        assert!(!Checkpoint::new("x", 0.0, 0.02, 0.01).holds());
    }

    #[test]
    fn result_aggregation_and_markdown() {
        let mut r = ExperimentResult::new("E-T1", "Table 1");
        r.check("com dnskey %", 0.7, 0.68, 0.25);
        r.check("nl dnskey %", 51.6, 49.0, 0.15);
        assert!(r.reproduced());
        let md = r.to_markdown();
        assert!(md.contains("## E-T1"));
        assert!(md.contains("| com dnskey % |"));
        let text = r.to_string();
        assert!(text.contains("2/2 checkpoints hold"));
    }

    #[test]
    fn failing_checkpoint_flagged() {
        let mut r = ExperimentResult::new("E-X", "X");
        r.check("off", 10.0, 99.0, 0.1);
        assert!(!r.reproduced());
        assert!(r.to_markdown().contains("NO"));
        assert!(r.to_string().contains("DEVIATES"));
    }
}
