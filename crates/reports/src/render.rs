//! Renderers that reproduce each of the paper's tables and figures from
//! measurement outputs (snapshots, longitudinal stores, probe reports).

use dsec_ecosystem::{Tld, World, ALL_TLDS};
use dsec_probe::{DsChannel, Finding, ProbeReport};
use dsec_scanner::{coverage_curve, CacheStats, LongitudinalStore, Metric, Snapshot};
use dsec_traffic::TrafficReport;

use crate::table::Table;

/// The gTLD subset used throughout the paper's Figures 3–8.
pub const GTLDS: [Tld; 3] = [Tld::Com, Tld::Net, Tld::Org];

/// Table 1: dataset overview — per-TLD domain counts and % with DNSKEY.
pub fn table1(snapshot: &Snapshot, scale: u64) -> String {
    let mut t = Table::new(&["TLD", "Domains (scaled)", "Domains (x scale)", "with DNSKEY"]);
    for tld in ALL_TLDS {
        let stats = snapshot.tld_totals(tld);
        let pct = if stats.domains > 0 {
            100.0 * stats.with_dnskey as f64 / stats.domains as f64
        } else {
            0.0
        };
        t.row(&[
            tld.to_string(),
            stats.domains.to_string(),
            (stats.domains * scale).to_string(),
            format!("{pct:.1}%"),
        ]);
    }
    t.render()
}

/// Table 2: the probe matrix for the popular registrars.
pub fn table2(reports: &[ProbeReport], snapshot: Option<&Snapshot>) -> String {
    let mut t = Table::new(&[
        "Registrar",
        "NS domain",
        "Domains",
        "w/DNSKEY",
        "default",
        "opt-in",
        "paid",
        "support",
        "DS web",
        "DS email",
        "DS other",
        "val DNSKEY",
        "val email",
    ]);
    for report in reports {
        let (domains, with_dnskey) = snapshot
            .map(|s| {
                let op = format!("{}.", report.ns_domain.trim_end_matches('.'));
                let stats = s.operator_totals(&op, &ALL_TLDS);
                (stats.domains.to_string(), stats.with_dnskey.to_string())
            })
            .unwrap_or_default();
        let chan = |want: DsChannel| {
            if report.ds_channel == Some(want) {
                Finding::Yes.glyph()
            } else if report.ds_channel.is_some() {
                Finding::NotApplicable.glyph()
            } else {
                Finding::No.glyph()
            }
        };
        let other = match report.ds_channel {
            Some(DsChannel::Chat) => "chat",
            Some(DsChannel::Ticket) => "ticket",
            Some(DsChannel::FetchDnskey) => "fetch",
            _ => Finding::NotApplicable.glyph(),
        };
        t.row(&[
            report.registrar.clone(),
            report.ns_domain.clone(),
            domains,
            with_dnskey,
            report.dnssec_default.glyph().into(),
            report.dnssec_optin.glyph().into(),
            report
                .dnssec_paid_cents
                .map(|c| format!("${}.{:02}/yr", c / 100, c % 100))
                .unwrap_or_else(|| Finding::No.glyph().into()),
            report.operator_support.glyph().into(),
            chan(DsChannel::Web).into(),
            chan(DsChannel::Email).into(),
            other.into(),
            report.validates_ds.glyph().into(),
            report.verifies_email.glyph().into(),
        ]);
    }
    t.render()
}

/// Table 3: the DNSSEC-heavy registrars, with per-TLD DS publication.
pub fn table3(reports: &[ProbeReport], snapshot: Option<&Snapshot>) -> String {
    let mut t = Table::new(&[
        "Registrar",
        "NS domain",
        "w/DNSKEY (gTLD)",
        "default",
        "publish DNSKEY",
        "publish DS",
        "ext support",
        "DS channel",
        "val DNSKEY",
        "val email",
    ]);
    for report in reports {
        let with_dnskey = snapshot
            .map(|s| {
                let op = format!("{}.", report.ns_domain.trim_end_matches('.'));
                s.operator_totals(&op, &GTLDS).with_dnskey.to_string()
            })
            .unwrap_or_default();
        // DS publication mark: ● everywhere, ▲ some TLDs, ✗ none.
        let published: Vec<bool> = report.publishes_ds.values().copied().collect();
        let ds_mark = if published.is_empty() {
            Finding::NotApplicable
        } else if published.iter().all(|&v| v) {
            Finding::Yes
        } else if published.iter().any(|&v| v) {
            Finding::Partial
        } else {
            Finding::No
        };
        let channel = match report.ds_channel {
            Some(DsChannel::Web) => "web",
            Some(DsChannel::Email) => "email",
            Some(DsChannel::Chat) => "chat",
            Some(DsChannel::Ticket) => "ticket",
            Some(DsChannel::FetchDnskey) => "fetch",
            None => Finding::No.glyph(),
        };
        t.row(&[
            report.registrar.clone(),
            report.ns_domain.clone(),
            with_dnskey,
            report.dnssec_default.glyph().into(),
            report.operator_support.glyph().into(),
            ds_mark.glyph().into(),
            report.external_support.glyph().into(),
            channel.into(),
            report.validates_ds.glyph().into(),
            report.verifies_email.glyph().into(),
        ]);
    }
    t.render()
}

/// Table 4: registrar-vs-reseller roles per TLD for the given registrars.
pub fn table4(world: &World, names: &[&str]) -> String {
    let mut header = vec!["DNS operator", "Registrar"];
    let tld_labels: Vec<String> = ALL_TLDS.iter().map(|t| t.to_string()).collect();
    header.extend(tld_labels.iter().map(String::as_str));
    let mut t = Table::new(&header);
    for name in names {
        let Some(id) = world.registrar_by_name(name) else {
            continue;
        };
        let registrar = world.registrar(id);
        let ns = world.operator(registrar.operator).ns_domain.to_string();
        let mut cells = vec![ns, registrar.name.clone()];
        for tld in ALL_TLDS {
            use dsec_ecosystem::TldRole;
            cells.push(match registrar.policy.tld(tld).role {
                TldRole::Registrar => name.to_string(),
                TldRole::ResellerVia(partner) => partner,
                TldRole::NoSupport => "No support".into(),
            });
        }
        t.row(&cells);
    }
    t.render()
}

/// The key-rollover lifecycle section: per-operator rollover style
/// census (from the always-logged lifecycle events) plus the world's
/// lifecycle counters — the Osterweil-style "who transitions how, and
/// who breaks doing it" summary.
pub fn rollover_lifecycle(world: &World) -> String {
    let census = dsec_scanner::rollover_census(world);
    let mut out = String::from("Key-rollover lifecycle\n\n");
    out.push_str(&dsec_scanner::rollover_census_table(&census));
    out.push_str(&format!(
        "\nlifecycle counters: {} prepared, {} DS swaps, {} completed, \
         {} abrupt, {} expired-signature\n",
        world.events.count("rollover_prepared"),
        world.events.count("rollover_ds_swapped"),
        world.events.count("rollover_completed"),
        world.events.count("rollover_abrupt"),
        world.events.count("signature_expired"),
    ));
    out
}

/// Figure 3: the cumulative distribution of domains over DNS operators for
/// all / partially deployed / fully deployed domains, plus the paper's
/// headline coverage statistics.
pub fn figure3(snapshot: &Snapshot) -> String {
    let mut out = String::from(
        "Figure 3: CDF of .com/.net/.org domains by DNS operator\n\
         rank  all      partial  full\n",
    );
    let all = coverage_curve(snapshot, &GTLDS, Metric::All);
    let partial = coverage_curve(snapshot, &GTLDS, Metric::Partial);
    let full = coverage_curve(snapshot, &GTLDS, Metric::Full);
    let max_len = all.len().max(partial.len()).max(full.len());
    let mut rank = 1usize;
    while rank <= max_len {
        let v = |curve: &[f64]| {
            curve
                .get((rank - 1).min(curve.len().saturating_sub(1)))
                .copied()
                .map(|x| format!("{:>6.1}%", 100.0 * x))
                .unwrap_or_else(|| "      -".into())
        };
        out.push_str(&format!(
            "{rank:>5} {} {} {}\n",
            v(&all),
            v(&partial),
            v(&full)
        ));
        // Log-ish rank spacing like the paper's log x-axis.
        rank = if rank < 10 { rank + 1 } else { rank * 2 };
    }
    out
}

/// A time-series figure (Figures 4–7): per snapshot, the % of an
/// operator's domains that are fully deployed (DNSKEY + DS), per TLD
/// group.
pub fn figure_series(
    store: &LongitudinalStore,
    title: &str,
    operator: &str,
    groups: &[(&str, Vec<Tld>)],
) -> String {
    let mut out = format!("{title}\ndate");
    for (label, _) in groups {
        out.push_str(&format!(",{label}"));
    }
    out.push('\n');
    let series_per_group: Vec<Vec<dsec_scanner::SeriesPoint>> = groups
        .iter()
        .map(|(_, tlds)| store.series(operator, tlds))
        .collect();
    if let Some(first) = series_per_group.first() {
        for (i, point) in first.iter().enumerate() {
            out.push_str(&point.date.to_string());
            for series in &series_per_group {
                out.push_str(&format!(",{:.1}", 100.0 * series[i].full_fraction()));
            }
            out.push('\n');
        }
    }
    out
}

/// Figure 8: Cloudflare — % of hosted domains with DNSKEY, and of those,
/// % with a DS at the registry.
pub fn figure8(store: &LongitudinalStore, operator: &str) -> String {
    let mut out = String::from("Figure 8\ndate,pct_with_dnskey,pct_ds_given_dnskey\n");
    for point in store.series(operator, &GTLDS) {
        out.push_str(&format!(
            "{},{:.2},{:.1}\n",
            point.date,
            100.0 * point.dnskey_fraction(),
            100.0 * point.ds_given_dnskey()
        ));
    }
    out
}

/// The "user impact" section: what the registrar-driven deployment gaps
/// mean for actual query traffic. Contrasts the *query-weighted*
/// protection rate (fraction of user queries answered with a validated
/// chain) against the *domain-weighted* deployment rate the rest of the
/// study measures, with latency percentiles and the operators whose
/// query head decides the difference.
pub fn user_impact(report: &TrafficReport, snapshot: &Snapshot) -> String {
    let mut out = String::from("User impact (query-weighted view)\n");
    let total = report.total.max(1) as f64;
    out.push_str(&format!(
        "queries      : {} over {} threads (seed {:#x})\n",
        report.total, report.threads, report.seed
    ));
    out.push_str(&format!(
        "outcomes     : {:.1}% secure, {:.1}% insecure, {} bogus, {} servfail\n",
        100.0 * report.outcomes.secure as f64 / total,
        100.0 * report.outcomes.insecure as f64 / total,
        report.outcomes.bogus,
        report.outcomes.servfail,
    ));

    let domains: u64 = snapshot.cells.values().map(|s| s.domains).sum();
    let deployed: u64 = snapshot.cells.values().map(|s| s.fully_deployed).sum();
    let domain_weighted = if domains > 0 {
        deployed as f64 / domains as f64
    } else {
        0.0
    };
    out.push_str(&format!(
        "protection   : {:.1}% of queries validated Secure vs {:.1}% of domains fully deployed\n",
        100.0 * report.protection_rate(),
        100.0 * domain_weighted,
    ));
    out.push_str(&format!(
        "latency      : p50 {} ms, p90 {} ms, p99 {} ms, p999 {} ms (mean {:.1} ms)\n",
        report.histogram.p50(),
        report.histogram.p90(),
        report.histogram.p99(),
        report.histogram.p999(),
        report.histogram.mean_ms(),
    ));
    out.push_str(&format!(
        "cache        : {:.1}% hit rate ({} hits / {} misses, {} entries)\n",
        100.0 * report.cache_hit_rate(),
        report.resolver.cache_hits,
        report.resolver.cache_misses,
        report.cache_entries,
    ));

    // Per-operator domain totals across TLD cells, for the share contrast.
    let mut domain_share: std::collections::BTreeMap<&str, u64> =
        std::collections::BTreeMap::new();
    for ((operator, _), stats) in &snapshot.cells {
        *domain_share.entry(operator.as_str()).or_insert(0) += stats.domains;
    }

    let mut top: Vec<(&String, u64)> = report
        .by_operator
        .iter()
        .map(|(operator, counts)| (operator, counts.total()))
        .collect();
    top.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));

    let mut t = Table::new(&["Operator", "Query share", "Domain share", "Secure queries"]);
    for (operator, queries) in top.iter().take(10) {
        let counts = &report.by_operator[*operator];
        let secure_pct = if counts.total() > 0 {
            100.0 * counts.secure as f64 / counts.total() as f64
        } else {
            0.0
        };
        let dshare = if domains > 0 {
            100.0 * domain_share.get(operator.as_str()).copied().unwrap_or(0) as f64
                / domains as f64
        } else {
            0.0
        };
        t.row(&[
            (*operator).clone(),
            format!("{:.1}%", 100.0 * *queries as f64 / total),
            format!("{dshare:.1}%"),
            format!("{secure_pct:.1}%"),
        ]);
    }
    out.push('\n');
    out.push_str(&t.render());
    out
}

/// One-paragraph study summary: campaign window, population, experiment
/// score, scan-cache effectiveness, and (when the traffic plane ran) the
/// user-traffic line with the resolver-cache counters.
pub fn study_summary(
    store: &LongitudinalStore,
    cache: &CacheStats,
    traffic: Option<&TrafficReport>,
    reproduced: usize,
    experiments: usize,
) -> String {
    let mut out = String::new();
    let snapshots = store.snapshots();
    match (snapshots.first(), snapshots.last()) {
        (Some(first), Some(last)) => {
            out.push_str(&format!(
                "study window : {} → {} ({} snapshots)\n",
                first.date,
                last.date,
                snapshots.len()
            ));
            let domains: u64 = last.cells.values().map(|s| s.domains).sum();
            let tlds: std::collections::BTreeSet<Tld> =
                last.cells.keys().map(|(_, tld)| *tld).collect();
            out.push_str(&format!(
                "population   : {} domains across {} TLDs (final snapshot)\n",
                domains,
                tlds.len()
            ));
        }
        _ => out.push_str("study window : (no snapshots)\n"),
    }
    out.push_str(&format!(
        "experiments  : {reproduced}/{experiments} reproduced\n"
    ));
    out.push_str(&format!(
        "scan cache   : {:.1}% hit rate ({} hits / {} misses, {} entries)\n",
        100.0 * cache.hit_rate(),
        cache.hits,
        cache.misses,
        cache.entries,
    ));
    if let Some(report) = traffic {
        out.push_str(&report.summary_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsec_scanner::OperatorStats;
    use std::collections::BTreeMap;

    fn snapshot() -> Snapshot {
        let mut cells = BTreeMap::new();
        cells.insert(
            ("ovh.net.".to_string(), Tld::Com),
            OperatorStats {
                domains: 100,
                with_dnskey: 26,
                with_ds: 26,
                fully_deployed: 26,
                partially_deployed: 0,
                ..OperatorStats::default()
            },
        );
        cells.insert(
            ("loopia.se.".to_string(), Tld::Com),
            OperatorStats {
                domains: 50,
                with_dnskey: 50,
                with_ds: 0,
                fully_deployed: 0,
                partially_deployed: 50,
                ..OperatorStats::default()
            },
        );
        cells.insert(
            ("nl-zone.x.".to_string(), Tld::Nl),
            OperatorStats {
                domains: 40,
                with_dnskey: 20,
                with_ds: 20,
                fully_deployed: 20,
                partially_deployed: 0,
                ..OperatorStats::default()
            },
        );
        Snapshot {
            date: dsec_ecosystem::SimDate(0),
            cells,
        }
    }

    #[test]
    fn table1_shows_percentages() {
        let out = table1(&snapshot(), 2000);
        assert!(out.contains(".com"));
        assert!(out.contains("50.7%")); // 76/150
        assert!(out.contains("50.0%")); // nl 20/40
        assert!(out.contains("300000")); // 150 × 2000
    }

    #[test]
    fn table2_renders_reports() {
        let mut report = ProbeReport::new("OVH", "ovh.net");
        report.dnssec_optin = Finding::Yes;
        report.operator_support = Finding::Yes;
        report.ds_channel = Some(DsChannel::Web);
        report.validates_ds = Finding::Yes;
        let out = table2(&[report], Some(&snapshot()));
        assert!(out.contains("OVH"));
        assert!(out.contains("●"));
        assert!(out.contains("100")); // operator totals joined in
    }

    #[test]
    fn table3_ds_publication_marks() {
        let mut report = ProbeReport::new("Loopia", "loopia.se");
        report.operator_support = Finding::Yes;
        report.publishes_ds.insert(Tld::Se, true);
        report.publishes_ds.insert(Tld::Com, false);
        let out = table3(&[report], None);
        assert!(out.contains("▲"), "partial DS publication mark: {out}");
    }

    #[test]
    fn figure3_curves_cover_both_populations() {
        let out = figure3(&snapshot());
        assert!(out.starts_with("Figure 3"));
        // Two gTLD operators → two ranks.
        assert!(out.contains("\n    1 "));
        assert!(out.contains("100.0%"));
    }

    #[test]
    fn figure8_emits_csv() {
        let mut store = LongitudinalStore::new();
        store.record(snapshot());
        let out = figure8(&store, "ovh.net.");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[2].starts_with("2015-01-01,26.00,100.0"));
    }

    #[test]
    fn study_summary_reports_cache_line() {
        let mut store = LongitudinalStore::new();
        store.record(snapshot());
        let cache = CacheStats {
            hits: 75,
            misses: 25,
            entries: 150,
        };
        let out = study_summary(&store, &cache, None, 9, 12);
        assert!(out.contains("study window : 2015-01-01 → 2015-01-01 (1 snapshots)"));
        assert!(out.contains("experiments  : 9/12 reproduced"));
        assert!(out.contains("scan cache   : 75.0% hit rate (75 hits / 25 misses, 150 entries)"));
        assert!(!out.contains("user traffic"), "no traffic line without a report");

        let empty = study_summary(&LongitudinalStore::new(), &CacheStats::default(), None, 0, 0);
        assert!(empty.contains("(no snapshots)"));
        assert!(empty.contains("0.0% hit rate"));
    }

    #[test]
    fn study_summary_appends_the_traffic_line() {
        let mut store = LongitudinalStore::new();
        store.record(snapshot());
        let report = traffic_report();
        let out = study_summary(&store, &CacheStats::default(), Some(&report), 9, 13);
        assert!(out.contains("user traffic :"), "{out}");
        assert!(out.contains("80 hits / 20 misses"), "{out}");
    }

    fn traffic_report() -> TrafficReport {
        let mut histogram = dsec_traffic::LatencyHistogram::new();
        let mut outcomes = dsec_traffic::OutcomeCounts::default();
        for _ in 0..90 {
            histogram.record(2);
            outcomes.add(dsec_traffic::Outcome::Insecure);
        }
        for _ in 0..10 {
            histogram.record(40);
            outcomes.add(dsec_traffic::Outcome::Secure);
        }
        let mut by_operator = BTreeMap::new();
        by_operator.insert("ovh.net.".to_string(), outcomes);
        TrafficReport {
            threads: 2,
            seed: 7,
            total: 100,
            outcomes,
            by_registrar: BTreeMap::new(),
            by_operator,
            histogram,
            resolver: dsec_traffic::ResolverStatsSnapshot {
                cache_hits: 80,
                cache_misses: 20,
                ..Default::default()
            },
            cache_entries: 20,
            cache_capacity: 1_000,
            elapsed_ms: 5.0,
            sim_elapsed_ms: 280,
        }
    }

    #[test]
    fn user_impact_contrasts_query_and_domain_weighting() {
        let out = user_impact(&traffic_report(), &snapshot());
        assert!(out.contains("User impact"), "{out}");
        assert!(out.contains("10.0% of queries validated Secure"), "{out}");
        // 46/190 domains fully deployed in the fixture snapshot.
        assert!(out.contains("24.2% of domains fully deployed"), "{out}");
        // 40 ms falls in the log-linear sub-bucket [40, 44): upper bound 43.
        assert!(out.contains("p99 43 ms"), "{out}");
        assert!(out.contains("ovh.net."), "{out}");
        // ovh.net. hosts 100 of 190 fixture domains and all 100 queries.
        assert!(out.contains("100.0%"), "{out}");
        assert!(out.contains("52.6%"), "{out}");
    }

    #[test]
    fn figure_series_shapes() {
        let mut store = LongitudinalStore::new();
        store.record(snapshot());
        let out = figure_series(
            &store,
            "Figure 4 (OVH)",
            "ovh.net.",
            &[("gTLD", GTLDS.to_vec()), (".nl", vec![Tld::Nl])],
        );
        assert!(out.contains("Figure 4"));
        assert!(out.contains("2015-01-01,26.0,0.0"));
    }
}
