//! The on-path forgery arm of the attack plane: Kaminsky-style cache
//! poisoning races, scheduled like every other campaign.
//!
//! Where [`crate::AttackCampaign`] goes *through* the registrar channel,
//! this attacker sits *on the wire*: for every fresh resolution under a
//! contested zone it races a burst of forged responses against the
//! authoritative answer. Whether a burst wins is pure arithmetic over
//! the victim resolver's entropy budget — TXID bits, source-port bits,
//! 0x20 case bits — evaluated deterministically per query name (see
//! [`dsec_resolver::spoofguard`]); no wall-clock, no shared RNG, so
//! campaign outcomes are byte-identical across runs and thread counts.
//!
//! The campaign is day-pinned: it opens on a launch day, optionally
//! closes on an end day, and records its lifecycle in the world's event
//! log. Each day it is active, [`OnPathCampaign::threat_for`] hands the
//! traffic plane an [`OnPathThreat`] to arm the fleet's resolvers with;
//! outside the window it hands back `None` and the fleet runs clean.

use dsec_ecosystem::{Event, SimDate, World};
use dsec_resolver::OnPathThreat;
use dsec_wire::Name;

/// How the on-path attacker contests resolutions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnPathVector {
    /// The Kaminsky race: for each fresh resolution under the contested
    /// zone, fire a burst of forged responses guessing the query's
    /// TXID/port/0x20 encoding. Success probability per race is the
    /// birthday-style bound `1 - (1 - 2^-bits)^spoofs`.
    KaminskyRace {
        /// Forged responses the attacker lands per contested exchange
        /// before the authoritative answer arrives.
        spoofs_per_race: u32,
    },
}

/// Where the on-path campaign is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnPathPhase {
    /// Waiting for the launch day.
    Scheduled,
    /// The attacker is racing live resolutions.
    Active,
    /// The campaign window closed.
    Ended,
}

/// A day-pinned on-path forgery campaign against one zone's subtree.
///
/// Drive it in lockstep with the world clock — `world.tick()` then
/// `campaign.tick(&mut world)` — exactly like [`crate::AttackCampaign`];
/// the two compose (a registrar-channel takeover and a wire-level race
/// can run in the same world).
#[derive(Debug, Clone)]
pub struct OnPathCampaign {
    /// The vector in use.
    pub vector: OnPathVector,
    /// The contested zone: every query at or below it is raced.
    pub zone: Name,
    /// First day the attacker races.
    pub launch: SimDate,
    /// First day the attacker is gone again. `None` never ends.
    pub end: Option<SimDate>,
    /// Current phase.
    pub phase: OnPathPhase,
    /// Seed the per-query race draws derive from.
    seed: u64,
}

impl OnPathCampaign {
    /// A campaign racing queries under `zone` from `launch` onwards,
    /// with race draws derived from the default campaign seed.
    pub fn new(vector: OnPathVector, zone: Name, launch: SimDate) -> OnPathCampaign {
        OnPathCampaign {
            vector,
            zone,
            launch,
            end: None,
            phase: OnPathPhase::Scheduled,
            seed: 0x00A7_7AC4_0A7E,
        }
    }

    /// Ends the campaign on `end` (builder style): the attacker stops
    /// racing once `today >= end`.
    pub fn with_end(mut self, end: SimDate) -> OnPathCampaign {
        self.end = Some(end);
        self
    }

    /// Overrides the race-draw seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> OnPathCampaign {
        self.seed = seed;
        self
    }

    /// Whether the attacker is on the wire on `day`.
    pub fn active_on(&self, day: SimDate) -> bool {
        day >= self.launch && self.end.is_none_or(|end| day < end)
    }

    /// Runs one campaign day: opens the window when the launch day
    /// comes, closes it when the end day comes, logging both
    /// transitions. Call after `world.tick()`.
    pub fn tick(&mut self, world: &mut World) {
        let today = world.today;
        if self.phase == OnPathPhase::Scheduled && today >= self.launch {
            self.phase = OnPathPhase::Active;
            world.events.record(
                today,
                Event::PoisonRaceLaunched {
                    zone: self.zone.clone(),
                },
            );
        }
        if self.phase == OnPathPhase::Active && self.end.is_some_and(|end| today >= end) {
            self.phase = OnPathPhase::Ended;
            world.events.record(
                today,
                Event::PoisonRaceEnded {
                    zone: self.zone.clone(),
                },
            );
        }
    }

    /// The wire-level threat the traffic plane should arm resolvers
    /// with on `day` — `None` outside the campaign window, so callers
    /// can pass the result straight to
    /// [`dsec_resolver::Resolver::with_on_path_threat`] /
    /// `LoadConfig::with_threat` only when the attacker is live.
    pub fn threat_for(&self, day: SimDate) -> Option<OnPathThreat> {
        if !self.active_on(day) {
            return None;
        }
        let OnPathVector::KaminskyRace { spoofs_per_race } = self.vector;
        Some(OnPathThreat::new(self.zone.clone(), spoofs_per_race, self.seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsec_ecosystem::WorldConfig;
    use dsec_resolver::SpoofGuard;

    fn campaign(launch: u32, end: Option<u32>) -> OnPathCampaign {
        let zone = Name::parse("victim.nl").unwrap();
        let mut c = OnPathCampaign::new(
            OnPathVector::KaminskyRace {
                spoofs_per_race: 300,
            },
            zone,
            SimDate(launch),
        );
        if let Some(end) = end {
            c = c.with_end(SimDate(end));
        }
        c
    }

    #[test]
    fn window_gates_the_threat() {
        let c = campaign(10, Some(20));
        assert!(c.threat_for(SimDate(9)).is_none());
        assert!(c.threat_for(SimDate(10)).is_some());
        assert!(c.threat_for(SimDate(19)).is_some());
        assert!(c.threat_for(SimDate(20)).is_none(), "end day is exclusive");
        assert!(campaign(10, None).threat_for(SimDate(9_999)).is_some());
    }

    #[test]
    fn tick_records_lifecycle_events() {
        let mut world = World::new(WorldConfig::default());
        let mut c = campaign(world.today.0 + 2, Some(world.today.0 + 4));
        while world.today.0 < c.launch.0 + 5 {
            world.tick();
            c.tick(&mut world);
        }
        assert_eq!(c.phase, OnPathPhase::Ended);
        assert_eq!(world.events.count("poison_race_launched"), 1);
        assert_eq!(world.events.count("poison_race_ended"), 1);
    }

    #[test]
    fn threat_is_deterministic_across_clones() {
        let c = campaign(0, None);
        let t1 = c.threat_for(SimDate(5)).unwrap();
        let t2 = c.clone().threat_for(SimDate(7)).unwrap();
        assert_eq!(t1, t2, "same threat every active day");
        let qname = Name::parse("www.victim.nl").unwrap();
        let naive = SpoofGuard::naive();
        assert_eq!(
            t1.race_won(&naive, &qname, dsec_wire::RrType::A),
            t2.race_won(&naive, &qname, dsec_wire::RrType::A),
        );
    }
}
