//! The registrar-compromise attack plane: scheduled, campaign-scale
//! takeovers through the registrar channels the paper probed.
//!
//! `examples/hijack_demo.rs` showed the *mechanism* — a forged `From:`
//! header slipping a DS record past an unauthenticated email channel.
//! This crate promotes that one-shot demo into a first-class attacker
//! model, mirroring the rollover plane's day-pinned state machine:
//!
//! * an [`AttackPlan`] pins a takeover attempt to a launch day, picks a
//!   vector (forged DS submission, or a forged NS change that
//!   redelegates the domain to attacker-run authorities), and
//!   optionally schedules detection + remediation;
//! * an [`AttackCampaign`] drives any number of plans alongside the
//!   world's daily tick, pushes each submission through the victim
//!   registrar's *configured* channel — so whether a forgery lands is
//!   decided by that registrar's calibrated [`ExternalDs`]
//!   authentication policy, exactly like the legitimate path — and runs
//!   the attacker's authoritative infrastructure: an [`Authority`]
//!   registered in the world's [`Network`] serving forged zones for
//!   every captured domain, signed with attacker-held keys the parent
//!   DS does not match;
//! * detection restores the pre-attack DS/NS state through the same
//!   registry mutation path as everything else, so the wire-response
//!   cache and delegation generations stay coherent (DESIGN.md §9/§14).
//!
//! What a capture *means* for users is measured by the traffic plane:
//! validating resolvers refuse the forged chain (`SavedByValidation`),
//! non-validating resolvers hand the attacker's records to the user
//! (`Hijacked`). Experiment E-A1 wires the three planes together.

#![warn(missing_docs)]

pub mod onpath;

pub use onpath::{OnPathCampaign, OnPathPhase, OnPathVector};

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dsec_authserver::Authority;
use dsec_crypto::Algorithm;
use dsec_dnssec::{sign_zone, ZoneKeys};
use dsec_ecosystem::{
    ActionError, DsSubmission, Event, ExternalDs, SimDate, UploadOutcome, World,
};
use dsec_wire::{DsRdata, Name, RData, Record, SoaRdata, Zone};

/// How a takeover is attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackVector {
    /// Forge a DS submission: the parent then vouches for a key the
    /// attacker holds. On its own this takes the domain *offline* for
    /// validating users (DS mismatch → Bogus) without redirecting
    /// anyone — the sabotage half of the paper's §5.3 anecdote.
    ForgedDs,
    /// Forge an NS change: the delegation moves to attacker authorities
    /// serving a forged zone. Validating users are saved by the
    /// unchanged parent DS; non-validating users are hijacked.
    ForgedNs {
        /// Park the forged NS hosts inside the victim operator's
        /// namespace (`ns66.<operator>`) instead of an attacker-branded
        /// one, so the takeover is invisible to infrastructure-ranking
        /// heuristics — the stealthy variant.
        stealthy: bool,
    },
}

/// Where one plan is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackPhase {
    /// Waiting for the launch day.
    Scheduled,
    /// The forgery landed; the attacker holds the delegation.
    Captured,
    /// The registrar's channel authentication rejected the forgery.
    Repelled,
    /// Detected and remediated: pre-attack DS/NS state restored.
    Restored,
}

/// One day-pinned takeover attempt against one domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackPlan {
    /// The vector to try.
    pub vector: AttackVector,
    /// The day the forgery is submitted.
    pub launch: SimDate,
    /// Days after a successful capture until the hijack is noticed and
    /// remediated. `None` leaves the attacker in control.
    pub detect_after_days: Option<u32>,
}

impl AttackPlan {
    /// A plan launching on `launch`, never detected.
    pub fn new(vector: AttackVector, launch: SimDate) -> AttackPlan {
        AttackPlan {
            vector,
            launch,
            detect_after_days: None,
        }
    }

    /// Schedules detection `days` after a successful capture (builder
    /// style).
    pub fn with_detection(mut self, days: u32) -> AttackPlan {
        self.detect_after_days = Some(days);
        self
    }

    /// The day remediation fires, if detection is scheduled.
    pub fn detection_day(&self) -> Option<SimDate> {
        self.detect_after_days.map(|d| self.launch.plus_days(d))
    }
}

/// The live state of one scheduled plan.
#[derive(Debug, Clone)]
pub struct AttackState {
    /// The plan being driven.
    pub plan: AttackPlan,
    /// Current phase.
    pub phase: AttackPhase,
    /// Day the forgery landed, if it did.
    pub captured_on: Option<SimDate>,
    /// Day the pre-attack state came back, if it did.
    pub restored_on: Option<SimDate>,
    /// Registry DS set before the attack (for remediation).
    original_ds: Vec<DsRdata>,
    /// Registry NS set before the attack (for remediation).
    original_ns: Vec<Name>,
    /// The forged NS hosts actually installed (ForgedNs only).
    forged_ns: Vec<Name>,
}

/// A campaign: attacker identity + infrastructure + scheduled plans.
///
/// Drive it in lockstep with the world clock — `world.tick()` then
/// `campaign.tick(&mut world)` — or let [`AttackCampaign::advance_to`]
/// do both.
pub struct AttackCampaign {
    /// The envelope sender of every forged mail.
    mailbox: String,
    /// The attacker's nameserver base domain (loud variant).
    ns_domain: Name,
    /// The attacker's authoritative server, shared by all captures.
    authority: Arc<Authority>,
    /// Attacker-held zone keys, shared across captures (rebound per
    /// zone). The parent DS never matches them — that mismatch is what
    /// validating resolvers catch.
    keys: ZoneKeys,
    /// Plans keyed by canonical domain name.
    states: BTreeMap<String, (Name, AttackState)>,
}

impl AttackCampaign {
    /// A campaign for `mallory@attacker.example` with keys drawn from a
    /// fixed seed (determinism: same campaign, same forged zones).
    pub fn new() -> AttackCampaign {
        AttackCampaign::with_seed(0x00A7_7AC4)
    }

    /// A campaign whose attacker keys derive from `seed`.
    pub fn with_seed(seed: u64) -> AttackCampaign {
        let ns_domain = Name::parse("mallory-dns.example").expect("valid name");
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = ZoneKeys::generate_default(&mut rng, ns_domain.clone(), Algorithm::RsaSha256)
            .expect("keygen succeeds");
        AttackCampaign {
            mailbox: "mallory@attacker.example".to_string(),
            ns_domain,
            authority: Arc::new(Authority::new()),
            keys,
            states: BTreeMap::new(),
        }
    }

    /// Overrides the forged-mail envelope sender (builder style).
    pub fn with_mailbox(mut self, mailbox: &str) -> AttackCampaign {
        self.mailbox = mailbox.to_string();
        self
    }

    /// The attacker's authoritative server.
    pub fn authority(&self) -> &Arc<Authority> {
        &self.authority
    }

    /// Schedules a plan against `domain`. One live plan per domain.
    pub fn schedule(&mut self, domain: Name, plan: AttackPlan) {
        let state = AttackState {
            plan,
            phase: AttackPhase::Scheduled,
            captured_on: None,
            restored_on: None,
            original_ds: Vec::new(),
            original_ns: Vec::new(),
            forged_ns: Vec::new(),
        };
        self.states
            .insert(domain.to_canonical().to_string(), (domain, state));
    }

    /// The state of the plan against `domain`, if one is scheduled.
    pub fn state(&self, domain: &Name) -> Option<&AttackState> {
        self.states
            .get(&domain.to_canonical().to_string())
            .map(|(_, s)| s)
    }

    /// Domains the attacker currently controls (any vector).
    pub fn captured(&self) -> Vec<Name> {
        self.states
            .values()
            .filter(|(_, s)| s.phase == AttackPhase::Captured)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Captured domains whose *data* the attacker serves (ForgedNs):
    /// the set the traffic plane should re-label outcomes for. A
    /// ForgedDs capture only sabotages validation — the victim's real
    /// operator still answers — so it is excluded here.
    pub fn hijacked_zones(&self) -> Vec<Name> {
        self.states
            .values()
            .filter(|(_, s)| {
                s.phase == AttackPhase::Captured
                    && matches!(s.plan.vector, AttackVector::ForgedNs { .. })
            })
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Runs one campaign day against the world's current date: launches
    /// plans whose day has come, remediates captures whose detection
    /// day has come. Call after `world.tick()`.
    pub fn tick(&mut self, world: &mut World) {
        let today = world.today;
        let due: Vec<String> = self
            .states
            .iter()
            .filter(|(_, (_, s))| match s.phase {
                AttackPhase::Scheduled => today >= s.plan.launch,
                AttackPhase::Captured => {
                    s.plan.detection_day().is_some_and(|d| today >= d)
                }
                _ => false,
            })
            .map(|(k, _)| k.clone())
            .collect();
        for key in due {
            let (domain, mut state) = self.states.remove(&key).expect("key just listed");
            match state.phase {
                AttackPhase::Scheduled => self.launch(world, &domain, &mut state),
                AttackPhase::Captured => self.remediate(world, &domain, &mut state),
                _ => unreachable!("only due phases were selected"),
            }
            self.states.insert(key, (domain, state));
        }
    }

    /// Advances the world day by day to `until`, running the campaign
    /// after each world tick.
    pub fn advance_to(&mut self, world: &mut World, until: SimDate) {
        while world.today < until {
            world.tick();
            self.tick(world);
        }
    }

    // ---------------------------------------------------------- internals --

    /// Submits the forgery for one plan and applies its consequences.
    fn launch(&mut self, world: &mut World, domain: &Name, state: &mut AttackState) {
        let Some(d) = world.domain(domain) else {
            state.phase = AttackPhase::Repelled;
            return;
        };
        let tld = d.tld;
        let registrant_email = d.registrant_email.clone();
        let channel = world.registrar(d.registrar).policy.external_ds.clone();

        // Snapshot what remediation will restore.
        state.original_ds = world.registry(tld).ds_of(domain);
        state.original_ns = world.registry(tld).ns_of(domain);

        let outcome = match state.plan.vector {
            AttackVector::ForgedDs => {
                self.submit_forged_ds(world, domain, &channel, &registrant_email)
            }
            AttackVector::ForgedNs { stealthy } => {
                self.submit_forged_ns(world, domain, &channel, &registrant_email, state, stealthy)
            }
        };

        if outcome == Ok(UploadOutcome::Accepted) {
            state.phase = AttackPhase::Captured;
            state.captured_on = Some(world.today);
            if matches!(state.plan.vector, AttackVector::ForgedNs { .. }) {
                let host = state
                    .forged_ns
                    .first()
                    .cloned()
                    .unwrap_or_else(|| self.loud_host());
                self.serve_forged_zone(world, domain, host);
            }
        } else {
            state.phase = AttackPhase::Repelled;
            world
                .events
                .record(world.today, Event::AttackRepelled { domain: domain.clone() });
        }
    }

    /// A forged DS pushed through the registrar's own channel. The DS
    /// points at the attacker's KSK, so a capture leaves the parent
    /// vouching for a key the victim's zone is not signed with.
    fn submit_forged_ds(
        &mut self,
        world: &mut World,
        domain: &Name,
        channel: &ExternalDs,
        registrant_email: &str,
    ) -> Result<UploadOutcome, ActionError> {
        // The fetch channel derives the DS from the served DNSKEY — it
        // cannot carry attacker-chosen rdata at all.
        let Some(via) = forged_submission(channel, registrant_email, &self.mailbox) else {
            return Ok(UploadOutcome::ChannelUnsupported);
        };
        let forged = self.keys_for(domain).ds(dsec_crypto::DigestType::Sha256);
        world.upload_ds(domain, forged, via)
    }

    /// A forged NS change: only the email channel can be exercised
    /// remotely (the others imply an authenticated portal session or a
    /// live agent), so every non-email policy repels this vector.
    fn submit_forged_ns(
        &mut self,
        world: &mut World,
        domain: &Name,
        channel: &ExternalDs,
        registrant_email: &str,
        state: &mut AttackState,
        stealthy: bool,
    ) -> Result<UploadOutcome, ActionError> {
        if !matches!(channel, ExternalDs::Email { .. }) {
            return Ok(UploadOutcome::ChannelUnsupported);
        }
        let via = DsSubmission::Email {
            claimed_from: registrant_email.to_string(),
            actual_from: self.mailbox.clone(),
        };
        let host = if stealthy {
            // ns66.<victim's operator domain>: same operator key for
            // ranking heuristics, different machine entirely.
            state
                .original_ns
                .first()
                .and_then(|ns| ns.parent())
                .and_then(|op| op.child("ns66").ok())
                .unwrap_or_else(|| self.loud_host())
        } else {
            self.loud_host()
        };
        state.forged_ns = vec![host];
        world.submit_ns_change(domain, &state.forged_ns, via)
    }

    /// The attacker-branded nameserver hostname.
    fn loud_host(&self) -> Name {
        self.ns_domain.child("ns1").expect("ns1 fits")
    }

    /// The campaign keys rebound to `domain`.
    fn keys_for(&self, domain: &Name) -> ZoneKeys {
        let mut keys = self.keys.clone();
        keys.zone = domain.clone();
        keys
    }

    /// Builds, signs, and serves the forged zone for a captured domain,
    /// and registers the forged NS host in the world's network. The
    /// zone is signed with the attacker's keys: answers *look*
    /// DNSSEC-complete, but the unchanged parent DS does not match —
    /// which is exactly what a validating resolver refuses.
    fn serve_forged_zone(&mut self, world: &mut World, domain: &Name, host: Name) {
        let keys = self.keys_for(domain);
        let mut zone = forged_zone(domain, &host);
        sign_zone(&mut zone, &keys, &world.signer_config()).expect("attacker keys match zone");
        self.authority.upsert_zone(zone);
        world.network.register(host, self.authority.clone());
    }

    /// Detection day: restore the pre-attack DS/NS through the registry
    /// (bumping the delegation generation like any legitimate change),
    /// drop the forged zone, and log the lifecycle.
    fn remediate(&mut self, world: &mut World, domain: &Name, state: &mut AttackState) {
        let today = world.today;
        world
            .events
            .record(today, Event::HijackDetected { domain: domain.clone() });
        if let Some(d) = world.domain(domain) {
            let (tld, sponsor) = (d.tld, d.sponsor);
            let registry = world.registry_mut(tld);
            if !state.original_ns.is_empty() {
                let _ = registry.set_ns(sponsor, domain, &state.original_ns);
            }
            if state.original_ds.is_empty() {
                let _ = registry.remove_ds(sponsor, domain);
            } else {
                let _ = registry.set_ds(sponsor, domain, &state.original_ds);
            }
        }
        self.authority.remove_zone(domain);
        world
            .events
            .record(today, Event::HijackRemediated { domain: domain.clone() });
        state.phase = AttackPhase::Restored;
        state.restored_on = Some(today);
    }
}

impl Default for AttackCampaign {
    fn default() -> Self {
        AttackCampaign::new()
    }
}

/// The forged submission for a channel, if the channel can be forged
/// remotely at all. Email forges the `From:` header; web forms, chat,
/// and tickets take anonymous input (their defense, if any, is DS
/// validation, which `upload_ds` applies); the fetch channel reads the
/// zone itself and is returned as `None`.
fn forged_submission(
    channel: &ExternalDs,
    registrant_email: &str,
    mailbox: &str,
) -> Option<DsSubmission> {
    match channel {
        ExternalDs::Email { .. } => Some(DsSubmission::Email {
            claimed_from: registrant_email.to_string(),
            actual_from: mailbox.to_string(),
        }),
        ExternalDs::Web { .. } => Some(DsSubmission::Web),
        ExternalDs::Chat { .. } => Some(DsSubmission::Chat),
        ExternalDs::Ticket => Some(DsSubmission::Ticket),
        ExternalDs::FetchDnskey | ExternalDs::Unsupported => None,
    }
}

/// The attacker's zone for a captured domain: every record type the
/// traffic mix queries resolves to attacker-controlled values, at the
/// apex and under `www`.
fn forged_zone(domain: &Name, ns_host: &Name) -> Zone {
    let mut zone = Zone::new(domain.clone());
    zone.add(Record::new(
        domain.clone(),
        3600,
        RData::Soa(SoaRdata {
            mname: ns_host.clone(),
            rname: Name::parse("hostmaster.invalid").expect("valid name"),
            serial: 666,
            refresh: 7200,
            retry: 3600,
            expire: 1_209_600,
            minimum: 300,
        }),
    ))
    .expect("SOA fits");
    zone.add(Record::new(domain.clone(), 3600, RData::Ns(ns_host.clone())))
        .expect("NS fits");
    let mx = Name::parse("mail.mallory-dns.example").expect("valid name");
    for owner in [domain.clone(), domain.child("www").expect("www fits")] {
        zone.add(Record::new(
            owner.clone(),
            300,
            RData::A("203.0.113.66".parse().expect("valid v4")),
        ))
        .expect("A fits");
        zone.add(Record::new(
            owner.clone(),
            300,
            RData::Aaaa("2001:db8::66".parse().expect("valid v6")),
        ))
        .expect("AAAA fits");
        zone.add(Record::new(
            owner,
            300,
            RData::Mx {
                preference: 0,
                exchange: mx.clone(),
            },
        ))
        .expect("MX fits");
    }
    zone
}
