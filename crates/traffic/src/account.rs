//! Outcome accounting: what each user query actually got, and whose
//! policy is responsible.
//!
//! Every query ends in exactly one RFC 4035-flavoured outcome:
//!
//! - **Secure** — the full chain validated; the user is protected;
//! - **Insecure** — a clean unsigned delegation (no DS anywhere on the
//!   path); ordinary DNS, unprotected but working;
//! - **Bogus** — a chain exists but fails validation (mismatched DS,
//!   abrupt rollover); a validating resolver SERVFAILs the user;
//! - **ServFail** — no usable answer for non-DNSSEC reasons (all
//!   nameservers unreachable, lame delegations);
//! - **Stale** — upstream resolution failed but an expired cache entry
//!   within the serve-stale horizon answered (RFC 8767): degraded but
//!   available;
//! - **NegativeHit** — a cached NXDOMAIN/NODATA served under its SOA-
//!   minimum TTL without touching authorities (RFC 2308).
//!
//! Counts are attributed to the *registrar* the domain was bought from
//! (whose policy decides whether a DS ever reaches the registry) and to
//! the *DNS operator* serving the zone — the paper's two actors,
//! re-weighted by query popularity instead of domain count.

use std::collections::BTreeMap;

use dsec_resolver::{Answer, ResolveError, ResolverStatsSnapshot, Security};
use dsec_wire::Rcode;

use crate::telemetry::LatencyHistogram;

/// The terminal states of one user query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Chain validated end to end.
    Secure,
    /// Provably unsigned path; answer served without protection.
    Insecure,
    /// Broken chain: the validator refused the data.
    Bogus,
    /// No usable answer (network/lameness, not validation).
    ServFail,
    /// Served from an expired cache entry after upstream failure
    /// (RFC 8767 serve-stale): the user got an answer during an outage.
    Stale,
    /// Served from the negative cache (RFC 2308): a remembered
    /// NXDOMAIN/NODATA without an upstream round trip.
    NegativeHit,
    /// A non-validating user resolved a captured domain and received the
    /// attacker's answer as ordinary DNS — the takeover reached them.
    Hijacked,
    /// A validating user resolved a captured domain and their resolver
    /// refused the forged data (Bogus → SERVFAIL): DNSSEC did its job.
    SavedByValidation,
    /// An on-path attacker's forged response won the spoofing race and
    /// was served to the user as ordinary DNS — cache poisoning reached
    /// them (the resolver's entropy/bailiwick defenses, not the
    /// registrar's channel, decided this outcome).
    Poisoned,
}

/// Classifies a resolution result into an [`Outcome`].
pub fn classify(result: &Result<Answer, ResolveError>) -> Outcome {
    match result {
        Err(_) => Outcome::ServFail,
        Ok(answer) => classify_answer(answer),
    }
}

/// Classifies a successfully returned answer into an [`Outcome`]. Split
/// out from [`classify`] so callers holding shared (`Arc`) answers from
/// the striped cache can classify without materialising a `Result`.
pub fn classify_answer(answer: &Answer) -> Outcome {
    match &answer.security {
        Security::Bogus(_) => Outcome::Bogus,
        Security::Secure if answer.rcode == Rcode::ServFail => Outcome::ServFail,
        Security::Insecure if answer.rcode == Rcode::ServFail => Outcome::ServFail,
        Security::Secure => Outcome::Secure,
        // An admitted forgery that is actually being served: the user got
        // the attacker's records as ordinary DNS. (A forgery the
        // validator caught is `Bogus` above — integrity held.)
        Security::Insecure if answer.poisoned => Outcome::Poisoned,
        Security::Insecure => Outcome::Insecure,
    }
}

/// Query counts per outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Validated end to end.
    pub secure: u64,
    /// Served from a provably unsigned path.
    pub insecure: u64,
    /// Refused by validation.
    pub bogus: u64,
    /// Failed for non-validation reasons.
    pub servfail: u64,
    /// Served stale from an expired cache entry during upstream failure.
    pub stale: u64,
    /// Served from the negative cache.
    pub negative: u64,
    /// Attacker data reached a non-validating user on a captured domain.
    pub hijacked: u64,
    /// Validation shielded a user from a captured domain's forged data.
    pub saved_by_validation: u64,
    /// An on-path forgery won the spoofing race and was served.
    pub poisoned: u64,
}

impl OutcomeCounts {
    /// Total queries accounted.
    pub fn total(&self) -> u64 {
        self.secure
            + self.insecure
            + self.bogus
            + self.servfail
            + self.stale
            + self.negative
            + self.hijacked
            + self.saved_by_validation
            + self.poisoned
    }

    /// Adds one outcome.
    pub fn add(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Secure => self.secure += 1,
            Outcome::Insecure => self.insecure += 1,
            Outcome::Bogus => self.bogus += 1,
            Outcome::ServFail => self.servfail += 1,
            Outcome::Stale => self.stale += 1,
            Outcome::NegativeHit => self.negative += 1,
            Outcome::Hijacked => self.hijacked += 1,
            Outcome::SavedByValidation => self.saved_by_validation += 1,
            Outcome::Poisoned => self.poisoned += 1,
        }
    }

    /// Folds another set of counts into this one.
    pub fn merge(&mut self, other: &OutcomeCounts) {
        self.secure += other.secure;
        self.insecure += other.insecure;
        self.bogus += other.bogus;
        self.servfail += other.servfail;
        self.stale += other.stale;
        self.negative += other.negative;
        self.hijacked += other.hijacked;
        self.saved_by_validation += other.saved_by_validation;
        self.poisoned += other.poisoned;
    }

    /// Fraction of queries that were cryptographically protected.
    pub fn secure_share(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.secure as f64 / total as f64
        }
    }

    /// Fraction of queries the user got *an answer* for: everything but
    /// validation refusals (Bogus, SavedByValidation) and hard failures
    /// (ServFail). Stale and negative-cache serves count as available —
    /// that is the whole point of graceful degradation. Hijacked and
    /// Poisoned count too: the user *did* get an answer, which is
    /// exactly the problem.
    pub fn availability(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.secure
                + self.insecure
                + self.stale
                + self.negative
                + self.hijacked
                + self.poisoned) as f64
                / total as f64
        }
    }
}

/// Everything one load run produced.
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Worker threads used.
    pub threads: usize,
    /// Stream seed.
    pub seed: u64,
    /// Queries issued.
    pub total: u64,
    /// Aggregate outcome counts.
    pub outcomes: OutcomeCounts,
    /// Outcomes attributed to the registrar each domain was bought from.
    pub by_registrar: BTreeMap<String, OutcomeCounts>,
    /// Outcomes attributed to the DNS operator serving each domain.
    pub by_operator: BTreeMap<String, OutcomeCounts>,
    /// Simulated per-query latency distribution.
    pub histogram: LatencyHistogram,
    /// Merged resolver-pool counters (attempts, timeouts, cache
    /// hits/misses, …).
    pub resolver: ResolverStatsSnapshot,
    /// Entries left in the shared cache at the end of the run.
    pub cache_entries: usize,
    /// Capacity bound of the shared cache.
    pub cache_capacity: usize,
    /// Wall-clock duration of the run, ms (host-dependent; excluded from
    /// determinism comparisons).
    pub elapsed_ms: f64,
    /// Simulated duration of the run, ms: the longest worker's summed
    /// per-query latency (deterministic).
    pub sim_elapsed_ms: u64,
}

impl TrafficReport {
    /// Wall-clock queries per second (host-dependent).
    pub fn wall_qps(&self) -> f64 {
        if self.elapsed_ms <= 0.0 {
            0.0
        } else {
            self.total as f64 / (self.elapsed_ms / 1000.0)
        }
    }

    /// Simulated-time throughput: total queries over the longest worker's
    /// summed simulated latency — the deterministic, machine-independent
    /// number the scaling sweep is judged on. Each worker models one
    /// closed-loop client pipeline, so doubling workers roughly halves
    /// the simulated duration of the same stream.
    pub fn sim_qps(&self) -> f64 {
        if self.sim_elapsed_ms == 0 {
            0.0
        } else {
            self.total as f64 / (self.sim_elapsed_ms as f64 / 1000.0)
        }
    }

    /// Shared-cache hit rate over the run.
    pub fn cache_hit_rate(&self) -> f64 {
        self.resolver.cache_hit_rate()
    }

    /// Fraction of user queries that were cryptographically protected —
    /// the query-weighted analogue of the paper's domain-weighted
    /// deployment rate.
    pub fn protection_rate(&self) -> f64 {
        self.outcomes.secure_share()
    }

    /// Fraction of user queries that got an answer at all (Secure +
    /// Insecure + Stale + NegativeHit).
    pub fn availability(&self) -> f64 {
        self.outcomes.availability()
    }

    /// The campaign summary line, including the resolver-cache counters
    /// and the degradation (stale / negative-hit) rates. The attack
    /// columns only appear when a hijack actually reached the run.
    pub fn summary_line(&self) -> String {
        let attack = if self.outcomes.hijacked + self.outcomes.saved_by_validation > 0 {
            format!(
                " {} hijacked / {} saved-by-validation;",
                self.outcomes.hijacked, self.outcomes.saved_by_validation
            )
        } else {
            String::new()
        };
        let attack = if self.outcomes.poisoned > 0 {
            format!("{attack} {} poisoned;", self.outcomes.poisoned)
        } else {
            attack
        };
        format!(
            "user traffic : {} queries, {:.1}% secure / {:.1}% insecure / {} bogus / {} servfail; \
             {:.1}% stale / {:.1}% negative-hit;{attack} \
             p50 {} ms, p99 {} ms; resolver cache {:.1}% hit rate ({} hits / {} misses, {} entries)",
            self.total,
            100.0 * self.outcomes.secure as f64 / self.total.max(1) as f64,
            100.0 * self.outcomes.insecure as f64 / self.total.max(1) as f64,
            self.outcomes.bogus,
            self.outcomes.servfail,
            100.0 * self.outcomes.stale as f64 / self.total.max(1) as f64,
            100.0 * self.outcomes.negative as f64 / self.total.max(1) as f64,
            self.histogram.p50(),
            self.histogram.p99(),
            100.0 * self.cache_hit_rate(),
            self.resolver.cache_hits,
            self.resolver.cache_misses,
            self.cache_entries,
        )
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_add_and_merge() {
        let mut a = OutcomeCounts::default();
        a.add(Outcome::Secure);
        a.add(Outcome::Secure);
        a.add(Outcome::Bogus);
        let mut b = OutcomeCounts::default();
        b.add(Outcome::Insecure);
        b.add(Outcome::ServFail);
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.secure, 2);
        assert_eq!(a.bogus, 1);
        assert_eq!(a.insecure, 1);
        assert_eq!(a.servfail, 1);
        assert!((a.secure_share() - 0.4).abs() < 1e-12);
        assert_eq!(OutcomeCounts::default().secure_share(), 0.0);
    }

    #[test]
    fn degraded_outcomes_count_toward_availability() {
        let mut counts = OutcomeCounts::default();
        counts.add(Outcome::Secure);
        counts.add(Outcome::Stale);
        counts.add(Outcome::NegativeHit);
        counts.add(Outcome::ServFail);
        counts.add(Outcome::Bogus);
        assert_eq!(counts.total(), 5);
        assert_eq!(counts.stale, 1);
        assert_eq!(counts.negative, 1);
        assert!((counts.availability() - 0.6).abs() < 1e-12, "3 of 5 answered");
        // secure_share stays honest: stale serves are not "secure".
        assert!((counts.secure_share() - 0.2).abs() < 1e-12);
        assert_eq!(OutcomeCounts::default().availability(), 0.0);
        let mut merged = OutcomeCounts::default();
        merged.merge(&counts);
        assert_eq!(merged, counts, "merge carries the degraded columns");
    }
}
