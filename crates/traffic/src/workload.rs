//! The workload model: who users ask for, and how often.
//!
//! Popularity is Zipf-distributed *within* each TLD, and ranks are
//! assigned with a big-operator head bias: domains hosted by the largest
//! DNS operators take the top ranks. That is Figure 3's concentration
//! seen from the user side — the query head lands on the handful of
//! operators that host most of the population, so their (mostly absent)
//! DNSSEC policy decides what fraction of real traffic is protected.
//!
//! Everything here is pure and seeded: the same
//! ([`TrafficMix`], seed, world) triple always yields the same query
//! stream, byte for byte.

use std::collections::{BTreeMap, HashMap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dsec_ecosystem::{Tld, World};
use dsec_scanner::operator_of;
use dsec_wire::{Name, RrType};
use dsec_workloads::{QtypeMix, TrafficMix};

/// A seeded Zipf(n, s) sampler over ranks `0..n` built on the inverse
/// CDF, since the vendored rand stub ships no distributions module.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// `cdf[k]` = P(rank ≤ k); the last entry is 1.0 (up to rounding).
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `s` (rank-`k` weight
    /// ∝ `1/(k+1)^s`). `n` must be non-zero.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over an empty population");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler covers no ranks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The normalized probability of rank `k`.
    pub fn weight(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Maps a uniform draw `u ∈ [0, 1)` to a rank (inverse CDF).
    pub fn sample(&self, u: f64) -> usize {
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// Cumulative-weight categorical sampler for the TLD and qtype mixes.
#[derive(Debug, Clone)]
struct Categorical {
    cdf: Vec<f64>,
}

impl Categorical {
    fn new(weights: &[f64]) -> Categorical {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "categorical needs positive total weight");
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Categorical { cdf }
    }

    fn sample(&self, u: f64) -> usize {
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// One resolvable site and who answers for it.
#[derive(Debug, Clone)]
pub struct Site {
    /// The registered domain (apex).
    pub name: Name,
    /// `www.<domain>`.
    pub www: Name,
    /// Its TLD.
    pub tld: Tld,
    /// Display name of the registrar the owner bought it from.
    pub registrar: String,
    /// The DNS operator key (same grouping as the scanner's snapshots).
    pub operator: String,
    /// Dense index into [`TrafficPopulation::registrars`] — lets hot-path
    /// accounting use a `Vec` slot instead of hashing the display name.
    pub registrar_id: u32,
    /// Dense index into [`TrafficPopulation::operators`].
    pub operator_id: u32,
}

/// The SLD population indexed for popularity sampling.
#[derive(Debug, Clone)]
pub struct TrafficPopulation {
    /// Every registered domain, in world (canonical-name) order.
    pub sites: Vec<Site>,
    /// Per-TLD site indices in popularity-rank order (head first).
    pub ranked: BTreeMap<Tld, Vec<u32>>,
    /// Registrar display names, indexed by [`Site::registrar_id`]
    /// (first-occurrence order over the site list).
    pub registrars: Vec<String>,
    /// Operator keys, indexed by [`Site::operator_id`].
    pub operators: Vec<String>,
}

impl TrafficPopulation {
    /// Snapshots the world's registered domains with their registrar and
    /// operator attribution, and ranks each TLD's domains head-first:
    /// operators hosting more domains take the earlier (more popular)
    /// ranks, ties broken by operator key then domain name.
    pub fn from_world(world: &World) -> TrafficPopulation {
        let mut sites = Vec::with_capacity(world.domain_count());
        let mut operator_sizes: BTreeMap<String, u64> = BTreeMap::new();
        let mut registrars: Vec<String> = Vec::new();
        let mut operators: Vec<String> = Vec::new();
        let mut registrar_ids: HashMap<String, u32> = HashMap::new();
        let mut operator_ids: HashMap<String, u32> = HashMap::new();
        for d in world.domains() {
            let ns = world.registry(d.tld).ns_of(&d.name);
            let operator = operator_of(&ns)
                .map(|n| n.to_string())
                .unwrap_or_else(|| "(undelegated)".to_string());
            *operator_sizes.entry(operator.clone()).or_insert(0) += 1;
            let registrar = world.registrar(d.registrar).name.clone();
            let registrar_id = *registrar_ids.entry(registrar.clone()).or_insert_with(|| {
                registrars.push(registrar.clone());
                (registrars.len() - 1) as u32
            });
            let operator_id = *operator_ids.entry(operator.clone()).or_insert_with(|| {
                operators.push(operator.clone());
                (operators.len() - 1) as u32
            });
            sites.push(Site {
                www: d.name.child("www").expect("www label fits"),
                name: d.name.clone(),
                tld: d.tld,
                registrar,
                operator,
                registrar_id,
                operator_id,
            });
        }

        let mut ranked: BTreeMap<Tld, Vec<u32>> = BTreeMap::new();
        for (i, site) in sites.iter().enumerate() {
            ranked.entry(site.tld).or_default().push(i as u32);
        }
        for indices in ranked.values_mut() {
            // Stable sort: sites are already in canonical-name order, so
            // ties within an operator keep name order — deterministic.
            indices.sort_by(|&a, &b| {
                let (sa, sb) = (&sites[a as usize], &sites[b as usize]);
                operator_sizes[&sb.operator]
                    .cmp(&operator_sizes[&sa.operator])
                    .then_with(|| sa.operator.cmp(&sb.operator))
            });
        }
        TrafficPopulation {
            sites,
            ranked,
            registrars,
            operators,
        }
    }

    /// Total query-eligible domains.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when the world had no registered domains.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

/// One query of the client stream, fully determined at planning time.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// Index into [`TrafficPopulation::sites`].
    pub site: u32,
    /// Query name (apex or `www`).
    pub qname: Name,
    /// Query type.
    pub qtype: RrType,
    /// Simulated epoch seconds at which the query is issued.
    pub now: u32,
}

/// Generates the deterministic client stream: `count` queries drawn from
/// `mix` with `seed`, timestamps advancing from `base_now` at `sim_qps`
/// queries per simulated second (so TTLs age as the stream runs).
pub fn generate_stream(
    population: &TrafficPopulation,
    mix: &TrafficMix,
    seed: u64,
    count: u64,
    base_now: u32,
    sim_qps: u32,
) -> Vec<PlannedQuery> {
    assert!(!population.is_empty(), "no domains to query");
    let sim_qps = sim_qps.max(1);

    // TLDs with no population drop out of the mix; weights renormalize.
    let tlds: Vec<Tld> = mix
        .tld_share
        .iter()
        .filter(|(tld, w)| *w > 0.0 && population.ranked.contains_key(tld))
        .map(|(tld, _)| *tld)
        .collect();
    assert!(!tlds.is_empty(), "traffic mix matches no populated TLD");
    let tld_pick = Categorical::new(
        &mix.tld_share
            .iter()
            .filter(|(tld, w)| *w > 0.0 && population.ranked.contains_key(tld))
            .map(|(_, w)| *w)
            .collect::<Vec<f64>>(),
    );
    let zipfs: BTreeMap<Tld, Zipf> = tlds
        .iter()
        .map(|&tld| {
            let n = population.ranked[&tld].len();
            (tld, Zipf::new(n, mix.zipf_exponent))
        })
        .collect();
    let qtypes: Vec<QtypeMix> = mix.qtype_share.iter().map(|(q, _)| *q).collect();
    let qtype_pick = Categorical::new(
        &mix.qtype_share.iter().map(|(_, w)| *w).collect::<Vec<f64>>(),
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = Vec::with_capacity(count as usize);
    for i in 0..count {
        let tld = tlds[tld_pick.sample(rng.random_range(0.0..1.0))];
        let rank = zipfs[&tld].sample(rng.random_range(0.0..1.0));
        let site_idx = population.ranked[&tld][rank];
        let site = &population.sites[site_idx as usize];
        let (qname, qtype) = match qtypes[qtype_pick.sample(rng.random_range(0.0..1.0))] {
            QtypeMix::Mx => (site.name.clone(), RrType::Mx),
            q => {
                let qname = if rng.random_bool(mix.www_share) {
                    site.www.clone()
                } else {
                    site.name.clone()
                };
                let qtype = match q {
                    QtypeMix::Aaaa => RrType::Aaaa,
                    _ => RrType::A,
                };
                (qname, qtype)
            }
        };
        stream.push(PlannedQuery {
            site: site_idx,
            qname,
            qtype,
            now: base_now.saturating_add((i / sim_qps as u64) as u32),
        });
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zipf_weights_sum_to_one() {
        for &(n, s) in &[(1usize, 1.0), (10, 0.5), (1000, 0.95), (500, 1.4)] {
            let zipf = Zipf::new(n, s);
            let sum: f64 = (0..n).map(|k| zipf.weight(k)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "n={n} s={s}: sum {sum}");
            assert_eq!(zipf.len(), n);
        }
    }

    #[test]
    fn zipf_rank1_frequency_matches_exponent() {
        // Analytically: P(rank 0) = 1 / H_{n,s}. Check the empirical
        // frequency of 40k inverse-CDF draws lands within 10%.
        let n = 50;
        let s = 1.0;
        let zipf = Zipf::new(n, s);
        let harmonic: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let expected = 1.0 / harmonic;
        assert!((zipf.weight(0) - expected).abs() < 1e-9);

        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let draws = 40_000;
        let hits = (0..draws)
            .filter(|_| zipf.sample(rng.random_range(0.0..1.0)) == 0)
            .count();
        let freq = hits as f64 / draws as f64;
        assert!(
            (freq - expected).abs() / expected < 0.10,
            "rank-1 freq {freq:.4} vs expected {expected:.4}"
        );
    }

    #[test]
    fn zipf_rank_weights_decay_by_the_exponent() {
        let zipf = Zipf::new(100, 0.95);
        // weight(0) / weight(k-1th) = k^s.
        let ratio = zipf.weight(0) / zipf.weight(9);
        assert!(
            (ratio - 10f64.powf(0.95)).abs() < 1e-6,
            "rank-1/rank-10 ratio {ratio}"
        );
        // Monotone non-increasing.
        for k in 1..100 {
            assert!(zipf.weight(k) <= zipf.weight(k - 1) + 1e-12);
        }
    }

    #[test]
    fn zipf_sample_covers_all_ranks_and_clamps() {
        let zipf = Zipf::new(3, 1.0);
        assert_eq!(zipf.sample(0.0), 0);
        // u just below 1.0 must clamp into range.
        assert_eq!(zipf.sample(0.999_999_999), 2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[zipf.sample(rng.random_range(0.0..1.0))] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

        #[test]
        fn zipf_draw_sequences_are_seed_reproducible(
            seed in any::<u64>(),
            n in 1usize..400,
        ) {
            let zipf = Zipf::new(n, 0.95);
            let draw = |seed: u64| -> Vec<usize> {
                let mut rng = StdRng::seed_from_u64(seed);
                (0..64).map(|_| zipf.sample(rng.random_range(0.0..1.0))).collect()
            };
            let first = draw(seed);
            let second = draw(seed);
            prop_assert_eq!(&first, &second);
            for &rank in &first {
                prop_assert!(rank < n);
            }
        }
    }
}
