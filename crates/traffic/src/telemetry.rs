//! Latency and throughput telemetry: fixed log-bucket histograms.
//!
//! Latency here is *simulated* — the driver prices each query from the
//! resolver's own accounting (attempts, simulated backoff, TCP
//! fallbacks), the same convention the retry machinery uses. That keeps
//! the histogram deterministic: two runs with the same seed produce the
//! same buckets, regardless of host speed. Wall-clock time only enters
//! the throughput numbers, which are reported separately.

/// Number of power-of-two buckets: bucket 0 is `[0, 1)` ms, bucket `i`
/// (i ≥ 1) is `[2^(i-1), 2^i)` ms; the last bucket absorbs everything
/// above ~17 minutes.
pub const BUCKETS: usize = 21;

/// A fixed log-bucket latency histogram (milliseconds).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    total_ms: u64,
}

fn bucket_of(ms: u32) -> usize {
    if ms == 0 {
        0
    } else {
        (32 - ms.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// The inclusive upper bound of bucket `i`, used as the percentile's
/// reported value (conservative: never under-reports).
fn upper_bound_ms(i: usize) -> u64 {
    if i == 0 {
        1
    } else {
        1u64 << i
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one query latency.
    pub fn record(&mut self, ms: u32) {
        self.buckets[bucket_of(ms)] += 1;
        self.count += 1;
        self.total_ms += ms as u64;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded latencies, ms.
    pub fn total_ms(&self) -> u64 {
        self.total_ms
    }

    /// Mean latency, ms (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ms as f64 / self.count as f64
        }
    }

    /// The raw bucket counts (index = power-of-two bucket).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_ms += other.total_ms;
    }

    /// The latency at quantile `q ∈ (0, 1]`, reported as the upper bound
    /// of the bucket holding that sample (0 when empty).
    pub fn quantile_ms(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return upper_bound_ms(i);
            }
        }
        upper_bound_ms(BUCKETS - 1)
    }

    /// Median latency, ms.
    pub fn p50(&self) -> u64 {
        self.quantile_ms(0.50)
    }

    /// 90th percentile latency, ms.
    pub fn p90(&self) -> u64 {
        self.quantile_ms(0.90)
    }

    /// 99th percentile latency, ms.
    pub fn p99(&self) -> u64 {
        self.quantile_ms(0.99)
    }

    /// 99.9th percentile latency, ms.
    pub fn p999(&self) -> u64 {
        self.quantile_ms(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_spaced() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u32::MAX), BUCKETS - 1);
    }

    #[test]
    fn percentiles_walk_the_cumulative_counts() {
        let mut h = LatencyHistogram::new();
        // 90 fast queries (1ms → bucket 1), 9 at ~100ms, 1 at ~2000ms.
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..9 {
            h.record(100);
        }
        h.record(2000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 2);
        assert_eq!(h.p90(), 2);
        assert_eq!(h.p99(), 128);
        assert_eq!(h.p999(), 2048);
        assert!((h.mean_ms() - (90.0 + 900.0 + 2000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.mean_ms(), 0.0);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(5);
        b.record(500);
        b.record(5);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.total_ms(), 510);
        assert_eq!(merged.buckets()[bucket_of(5)], 2);
        assert_eq!(merged.buckets()[bucket_of(500)], 1);
    }
}
