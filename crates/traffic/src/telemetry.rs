//! Latency and throughput telemetry: fixed log-linear-bucket histograms.
//!
//! Latency here is *simulated* — the driver prices each query from the
//! resolver's own accounting (attempts, simulated backoff, TCP
//! fallbacks), the same convention the retry machinery uses. That keeps
//! the histogram deterministic: two runs with the same seed produce the
//! same buckets, regardless of host speed. Wall-clock time only enters
//! the throughput numbers, which are reported separately.
//!
//! Buckets are *log-linear* (HDR-histogram style): each power of two is
//! split into [`SUB_BUCKETS`] linear sub-buckets, so relative bucket
//! width never exceeds 1/8 ≈ 12.5%. Pure log2 buckets — the previous
//! design — collapsed every latency in `[64, 128)` ms into one bucket,
//! which made p50 = p90 = p99 = p999 whenever the distribution sat
//! inside one octave (exactly what `BENCH_traffic.json` showed: four
//! identical 128 ms percentiles). With 8 sub-buckets per octave the
//! percentiles of any realistically spread distribution are distinct.

/// Linear sub-buckets per power of two (must be a power of two).
pub const SUB_BUCKETS: usize = 8;

/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 3;

/// Total bucket count. Values `0..SUB_BUCKETS` get exact buckets; above
/// that, value `v` with `e = floor(log2 v)` lands in
/// `(e - SUB_BITS + 1) * SUB_BUCKETS + ((v >> (e - SUB_BITS)) & (SUB_BUCKETS - 1))`.
/// 240 buckets cover the full `u32` range with no clamping.
pub const BUCKETS: usize = 240;

/// A fixed log-linear-bucket latency histogram (milliseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    total_ms: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            total_ms: 0,
        }
    }
}

fn bucket_of(ms: u32) -> usize {
    if (ms as usize) < SUB_BUCKETS {
        ms as usize
    } else {
        let e = 31 - ms.leading_zeros();
        ((e - SUB_BITS + 1) as usize) * SUB_BUCKETS
            + ((ms >> (e - SUB_BITS)) as usize & (SUB_BUCKETS - 1))
    }
}

/// The largest value mapping into bucket `i` (inclusive), used as the
/// percentile's reported value (conservative: never under-reports, and
/// over-reports by less than 12.5%).
fn upper_bound_ms(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        i as u64
    } else {
        let e = (i / SUB_BUCKETS) as u32 + SUB_BITS - 1;
        let m = (i % SUB_BUCKETS) as u64;
        ((SUB_BUCKETS as u64 + m + 1) << (e - SUB_BITS)) - 1
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one query latency.
    pub fn record(&mut self, ms: u32) {
        self.buckets[bucket_of(ms)] += 1;
        self.count += 1;
        self.total_ms += ms as u64;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded latencies, ms.
    pub fn total_ms(&self) -> u64 {
        self.total_ms
    }

    /// Mean latency, ms (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ms as f64 / self.count as f64
        }
    }

    /// The raw bucket counts (index = log-linear bucket).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_ms += other.total_ms;
    }

    /// The latency at quantile `q ∈ (0, 1]`, reported as the upper bound
    /// of the bucket holding that sample (0 when empty).
    pub fn quantile_ms(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return upper_bound_ms(i);
            }
        }
        upper_bound_ms(BUCKETS - 1)
    }

    /// Median latency, ms.
    pub fn p50(&self) -> u64 {
        self.quantile_ms(0.50)
    }

    /// 90th percentile latency, ms.
    pub fn p90(&self) -> u64 {
        self.quantile_ms(0.90)
    }

    /// 99th percentile latency, ms.
    pub fn p99(&self) -> u64 {
        self.quantile_ms(0.99)
    }

    /// 99.9th percentile latency, ms.
    pub fn p999(&self) -> u64 {
        self.quantile_ms(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_linear() {
        // Exact buckets below SUB_BUCKETS…
        for v in 0..SUB_BUCKETS as u32 {
            assert_eq!(bucket_of(v), v as usize);
        }
        // …then 8 sub-buckets per octave.
        assert_eq!(bucket_of(8), 8);
        assert_eq!(bucket_of(15), 15);
        assert_eq!(bucket_of(16), 16);
        assert_eq!(bucket_of(17), 16, "width-2 sub-bucket in [16, 32)");
        assert_eq!(bucket_of(31), 23);
        assert_eq!(bucket_of(127), 39);
        assert_eq!(bucket_of(128), 40);
        assert_eq!(bucket_of(u32::MAX), BUCKETS - 1);
        // Monotone across the whole range sampled at octave edges.
        let (mut prev_v, mut prev_b) = (0u64, 0usize);
        for e in 0..32u64 {
            for v in [(1u64 << e) - 1, 1u64 << e, (1u64 << e) + 1] {
                let v = v.min(u32::MAX as u64);
                if v <= prev_v {
                    continue;
                }
                let b = bucket_of(v as u32);
                assert!(b >= prev_b, "bucket_of({v}) went backwards");
                (prev_v, prev_b) = (v, b);
            }
        }
    }

    #[test]
    fn upper_bounds_bracket_their_bucket() {
        for v in [0u32, 1, 7, 8, 9, 15, 16, 63, 64, 100, 127, 128, 1000, 1 << 20] {
            let b = bucket_of(v);
            assert!(upper_bound_ms(b) >= v as u64, "upper({b}) < {v}");
            // Conservative but tight: within 12.5% above SUB_BUCKETS.
            if v as usize >= SUB_BUCKETS {
                assert!(upper_bound_ms(b) < v as u64 + (v as u64 / SUB_BUCKETS as u64).max(1) * 2);
            }
        }
        assert_eq!(upper_bound_ms(bucket_of(u32::MAX)), u32::MAX as u64);
    }

    #[test]
    fn percentiles_walk_the_cumulative_counts() {
        let mut h = LatencyHistogram::new();
        // 90 fast queries (1ms, exact bucket), 9 at ~100ms, 1 at ~2000ms.
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..9 {
            h.record(100);
        }
        h.record(2000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 1, "sub-ms values are exact");
        assert_eq!(h.p90(), 1);
        // 100 lands in the width-8 sub-bucket [96, 104): upper bound 103.
        assert_eq!(h.p99(), 103);
        // 2000 lands in [1792, 2048): upper bound 2047.
        assert_eq!(h.p999(), 2047);
        assert!((h.mean_ms() - (90.0 + 900.0 + 2000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn spread_distribution_has_distinct_percentiles() {
        // The regression this design fixes: a realistic mix with the bulk
        // between 64 and 128 ms used to collapse p50 = p90 = p99 = p999
        // into the single [64, 128) log2 bucket. Log-linear sub-buckets
        // must keep all four distinct.
        let mut h = LatencyHistogram::new();
        for i in 0..1000u32 {
            h.record(64 + (i % 60)); // bulk: 64..124 ms
        }
        for _ in 0..80 {
            h.record(250); // slow tail
        }
        for _ in 0..2 {
            h.record(900); // very slow tail
        }
        let (p50, p90, p99, p999) = (h.p50(), h.p90(), h.p99(), h.p999());
        assert!(p50 < p90, "p50 {p50} vs p90 {p90}");
        assert!(p90 < p99, "p90 {p90} vs p99 {p99}");
        assert!(p99 < p999, "p99 {p99} vs p999 {p999}");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.mean_ms(), 0.0);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(5);
        b.record(500);
        b.record(5);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.total_ms(), 510);
        assert_eq!(merged.buckets()[bucket_of(5)], 2);
        assert_eq!(merged.buckets()[bucket_of(500)], 1);
    }
}
