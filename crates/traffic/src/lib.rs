//! # dsec-traffic — the user-traffic plane
//!
//! The paper measures *domains*; this crate re-expresses the same
//! population in *query* space: a deterministic, multi-threaded load
//! generator that plays a population of stub clients against the
//! validating resolver farm, over the simulated ecosystem's network (and
//! therefore through its fault plane — chaos campaigns compose with
//! load).
//!
//! Four pieces:
//!
//! - [`workload`]: seeded Zipf popularity over the SLD population with
//!   big-operator head bias (Figure 3's concentration, re-lived by
//!   users), the per-TLD query mix and qtype mix from
//!   [`dsec_workloads::spec::TrafficMix`];
//! - [`driver`]: N worker threads sharding the client stream over a pool
//!   of [`dsec_resolver::Resolver`]s behind one shared, capacity-bounded
//!   [`dsec_resolver::Cache`];
//! - [`account`]: per-query RFC 4035 classification
//!   (Secure/Insecure/Bogus/ServFail) attributed to the responsible
//!   registrar and DNS operator — "registrar X's policy left Y% of real
//!   user queries unprotected";
//! - [`telemetry`]: fixed log-bucket latency histograms with
//!   p50/p90/p99/p999 over the simulated per-query latency.
//!
//! Determinism: queries are sharded to workers by a stable hash of
//! (qname, qtype), so every occurrence of a key is handled by the same
//! worker in stream order. Outcome counts, attribution, cache hit/miss
//! counts, and latency histograms are then identical run-to-run *and*
//! across thread counts (as long as the shared cache's capacity bound is
//! not hit mid-run); only wall-clock throughput varies with the host.

#![warn(missing_docs)]

pub mod account;
pub mod driver;
pub mod telemetry;
pub mod workload;

pub use account::{Outcome, OutcomeCounts, TrafficReport};
pub use driver::{run_load, run_load_mixed, run_load_shared, validating_assignment, LoadConfig};
pub use telemetry::LatencyHistogram;
pub use workload::{PlannedQuery, Site, TrafficPopulation, Zipf};

// Re-exported so report consumers can build/inspect a [`TrafficReport`]
// (or arm the degradation machinery) without depending on the resolver
// crate directly.
pub use dsec_resolver::{BreakerPolicy, Cache, ResolverStatsSnapshot};
