//! The load driver: N worker threads sharding the client stream over a
//! pool of validating resolvers behind one shared, striped cache.
//!
//! ## Sharding and determinism
//!
//! Queries are assigned to workers by the same stable case-folded FNV-1a
//! name hash ([`dsec_wire::name_hash64`]) the cache stripes on, **not**
//! round-robin. Every occurrence of a given key is therefore handled by
//! the same worker, in stream order — so whether a query hits or misses
//! the shared cache depends only on the stream, never on cross-worker
//! timing. Outcome counts, attribution, cache counters, and latency
//! histograms are identical run-to-run and across thread counts (until
//! the cache's capacity bound forces oldest-entry eviction, whose victim
//! order is interleaving-dependent; size the bound above the working set
//! when byte-identical histograms matter).
//!
//! ## Contention-free hot path
//!
//! Cache keys are interned once, single-threaded, before the timed
//! region: workers look up precomputed [`CacheKey`]s instead of hashing
//! and cloning names per query, cache hits hand back `Arc`-shared
//! answers, and all accounting (outcome tallies, per-actor attribution,
//! histograms, resolver counters) lives in worker-private accumulators
//! indexed by dense registrar/operator ids — merged once after join.
//! The only cross-thread traffic left in the loop is the sharded cache
//! itself.
//!
//! Per-query latency is priced from the worker's own resolver
//! accounting (UDP attempts, simulated backoff, TCP fallbacks) plus a
//! seeded per-query RTT jitter sample, so a fault-plane campaign
//! running under load shows up exactly where it would in production:
//! in the p99/p999 tail and the ServFail column.

use std::sync::Arc;
use std::time::Instant;

use dsec_ecosystem::World;
use dsec_resolver::{BreakerPolicy, Cache, CacheKey, OnPathThreat, Resolver, RetryPolicy, SpoofGuard};
use dsec_wire::{name_hash64, Name};
use dsec_workloads::TrafficMix;

use crate::account::{classify_answer, Outcome, OutcomeCounts, TrafficReport};
use crate::telemetry::LatencyHistogram;
use crate::workload::{generate_stream, PlannedQuery, TrafficPopulation};

/// Fixed price of a shared-cache hit, simulated ms.
const CACHE_HIT_MS: u32 = 1;
/// Stub-to-resolver overhead per fresh resolution, simulated ms.
const STUB_MS: u32 = 2;
/// One UDP exchange with an authoritative server, simulated ms.
const RTT_MS: u32 = 8;
/// Extra cost of a TCP retry after truncation, simulated ms.
const TCP_MS: u32 = 25;

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Queries in the client stream.
    pub queries: u64,
    /// Worker threads (each owns one resolver of the pool).
    pub threads: usize,
    /// Stream seed.
    pub seed: u64,
    /// The workload model (TLD mix, Zipf exponent, qtype mix).
    pub mix: TrafficMix,
    /// Capacity bound of the shared cache.
    pub cache_capacity: usize,
    /// How fast simulated time advances under the stream, queries per
    /// simulated second (TTLs age as the stream runs).
    pub sim_qps: u32,
    /// Workers call [`Cache::enforce_capacity`] every this many queries.
    pub evict_interval: u64,
    /// Serve-stale horizon (RFC 8767), seconds past expiry an entry may
    /// still answer when upstream fails. 0 disables serve-stale.
    pub max_stale: u32,
    /// Per-authority circuit-breaker policy for the worker resolvers.
    /// `None` runs the bare retry ladder.
    pub breaker: Option<BreakerPolicy>,
    /// Offset added to the world's epoch when planning the stream,
    /// simulated seconds. Lets a follow-up phase (e.g. an outage window
    /// replayed over a warm shared cache) start where the previous
    /// phase's sim clock left off.
    pub now_offset_s: u32,
    /// Fraction of user queries handled by validating resolvers; the
    /// rest go through a non-validating pool (no trust anchor, separate
    /// shared cache). 1.0 — the default — keeps the historical
    /// all-validating fleet and is byte-identical to the pre-knob
    /// driver; the Nosyk et al. measurement puts the real-world share
    /// well below that.
    pub validating_share: f64,
    /// Domains currently under attacker control. Queries for these are
    /// re-labelled after classification: a non-validating user who got
    /// an answer was [`Outcome::Hijacked`]; a validating user whose
    /// resolver refused the forged chain was
    /// [`Outcome::SavedByValidation`].
    pub captured: Vec<Name>,
    /// Anti-spoofing defense profile every worker resolver runs with.
    /// The default is [`SpoofGuard::hardened`] — full TXID + source-port
    /// entropy, 0x20 encoding, strict bailiwick — which leaves runs
    /// without an on-path threat byte-identical to the pre-knob driver.
    pub spoof_guard: SpoofGuard,
    /// Optional on-path attacker racing forged responses against the
    /// fleet's fresh resolutions. `None` (the default) skips the spoofing
    /// race entirely.
    pub threat: Option<OnPathThreat>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            queries: 20_000,
            threads: 1,
            seed: 0x7AF1C,
            mix: TrafficMix::default(),
            cache_capacity: 65_536,
            sim_qps: 64,
            evict_interval: 1_024,
            max_stale: 0,
            breaker: None,
            now_offset_s: 0,
            validating_share: 1.0,
            captured: Vec::new(),
            spoof_guard: SpoofGuard::hardened(),
            threat: None,
        }
    }
}

impl LoadConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn tiny() -> Self {
        LoadConfig {
            queries: 2_000,
            ..LoadConfig::default()
        }
    }

    /// Sets the worker count (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the stream seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the stream length (builder style).
    pub fn with_queries(mut self, queries: u64) -> Self {
        self.queries = queries.max(1);
        self
    }

    /// Sets the serve-stale horizon (builder style).
    pub fn with_max_stale(mut self, max_stale: u32) -> Self {
        self.max_stale = max_stale;
        self
    }

    /// Arms per-authority circuit breakers on every worker resolver
    /// (builder style).
    pub fn with_breaker(mut self, policy: BreakerPolicy) -> Self {
        self.breaker = Some(policy);
        self
    }

    /// Sets the sim-clock offset for the stream start (builder style).
    pub fn with_now_offset(mut self, now_offset_s: u32) -> Self {
        self.now_offset_s = now_offset_s;
        self
    }

    /// Sets the validating-resolver share of the fleet (builder style).
    pub fn with_validating_share(mut self, share: f64) -> Self {
        self.validating_share = share.clamp(0.0, 1.0);
        self
    }

    /// Marks domains as attacker-controlled for outcome re-labelling
    /// (builder style).
    pub fn with_captured(mut self, captured: Vec<Name>) -> Self {
        self.captured = captured;
        self
    }

    /// Sets the fleet's anti-spoofing defense profile (builder style).
    pub fn with_spoof_guard(mut self, guard: SpoofGuard) -> Self {
        self.spoof_guard = guard;
        self
    }

    /// Arms an on-path forgery race against the fleet (builder style).
    pub fn with_threat(mut self, threat: OnPathThreat) -> Self {
        self.threat = Some(threat);
        self
    }

    /// Sim seconds the stream spans at `sim_qps` (how far the clock
    /// advances from the first query to the last).
    pub fn stream_span_s(&self) -> u32 {
        (self.queries.max(1) / self.sim_qps.max(1) as u64) as u32
    }
}

/// Deterministic per-query network jitter for fresh resolutions,
/// simulated ms: a splitmix-style hash of (stream seed, stream index),
/// so the sample drawn for query `i` is a property of the stream itself
/// — identical run-to-run and across thread counts. Most samples are a
/// small 0–15 ms spread on top of the deterministic RTT ladder; 1 in 64
/// lands a moderate +32 ms tail and 1 in 512 a far +160 ms tail, so the
/// latency percentiles separate (p50 < p99 < p999) the way real
/// resolver RTT samples do instead of collapsing onto one bucket.
fn jitter_ms(seed: u64, index: u64) -> u32 {
    let mut h = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    let mut ms = (h % 16) as u32;
    if h.is_multiple_of(64) {
        ms += 32;
    }
    if h.is_multiple_of(512) {
        ms += 160;
    }
    ms
}

/// Whether stream query `index` belongs to a validating user, given the
/// fleet's `share` of validating resolvers. Like [`jitter_ms`] this is a
/// splitmix-style hash of (seed, index) — a property of the stream, not
/// of worker interleaving — so the same user population shows up across
/// thread counts and repeated phases. The extremes short-circuit:
/// `share >= 1.0` is *exactly* the historical all-validating fleet.
pub fn validating_assignment(seed: u64, index: u64, share: f64) -> bool {
    if share >= 1.0 {
        return true;
    }
    if share <= 0.0 {
        return false;
    }
    let mut h = seed ^ 0xA77A_C0DE_0BAD_D515 ^ index.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 31;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 29;
    h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 32;
    ((h >> 11) as f64 / (1u64 << 53) as f64) < share
}

/// Stable worker shard for a query: the cache's case-folded name hash
/// mixed with the qtype, so each (name, type) key belongs to exactly one
/// worker regardless of thread count.
fn shard_of(query: &PlannedQuery, threads: usize) -> usize {
    let hash = name_hash64(&query.qname)
        ^ (query.qtype.number() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (hash % threads as u64) as usize
}

/// One worker's private accumulators, merged after join. Attribution is
/// a dense `Vec` indexed by registrar/operator id — no per-query String
/// hashing or tree walks.
struct WorkerTally {
    outcomes: OutcomeCounts,
    by_registrar: Vec<OutcomeCounts>,
    by_operator: Vec<OutcomeCounts>,
    histogram: LatencyHistogram,
    sim_busy_ms: u64,
    stats: dsec_resolver::ResolverStatsSnapshot,
}

impl WorkerTally {
    fn new(registrars: usize, operators: usize) -> WorkerTally {
        WorkerTally {
            outcomes: OutcomeCounts::default(),
            by_registrar: vec![OutcomeCounts::default(); registrars],
            by_operator: vec![OutcomeCounts::default(); operators],
            histogram: LatencyHistogram::new(),
            sim_busy_ms: 0,
            stats: dsec_resolver::ResolverStatsSnapshot::default(),
        }
    }
}

/// Field-wise sum of resolver-pool counters (the snapshot carries no
/// arithmetic of its own).
fn add_stats(
    dst: &mut dsec_resolver::ResolverStatsSnapshot,
    src: &dsec_resolver::ResolverStatsSnapshot,
) {
    dst.udp_attempts += src.udp_attempts;
    dst.timeouts += src.timeouts;
    dst.tcp_fallbacks += src.tcp_fallbacks;
    dst.error_rcodes += src.error_rcodes;
    dst.backoff_ms += src.backoff_ms;
    dst.cache_hits += src.cache_hits;
    dst.cache_misses += src.cache_misses;
    dst.stale_hits += src.stale_hits;
    dst.negative_hits += src.negative_hits;
    dst.budget_exhausted += src.budget_exhausted;
    dst.breaker_trips += src.breaker_trips;
    dst.breaker_short_circuits += src.breaker_short_circuits;
    dst.poison_races += src.poison_races;
    dst.poison_admitted += src.poison_admitted;
    dst.poison_scrubbed += src.poison_scrubbed;
}

/// Runs the load against `world`: plans the stream, shards it across
/// `config.threads` workers (one [`Resolver`] each, all behind one
/// bounded shared [`Cache`]), and returns the merged report.
pub fn run_load(world: &World, config: &LoadConfig) -> TrafficReport {
    let cache = Arc::new(Cache::bounded(config.cache_capacity).with_max_stale(config.max_stale));
    run_load_shared(world, config, cache)
}

/// Like [`run_load`] but over a caller-supplied shared cache, so
/// multi-phase campaigns (warm-up, then an outage window) can carry cache
/// state between phases. The caller owns the cache's serve-stale horizon;
/// `config.max_stale` is ignored here. Combine with
/// [`LoadConfig::with_now_offset`] so the follow-up phase's sim clock
/// continues where the previous phase ended. The non-validating side of
/// the fleet (if `validating_share` < 1.0) gets a fresh cache; use
/// [`run_load_mixed`] to carry that one across phases too.
pub fn run_load_shared(world: &World, config: &LoadConfig, cache: Arc<Cache>) -> TrafficReport {
    let nv_cache =
        Arc::new(Cache::bounded(config.cache_capacity).with_max_stale(config.max_stale));
    run_load_mixed(world, config, cache, nv_cache)
}

/// The full-control entry point: caller-supplied shared caches for both
/// sides of the mixed fleet. Validating and non-validating resolvers
/// never share cache entries — a poisoned answer a non-validating user
/// accepted must not be servable to a validating one, and a validated
/// answer carries a security status the non-validating pool would not
/// have computed.
pub fn run_load_mixed(
    world: &World,
    config: &LoadConfig,
    cache: Arc<Cache>,
    nv_cache: Arc<Cache>,
) -> TrafficReport {
    let population = TrafficPopulation::from_world(world);
    let stream = generate_stream(
        &population,
        &config.mix,
        config.seed,
        config.queries.max(1),
        world.today.epoch_seconds().saturating_add(config.now_offset_s),
        config.sim_qps,
    );

    let threads = config.threads.max(1);
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); threads];
    for (i, query) in stream.iter().enumerate() {
        shards[shard_of(query, threads)].push(i);
    }

    // Intern every query name once, single-threaded, before the clock
    // starts: workers index this table instead of hashing names.
    let keys: Vec<CacheKey> = stream
        .iter()
        .map(|q| cache.key_of(&q.qname, q.qtype))
        .collect();
    // Cache keys carry the owning cache's interner ids, so the
    // non-validating pool needs its own table (empty, and never indexed,
    // when the whole fleet validates).
    let nv_keys: Vec<CacheKey> = if config.validating_share < 1.0 {
        stream
            .iter()
            .map(|q| nv_cache.key_of(&q.qname, q.qtype))
            .collect()
    } else {
        Vec::new()
    };
    let trust_anchor = world.trust_anchor();
    let network = world.network.clone();
    let evict_interval = config.evict_interval.max(1);

    // Captured-domain lookup as a dense per-site flag: the hot loop tests
    // a Vec<bool> instead of comparing names.
    let captured_names: std::collections::BTreeSet<String> = config
        .captured
        .iter()
        .map(|n| n.to_canonical().to_string())
        .collect();
    let captured_site: Vec<bool> = population
        .sites
        .iter()
        .map(|s| captured_names.contains(&s.name.to_canonical().to_string()))
        .collect();

    let started = Instant::now();
    let tallies: Vec<WorkerTally> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                let cache = Arc::clone(&cache);
                let nv_cache = Arc::clone(&nv_cache);
                let trust_anchor = trust_anchor.clone();
                let network = Arc::clone(&network);
                let stream = &stream;
                let keys = &keys;
                let nv_keys = &nv_keys;
                let population = &population;
                let captured_site = &captured_site;
                scope.spawn(move |_| {
                    let mut resolver = Resolver::new(network.clone(), trust_anchor)
                        .with_policy(RetryPolicy::default())
                        .with_shared_cache(cache.clone())
                        .with_spoof_guard(config.spoof_guard);
                    // The non-validating half of the fleet: no trust
                    // anchor, its own shared cache. Idle (and free of
                    // cache traffic) at the default validating_share.
                    let mut nv_resolver = Resolver::new(network, Vec::new())
                        .with_policy(RetryPolicy::default())
                        .with_shared_cache(nv_cache.clone())
                        .with_spoof_guard(config.spoof_guard);
                    if let Some(policy) = config.breaker {
                        resolver = resolver.with_breaker(policy);
                        nv_resolver = nv_resolver.with_breaker(policy);
                    }
                    if let Some(threat) = &config.threat {
                        resolver = resolver.with_on_path_threat(threat.clone());
                        nv_resolver = nv_resolver.with_on_path_threat(threat.clone());
                    }
                    let mut tally =
                        WorkerTally::new(population.registrars.len(), population.operators.len());
                    for (done, &i) in shard.iter().enumerate() {
                        let query = &stream[i];
                        let validating =
                            validating_assignment(config.seed, i as u64, config.validating_share);
                        let (r, key) = if validating {
                            (&mut resolver, keys[i])
                        } else {
                            (&mut nv_resolver, nv_keys[i])
                        };
                        let before = r.stats();
                        let result =
                            r.resolve_cached_keyed(key, &query.qname, query.qtype, query.now);
                        let after = r.stats();
                        let latency = if after.cache_hits > before.cache_hits {
                            CACHE_HIT_MS
                        } else {
                            STUB_MS
                                + RTT_MS * (after.udp_attempts - before.udp_attempts) as u32
                                + (after.backoff_ms - before.backoff_ms) as u32
                                + TCP_MS * (after.tcp_fallbacks - before.tcp_fallbacks) as u32
                                + jitter_ms(config.seed, i as u64)
                        };
                        tally.histogram.record(latency);
                        tally.sim_busy_ms += latency as u64;

                        let outcome = match &result {
                            // Degraded serves outrank the RFC 4035 class:
                            // a stale answer is "available during outage",
                            // whatever its original validation state.
                            Ok(_) if after.stale_hits > before.stale_hits => Outcome::Stale,
                            Ok(_) if after.negative_hits > before.negative_hits => {
                                Outcome::NegativeHit
                            }
                            Ok(answer) => classify_answer(answer),
                            Err(_) => Outcome::ServFail,
                        };
                        // Attack re-labelling for captured domains: any
                        // answer a non-validating user got came from the
                        // attacker; a validating refusal is DNSSEC
                        // working as designed.
                        let outcome = if captured_site[query.site as usize] {
                            match (validating, outcome) {
                                (false, Outcome::ServFail) => Outcome::ServFail,
                                (false, _) => Outcome::Hijacked,
                                (true, Outcome::Bogus) | (true, Outcome::ServFail) => {
                                    Outcome::SavedByValidation
                                }
                                (true, other) => other,
                            }
                        } else {
                            outcome
                        };
                        tally.outcomes.add(outcome);
                        let site = &population.sites[query.site as usize];
                        tally.by_registrar[site.registrar_id as usize].add(outcome);
                        tally.by_operator[site.operator_id as usize].add(outcome);

                        if (done as u64 + 1).is_multiple_of(evict_interval) {
                            cache.enforce_capacity(query.now);
                            nv_cache.enforce_capacity(query.now);
                        }
                    }
                    tally.stats = resolver.stats();
                    add_stats(&mut tally.stats, &nv_resolver.stats());
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load worker does not panic"))
            .collect()
    })
    .expect("load scope completes");
    let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;

    let mut outcomes = OutcomeCounts::default();
    let mut by_registrar = std::collections::BTreeMap::new();
    let mut by_operator = std::collections::BTreeMap::new();
    let mut histogram = LatencyHistogram::new();
    let mut resolver_stats = dsec_resolver::ResolverStatsSnapshot::default();
    let mut sim_elapsed_ms = 0u64;
    for tally in &tallies {
        outcomes.merge(&tally.outcomes);
        for (id, v) in tally.by_registrar.iter().enumerate() {
            if v.total() > 0 {
                by_registrar
                    .entry(population.registrars[id].clone())
                    .or_insert_with(OutcomeCounts::default)
                    .merge(v);
            }
        }
        for (id, v) in tally.by_operator.iter().enumerate() {
            if v.total() > 0 {
                by_operator
                    .entry(population.operators[id].clone())
                    .or_insert_with(OutcomeCounts::default)
                    .merge(v);
            }
        }
        histogram.merge(&tally.histogram);
        add_stats(&mut resolver_stats, &tally.stats);
        sim_elapsed_ms = sim_elapsed_ms.max(tally.sim_busy_ms);
    }

    TrafficReport {
        threads,
        seed: config.seed,
        total: stream.len() as u64,
        outcomes,
        by_registrar,
        by_operator,
        histogram,
        resolver: resolver_stats,
        cache_entries: cache.len(),
        cache_capacity: config.cache_capacity,
        elapsed_ms,
        sim_elapsed_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_per_seed_and_index() {
        for i in 0..1_000u64 {
            assert_eq!(jitter_ms(0x7AF1C, i), jitter_ms(0x7AF1C, i));
        }
        // Different seeds reshuffle the samples.
        assert!((0..1_000u64).any(|i| jitter_ms(1, i) != jitter_ms(2, i)));
    }

    #[test]
    fn jitter_spreads_with_a_bounded_tail() {
        let samples: Vec<u32> = (0..100_000u64).map(|i| jitter_ms(0x7AF1C, i)).collect();
        let max = *samples.iter().max().unwrap();
        assert!(max <= 15 + 32 + 160, "tail bounded: {max}");
        // The base spread covers the 0–15 ms band…
        for base in 0..16u32 {
            assert!(samples.contains(&base), "base value {base} ms never drawn");
        }
        // …and the tails fire at roughly their design rates (1/64, 1/512).
        let moderate = samples.iter().filter(|&&s| s >= 32).count();
        let far = samples.iter().filter(|&&s| s >= 160).count();
        assert!((500..4_000).contains(&moderate), "moderate tail: {moderate}/100000");
        assert!((50..600).contains(&far), "far tail: {far}/100000");
    }
}
