//! E-K1 — the key-rollover lifecycle experiment.
//!
//! Three arms exercise the scheduled-rollover plane end to end against
//! the user-traffic plane, all seeded and byte-identical across worker
//! thread counts:
//!
//! * **Arm A (correct)** — a correctly sequenced double-signature KSK
//!   rollover on the most popular chained `.nl` site (the Zipf head,
//!   signed on demand so the roller is guaranteed daily query volume at
//!   any population scale), checked day by day: every day of the
//!   transition must validate, zero bogus answers.
//! * **Arm B (mistimed DS)** — the identical rollover with the
//!   registrar's DS leg landing days late. The resulting bogus window
//!   is pure schedule arithmetic ([`RolloverPlan::bogus_window`]), and
//!   the traffic plane must observe bogus answers on *exactly* those
//!   days, attributed to the victim's registrar and operator.
//! * **Arm C (rollover under outage)** — the mistimed rollover riding
//!   through a sustained outage of the biggest DNS operator fleet that
//!   is *not* the roller's: serve-stale (RFC 8767) keeps the outage
//!   victim's availability ≥ 90% while the rolling domain's bogus
//!   window stays fully visible — degraded serving must never mask a
//!   validation failure.

use std::collections::BTreeMap;

use dsec_authserver::OutageScenario;
use dsec_ecosystem::{DsTiming, Hosting, RolloverPlan, RolloverStyle, Tld, World};
use dsec_reports::ExperimentResult;
use dsec_scanner::{rollover_census, rollover_census_table};
use dsec_traffic::{run_load, LoadConfig, OutcomeCounts, TrafficPopulation, TrafficReport};
use dsec_workloads::{build, PopulationConfig};

use crate::experiments::{
    largest_operator_fleet, outage_phases, OUTAGE_MAX_STALE, OUTAGE_QPS, OUTAGE_QUERIES,
    OUTAGE_SEED,
};

/// Stream seed for the day-by-day arms.
const K1_SEED: u64 = 0x0C0FFEE;
/// Queries per simulated day — enough that the Zipf head domain is
/// queried every day.
const K1_QUERIES: u64 = 1_024;
/// Days the registrar's DS leg lands late in arms B and C.
const K1_LATE_DAYS: u32 = 5;

/// The most popular `.nl` site that is — or can be made — fully chained
/// (`.nl` is the TLD with the incentivized DNSSEC rate). The Zipf head
/// must carry the rollover so its bogus window is actually *queried*:
/// at full scale the first organically signed site can sit hundreds of
/// ranks deep, far below the daily query volume, so an unsigned head is
/// signed first (operator enables DNSSEC, DS relayed) and rolled.
pub(crate) fn rollover_victim(world: &mut World, population: &TrafficPopulation) -> dsec_traffic::Site {
    for &i in &population.ranked[&Tld::Nl] {
        let site = population.sites[i as usize].clone();
        let Some(d) = world.domain(&site.name) else {
            continue;
        };
        let (signed, sponsor, third_party) = (
            d.is_signed(),
            d.sponsor,
            matches!(d.hosting, Hosting::ThirdParty { .. }),
        );
        let chained = || !world.registry(site.tld).ds_of(&site.name).is_empty();
        if signed {
            if chained() {
                return site;
            }
            continue; // signed but chainless: rolling it can never go bogus
        }
        let ok = if third_party {
            world
                .third_party_enable_dnssec(&site.name)
                .ok()
                .map(|ds| {
                    world
                        .registry_mut(site.tld)
                        .set_ds(sponsor, &site.name, &[ds])
                        .is_ok()
                })
                .unwrap_or(false)
        } else {
            // The head site's owner pays for DNSSEC where it is a paid
            // add-on (the GoDaddy model) — the rollover needs a chain.
            world.enable_dnssec_paid(&site.name).is_ok()
        };
        if ok && !world.registry(site.tld).ds_of(&site.name).is_empty() {
            return site;
        }
    }
    panic!("no .nl site could carry the rollover");
}

/// One day's traffic against a fresh resolver cache: the day-by-day
/// arms re-resolve from scratch so every day reflects that day's chain,
/// not yesterday's cache.
fn day_load(world: &World, threads: usize) -> TrafficReport {
    run_load(
        world,
        &LoadConfig::default()
            .with_queries(K1_QUERIES)
            .with_threads(threads)
            .with_seed(K1_SEED),
    )
}

/// How many of the day's planned queries land on `site`. The stream is
/// a pure function of (population, mix, seed), so the same count holds
/// on every day of a day-by-day walk.
fn planned_hits(population: &TrafficPopulation, site: &dsec_traffic::Site) -> u64 {
    let config = LoadConfig::default();
    dsec_traffic::workload::generate_stream(
        population,
        &config.mix,
        K1_SEED,
        K1_QUERIES,
        0,
        config.sim_qps,
    )
    .iter()
    .filter(|q| population.sites[q.site as usize].name == site.name)
    .count() as u64
}

/// Walks `world` day by day until `last`, running one fresh-cache load
/// per day, and returns each day's outcome tally keyed by
/// days-since-start.
fn daily_bogus(world: &mut World, last: dsec_ecosystem::SimDate) -> BTreeMap<u32, OutcomeCounts> {
    let mut days = BTreeMap::new();
    let start = world.today;
    while world.today < last {
        world.tick();
        days.insert(world.today.0 - start.0, day_load(world, 1).outcomes);
    }
    days
}

/// E-K1 — scheduled rollovers, mistimed DS windows, and
/// rollover-under-outage chaos. See the module docs for the three arms.
pub fn experiment_rollover_lifecycle(population: &PopulationConfig) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E-K1",
        "Key-rollover lifecycle: correct transitions, mistimed-DS bogus windows, rollover under outage",
    );

    // ---- Arm A: correctly sequenced double-signature KSK rollover. ----
    let mut pw = build(population);
    let traffic_pop = TrafficPopulation::from_world(&pw.world);
    let victim = rollover_victim(&mut pw.world, &traffic_pop);
    let plan_a = RolloverPlan::correct(
        RolloverStyle::DoubleSignatureKsk,
        pw.world.today.plus_days(1),
    );
    let end_a = plan_a.completion().plus_days(1);
    pw.world
        .schedule_rollover(&victim.name, plan_a)
        .expect("signed head schedules");
    let victim_hits = planned_hits(&traffic_pop, &victim);
    let days_a = daily_bogus(&mut pw.world, end_a);
    let bogus_a: u64 = days_a.values().map(|c| c.bogus).sum();
    result.check(
        "arm A: victim domain queried on every day of the transition",
        1.0,
        f64::from(victim_hits > 0),
        0.0,
    );
    result.check(
        "arm A: correct double-signature rollover serves zero bogus answers",
        0.0,
        bogus_a as f64,
        0.0,
    );
    result.check(
        "arm A: rollover completed (lifecycle state drained)",
        1.0,
        f64::from(
            pw.world.rollover_state(&victim.name).is_none()
                && pw.world.events.count("rollover_completed") >= 1,
        ),
        0.0,
    );

    // ---- Arm B: the same rollover with the DS leg landing late. ----
    let mut pw_b = build(population);
    let victim_b = rollover_victim(&mut pw_b.world, &traffic_pop);
    assert_eq!(victim_b.name, victim.name, "identical builds pick one victim");
    let plan_b = RolloverPlan::correct(
        RolloverStyle::DoubleSignatureKsk,
        pw_b.world.today.plus_days(1),
    )
    .with_ds_timing(DsTiming::Late { days: K1_LATE_DAYS });
    let window = plan_b.bogus_window().expect("late DS opens a window");
    let window_close = window.1.expect("late window is bounded");
    let end_b = window_close.plus_days(1);
    let start_b = pw_b.world.today;
    pw_b.world
        .schedule_rollover(&victim.name, plan_b.clone())
        .expect("same world build, same signed head");
    let days_b = daily_bogus(&mut pw_b.world, end_b);
    let misclassified_days = days_b
        .iter()
        .filter(|(offset, counts)| {
            let day = start_b.plus_days(**offset);
            plan_b.is_bogus_on(day) != (counts.bogus > 0)
        })
        .count();
    let observed_window_days = days_b.values().filter(|c| c.bogus > 0).count() as u32;
    let predicted_window_days = window_close.0 - window.0 .0;
    result.check(
        "arm B: bogus observed on exactly the predicted window days",
        0.0,
        misclassified_days as f64,
        0.0,
    );
    result.check(
        "arm B: bogus-window length equals the injected timing error",
        predicted_window_days as f64,
        observed_window_days as f64,
        0.0,
    );
    // Attribution + thread-count invariance, measured on the first
    // bogus-window day the walk left the world on … which is `end_b`,
    // past the window. Re-run the window peak explicitly instead: the
    // report for each day was discarded, so replay the last in-window
    // day's load at 1 and 8 threads on a world parked inside the window.
    let mut pw_b8 = build(population);
    rollover_victim(&mut pw_b8.world, &traffic_pop);
    pw_b8
        .world
        .schedule_rollover(&victim.name, plan_b.clone())
        .expect("same build schedules again");
    let mid_window = window.0.plus_days(0);
    while pw_b8.world.today < mid_window {
        pw_b8.world.tick();
    }
    let in_window_1 = day_load(&pw_b8.world, 1);
    let in_window_8 = day_load(&pw_b8.world, 8);
    let victim_counts = in_window_1
        .by_registrar
        .get(&victim.registrar)
        .copied()
        .unwrap_or_default();
    result.check(
        "arm B: every bogus answer attributes to the victim's registrar",
        1.0,
        f64::from(
            in_window_1.outcomes.bogus > 0
                && victim_counts.bogus == in_window_1.outcomes.bogus
                && in_window_1
                    .by_operator
                    .get(&victim.operator)
                    .map(|c| c.bogus == in_window_1.outcomes.bogus)
                    .unwrap_or(false),
        ),
        0.0,
    );
    result.check(
        "arm B: tallies byte-identical across 1 and 8 worker threads",
        1.0,
        f64::from(
            in_window_1.outcomes == in_window_8.outcomes
                && in_window_1.by_registrar == in_window_8.by_registrar
                && in_window_1.by_operator == in_window_8.by_operator
                && in_window_1.histogram == in_window_8.histogram,
        ),
        0.0,
    );

    // ---- Arm C: the mistimed rollover riding through an operator
    // outage. The rolling domain is hosted *outside* the outage victim's
    // fleet, so serve-stale answers for the dead fleet must coexist with
    // visible bogus answers for the mistimed rollover — degradation
    // never masks a validation failure. ----
    let mut pw_c = build(population);
    let pop_c = TrafficPopulation::from_world(&pw_c.world);
    let roller = rollover_victim(&mut pw_c.world, &pop_c);
    let (outage_victim, fleet) =
        largest_operator_fleet(&pw_c.world, Some(roller.operator.as_str()));
    let plan_c = RolloverPlan::correct(
        RolloverStyle::DoubleSignatureKsk,
        pw_c.world.today.plus_days(1),
    )
    .with_ds_timing(DsTiming::Late { days: K1_LATE_DAYS });
    let (window_from, _) = plan_c.bogus_window().expect("late DS opens a window");
    pw_c.world
        .schedule_rollover(&roller.name, plan_c)
        .expect("roller is signed");
    while pw_c.world.today < window_from {
        pw_c.world.tick();
    }
    let span = (OUTAGE_QUERIES / OUTAGE_QPS as u64) as u32;
    let base = pw_c.world.today.epoch_seconds();
    pw_c.world.fault_plane().enable(OUTAGE_SEED);
    OutageScenario::operator_outage(
        "rollover-collision",
        fleet,
        base + span,
        base + 2 * span + 60,
    )
    .install(pw_c.world.fault_plane());
    let (outage_run, _) = outage_phases(&pw_c.world, span, 1, OUTAGE_MAX_STALE, None);
    let (outage_run8, _) = outage_phases(&pw_c.world, span, 8, OUTAGE_MAX_STALE, None);
    let outage_victim_counts = outage_run
        .by_operator
        .get(&outage_victim)
        .copied()
        .unwrap_or_default();
    let roller_counts = outage_run
        .by_registrar
        .get(&roller.registrar)
        .copied()
        .unwrap_or_default();
    result.check(
        "arm C: serve-stale keeps the outage victim's availability ≥ 90%",
        1.0,
        f64::from(
            outage_run.outcomes.stale > 0 && outage_victim_counts.availability() >= 0.90,
        ),
        0.0,
    );
    result.check(
        "arm C: the rollover's bogus window stays visible through the outage",
        1.0,
        f64::from(outage_run.outcomes.bogus > 0 && roller_counts.bogus > 0),
        0.0,
    );
    result.check(
        "arm C: tallies byte-identical across 1 and 8 worker threads",
        1.0,
        f64::from(
            outage_run.outcomes == outage_run8.outcomes
                && outage_run.by_registrar == outage_run8.by_registrar
                && outage_run.by_operator == outage_run8.by_operator,
        ),
        0.0,
    );

    // The artifact: day-by-day windows and the per-operator census the
    // scanner derives from the always-logged lifecycle events.
    let mut artifact = format!(
        "victim domain {} (registrar {}, operator {})\n\
         arm A (DS on schedule):   bogus window none — {} bogus answers over {} days\n\
         arm B (DS {} days late):  predicted window [{:?}, {:?}) — {} of {} days bogus\n\
         arm C (outage collision): outage victim {} availability {:.1}% with serve-stale; \
         {} stale, {} bogus (roller {})\n\nday-by-day (arm B, day offset: bogus/total):\n",
        victim.name,
        victim.registrar,
        victim.operator,
        bogus_a,
        days_a.len(),
        K1_LATE_DAYS,
        window.0,
        window_close,
        observed_window_days,
        days_b.len(),
        outage_victim,
        100.0 * outage_victim_counts.availability(),
        outage_run.outcomes.stale,
        outage_run.outcomes.bogus,
        roller.name,
    );
    for (offset, counts) in &days_b {
        artifact.push_str(&format!(
            "  day +{offset:<2} {:>5}/{:<5} {}\n",
            counts.bogus,
            counts.total(),
            if counts.bogus > 0 { "← bogus window" } else { "" }
        ));
    }
    artifact.push_str("\nper-operator rollover census (arm B world):\n");
    artifact.push_str(&rollover_census_table(&rollover_census(&pw_b.world)));
    result.artifact = artifact;
    result
}
