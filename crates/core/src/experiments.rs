//! One function per paper artifact: each consumes measurement outputs and
//! returns an [`ExperimentResult`] with the paper's checkpoint values next
//! to the measured ones (see DESIGN.md's experiment index E-T1…E-F8).

use std::sync::Arc;

use dsec_authserver::OutageScenario;
use dsec_ecosystem::{Tld, World, ALL_TLDS};
use dsec_probe::{Finding, ProbeReport};
use dsec_reports::{
    figure3, figure8, figure_series, table1, table2, table3, ExperimentResult, GTLDS,
};
use dsec_resolver::{BreakerPolicy, Cache};
use dsec_scanner::{
    operator_of, operators_to_cover, LongitudinalStore, Metric, ScanCache, ScanOptions, Snapshot,
};
use dsec_traffic::{run_load_shared, LoadConfig, TrafficReport};
use dsec_wire::Name;
use dsec_workloads::{build, PopulationConfig};

/// The paper's top-20 registrar list (Table 2 order).
pub const TOP20: [&str; 20] = [
    "GoDaddy",
    "Alibaba",
    "1AND1",
    "NetworkSolutions",
    "eNom",
    "Bluehost",
    "NameCheap",
    "WIX",
    "HostGator",
    "NameBright",
    "register.com",
    "OVH",
    "DreamHost",
    "WordPress",
    "Amazon",
    "Xinnet",
    "Google",
    "123-reg",
    "Yahoo",
    "Rightside",
];

/// The paper's top-10 DNSSEC registrar list (Table 3 order).
pub const TOP10_DNSSEC: [&str; 10] = [
    "OVH",
    "Loopia",
    "DomainNameShop",
    "TransIP",
    "MeshDigital",
    "Binero",
    "KPN",
    "PCExtreme",
    "Antagonist",
    "NameCheap",
];

/// The Table-4 operator list.
pub const TABLE4_OPERATORS: [&str; 11] = [
    "OVH",
    "GoDaddy",
    "MeshDigital",
    "DomainNameShop",
    "TransIP",
    "NameCheap",
    "Binero",
    "PCExtreme",
    "Antagonist",
    "Loopia",
    "KPN",
];

/// E-T1 — Table 1: per-TLD dataset sizes and % with DNSKEY.
pub fn experiment_table1(snapshot: &Snapshot, scale: u64) -> ExperimentResult {
    let mut result = ExperimentResult::new("E-T1", "Table 1: dataset overview");
    let paper = [
        (Tld::Com, 0.7),
        (Tld::Net, 1.0),
        (Tld::Org, 1.1),
        (Tld::Nl, 51.6),
        (Tld::Se, 46.7),
    ];
    for (tld, pct) in paper {
        let stats = snapshot.tld_totals(tld);
        let measured = if stats.domains > 0 {
            100.0 * stats.with_dnskey as f64 / stats.domains as f64
        } else {
            0.0
        };
        result.check(format!("{tld} % with DNSKEY"), pct, measured, 0.40);
    }
    result.artifact = table1(snapshot, scale);
    result
}

/// E-F3 — Figure 3: operator-concentration CDFs.
pub fn experiment_figure3(snapshot: &Snapshot) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E-F3",
        "Figure 3: CDF of gTLD domains by DNS operator (all/partial/full)",
    );
    // Paper: 26 operators to cover 50% of all domains; ~4 cover 57% of the
    // partially deployed; 2 cover 54% of the fully deployed.
    result.check(
        "operators covering 50% of all domains",
        26.0,
        operators_to_cover(snapshot, &GTLDS, Metric::All, 0.50) as f64,
        0.50,
    );
    result.check(
        "operators covering 50% of partially deployed",
        4.0,
        operators_to_cover(snapshot, &GTLDS, Metric::Partial, 0.50) as f64,
        1.00,
    );
    result.check(
        "operators covering 50% of fully deployed",
        2.0,
        operators_to_cover(snapshot, &GTLDS, Metric::Full, 0.50) as f64,
        1.00,
    );
    result.artifact = figure3(snapshot);
    result
}

/// E-T2 — Table 2: probe results for the top-20 registrars.
pub fn experiment_table2(reports: &[ProbeReport], snapshot: Option<&Snapshot>) -> ExperimentResult {
    let mut result = ExperimentResult::new("E-T2", "Table 2: top-20 registrar probe matrix");
    let hosted = reports
        .iter()
        .filter(|r| r.operator_support == Finding::Yes)
        .count();
    let external = reports
        .iter()
        .filter(|r| r.external_support == Finding::Yes)
        .count();
    let validating = reports
        .iter()
        .filter(|r| r.validates_ds == Finding::Yes)
        .count();
    let default_full = reports
        .iter()
        .filter(|r| r.dnssec_default == Finding::Yes)
        .count();
    let default_partial = reports
        .iter()
        .filter(|r| r.dnssec_default == Finding::Partial)
        .count();
    result.check("registrars probed", 20.0, reports.len() as f64, 0.0);
    result.check("support DNSSEC as DNS operator", 3.0, hosted as f64, 0.0);
    result.check("support DNSSEC for external NS", 11.0, external as f64, 0.10);
    result.check("validate uploaded DS", 2.0, validating as f64, 0.0);
    result.check("DNSSEC by default (all plans)", 0.0, default_full as f64, 0.1);
    result.check(
        "DNSSEC by default (some plans only)",
        1.0,
        default_partial as f64,
        0.0,
    );
    result.artifact = table2(reports, snapshot);
    result
}

/// E-T3 — Table 3: probe results for the DNSSEC-heavy registrars.
pub fn experiment_table3(reports: &[ProbeReport], snapshot: Option<&Snapshot>) -> ExperimentResult {
    let mut result = ExperimentResult::new("E-T3", "Table 3: top-10 DNSSEC registrar probe matrix");
    let default = reports
        .iter()
        .filter(|r| r.dnssec_default == Finding::Yes)
        .count();
    let external = reports
        .iter()
        .filter(|r| r.external_support == Finding::Yes)
        .count();
    let validating = reports
        .iter()
        .filter(|r| r.validates_ds == Finding::Yes)
        .count();
    let partial_ds = reports
        .iter()
        .filter(|r| {
            let vals: Vec<bool> = r.publishes_ds.values().copied().collect();
            !vals.is_empty() && vals.iter().any(|&v| v) != vals.iter().all(|&v| v)
        })
        .count();
    let email_channels: Vec<&ProbeReport> = reports
        .iter()
        .filter(|r| r.ds_channel == Some(dsec_probe::DsChannel::Email))
        .collect();
    let email_verifying = email_channels
        .iter()
        .filter(|r| r.verifies_email == Finding::Yes)
        .count();
    let email_foreign = email_channels
        .iter()
        .filter(|r| r.accepts_foreign_email == Finding::Yes)
        .count();
    result.check("registrars probed", 10.0, reports.len() as f64, 0.0);
    // 9 of 10 sign hosted domains by default (OVH is opt-in).
    result.check("DNSSEC by default", 9.0, default as f64, 0.12);
    result.check("support external NS", 8.0, external as f64, 0.15);
    result.check("validate uploaded DS (OVH, PCExtreme)", 2.0, validating as f64, 0.0);
    // Loopia/KPN/NameCheap publish DS only for some TLDs (▲ rows); Mesh
    // publishes none.
    result.check("partial per-TLD DS publication", 3.0, partial_ds as f64, 0.40);
    result.check("email channels verifying sender", 1.0, email_verifying as f64, 0.0);
    result.check(
        "email channels accepting foreign address",
        1.0,
        email_foreign as f64,
        0.0,
    );
    result.artifact = table3(reports, snapshot);
    result
}

/// E-T4 — Table 4: registrar/reseller roles per TLD.
pub fn experiment_table4(world: &dsec_ecosystem::World) -> ExperimentResult {
    let mut result = ExperimentResult::new("E-T4", "Table 4: registrar vs reseller roles per TLD");
    let mut resellers = 0usize;
    let mut no_support = 0usize;
    let mut cells = 0usize;
    for name in TABLE4_OPERATORS {
        let Some(id) = world.registrar_by_name(name) else {
            continue;
        };
        let policy = &world.registrar(id).policy;
        for tld in dsec_ecosystem::ALL_TLDS {
            cells += 1;
            match policy.tld(tld).role {
                dsec_ecosystem::TldRole::ResellerVia(_) => resellers += 1,
                dsec_ecosystem::TldRole::NoSupport => no_support += 1,
                dsec_ecosystem::TldRole::Registrar => {}
            }
        }
    }
    result.check("operators x TLD cells", 55.0, cells as f64, 0.0);
    // From Table 4: 13 reseller cells, 8 "No support" cells.
    result.check("reseller cells", 13.0, resellers as f64, 0.25);
    result.check("no-support cells", 8.0, no_support as f64, 0.25);
    result.artifact = dsec_reports::table4(world, &TABLE4_OPERATORS);
    result
}

/// E-F4 — Figure 4: OVH (free, opt-in) vs GoDaddy (paid) full deployment.
pub fn experiment_figure4(store: &LongitudinalStore) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E-F4",
        "Figure 4: OVH vs GoDaddy % of domains fully signed over time",
    );
    let ovh = store.series("ovh.net.", &GTLDS);
    let godaddy = store.series("domaincontrol.com.", &GTLDS);
    let ovh_start = ovh.first().map(|p| 100.0 * p.full_fraction()).unwrap_or(0.0);
    let ovh_end = ovh.last().map(|p| 100.0 * p.full_fraction()).unwrap_or(0.0);
    let gd_end = godaddy
        .last()
        .map(|p| 100.0 * p.full_fraction())
        .unwrap_or(0.0);
    result.check("OVH % fully signed at window end", 25.9, ovh_end, 0.30);
    result.check("GoDaddy % fully signed at window end", 0.02, gd_end, 10.0);
    result.check(
        "OVH grows over the window (end − start > 5pp)",
        1.0,
        f64::from(ovh_end - ovh_start > 5.0),
        0.0,
    );
    result.artifact = figure_series(
        store,
        "Figure 4: % fully signed (gTLD)",
        "ovh.net.",
        &[("OVH", GTLDS.to_vec())],
    ) + &figure_series(
        store,
        "",
        "domaincontrol.com.",
        &[("GoDaddy", GTLDS.to_vec())],
    );
    result
}

/// E-F5 — Figure 5: Loopia and KPN sign everywhere, complete the chain
/// only at their home (incentivized) TLD.
pub fn experiment_figure5(store: &LongitudinalStore) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E-F5",
        "Figure 5: Loopia (.se only) and KPN (.nl only) full deployment by TLD",
    );
    let loopia_se = last_full_pct(store, "loopia.se.", &[Tld::Se]);
    let loopia_gtld = last_full_pct(store, "loopia.se.", &GTLDS);
    let kpn_nl = last_full_pct(store, "is.nl.", &[Tld::Nl]);
    let kpn_gtld = last_full_pct(store, "is.nl.", &GTLDS);
    result.check("Loopia .se % fully deployed", 90.0, loopia_se, 0.15);
    result.check("Loopia gTLD % fully deployed", 0.0, loopia_gtld, 3.0);
    result.check("KPN .nl % fully deployed", 93.0, kpn_nl, 0.15);
    result.check("KPN gTLD % fully deployed", 0.0, kpn_gtld, 3.0);
    result.artifact = figure_series(
        store,
        "Figure 5: % fully deployed",
        "loopia.se.",
        &[
            ("Loopia-gTLD", GTLDS.to_vec()),
            ("Loopia-.se", vec![Tld::Se]),
            ("Loopia-.nl", vec![Tld::Nl]),
        ],
    ) + &figure_series(
        store,
        "",
        "is.nl.",
        &[
            ("KPN-gTLD", GTLDS.to_vec()),
            ("KPN-.nl", vec![Tld::Nl]),
        ],
    );
    result
}

/// E-F6 — Figure 6: Antagonist (gradual renewal-driven growth) and Binero.
pub fn experiment_figure6(store: &LongitudinalStore) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E-F6",
        "Figure 6: Antagonist and Binero deployment growth and counts",
    );
    let antagonist_gtld_end = last_full_pct(store, "webhostingserver.nl.", &GTLDS);
    let antagonist_nl = last_full_pct(store, "webhostingserver.nl.", &[Tld::Nl]);
    let binero_gtld = last_full_pct(store, "binero.se.", &GTLDS);
    let binero_se = last_full_pct(store, "binero.se.", &[Tld::Se]);
    let antagonist_series = store.series("webhostingserver.nl.", &GTLDS);
    let counts_flat = {
        let first = antagonist_series.first().map(|p| p.stats.domains).unwrap_or(0);
        let last = antagonist_series.last().map(|p| p.stats.domains).unwrap_or(0);
        first == last
    };
    result.check("Antagonist gTLD % fully deployed at end", 52.7, antagonist_gtld_end, 0.35);
    result.check("Antagonist .nl % fully deployed", 95.4, antagonist_nl, 0.12);
    result.check("Binero gTLD % fully deployed at end", 37.8, binero_gtld, 0.35);
    result.check("Binero .se % fully deployed", 92.9, binero_se, 0.12);
    result.check("domain counts stay flat", 1.0, f64::from(counts_flat), 0.0);
    result.artifact = figure_series(
        store,
        "Figure 6: % with DNSKEY and DS",
        "webhostingserver.nl.",
        &[("Antagonist-gTLD", GTLDS.to_vec()), ("Antagonist-.nl", vec![Tld::Nl])],
    ) + &figure_series(
        store,
        "",
        "binero.se.",
        &[("Binero-gTLD", GTLDS.to_vec()), ("Binero-.se", vec![Tld::Se])],
    );
    result
}

/// E-F7 — Figure 7: TransIP (registrar vs reseller gap) and PCExtreme
/// (the 10-day mass-signing step).
pub fn experiment_figure7(store: &LongitudinalStore) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E-F7",
        "Figure 7: TransIP and PCExtreme full deployment",
    );
    let transip_gtld = last_full_pct(store, "transip.net.", &GTLDS);
    let transip_se = last_full_pct(store, "transip.net.", &[Tld::Se]);
    let pcx_gtld_end = last_full_pct(store, "pcextreme.nl.", &GTLDS);
    // The step: before 2015-03-15 PCExtreme is ≈0.44%; within ~10 days it
    // exceeds 90%.
    let pcx = store.series("pcextreme.nl.", &GTLDS);
    let before = pcx
        .iter()
        .take_while(|p| p.date < dsec_ecosystem::SimDate::from_ymd(2015, 3, 15))
        .last()
        .map(|p| 100.0 * p.full_fraction())
        .unwrap_or(0.0);
    let after = pcx
        .iter()
        .find(|p| p.date >= dsec_ecosystem::SimDate::from_ymd(2015, 4, 5))
        .map(|p| 100.0 * p.full_fraction())
        .unwrap_or(0.0);
    result.check("TransIP gTLD % fully deployed", 99.2, transip_gtld, 0.10);
    result.check("TransIP .se % fully deployed (reseller lag)", 48.4, transip_se, 0.40);
    result.check("PCExtreme % before mass signing", 0.44, before, 6.0);
    result.check("PCExtreme % shortly after mass signing", 98.3, after, 0.15);
    result.check("PCExtreme % at window end", 97.0, pcx_gtld_end, 0.15);
    result.artifact = figure_series(
        store,
        "Figure 7: % fully deployed",
        "transip.net.",
        &[("TransIP-gTLD", GTLDS.to_vec()), ("TransIP-.se", vec![Tld::Se])],
    ) + &figure_series(
        store,
        "",
        "pcextreme.nl.",
        &[("PCExtreme-gTLD", GTLDS.to_vec()), ("PCExtreme-.nl", vec![Tld::Nl])],
    );
    result
}

/// E-F8 — Figure 8: Cloudflare's DNSKEY ramp after universal DNSSEC and
/// the ≈60% DS-relay completion.
pub fn experiment_figure8(store: &LongitudinalStore) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E-F8",
        "Figure 8: Cloudflare % with DNSKEY and DS-relay completion",
    );
    let series = store.series("cloudflare-dns.sim.", &GTLDS);
    let launch = dsec_ecosystem::SimDate::from_ymd(2015, 11, 11);
    let before = series
        .iter()
        .take_while(|p| p.date < launch)
        .last()
        .map(|p| 100.0 * p.dnskey_fraction())
        .unwrap_or(0.0);
    let end_dnskey = series
        .last()
        .map(|p| 100.0 * p.dnskey_fraction())
        .unwrap_or(0.0);
    let end_relay = series
        .last()
        .map(|p| 100.0 * p.ds_given_dnskey())
        .unwrap_or(0.0);
    result.check("% with DNSKEY before launch", 0.0, before, 0.2);
    result.check("% with DNSKEY at window end", 1.9, end_dnskey, 0.45);
    result.check("% of DNSKEY domains with DS (relay success)", 60.7, end_relay, 0.30);
    result.artifact = figure8(store, "cloudflare-dns.sim.");
    result
}

/// §5.2 scalars: per-registrar signed fractions at the window end.
pub fn experiment_s52(snapshot: &Snapshot) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E-S52",
        "§5.2 scalars: OVH / NameCheap / GoDaddy signed fractions",
    );
    let pct = |op: &str| {
        let stats = snapshot.operator_totals(op, &dsec_ecosystem::ALL_TLDS);
        if stats.domains == 0 {
            0.0
        } else {
            100.0 * stats.fully_deployed as f64 / stats.domains as f64
        }
    };
    result.check("OVH % deployed", 25.9, pct("ovh.net."), 0.30);
    result.check("NameCheap % deployed", 0.59, pct("registrar-servers.com."), 1.0);
    result.check("GoDaddy % deployed", 0.02, pct("domaincontrol.com."), 10.0);
    result
}

/// E-R1 — robustness: how far a degraded network pulls the paper's
/// headline artifact (Table 1's per-TLD "% with DNSKEY") away from the
/// clean measurement, and how much of the population stayed observable.
///
/// `clean` and `chaos` are campaigns over identically-built worlds, the
/// latter scanned with the fault plane enabled. The clean measurement
/// plays the role of the paper value: every checkpoint quantifies the
/// perturbation chaos introduced, so a reproduced E-R1 means the
/// retry/degradation machinery kept the artifact stable despite faults.
pub fn experiment_chaos(clean: &LongitudinalStore, chaos: &LongitudinalStore) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E-R1",
        "Robustness: Table-1 %-with-DNSKEY drift and coverage under faults",
    );
    let (Some(clean_last), Some(chaos_last)) = (clean.latest(), chaos.latest()) else {
        result.artifact = "empty campaign: nothing to compare\n".into();
        return result;
    };
    let dnskey_pct = |snapshot: &Snapshot, tld: Tld| {
        let stats = snapshot.tld_totals(tld);
        // Unobserved domains can hide DNSKEYs; measure against the
        // observed subpopulation.
        let observed = stats.domains.saturating_sub(stats.unreachable + stats.indeterminate);
        if observed == 0 {
            0.0
        } else {
            100.0 * stats.with_dnskey as f64 / observed as f64
        }
    };
    for tld in dsec_ecosystem::ALL_TLDS {
        result.check(
            match tld {
                Tld::Com => ".com % with DNSKEY",
                Tld::Net => ".net % with DNSKEY",
                Tld::Org => ".org % with DNSKEY",
                Tld::Nl => ".nl % with DNSKEY",
                Tld::Se => ".se % with DNSKEY",
            },
            dnskey_pct(clean_last, tld),
            dnskey_pct(chaos_last, tld),
            0.25,
        );
    }
    let coverage = |snapshot: &Snapshot| {
        let mut domains = 0u64;
        let mut unobserved = 0u64;
        for stats in snapshot.cells.values() {
            domains += stats.domains;
            unobserved += stats.unreachable + stats.indeterminate;
        }
        if domains == 0 {
            100.0
        } else {
            100.0 * (domains - unobserved) as f64 / domains as f64
        }
    };
    result.check("% of population observed", 100.0, coverage(chaos_last), 0.10);

    let mut artifact = String::from("date      unreachable  indeterminate\n");
    for snapshot in chaos.snapshots() {
        let unreachable: u64 = snapshot.cells.values().map(|s| s.unreachable).sum();
        let indeterminate: u64 = snapshot.cells.values().map(|s| s.indeterminate).sum();
        artifact.push_str(&format!(
            "{}  {:>11}  {:>13}\n",
            snapshot.date, unreachable, indeterminate
        ));
    }
    result.artifact = artifact;
    result
}

fn last_full_pct(store: &LongitudinalStore, operator: &str, tlds: &[Tld]) -> f64 {
    store
        .series(operator, tlds)
        .last()
        .map(|p| 100.0 * p.full_fraction())
        .unwrap_or(0.0)
}

/// E-R2 stream seed (also seeds the — otherwise inert — fault plane).
pub(crate) const OUTAGE_SEED: u64 = 0x0A7A6E;
/// Queries per phase (warm-up and outage replay the same stream).
pub(crate) const OUTAGE_QUERIES: u64 = 2_048;
/// Stream pacing: 4 queries per simulated second ⇒ 512 s per phase, well
/// past the ecosystem's 300 s record TTLs, so warm entries expire *into*
/// the outage window.
pub(crate) const OUTAGE_QPS: u32 = 4;
/// Serve-stale horizon for the degraded arms: long enough that every
/// phase-1 entry survives to the end of phase 2.
pub(crate) const OUTAGE_MAX_STALE: u32 = 7_200;

/// The largest DNS operator by hosted-domain count (the Zipf head — the
/// operator whose outage hurts the most user queries) and its full
/// nameserver fleet, deterministically tie-broken by operator key.
/// `exclude` skips one operator (E-K1 hosts its roller outside the
/// outage victim's fleet, so the victim is the largest *other* fleet).
pub(crate) fn largest_operator_fleet(
    world: &World,
    exclude: Option<&str>,
) -> (String, Vec<Name>) {
    let mut sizes: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut fleets: std::collections::BTreeMap<String, std::collections::BTreeSet<Name>> =
        std::collections::BTreeMap::new();
    for d in world.domains() {
        let ns = world.registry(d.tld).ns_of(&d.name);
        let Some(op) = operator_of(&ns) else { continue };
        let key = op.to_string();
        *sizes.entry(key.clone()).or_insert(0) += 1;
        fleets.entry(key).or_default().extend(ns);
    }
    let victim = sizes
        .iter()
        .filter(|(k, _)| exclude != Some(k.as_str()))
        .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
        .map(|(k, _)| k.clone())
        .unwrap_or_default();
    let fleet = fleets
        .remove(&victim)
        .unwrap_or_default()
        .into_iter()
        .collect();
    (victim, fleet)
}

/// Runs the two-phase load for one E-R2 arm: a warm-up phase over a clean
/// network, then the identical stream (same seed, sim clock advanced by
/// one phase span) inside the installed outage window — all over one
/// shared cache so phase-1 entries are the phase-2 working set. Returns
/// the outage-phase report and how many queries the dead authorities
/// actually absorbed during it (the fault plane's downtime-drop delta —
/// the number the circuit breaker is judged on).
pub(crate) fn outage_phases(
    world: &World,
    span_s: u32,
    threads: usize,
    max_stale: u32,
    breaker: Option<BreakerPolicy>,
) -> (TrafficReport, u64) {
    let mut config = LoadConfig::default()
        .with_queries(OUTAGE_QUERIES)
        .with_threads(threads)
        .with_seed(OUTAGE_SEED)
        .with_max_stale(max_stale);
    config.sim_qps = OUTAGE_QPS;
    if let Some(policy) = breaker {
        config = config.with_breaker(policy);
    }
    let cache = Arc::new(Cache::bounded(config.cache_capacity).with_max_stale(max_stale));
    run_load_shared(world, &config, Arc::clone(&cache));
    let drops_before = world.fault_plane().stats().downtime_drops;
    let outage = run_load_shared(world, &config.clone().with_now_offset(span_s), cache);
    let drops = world.fault_plane().stats().downtime_drops - drops_before;
    (outage, drops)
}

fn outage_row(artifact: &mut String, scenario: &str, arm: &str, report: &TrafficReport, drops: u64) {
    let pct = |n: u64| 100.0 * n as f64 / report.total.max(1) as f64;
    artifact.push_str(&format!(
        "{scenario:<18} {arm:<14} {:>6.1} {:>6.1} {:>9.1} {:>5.1} {:>6} {:>9} {:>10}\n",
        100.0 * report.availability(),
        pct(report.outcomes.stale),
        pct(report.outcomes.servfail),
        pct(report.outcomes.negative),
        report.resolver.breaker_trips,
        report.resolver.breaker_short_circuits,
        drops,
    ));
}

/// E-R2 — robustness: graceful degradation under sustained outages.
///
/// Three declarative outage scenarios (a sustained single-operator
/// outage, a TLD-wide registry outage, correlated flapping) are played
/// against the user-traffic plane in two phases over one shared resolver
/// cache: a clean warm-up, then the identical query stream inside the
/// outage window. Checkpoints pin the degradation contract:
///
/// * with serve-stale (RFC 8767), warm-cache availability for the victim
///   operator stays ≥ 90% through a sustained fleet outage that the
///   no-degradation baseline turns into ServFail;
/// * negative caching (RFC 2308) answers repeat NODATA/NXDOMAIN from
///   memory;
/// * per-authority circuit breakers cut the load hammered onto dead
///   authorities by ≥ 5× without changing a single outcome;
/// * every tally is byte-identical across 1 and 8 worker threads.
pub fn experiment_outage(population: &PopulationConfig) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E-R2",
        "Robustness: serve-stale, negative caching, and circuit breakers under outages",
    );
    let span = (OUTAGE_QUERIES / OUTAGE_QPS as u64) as u32;
    let breaker = BreakerPolicy {
        failure_threshold: 3,
        probe_interval_s: 30,
    };

    // Scenario 1: the biggest operator's whole fleet down for all of
    // phase 2. One world serves every arm — loads never mutate it, and
    // the dead-authority pressure is measured as per-arm counter deltas.
    let pw = build(population);
    let world = &pw.world;
    let base = world.today.epoch_seconds();
    let (victim, fleet) = largest_operator_fleet(world, None);
    world.fault_plane().enable(OUTAGE_SEED);
    OutageScenario::operator_outage(
        "operator-outage",
        fleet.clone(),
        base + span,
        base + 2 * span + 60,
    )
    .install(world.fault_plane());

    let (baseline, drops_baseline) = outage_phases(world, span, 1, 0, None);
    let (stale1, drops_bare) = outage_phases(world, span, 1, OUTAGE_MAX_STALE, None);
    let (stale8, _) = outage_phases(world, span, 8, OUTAGE_MAX_STALE, None);
    let (brk1, drops_breaker) = outage_phases(world, span, 1, OUTAGE_MAX_STALE, Some(breaker));
    let (brk8, _) = outage_phases(world, span, 8, OUTAGE_MAX_STALE, Some(breaker));

    let victim_counts = |r: &TrafficReport| r.by_operator.get(&victim).copied().unwrap_or_default();
    let v_base = victim_counts(&baseline);
    let v_stale = victim_counts(&stale1);
    result.check(
        "serve-stale victim availability ≥ 90% through the outage",
        1.0,
        f64::from(v_stale.availability() >= 0.90),
        0.0,
    );
    result.check(
        "baseline victim queries collapse to ServFail without serve-stale",
        1.0,
        f64::from(v_base.servfail > 0 && v_base.availability() + 0.1 <= v_stale.availability()),
        0.0,
    );
    result.check(
        "stale serves appear only in the degraded arm",
        1.0,
        f64::from(baseline.outcomes.stale == 0 && stale1.outcomes.stale > 0),
        0.0,
    );
    result.check(
        "negative cache answers repeat NODATA from memory",
        1.0,
        f64::from(stale1.resolver.negative_hits > 0),
        0.0,
    );
    result.check(
        "circuit breaker cuts dead-authority load ≥ 5×",
        1.0,
        f64::from(drops_breaker > 0 && drops_bare >= 5 * drops_breaker),
        0.0,
    );
    result.check(
        "breaker tripped and short-circuited during the outage",
        1.0,
        f64::from(brk1.resolver.breaker_trips > 0 && brk1.resolver.breaker_short_circuits > 0),
        0.0,
    );
    result.check(
        "breaker is outcome-neutral (identical tallies with and without)",
        1.0,
        f64::from(
            brk1.outcomes == stale1.outcomes
                && brk1.by_registrar == stale1.by_registrar
                && brk1.by_operator == stale1.by_operator,
        ),
        0.0,
    );
    result.check(
        "tallies byte-identical across 1 and 8 worker threads",
        1.0,
        f64::from(
            stale1.outcomes == stale8.outcomes
                && stale1.by_registrar == stale8.by_registrar
                && stale1.by_operator == stale8.by_operator
                && stale1.histogram == stale8.histogram
                && brk1.outcomes == brk8.outcomes
                && brk1.by_registrar == brk8.by_registrar
                && brk1.by_operator == brk8.by_operator,
        ),
        0.0,
    );

    // Scenarios 2 and 3 for the record: a TLD-wide registry outage and
    // correlated flapping of the victim fleet, both under the full
    // degradation stack.
    let pw_tld = build(population);
    let tld_world = &pw_tld.world;
    let tld_base = tld_world.today.epoch_seconds();
    tld_world.fault_plane().enable(OUTAGE_SEED);
    OutageScenario::window(
        "tld-wide(.com)",
        vec![Tld::Com.registry_ns()],
        tld_base + span,
        tld_base + 2 * span + 60,
    )
    .install(tld_world.fault_plane());
    let (tld_run, tld_drops) = outage_phases(tld_world, span, 1, OUTAGE_MAX_STALE, Some(breaker));

    let pw_flap = build(population);
    let flap_world = &pw_flap.world;
    let flap_base = flap_world.today.epoch_seconds();
    let (_, flap_fleet) = largest_operator_fleet(flap_world, None);
    flap_world.fault_plane().enable(OUTAGE_SEED);
    OutageScenario::flapping(
        "flapping",
        flap_fleet,
        flap_base + span,
        span / 8,
        span / 8,
        4,
    )
    .install(flap_world.fault_plane());
    let (flap_run, flap_drops) = outage_phases(flap_world, span, 1, OUTAGE_MAX_STALE, Some(breaker));
    result.check(
        "flapping: breaker re-closes and fresh answers return between windows",
        1.0,
        f64::from(
            flap_run.outcomes.stale > 0
                && flap_run.outcomes.stale < stale1.outcomes.stale
                && flap_run.availability() >= stale1.availability(),
        ),
        0.0,
    );

    let mut artifact = format!(
        "victim operator {victim}: availability {:.1}% baseline → {:.1}% with serve-stale \
         over {} victim queries in the outage window\n\
         dead-authority queries during the outage: {} bare ladder → {} with breaker\n\n",
        100.0 * v_base.availability(),
        100.0 * v_stale.availability(),
        v_stale.total(),
        drops_bare,
        drops_breaker,
    );
    artifact.push_str(
        "scenario           arm            avail% stale% servfail%  neg%  trips  short-cir  dead-drops\n",
    );
    outage_row(&mut artifact, "operator-outage", "baseline", &baseline, drops_baseline);
    outage_row(&mut artifact, "operator-outage", "serve-stale", &stale1, drops_bare);
    outage_row(&mut artifact, "operator-outage", "stale+breaker", &brk1, drops_breaker);
    outage_row(&mut artifact, "tld-wide(.com)", "stale+breaker", &tld_run, tld_drops);
    outage_row(&mut artifact, "flapping", "stale+breaker", &flap_run, flap_drops);
    result.artifact = artifact;
    result
}

/// E-U1 — the user-traffic view of deployment. The paper measures what
/// fraction of *domains* deploy DNSSEC; this experiment asks what
/// fraction of *user queries* is actually protected. Popularity is
/// Zipf-concentrated on the largest DNS operators (Figure 3 from the
/// user's side), so the query-weighted protection rate is governed by a
/// handful of operator policies rather than the long tail of domains.
/// The load is fault-free here, so a validating resolver must never see
/// a bogus chain — mismatched-DS injection is exercised by the traffic
/// integration tests and `examples/traffic_load.rs` instead.
pub fn experiment_user_impact(
    report: &dsec_traffic::TrafficReport,
    snapshot: &Snapshot,
) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E-U1",
        "User impact: query-weighted protection vs domain-weighted deployment",
    );

    result.check(
        "fault-free load sees zero bogus answers",
        0.0,
        report.outcomes.bogus as f64,
        0.0,
    );
    let attributed: u64 = report.by_registrar.values().map(|c| c.total()).sum();
    result.check(
        "every query classified and attributed to a registrar",
        1.0,
        f64::from(attributed == report.total && report.outcomes.total() == report.total),
        0.0,
    );

    // The query head concentrates on the biggest operators: the top-10
    // operators by query volume must carry a larger share of queries
    // than of registered domains.
    let domains: u64 = snapshot.cells.values().map(|s| s.domains).sum();
    let mut domain_count: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for ((operator, _), stats) in &snapshot.cells {
        *domain_count.entry(operator.as_str()).or_insert(0) += stats.domains;
    }
    let mut by_queries: Vec<(&String, u64)> = report
        .by_operator
        .iter()
        .map(|(op, c)| (op, c.total()))
        .collect();
    by_queries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    let top10_queries: u64 = by_queries.iter().take(10).map(|(_, q)| q).sum();
    let top10_domains: u64 = by_queries
        .iter()
        .take(10)
        .map(|(op, _)| domain_count.get(op.as_str()).copied().unwrap_or(0))
        .sum();
    let query_share = top10_queries as f64 / report.total.max(1) as f64;
    let domain_share = top10_domains as f64 / domains.max(1) as f64;
    result.check(
        "top-10 operators' query share exceeds their domain share",
        1.0,
        f64::from(query_share > domain_share),
        0.0,
    );

    // Both weightings of "how protected", for the record: the measured
    // ratio is scale-sensitive, so the checkpoint only pins that the
    // query-weighted rate stays in (0, 1) — some but not all of the
    // stream validates — while the artifact carries the exact numbers.
    let deployed: u64 = snapshot.cells.values().map(|s| s.fully_deployed).sum();
    let domain_weighted = deployed as f64 / domains.max(1) as f64;
    let query_weighted = report.protection_rate();
    result.check(
        "a strict minority of queries validates Secure",
        1.0,
        f64::from(query_weighted > 0.0 && query_weighted < 0.5),
        0.0,
    );

    result.artifact = format!(
        "query-weighted protection: {:.2}% of {} queries\n\
         domain-weighted deployment: {:.2}% of {} domains\n\
         top-10 operators: {:.1}% of queries vs {:.1}% of domains\n\n{}",
        100.0 * query_weighted,
        report.total,
        100.0 * domain_weighted,
        domains,
        100.0 * query_share,
        100.0 * domain_share,
        dsec_reports::user_impact(report, snapshot),
    );
    result
}

/// E-P1 — the incremental scan pipeline. Cold scan, a week of ecosystem
/// churn, warm scan: the warm pass must answer unchanged domains from the
/// cache (measured by network query-count deltas, which are
/// deterministic, not wall-clock) while producing cells identical to an
/// uncached full re-scan of the same day. The wall-clock counterpart
/// lives in the `longitudinal` benchmark.
pub fn experiment_scan_cache(population: &PopulationConfig) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E-P1",
        "Pipeline: incremental scan cache, cold vs warm",
    );
    let mut pw = build(population);
    let world = &mut pw.world;
    let options = ScanOptions::default();
    let mut cache = ScanCache::new();

    // Cold: nothing cached, every domain queried.
    let before_cold = world.network.query_count();
    Snapshot::take_cached(world, &ALL_TLDS, &options, &mut cache);
    let cold_queries = world.network.query_count() - before_cold;

    // One week of ecosystem churn, then a warm scan through the cache.
    for _ in 0..7 {
        world.tick();
    }
    let before_warm = world.network.query_count();
    let warm = Snapshot::take_cached(world, &ALL_TLDS, &options, &mut cache);
    let warm_queries = world.network.query_count() - before_warm;

    // Ground truth: an uncached full re-scan of the same day.
    let full = Snapshot::take_with_options(world, &ALL_TLDS, &options);

    let stats = cache.stats();
    result.check(
        "warm cells identical to full re-scan",
        1.0,
        f64::from(warm.cells == full.cells),
        0.0,
    );
    result.check(
        "warm scan needs < 1/2 the cold queries",
        1.0,
        f64::from(warm_queries * 2 < cold_queries),
        0.0,
    );
    result.check(
        "cache covers the population after warm scan",
        1.0,
        f64::from(stats.entries as u64 >= warm.cells.values().map(|s| s.domains).sum::<u64>()
            - warm.cells.values().map(|s| s.unobserved()).sum::<u64>()),
        0.0,
    );
    result.artifact = format!(
        "cold queries: {cold_queries}\nwarm queries: {warm_queries}\n\
         cache: {} hits / {} misses (hit rate {:.1}%), {} entries\n",
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate(),
        stats.entries,
    );
    result
}
