//! E-A2 — the resolver-hardening / cache-poisoning experiment.
//!
//! Three arms wire the spoofing race (`dsec_resolver::spoofguard`), the
//! on-path campaign arm (`dsec_attack::onpath`), and the RFC 5011
//! trust-anchor roll (`dsec_ecosystem::anchor`) through the traffic
//! plane, all seeded and byte-identical across worker thread counts:
//!
//! * **Arm A (hardened fleet)** — a Kaminsky campaign races every fresh
//!   resolution under the Zipf-head victim while the whole fleet runs
//!   the hardened profile (16-bit TXID, 16-bit source port, 0x20,
//!   strict bailiwick). The attacker demonstrably contests exchanges,
//!   yet zero forged answers are admitted and zero `Poisoned` outcomes
//!   reach users.
//! * **Arm B (naive profile, analytic bound)** — the same attacker
//!   against a naive resolver (10-bit TXID, fixed port, no 0x20, no
//!   bailiwick discipline). Over a batch of fresh victim names the
//!   observed capture count must land within 4σ of the birthday-bound
//!   prediction `races · (1 − (1 − 2^−bits)^spoofs)` — the defense gap
//!   is arithmetic, not luck. The poisoned cache is then swept by the
//!   scanner's per-registrar poison census.
//! * **Arm C (mistimed trust-anchor roll)** — the root KSK is rolled
//!   with the old anchor revoked *inside* the RFC 5011 hold-down.
//!   Day-by-day loads must go bogus for validating users on exactly the
//!   stranded window `[revoke, promotion)` — during which validating
//!   users are strictly *worse off* than non-validating ones — and heal
//!   at promotion, with every bogus outcome attributed per registrar
//!   and operator.

use dsec_attack::{OnPathCampaign, OnPathVector};
use dsec_ecosystem::AnchorRollPlan;
use dsec_reports::ExperimentResult;
use dsec_resolver::{capture_kind, CaptureKind, OnPathThreat, Resolver, SpoofGuard};
use dsec_scanner::{poison_census, poison_census_table};
use dsec_traffic::{run_load, Cache, LoadConfig, TrafficPopulation, TrafficReport};
use dsec_wire::RrType;
use dsec_workloads::{build, PopulationConfig};

use crate::rollover::rollover_victim;

/// Stream seed for every E-A2 load.
const A2_SEED: u64 = 0x00A2_5EED;
/// Queries per load / per simulated day in the anchor walk.
const A2_QUERIES: u64 = 1_024;
/// Validating share of the mixed fleet.
const A2_SHARE: f64 = 0.5;
/// Forged responses the attacker lands per contested exchange.
const A2_SPOOFS: u32 = 300;
/// Fresh victim names raced in the analytic arm.
const A2_RACES: u32 = 256;
/// Compressed RFC 5011 hold-down for the anchor walk, days.
const A2_HOLD_DOWN: u32 = 10;
/// Days after publication the mistimed roll revokes the old anchor
/// (inside the hold-down: strands followers for the remaining 5 days).
const A2_REVOKE_AFTER: u32 = 5;

/// A mixed-fleet load with the on-path threat armed and the given
/// defense profile on every worker resolver.
fn raced_load(
    world: &dsec_ecosystem::World,
    guard: SpoofGuard,
    threat: OnPathThreat,
    threads: usize,
) -> TrafficReport {
    run_load(
        world,
        &LoadConfig::default()
            .with_queries(A2_QUERIES)
            .with_threads(threads)
            .with_seed(A2_SEED)
            .with_validating_share(A2_SHARE)
            .with_spoof_guard(guard)
            .with_threat(threat),
    )
}

/// A plain day load for the anchor walk (no attacker on the wire).
fn anchor_day_load(world: &dsec_ecosystem::World, share: f64, threads: usize) -> TrafficReport {
    run_load(
        world,
        &LoadConfig::default()
            .with_queries(A2_QUERIES)
            .with_threads(threads)
            .with_seed(A2_SEED)
            .with_validating_share(share),
    )
}

/// E-A2 — cache-poisoning resistance under entropy/0x20/bailiwick
/// hardening, the analytic Kaminsky bound on the naive profile, and
/// RFC 5011 trust-anchor survival. See the module docs for the arms.
pub fn experiment_poison_resistance(population: &PopulationConfig) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E-A2",
        "Resolver hardening: Kaminsky races vs entropy profiles, poison census, RFC 5011 trust-anchor survival",
    );

    // ---- Arm A: the hardened fleet admits nothing. ----
    let mut pw = build(population);
    let traffic_pop = TrafficPopulation::from_world(&pw.world);
    let victim = rollover_victim(&mut pw.world, &traffic_pop);
    let mut campaign = OnPathCampaign::new(
        OnPathVector::KaminskyRace {
            spoofs_per_race: A2_SPOOFS,
        },
        victim.name.clone(),
        pw.world.today.plus_days(1),
    );
    let until = pw.world.today.plus_days(2);
    while pw.world.today < until {
        pw.world.tick();
        campaign.tick(&mut pw.world);
    }
    let threat = campaign
        .threat_for(pw.world.today)
        .expect("campaign window is open");
    result.check(
        "arm A: campaign lifecycle logged (one poison-race launch)",
        1.0,
        pw.world.events.count("poison_race_launched") as f64,
        0.0,
    );
    let hard_1 = raced_load(&pw.world, SpoofGuard::hardened(), threat.clone(), 1);
    let hard_8 = raced_load(&pw.world, SpoofGuard::hardened(), threat.clone(), 8);
    result.check(
        "arm A: the attacker genuinely contests exchanges under the victim zone",
        1.0,
        f64::from(hard_1.resolver.poison_races > 0),
        0.0,
    );
    result.check(
        "arm A: the hardened fleet admits zero forged answers",
        0.0,
        (hard_1.resolver.poison_admitted + hard_1.outcomes.poisoned) as f64,
        0.0,
    );
    result.check(
        "arm A: tallies byte-identical across 1 and 8 worker threads",
        1.0,
        f64::from(
            hard_1.outcomes == hard_8.outcomes
                && hard_1.by_registrar == hard_8.by_registrar
                && hard_1.by_operator == hard_8.by_operator
                && hard_1.histogram == hard_8.histogram
                && hard_1.resolver.poison_races == hard_8.resolver.poison_races,
        ),
        0.0,
    );

    // ---- Arm B: the naive profile captures at the analytic rate. ----
    let now = pw.world.today.epoch_seconds();
    let naive = SpoofGuard::naive();
    let naive_resolver = Resolver::new(pw.world.network.clone(), Vec::new())
        .with_spoof_guard(naive)
        .with_on_path_threat(threat.clone());
    let hardened_resolver = Resolver::new(pw.world.network.clone(), Vec::new())
        .with_spoof_guard(SpoofGuard::hardened())
        .with_on_path_threat(threat.clone());
    let mut observed = 0u64;
    let mut hardened_observed = 0u64;
    let mut first_poisoned = None;
    for i in 0..A2_RACES {
        let qname = victim
            .name
            .child(&format!("w{i}"))
            .expect("short label fits");
        if let Ok(answer) = naive_resolver.resolve(&qname, RrType::A, now) {
            if answer.poisoned {
                observed += 1;
                first_poisoned.get_or_insert(answer);
            }
        }
        if let Ok(answer) = hardened_resolver.resolve(&qname, RrType::A, now) {
            hardened_observed += u64::from(answer.poisoned);
        }
    }
    // Every raced name is fresh (never cached), so each race is one
    // independent draw at the analytic per-race probability.
    let sample = victim.name.child("w0").expect("short label fits");
    let p = naive.race_success_probability(&sample, A2_SPOOFS);
    let expected = A2_RACES as f64 * p;
    let tolerance = 4.0 * (A2_RACES as f64 * p * (1.0 - p)).sqrt();
    result.check(
        "arm B: naive-profile captures match the birthday bound within 4 sigma",
        expected,
        observed as f64,
        tolerance,
    );
    result.check(
        "arm B: the hardened profile admits zero captures over the same races",
        0.0,
        hardened_observed as f64
            + f64::from(SpoofGuard::hardened().race_success_probability(&sample, A2_SPOOFS) > 1e-6),
        0.0,
    );
    result.check(
        "arm B: per-query diagnosis labels an admitted forgery as Poisoned",
        1.0,
        f64::from(
            first_poisoned
                .as_ref()
                .map(|a| capture_kind(a, None) == CaptureKind::Poisoned)
                .unwrap_or(false),
        ),
        0.0,
    );

    // The scanner's poison census over a cache that holds one forged
    // `www` answer: the attacker seed is searched so the www race is a
    // win (deterministic per population — the draw is a pure function).
    let www = victim.name.child("www").expect("www fits");
    let census_seed = (0..64)
        .find(|&s| {
            OnPathThreat::new(victim.name.clone(), A2_SPOOFS, s).race_won(&naive, &www, RrType::A)
        })
        .expect("some seed wins the www race at p≈0.25");
    let census_cache = std::sync::Arc::new(Cache::new());
    let census_resolver = Resolver::new(pw.world.network.clone(), Vec::new())
        .with_spoof_guard(naive)
        .with_shared_cache(census_cache.clone())
        .with_on_path_threat(OnPathThreat::new(victim.name.clone(), A2_SPOOFS, census_seed));
    let _ = census_resolver.resolve_cached(&www, RrType::A, now);
    let census = poison_census(&pw.world, &census_cache, now);
    let victim_row = census.get(&victim.registrar).copied().unwrap_or_default();
    result.check(
        "arm B: the poison census attributes the forged cached answer to the victim's registrar",
        1.0,
        f64::from(victim_row.cached_names >= 1 && victim_row.poisoned_names >= 1),
        0.0,
    );

    // ---- Arm C: the mistimed trust-anchor roll strands validators. ----
    let mut pw_c = build(population);
    let plan = AnchorRollPlan::mistimed(pw_c.world.today.plus_days(2), A2_REVOKE_AFTER)
        .with_hold_down(A2_HOLD_DOWN);
    pw_c.world.schedule_anchor_roll(plan);
    let last = plan.promotion().plus_days(2);
    let mut window_exact = true;
    let mut stranded_day = None;
    let mut healed_day = None;
    while pw_c.world.today < last {
        pw_c.world.tick();
        let day = anchor_day_load(&pw_c.world, A2_SHARE, 1);
        let stranded = plan.is_stranded_on(pw_c.world.today);
        if (day.outcomes.bogus > 0) != stranded {
            window_exact = false;
        }
        if stranded && stranded_day.is_none() {
            // Replay this day as two pure fleets: validation itself is
            // what hurts during the gap.
            let all_v = anchor_day_load(&pw_c.world, 1.0, 1);
            let none_v = anchor_day_load(&pw_c.world, 0.0, 1);
            stranded_day = Some((day, all_v, none_v));
        } else if pw_c.world.today >= plan.promotion() && healed_day.is_none() {
            healed_day = Some(day);
        }
    }
    result.check(
        "arm C: validating users go bogus on exactly the stranded window [revoke, promotion)",
        1.0,
        f64::from(window_exact && stranded_day.is_some()),
        0.0,
    );
    let (mixed, all_validating, none_validating) =
        stranded_day.expect("the mistimed plan has a stranded window");
    result.check(
        "arm C: the roll's lifecycle is logged (published, revoked-early, promoted)",
        1.0,
        f64::from(
            pw_c.world.events.count("trust_anchor_published") == 1
                && pw_c.world.events.count("trust_anchor_revoked") == 1
                && pw_c.world.events.count("trust_anchor_promoted") == 1,
        ),
        0.0,
    );
    result.check(
        "arm C: every bogus outcome attributes to a registrar and an operator",
        1.0,
        f64::from(
            mixed.by_registrar.values().map(|c| c.bogus).sum::<u64>() == mixed.outcomes.bogus
                && mixed.by_operator.values().map(|c| c.bogus).sum::<u64>() == mixed.outcomes.bogus
                && mixed.outcomes.bogus > 0,
        ),
        0.0,
    );
    result.check(
        "arm C: validating users are strictly worse off than non-validating in the gap",
        1.0,
        f64::from(
            all_validating.outcomes.availability() < none_validating.outcomes.availability()
                && none_validating.outcomes.availability() > 0.99
                && all_validating.outcomes.secure == 0,
        ),
        0.0,
    );
    let healed = healed_day.expect("the walk runs past promotion");
    result.check(
        "arm C: promotion heals the fleet (zero bogus, validated answers return)",
        1.0,
        f64::from(healed.outcomes.bogus == 0 && healed.outcomes.secure > 0),
        0.0,
    );
    let mixed_8 = anchor_day_load(&pw_c.world, A2_SHARE, 8);
    let mixed_1 = anchor_day_load(&pw_c.world, A2_SHARE, 1);
    result.check(
        "arm C: tallies byte-identical across 1 and 8 worker threads",
        1.0,
        f64::from(
            mixed_1.outcomes == mixed_8.outcomes
                && mixed_1.by_registrar == mixed_8.by_registrar
                && mixed_1.by_operator == mixed_8.by_operator,
        ),
        0.0,
    );

    let mut artifact = format!(
        "victim zone {} (registrar {}, operator {})\n\
         arm A (hardened fleet):  {} races contested, {} admitted, {} Poisoned outcomes\n\
         arm B (naive profile):   {}/{} races captured (analytic {:.1} ± {:.1}); hardened: {}\n\
         arm C (mistimed 5011):   publish {} / revoke {} / promotion {} — stranded window {:?},\n\
         \x20                        validating availability {:.1}% vs non-validating {:.1}% mid-gap\n\n\
         paper tie-in: the registrar channel is one attack surface; the resolver's entropy\n\
         profile and anchor hygiene decide the rest — hardened fleets hold both lines.\n\n\
         per-registrar poison census (arm B cache):\n",
        victim.name,
        victim.registrar,
        victim.operator,
        hard_1.resolver.poison_races,
        hard_1.resolver.poison_admitted,
        hard_1.outcomes.poisoned,
        observed,
        A2_RACES,
        expected,
        tolerance,
        hardened_observed,
        plan.publish,
        plan.revoke,
        plan.promotion(),
        plan.stranded_window(),
        100.0 * all_validating.outcomes.availability(),
        100.0 * none_validating.outcomes.availability(),
    );
    artifact.push_str(&poison_census_table(&census));
    result.artifact = artifact;
    result
}
