//! E-A1 — the registrar-compromise attack experiment.
//!
//! Three arms wire the attack plane (`dsec_attack`) through the
//! ecosystem's channel authentication, the attacker's authoritative
//! infrastructure, and the mixed validating/non-validating traffic
//! fleet, all seeded and byte-identical across worker thread counts:
//!
//! * **Arm A (authenticated channel)** — the victim's registrar
//!   verifies email senders. Both vectors (forged DS, forged NS) must
//!   bounce: zero captures, zero forged acceptances, registry DS/NS
//!   untouched, zero hijacked or saved-by-validation outcomes.
//! * **Arm B (LaxMail channel)** — the same registrar downgraded to the
//!   paper's unauthenticated-email policy. The forged NS lands, the
//!   attacker serves the victim's zone, and the victim's planned query
//!   volume splits *exactly* into hijacked (the non-validating fleet
//!   share) and SERVFAIL-protected (the validating share) — with every
//!   one of those outcomes attributed to the responsible registrar.
//! * **Arm C (attack under outage)** — the hijack rides through a
//!   sustained outage of the largest uninvolved operator fleet:
//!   serve-stale keeps the outage victim available while the hijack
//!   stays fully visible — degradation never masks a takeover.

use std::sync::Arc;

use dsec_attack::{AttackCampaign, AttackPhase, AttackPlan, AttackVector};
use dsec_authserver::OutageScenario;
use dsec_ecosystem::{ExternalDs, World};
use dsec_reports::ExperimentResult;
use dsec_scanner::{takeover_census, takeover_census_table};
use dsec_traffic::{
    run_load, run_load_mixed, validating_assignment, Cache, LoadConfig, TrafficPopulation,
    TrafficReport,
};
use dsec_workloads::{build, PopulationConfig};

use crate::experiments::largest_operator_fleet;
use crate::rollover::rollover_victim;

/// Stream seed for every E-A1 load.
const A1_SEED: u64 = 0x0A77AC;
/// Queries per load phase. High enough that the Zipf-head victim is
/// hit a few dozen times even at full population scale, where its
/// share of the stream is thinner than in the tiny fixture.
const A1_QUERIES: u64 = 4_096;
/// Validating share of the resolver fleet (Nosyk et al. put the real
/// number below this; an even split maximises the odds that the
/// victim's hits land in both sub-fleets at every population scale —
/// the experiment asserts exactly that).
const A1_SHARE: f64 = 0.5;
/// Sim-clock rate for the outage arm: slow enough that phase-1 cache
/// entries expire inside phase 2, so serve-stale actually engages.
const A1_QPS: u32 = 4;
/// Serve-stale horizon for the outage arm, seconds.
const A1_MAX_STALE: u32 = 7_200;
/// Fault-plane seed for the outage arm.
const A1_FAULT_SEED: u64 = 0x0A7A6E;

/// The verified-sender email policy (the strong end of Table 2).
fn authenticated_email() -> ExternalDs {
    ExternalDs::Email {
        verifies_sender: true,
        accepts_foreign_sender: false,
        validates: false,
    }
}

/// The LaxMail policy from the paper's §5.3 anecdote: header-only
/// checking, forgeable by anyone who can type a `From:` line.
fn lax_email() -> ExternalDs {
    ExternalDs::Email {
        verifies_sender: false,
        accepts_foreign_sender: false,
        validates: false,
    }
}

/// Swaps the named registrar's external-DS channel.
fn set_channel(world: &mut World, registrar: &str, channel: ExternalDs) {
    let id = world
        .registrar_by_name(registrar)
        .expect("victim registrar exists");
    world.set_external_ds(id, channel);
}

/// One load at the mixed fleet share with the campaign's hijacked zones
/// marked for re-labelling, over fresh caches.
fn mixed_load(world: &World, campaign: &AttackCampaign, threads: usize) -> TrafficReport {
    run_load(
        world,
        &LoadConfig::default()
            .with_queries(A1_QUERIES)
            .with_threads(threads)
            .with_seed(A1_SEED)
            .with_validating_share(A1_SHARE)
            .with_captured(campaign.hijacked_zones()),
    )
}

/// The stream indices that land on `name`, planned from the *current*
/// world exactly as `run_load` will plan them. The stream is a pure
/// function of (population, mix, seed, clock), so this is ground truth
/// for the split checks.
fn victim_indices(world: &World, name: &dsec_wire::Name) -> Vec<u64> {
    let population = TrafficPopulation::from_world(world);
    let config = LoadConfig::default();
    dsec_traffic::workload::generate_stream(
        &population,
        &config.mix,
        A1_SEED,
        A1_QUERIES,
        world.today.epoch_seconds(),
        config.sim_qps,
    )
    .iter()
    .enumerate()
    .filter(|(_, q)| &population.sites[q.site as usize].name == name)
    .map(|(i, _)| i as u64)
    .collect()
}

/// E-A1 — forged DS/NS takeovers, attacker authorities, and measured
/// user reach under a mixed resolver fleet. See the module docs for the
/// three arms.
pub fn experiment_attack_plane(population: &PopulationConfig) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E-A1",
        "Registrar compromise: forged DS/NS takeovers and user reach under a mixed resolver fleet",
    );

    // ---- Arm A: the authenticated channel repels both vectors. ----
    let mut pw = build(population);
    let traffic_pop = TrafficPopulation::from_world(&pw.world);
    let victim = rollover_victim(&mut pw.world, &traffic_pop);
    set_channel(&mut pw.world, &victim.registrar, authenticated_email());
    let ds_before = pw.world.registry(victim.tld).ds_of(&victim.name);
    let ns_before = pw.world.registry(victim.tld).ns_of(&victim.name);
    let launch = pw.world.today.plus_days(1);
    let mut ns_campaign = AttackCampaign::new();
    ns_campaign.schedule(
        victim.name.clone(),
        AttackPlan::new(AttackVector::ForgedNs { stealthy: true }, launch),
    );
    let mut ds_campaign = AttackCampaign::new();
    ds_campaign.schedule(victim.name.clone(), AttackPlan::new(AttackVector::ForgedDs, launch));
    let until = pw.world.today.plus_days(2);
    while pw.world.today < until {
        pw.world.tick();
        ns_campaign.tick(&mut pw.world);
        ds_campaign.tick(&mut pw.world);
    }
    let repelled = ns_campaign.state(&victim.name).map(|s| s.phase) == Some(AttackPhase::Repelled)
        && ds_campaign.state(&victim.name).map(|s| s.phase) == Some(AttackPhase::Repelled);
    result.check(
        "arm A: authenticated email repels both takeover vectors (zero captures)",
        0.0,
        (ns_campaign.captured().len() + ds_campaign.captured().len()) as f64,
        0.0,
    );
    result.check(
        "arm A: no forged submission was accepted anywhere in the world",
        0.0,
        (pw.world.events.count("forged_email_accepted")
            + pw.world.events.count("forged_ns_accepted")) as f64,
        0.0,
    );
    result.check(
        "arm A: registry DS and NS are untouched and both attempts logged as repelled",
        1.0,
        f64::from(
            repelled
                && pw.world.events.count("attack_repelled") == 2
                && pw.world.registry(victim.tld).ds_of(&victim.name) == ds_before
                && pw.world.registry(victim.tld).ns_of(&victim.name) == ns_before,
        ),
        0.0,
    );
    let clean = mixed_load(&pw.world, &ns_campaign, 1);
    result.check(
        "arm A: mixed-fleet load sees zero hijacked and zero saved-by-validation",
        0.0,
        (clean.outcomes.hijacked + clean.outcomes.saved_by_validation) as f64,
        0.0,
    );

    // ---- Arm B: the LaxMail channel lets the forged NS land. ----
    let mut pw_b = build(population);
    let victim_b = rollover_victim(&mut pw_b.world, &traffic_pop);
    assert_eq!(victim_b.name, victim.name, "identical builds pick one victim");
    set_channel(&mut pw_b.world, &victim.registrar, lax_email());
    let mut campaign_b = AttackCampaign::new();
    campaign_b.schedule(
        victim.name.clone(),
        AttackPlan::new(
            AttackVector::ForgedNs { stealthy: true },
            pw_b.world.today.plus_days(1),
        ),
    );
    let until_b = pw_b.world.today.plus_days(2);
    campaign_b.advance_to(&mut pw_b.world, until_b);
    let captured = campaign_b.hijacked_zones();
    result.check(
        "arm B: the forged NS change captured the victim",
        1.0,
        f64::from(captured == vec![victim.name.clone()]),
        0.0,
    );
    let indices = victim_indices(&pw_b.world, &victim.name);
    let expected_hijacked = indices
        .iter()
        .filter(|&&i| !validating_assignment(A1_SEED, i, A1_SHARE))
        .count() as u64;
    let load_1 = mixed_load(&pw_b.world, &campaign_b, 1);
    let load_8 = mixed_load(&pw_b.world, &campaign_b, 8);
    result.check(
        "arm B: the captured victim is actually queried by both sub-fleets",
        1.0,
        f64::from(expected_hijacked > 0 && expected_hijacked < indices.len() as u64),
        0.0,
    );
    result.check(
        "arm B: hijacked + saved-by-validation equals the victim's planned query count",
        indices.len() as f64,
        (load_1.outcomes.hijacked + load_1.outcomes.saved_by_validation) as f64,
        0.0,
    );
    result.check(
        "arm B: the hijacked count is exactly the non-validating share of victim hits",
        expected_hijacked as f64,
        load_1.outcomes.hijacked as f64,
        0.0,
    );
    let victim_counts = load_1
        .by_registrar
        .get(&victim.registrar)
        .copied()
        .unwrap_or_default();
    result.check(
        "arm B: every attack outcome attributes to the responsible registrar",
        1.0,
        f64::from(
            victim_counts.hijacked == load_1.outcomes.hijacked
                && victim_counts.saved_by_validation == load_1.outcomes.saved_by_validation,
        ),
        0.0,
    );
    result.check(
        "arm B: tallies byte-identical across 1 and 8 worker threads",
        1.0,
        f64::from(
            load_1.outcomes == load_8.outcomes
                && load_1.by_registrar == load_8.by_registrar
                && load_1.by_operator == load_8.by_operator
                && load_1.histogram == load_8.histogram,
        ),
        0.0,
    );

    // ---- Arm C: the hijack rides through an unrelated fleet outage. ----
    let mut pw_c = build(population);
    rollover_victim(&mut pw_c.world, &traffic_pop);
    set_channel(&mut pw_c.world, &victim.registrar, lax_email());
    let mut campaign_c = AttackCampaign::new();
    campaign_c.schedule(
        victim.name.clone(),
        AttackPlan::new(
            AttackVector::ForgedNs { stealthy: true },
            pw_c.world.today.plus_days(1),
        ),
    );
    let until_c = pw_c.world.today.plus_days(2);
    campaign_c.advance_to(&mut pw_c.world, until_c);
    let (outage_victim, fleet) =
        largest_operator_fleet(&pw_c.world, Some(victim.operator.as_str()));
    let span = (A1_QUERIES / A1_QPS as u64) as u32;
    let base = pw_c.world.today.epoch_seconds();
    pw_c.world.fault_plane().enable(A1_FAULT_SEED);
    OutageScenario::operator_outage("attack-under-outage", fleet, base + span, base + 2 * span + 60)
        .install(pw_c.world.fault_plane());
    let outage_run = attack_outage_phases(&pw_c.world, &campaign_c, span, 1);
    let outage_run8 = attack_outage_phases(&pw_c.world, &campaign_c, span, 8);
    let outage_victim_counts = outage_run
        .by_operator
        .get(&outage_victim)
        .copied()
        .unwrap_or_default();
    result.check(
        "arm C: serve-stale keeps the outage victim's availability ≥ 90%",
        1.0,
        f64::from(outage_run.outcomes.stale > 0 && outage_victim_counts.availability() >= 0.90),
        0.0,
    );
    result.check(
        "arm C: the hijack stays fully visible through the outage",
        1.0,
        f64::from(
            outage_run.outcomes.hijacked > 0 && outage_run.outcomes.saved_by_validation > 0,
        ),
        0.0,
    );
    result.check(
        "arm C: tallies byte-identical across 1 and 8 worker threads",
        1.0,
        f64::from(
            outage_run.outcomes == outage_run8.outcomes
                && outage_run.by_registrar == outage_run8.by_registrar
                && outage_run.by_operator == outage_run8.by_operator,
        ),
        0.0,
    );

    // The artifact: reach numbers plus the scanner's per-registrar
    // takeover census over the arm-B world.
    let mut artifact = format!(
        "victim domain {} (registrar {}, operator {})\n\
         arm A (verified sender): 2 attempts, 0 captures, {} hijacked/saved outcomes\n\
         arm B (LaxMail):         victim hit {} times/day → {} hijacked ({}% non-validating fleet), \
         {} saved by validation\n\
         arm C (outage overlay):  outage victim {} availability {:.1}% with serve-stale; \
         {} stale, {} hijacked, {} saved\n\npaper tie-in: §5.3/§6.4 — the channel decides; \
         validation only caps the blast radius.\n\nper-registrar takeover census (arm B world):\n",
        victim.name,
        victim.registrar,
        victim.operator,
        clean.outcomes.hijacked + clean.outcomes.saved_by_validation,
        indices.len(),
        load_1.outcomes.hijacked,
        (100.0 * (1.0 - A1_SHARE)) as u32,
        load_1.outcomes.saved_by_validation,
        outage_victim,
        100.0 * outage_victim_counts.availability(),
        outage_run.outcomes.stale,
        outage_run.outcomes.hijacked,
        outage_run.outcomes.saved_by_validation,
    );
    artifact.push_str(&takeover_census_table(&takeover_census(&pw_b.world)));
    result.artifact = artifact;
    result
}

/// The two-phase (warm-up, then in-outage replay) load for arm C, over
/// persistent validating *and* non-validating caches — the poisoned
/// side of the fleet keeps its cache across the phase boundary exactly
/// like the clean side does.
fn attack_outage_phases(
    world: &World,
    campaign: &AttackCampaign,
    span_s: u32,
    threads: usize,
) -> TrafficReport {
    let mut config = LoadConfig::default()
        .with_queries(A1_QUERIES)
        .with_threads(threads)
        .with_seed(A1_SEED)
        .with_max_stale(A1_MAX_STALE)
        .with_validating_share(A1_SHARE)
        .with_captured(campaign.hijacked_zones());
    config.sim_qps = A1_QPS;
    let cache = Arc::new(Cache::bounded(config.cache_capacity).with_max_stale(A1_MAX_STALE));
    let nv_cache = Arc::new(Cache::bounded(config.cache_capacity).with_max_stale(A1_MAX_STALE));
    run_load_mixed(world, &config, Arc::clone(&cache), Arc::clone(&nv_cache));
    run_load_mixed(
        world,
        &config.clone().with_now_offset(span_s),
        cache,
        nv_cache,
    )
}
