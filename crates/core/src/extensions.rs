//! Extension experiments: the paper's §8 recommendations, made runnable.
//!
//! The paper *recommends* but could not measure: CDS/CDNSKEY everywhere
//! (only `.cz` had it), DNSSEC-by-default at the big registrars, and
//! safer rollover mechanics. With the whole ecosystem under our control
//! these become what-if experiments (ids E-X1…E-X3 in DESIGN.md).

use dsec_ecosystem::{
    ExternalDs, Hosting, OperatorDnssec, Plan, PolicyChange, RegistrarPolicy, Tld, TldPolicy,
    TldRole, World, WorldConfig, ALL_TLDS,
};
use dsec_reports::ExperimentResult;
use dsec_resolver::{Resolver, Security};
use dsec_scanner::Snapshot;
use dsec_wire::{Name, RrType};

fn focused_world() -> World {
    World::new(WorldConfig {
        key_pool: 2,
        ..WorldConfig::default()
    })
}

fn policy(
    operator_dnssec: OperatorDnssec,
    external_ds: ExternalDs,
    publishes_ds: bool,
) -> RegistrarPolicy {
    RegistrarPolicy {
        operator_dnssec,
        external_ds,
        tlds: ALL_TLDS
            .iter()
            .map(|&t| {
                (
                    t,
                    TldPolicy {
                        role: TldRole::Registrar,
                        publishes_ds,
                    },
                )
            })
            .collect(),
    }
}

/// E-X1 — §8 recommendation 2: registries adopting CDS/CDNSKEY with
/// RFC 8078 bootstrapping heal partial deployments without any registrar
/// or customer action.
///
/// Build a Loopia-for-.com-like registrar (signs everything, never
/// uploads DS): all its domains are partial. Enable CDS publication at
/// the operator and RFC 8078 accept-after-delay at the registry, tick
/// past the delay, and measure again.
pub fn experiment_cds_bootstrap(domains: usize) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E-X1",
        "Extension: CDS/CDNSKEY bootstrapping heals partial deployments",
    );
    let mut world = focused_world();
    let registrar = world.add_registrar(
        "PartialCo",
        Name::parse("partialco.net").unwrap(),
        policy(
            OperatorDnssec::Default,
            ExternalDs::Unsupported,
            false, // signs but never uploads DS — the partial pattern
        ),
    );
    for i in 0..domains {
        world
            .purchase(
                registrar,
                &format!("p{i}"),
                Tld::Com,
                Hosting::Registrar { plan: Plan::Free },
                "o@x",
            )
            .expect("purchase succeeds");
    }

    let partial_fraction = |snapshot: &Snapshot| {
        let stats = snapshot.tld_totals(Tld::Com);
        if stats.with_dnskey == 0 {
            0.0
        } else {
            stats.partially_deployed as f64 / stats.with_dnskey as f64
        }
    };
    let full_fraction = |snapshot: &Snapshot| {
        let stats = snapshot.tld_totals(Tld::Com);
        if stats.with_dnskey == 0 {
            0.0
        } else {
            stats.fully_deployed as f64 / stats.with_dnskey as f64
        }
    };

    let before = Snapshot::take_filtered(&world, &[Tld::Com]);
    result.check(
        "baseline: signed domains that are partial",
        1.0,
        partial_fraction(&before),
        0.0,
    );

    // The intervention.
    world.enable_cds_publication(registrar);
    {
        let registry = world.registry_mut(Tld::Com);
        registry.supports_cds = true;
        registry.cds_bootstrap_delay_days = Some(7);
    }
    world.advance_to(world.today.plus_days(10));

    let after = Snapshot::take_filtered(&world, &[Tld::Com]);
    result.check(
        "after CDS bootstrap: signed domains fully deployed",
        1.0,
        full_fraction(&after),
        0.0,
    );
    result.check(
        "after CDS bootstrap: partial remainder",
        0.0,
        partial_fraction(&after),
        0.001,
    );
    result.artifact = format!(
        "before: {:?}\nafter:  {:?}\n",
        before.tld_totals(Tld::Com),
        after.tld_totals(Tld::Com)
    );
    result
}

/// E-X2 — §8 recommendation 1: what if the no-DNSSEC registrars flipped
/// to signing by default? Two identical worlds, one with the policy
/// flipped (existing domains mass-signed over 90 days, the PCExtreme
/// playbook).
pub fn experiment_default_signing_ablation(
    registrars: usize,
    domains_per_registrar: usize,
) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E-X2",
        "Ablation: DNSSEC-by-default at the popular registrars",
    );
    let run = |intervene: bool| -> f64 {
        let mut world = focused_world();
        let mut ids = Vec::new();
        for r in 0..registrars {
            let id = world.add_registrar(
                format!("Reg{r}"),
                Name::parse(&format!("reg{r}.net")).unwrap(),
                RegistrarPolicy::no_dnssec(&ALL_TLDS),
            );
            for i in 0..domains_per_registrar {
                world
                    .purchase(
                        id,
                        &format!("r{r}d{i}"),
                        Tld::Com,
                        Hosting::Registrar { plan: Plan::Free },
                        "o@x",
                    )
                    .expect("purchase succeeds");
            }
            ids.push(id);
        }
        if intervene {
            for id in &ids {
                let on = world.today.plus_days(1);
                world.add_milestone(
                    *id,
                    on,
                    PolicyChange::SetOperatorDnssec(OperatorDnssec::Default),
                );
                world.add_milestone(
                    *id,
                    on,
                    PolicyChange::MassSignHosted {
                        tlds: vec![Tld::Com],
                        over_days: 90,
                    },
                );
            }
        }
        world.advance_to(world.today.plus_days(120));
        let snapshot = Snapshot::take_filtered(&world, &[Tld::Com]);
        let stats = snapshot.tld_totals(Tld::Com);
        stats.fully_deployed as f64 / stats.domains.max(1) as f64
    };
    let baseline = run(false);
    let intervention = run(true);
    result.check("baseline % fully deployed", 0.0, baseline, 0.001);
    result.check(
        "with default signing % fully deployed",
        1.0,
        intervention,
        0.05,
    );
    result.artifact = format!(
        "baseline {:.1}% → default-signing {:.1}% fully deployed after 120 days\n",
        100.0 * baseline,
        100.0 * intervention
    );
    result
}

/// E-X3 — rollover mechanics: an abrupt KSK roll takes the domain dark
/// for validating resolvers; a CDS-coordinated roll never breaks.
pub fn experiment_rollover() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E-X3",
        "Extension: key rollover — abrupt vs CDS-coordinated",
    );
    let mut world = focused_world();
    let registrar = world.add_registrar(
        "RollCo",
        Name::parse("rollco.net").unwrap(),
        policy(
            OperatorDnssec::Default,
            ExternalDs::Web { validates: true },
            true,
        ),
    );
    let abrupt = world
        .purchase(
            registrar,
            "abrupt",
            Tld::Com,
            Hosting::Registrar { plan: Plan::Free },
            "o@x",
        )
        .unwrap();
    let coordinated = world
        .purchase(
            registrar,
            "coordinated",
            Tld::Com,
            Hosting::Registrar { plan: Plan::Free },
            "o@x",
        )
        .unwrap();
    world.registry_mut(Tld::Com).supports_cds = true;

    let resolver = Resolver::new(world.network.clone(), world.trust_anchor());
    let secure = |world: &World, domain: &Name| -> bool {
        let www = domain.child("www").unwrap();
        resolver
            .resolve(&www, RrType::A, world.today.epoch_seconds())
            .map(|a| a.security == Security::Secure)
            .unwrap_or(false)
    };

    let both_secure_before = secure(&world, &abrupt) && secure(&world, &coordinated);

    // The wrong way: swap keys, never touch the DS.
    world.roll_keys_abrupt(&abrupt).unwrap();
    let abrupt_broken = !secure(&world, &abrupt);

    // The right way: CDS first, switch keys only after the DS followed.
    world.prepare_rollover(&coordinated).unwrap();
    let secure_during_prepare = secure(&world, &coordinated);
    world.tick(); // registry CDS scan installs the new DS
    world.complete_rollover(&coordinated).unwrap();
    let secure_after_complete = secure(&world, &coordinated);

    result.check("both secure initially", 1.0, f64::from(both_secure_before), 0.0);
    result.check("abrupt roll goes bogus", 1.0, f64::from(abrupt_broken), 0.0);
    result.check(
        "coordinated roll: secure during preparation",
        1.0,
        f64::from(secure_during_prepare),
        0.0,
    );
    result.check(
        "coordinated roll: secure after completion",
        1.0,
        f64::from(secure_after_complete),
        0.0,
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cds_bootstrap_heals_partials() {
        let result = experiment_cds_bootstrap(6);
        assert!(result.reproduced(), "{result}");
    }

    #[test]
    fn default_signing_ablation_shows_the_gap() {
        let result = experiment_default_signing_ablation(3, 4);
        assert!(result.reproduced(), "{result}");
    }

    #[test]
    fn rollover_mechanics() {
        let result = experiment_rollover();
        assert!(result.reproduced(), "{result}");
    }
}
