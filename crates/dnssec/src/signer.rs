//! Zone signing (RFC 4035 §2): RRSIG generation, DNSKEY publication, and
//! the NSEC chain for authenticated denial.

use dsec_wire::rdata::{Nsec3ParamRdata, Nsec3Rdata};
use dsec_wire::rrtype::TypeBitmap;
use dsec_wire::{Name, RData, Record, RrSet, RrType, RrsigRdata, Zone};

use dsec_crypto::SigningKey;

use crate::keys::ZoneKeys;
use crate::nsec3::{nsec3_hash_memoized, Nsec3Config};
use crate::DnssecError;

/// Signing parameters.
#[derive(Debug, Clone)]
pub struct SignerConfig {
    /// Signature inception (epoch seconds).
    pub inception: u32,
    /// Signature expiration (epoch seconds).
    pub expiration: u32,
    /// Whether to build the NSEC chain.
    pub nsec: bool,
    /// Use RFC 5155 NSEC3 denial instead of NSEC (overrides `nsec`).
    pub nsec3: Option<Nsec3Config>,
    /// TTL for the DNSKEY RRset.
    pub dnskey_ttl: u32,
}

impl SignerConfig {
    /// A config valid from `now` for `validity_secs`, with NSEC enabled.
    pub fn valid_from(now: u32, validity_secs: u32) -> Self {
        SignerConfig {
            inception: now,
            expiration: now.saturating_add(validity_secs),
            nsec: true,
            nsec3: None,
            dnskey_ttl: 3600,
        }
    }

    /// The same config with NSEC3 denial (RFC 5155).
    pub fn with_nsec3(mut self, config: Nsec3Config) -> Self {
        self.nsec3 = Some(config);
        self
    }
}

/// Computes the RRSIG record for one RRset with one key.
///
/// The signed data is `RRSIG_RDATA_prefix ‖ canonical RRset`
/// (RFC 4034 §3.1.8.1).
pub fn sign_rrset(
    rrset: &RrSet,
    key: &SigningKey,
    key_tag: u16,
    signer_name: &Name,
    config: &SignerConfig,
) -> Record {
    let rrsig = RrsigRdata {
        type_covered: rrset.rtype(),
        algorithm: key.algorithm.number(),
        labels: rrset.name().label_count() as u8,
        original_ttl: rrset.ttl(),
        expiration: config.expiration,
        inception: config.inception,
        key_tag,
        signer_name: signer_name.clone(),
        signature: Vec::new(),
    };
    let mut message = rrsig.signed_prefix();
    message.extend_from_slice(&rrset.canonical_wire(rrset.ttl()));
    let signature = key.sign(&message);
    Record::new(
        rrset.name().clone(),
        rrset.ttl(),
        RData::Rrsig(RrsigRdata { signature, ..rrsig }),
    )
}

/// The key material for one signing pass, generalised to mid-rollover
/// states where two key sets coexist (RFC 6781 §4): which DNSKEYs to
/// publish, which keys sign the DNSKEY RRset (KSK side), and which keys
/// sign everything else (ZSK side).
///
/// A steady-state zone is `SigningSet::single`; a double-signature
/// rollover serves `SigningSet::double` (both generations published and
/// signing, so validation succeeds under *either* parent DS); a
/// pre-publish ZSK rollover serves `SigningSet::prepublish` (the incoming
/// ZSK is published so caches learn it, but only the active keys sign).
#[derive(Debug, Clone)]
pub struct SigningSet {
    /// Zone the set signs.
    pub zone: Name,
    /// DNSKEY RDATAs to publish at the apex.
    pub dnskeys: Vec<dsec_wire::DnskeyRdata>,
    /// Keys (with their tags) producing RRSIGs over the DNSKEY RRset.
    pub ksk_signers: Vec<(SigningKey, u16)>,
    /// Keys (with their tags) producing RRSIGs over every other RRset.
    pub zsk_signers: Vec<(SigningKey, u16)>,
}

impl SigningSet {
    /// Steady state: one KSK/ZSK pair, exactly what [`sign_zone`] does.
    pub fn single(keys: &ZoneKeys) -> Self {
        SigningSet {
            zone: keys.zone.clone(),
            dnskeys: vec![keys.ksk_dnskey(), keys.zsk_dnskey()],
            ksk_signers: vec![(keys.ksk.clone(), keys.ksk_tag())],
            zsk_signers: vec![(keys.zsk.clone(), keys.zsk_tag())],
        }
    }

    /// Double-signature rollover (RFC 6781 §4.1.2, also the conservative
    /// algorithm-rollover shape of RFC 6781 §4.1.4): both generations are
    /// published and *both* sign, so the DNSKEY RRset authenticates under
    /// the old DS and the new DS alike, and every answer carries an RRSIG
    /// from each ZSK. The parent DS can swap at any point in the window
    /// without a bogus moment.
    pub fn double(old: &ZoneKeys, new: &ZoneKeys) -> Result<Self, DnssecError> {
        if old.zone != new.zone {
            return Err(DnssecError::KeyZoneMismatch {
                key_zone: new.zone.to_string(),
                zone: old.zone.to_string(),
            });
        }
        Ok(SigningSet {
            zone: old.zone.clone(),
            dnskeys: vec![
                old.ksk_dnskey(),
                old.zsk_dnskey(),
                new.ksk_dnskey(),
                new.zsk_dnskey(),
            ],
            ksk_signers: vec![(old.ksk.clone(), old.ksk_tag()), (new.ksk.clone(), new.ksk_tag())],
            zsk_signers: vec![(old.zsk.clone(), old.zsk_tag()), (new.zsk.clone(), new.zsk_tag())],
        })
    }

    /// Pre-publish ZSK rollover (RFC 6781 §4.1.1.1): the incoming ZSK is
    /// published next to the active pair so caches learn it one TTL ahead
    /// of use, but only the active keys produce signatures. The KSK (and
    /// hence the DS) does not change.
    pub fn prepublish(active: &ZoneKeys, incoming: &ZoneKeys) -> Result<Self, DnssecError> {
        if active.zone != incoming.zone {
            return Err(DnssecError::KeyZoneMismatch {
                key_zone: incoming.zone.to_string(),
                zone: active.zone.to_string(),
            });
        }
        Ok(SigningSet {
            zone: active.zone.clone(),
            dnskeys: vec![
                active.ksk_dnskey(),
                active.zsk_dnskey(),
                incoming.zsk_dnskey(),
            ],
            ksk_signers: vec![(active.ksk.clone(), active.ksk_tag())],
            zsk_signers: vec![(active.zsk.clone(), active.zsk_tag())],
        })
    }
}

/// Signs a zone in place: publishes the DNSKEY RRset, signs every
/// authoritative RRset (KSK over DNSKEY, ZSK over the rest), and builds
/// the NSEC chain when configured.
///
/// Skips what RFC 4035 says must not be signed: delegation NS RRsets and
/// glue (names at/below a zone cut other than the cut's DS/NSEC).
pub fn sign_zone(zone: &mut Zone, keys: &ZoneKeys, config: &SignerConfig) -> Result<(), DnssecError> {
    sign_zone_set(zone, &SigningSet::single(keys), config)
}

/// Signs a zone with an arbitrary [`SigningSet`] — the rollover-aware
/// generalisation of [`sign_zone`]. Every RRset gets one RRSIG per
/// applicable signer.
pub fn sign_zone_set(
    zone: &mut Zone,
    set: &SigningSet,
    config: &SignerConfig,
) -> Result<(), DnssecError> {
    if set.zone != *zone.origin() {
        return Err(DnssecError::KeyZoneMismatch {
            key_zone: set.zone.to_string(),
            zone: zone.origin().to_string(),
        });
    }
    // Drop any stale DNSSEC material from a previous signing pass.
    let owners = zone.owner_names();
    for owner in &owners {
        zone.remove_rrset(owner, RrType::Rrsig);
        zone.remove_rrset(owner, RrType::Nsec);
        zone.remove_rrset(owner, RrType::Nsec3);
    }
    zone.remove_rrset(&set.zone, RrType::Dnskey);
    zone.remove_rrset(&set.zone, RrType::Nsec3Param);

    // Publish DNSKEYs.
    for dnskey in &set.dnskeys {
        zone.add(Record::new(
            set.zone.clone(),
            config.dnskey_ttl,
            RData::Dnskey(dnskey.clone()),
        ))
        .map_err(DnssecError::Wire)?;
    }

    // Identify zone cuts so delegations and glue are left unsigned.
    let cuts: Vec<Name> = zone
        .rrsets()
        .filter(|set| set.rtype() == RrType::Ns && set.name() != zone.origin())
        .map(|set| set.name().clone())
        .collect();

    // NSEC3 chain (RFC 5155) when configured: hash every authoritative
    // owner, link the hashes circularly in hash order, and advertise the
    // parameters with an apex NSEC3PARAM.
    if let Some(nsec3) = &config.nsec3 {
        let auth_owners: Vec<Name> = zone
            .owner_names()
            .into_iter()
            .filter(|n| is_authoritative(n, zone.origin(), &cuts))
            .collect();
        let mut hashed: Vec<([u8; 20], Name)> = auth_owners
            .iter()
            .map(|owner| {
                (
                    // Memoized: daily re-signing rehashes the same owners
                    // with unchanged zone parameters.
                    nsec3_hash_memoized(owner, &nsec3.salt, nsec3.iterations),
                    owner.clone(),
                )
            })
            .collect();
        hashed.sort_by_key(|a| a.0);
        for (i, (hash, owner)) in hashed.iter().enumerate() {
            let next = hashed[(i + 1) % hashed.len()].0;
            let mut listed: Vec<RrType> = zone.types_at(owner).iter().collect();
            listed.push(RrType::Rrsig);
            if owner == zone.origin() {
                listed.push(RrType::Nsec3Param);
            }
            let owner_label = dsec_crypto::base32::encode_hex(hash);
            let hashed_owner = zone
                .origin()
                .child(&owner_label)
                .map_err(DnssecError::Wire)?;
            zone.add(Record::new(
                hashed_owner,
                config.dnskey_ttl,
                RData::Nsec3(Nsec3Rdata {
                    hash_algorithm: 1,
                    flags: 0,
                    iterations: nsec3.iterations,
                    salt: nsec3.salt.clone(),
                    next_hashed: next.to_vec(),
                    types: TypeBitmap::from_types(listed),
                }),
            ))
            .map_err(DnssecError::Wire)?;
        }
        zone.add(Record::new(
            set.zone.clone(),
            config.dnskey_ttl,
            RData::Nsec3Param(Nsec3ParamRdata {
                hash_algorithm: 1,
                flags: 0,
                iterations: nsec3.iterations,
                salt: nsec3.salt.clone(),
            }),
        ))
        .map_err(DnssecError::Wire)?;
    }

    // NSEC chain over authoritative owner names (canonical order).
    if config.nsec && config.nsec3.is_none() {
        let auth_owners: Vec<Name> = zone
            .owner_names()
            .into_iter()
            .filter(|n| is_authoritative(n, zone.origin(), &cuts))
            .collect();
        for (i, owner) in auth_owners.iter().enumerate() {
            let next = auth_owners[(i + 1) % auth_owners.len()].clone();
            let mut types = zone.types_at(owner);
            let mut listed: Vec<RrType> = types.iter().collect();
            listed.push(RrType::Nsec);
            listed.push(RrType::Rrsig);
            types = TypeBitmap::from_types(listed);
            zone.add(Record::new(
                owner.clone(),
                config.dnskey_ttl,
                RData::Nsec { next, types },
            ))
            .map_err(DnssecError::Wire)?;
        }
    }

    // Sign every authoritative RRset: one RRSIG per applicable signer.
    let rrsets: Vec<RrSet> = zone.rrsets().collect();
    for rrset in rrsets {
        if !is_authoritative(rrset.name(), zone.origin(), &cuts) {
            continue;
        }
        // Delegation NS RRsets are not signed (the child is authoritative);
        // DS at a cut *is* signed by the parent, handled by the cut check.
        if rrset.rtype() == RrType::Ns && rrset.name() != zone.origin() {
            continue;
        }
        let signers = if rrset.rtype() == RrType::Dnskey {
            &set.ksk_signers
        } else {
            &set.zsk_signers
        };
        for (key, tag) in signers {
            let rrsig = sign_rrset(&rrset, key, *tag, &set.zone, config);
            zone.add(rrsig).map_err(DnssecError::Wire)?;
        }
    }
    Ok(())
}

/// An owner name is authoritative unless it lies strictly below a zone cut.
/// The cut owner itself is authoritative for DS/NSEC (and its NS set is
/// excluded separately).
fn is_authoritative(name: &Name, origin: &Name, cuts: &[Name]) -> bool {
    debug_assert!(name.is_subdomain_of(origin));
    !cuts.iter().any(|cut| name.is_strict_subdomain_of(cut))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::ZoneKeys;
    use dsec_crypto::Algorithm;
    use dsec_wire::SoaRdata;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn test_zone() -> Zone {
        let mut z = Zone::new(name("example.com"));
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Soa(SoaRdata {
                mname: name("ns1.example.com"),
                rname: name("hostmaster.example.com"),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        ))
        .unwrap();
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Ns(name("ns1.example.com")),
        ))
        .unwrap();
        z.add(Record::new(
            name("www.example.com"),
            300,
            RData::A("192.0.2.10".parse().unwrap()),
        ))
        .unwrap();
        z
    }

    fn test_keys() -> ZoneKeys {
        let mut rng = StdRng::seed_from_u64(2);
        ZoneKeys::generate_default(&mut rng, name("example.com"), Algorithm::RsaSha256).unwrap()
    }

    fn config() -> SignerConfig {
        SignerConfig::valid_from(1_450_000_000, 30 * 86400)
    }

    #[test]
    fn signing_adds_dnskey_rrsig_nsec() {
        let mut zone = test_zone();
        sign_zone(&mut zone, &test_keys(), &config()).unwrap();
        assert!(zone.rrset(&name("example.com"), RrType::Dnskey).is_some());
        assert!(zone.rrset(&name("example.com"), RrType::Rrsig).is_some());
        assert!(zone.rrset(&name("example.com"), RrType::Nsec).is_some());
        assert!(zone.rrset(&name("www.example.com"), RrType::Rrsig).is_some());
        assert!(zone.rrset(&name("www.example.com"), RrType::Nsec).is_some());
    }

    #[test]
    fn every_authoritative_rrset_has_a_signature() {
        let mut zone = test_zone();
        sign_zone(&mut zone, &test_keys(), &config()).unwrap();
        for rrset in zone.rrsets().collect::<Vec<_>>() {
            if rrset.rtype() == RrType::Rrsig {
                continue;
            }
            let sigs = zone
                .rrset(rrset.name(), RrType::Rrsig)
                .expect("rrsigs present");
            let covered = sigs.records().iter().any(|r| {
                matches!(&r.rdata, RData::Rrsig(s) if s.type_covered == rrset.rtype())
            });
            assert!(covered, "no RRSIG covering {} {}", rrset.name(), rrset.rtype());
        }
    }

    #[test]
    fn dnskey_signed_by_ksk_others_by_zsk() {
        let mut zone = test_zone();
        let keys = test_keys();
        sign_zone(&mut zone, &keys, &config()).unwrap();
        let sigs = zone.rrset(&name("example.com"), RrType::Rrsig).unwrap();
        for record in sigs.records() {
            let RData::Rrsig(sig) = &record.rdata else { panic!() };
            if sig.type_covered == RrType::Dnskey {
                assert_eq!(sig.key_tag, keys.ksk_tag());
            } else {
                assert_eq!(sig.key_tag, keys.zsk_tag());
            }
        }
    }

    #[test]
    fn rrsig_fields_are_consistent() {
        let mut zone = test_zone();
        let cfg = config();
        sign_zone(&mut zone, &test_keys(), &cfg).unwrap();
        let sigs = zone.rrset(&name("www.example.com"), RrType::Rrsig).unwrap();
        let RData::Rrsig(sig) = &sigs.records()[0].rdata else { panic!() };
        assert_eq!(sig.labels, 3);
        assert_eq!(sig.original_ttl, 300);
        assert_eq!(sig.inception, cfg.inception);
        assert_eq!(sig.expiration, cfg.expiration);
        assert_eq!(sig.signer_name, name("example.com"));
    }

    #[test]
    fn delegations_and_glue_are_not_signed() {
        let mut zone = test_zone();
        // A delegation to a child zone with glue.
        zone.add(Record::new(
            name("child.example.com"),
            3600,
            RData::Ns(name("ns1.child.example.com")),
        ))
        .unwrap();
        zone.add(Record::new(
            name("ns1.child.example.com"),
            3600,
            RData::A("192.0.2.99".parse().unwrap()),
        ))
        .unwrap();
        sign_zone(&mut zone, &test_keys(), &config()).unwrap();
        // The cut owner may carry RRSIGs (over its NSEC/DS) but never over
        // the delegation NS set itself; glue is entirely unsigned.
        if let Some(sigs) = zone.rrset(&name("child.example.com"), RrType::Rrsig) {
            assert!(!sigs
                .records()
                .iter()
                .any(|r| matches!(&r.rdata, RData::Rrsig(s) if s.type_covered == RrType::Ns)));
        }
        assert!(zone
            .rrset(&name("ns1.child.example.com"), RrType::Rrsig)
            .is_none());
        // And no NSEC for glue.
        assert!(zone
            .rrset(&name("ns1.child.example.com"), RrType::Nsec)
            .is_none());
    }

    #[test]
    fn ds_at_delegation_is_signed() {
        let mut zone = test_zone();
        zone.add(Record::new(
            name("child.example.com"),
            3600,
            RData::Ns(name("ns1.child.example.com")),
        ))
        .unwrap();
        zone.add(Record::new(
            name("child.example.com"),
            3600,
            RData::Ds(dsec_wire::DsRdata {
                key_tag: 1,
                algorithm: 8,
                digest_type: 2,
                digest: vec![0; 32],
            }),
        ))
        .unwrap();
        sign_zone(&mut zone, &test_keys(), &config()).unwrap();
        let sigs = zone.rrset(&name("child.example.com"), RrType::Rrsig).unwrap();
        assert!(sigs
            .records()
            .iter()
            .any(|r| matches!(&r.rdata, RData::Rrsig(s) if s.type_covered == RrType::Ds)));
        assert!(!sigs
            .records()
            .iter()
            .any(|r| matches!(&r.rdata, RData::Rrsig(s) if s.type_covered == RrType::Ns)));
    }

    #[test]
    fn nsec_chain_is_circular_and_ordered() {
        let mut zone = test_zone();
        zone.add(Record::new(
            name("mail.example.com"),
            300,
            RData::A("192.0.2.20".parse().unwrap()),
        ))
        .unwrap();
        sign_zone(&mut zone, &test_keys(), &config()).unwrap();
        // Walk the chain from the apex; it must return to the apex after
        // visiting every authoritative name exactly once.
        let mut visited = Vec::new();
        let mut cursor = name("example.com");
        loop {
            let nsec = zone.rrset(&cursor, RrType::Nsec).expect("nsec exists");
            let RData::Nsec { next, .. } = &nsec.records()[0].rdata else { panic!() };
            visited.push(cursor.clone());
            cursor = next.clone();
            if cursor == name("example.com") {
                break;
            }
            assert!(visited.len() <= 10, "nsec chain does not terminate");
        }
        assert_eq!(visited.len(), 3); // apex, mail, www
    }

    #[test]
    fn nsec_bitmap_includes_rrsig_and_nsec() {
        let mut zone = test_zone();
        sign_zone(&mut zone, &test_keys(), &config()).unwrap();
        let nsec = zone.rrset(&name("www.example.com"), RrType::Nsec).unwrap();
        let RData::Nsec { types, .. } = &nsec.records()[0].rdata else { panic!() };
        assert!(types.contains(RrType::A));
        assert!(types.contains(RrType::Rrsig));
        assert!(types.contains(RrType::Nsec));
        assert!(!types.contains(RrType::Dnskey));
    }

    #[test]
    fn resigning_is_idempotent_in_structure() {
        let mut zone = test_zone();
        let keys = test_keys();
        sign_zone(&mut zone, &keys, &config()).unwrap();
        let first_len = zone.len();
        sign_zone(&mut zone, &keys, &config()).unwrap();
        assert_eq!(zone.len(), first_len, "re-signing must not accumulate records");
    }

    #[test]
    fn wrong_zone_keys_are_rejected() {
        let mut zone = test_zone();
        let mut rng = StdRng::seed_from_u64(3);
        let keys =
            ZoneKeys::generate_default(&mut rng, name("other.com"), Algorithm::RsaSha256).unwrap();
        assert!(matches!(
            sign_zone(&mut zone, &keys, &config()),
            Err(DnssecError::KeyZoneMismatch { .. })
        ));
    }

    #[test]
    fn nsec3_chain_replaces_nsec() {
        let mut zone = test_zone();
        let keys = test_keys();
        let cfg = config().with_nsec3(crate::nsec3::Nsec3Config::new(10, vec![0xAA, 0xBB]));
        sign_zone(&mut zone, &keys, &cfg).unwrap();
        // No NSEC anywhere; NSEC3PARAM at the apex.
        assert!(zone.rrset(&name("example.com"), RrType::Nsec).is_none());
        assert!(zone
            .rrset(&name("example.com"), RrType::Nsec3Param)
            .is_some());
        // One NSEC3 per authoritative owner (apex + www), at hashed names.
        let nsec3s: Vec<_> = zone
            .rrsets()
            .filter(|set| set.rtype() == RrType::Nsec3)
            .collect();
        assert_eq!(nsec3s.len(), 2);
        for set in &nsec3s {
            // Hashed owner: 32-char base32hex label directly under apex.
            assert_eq!(set.name().label_count(), 3);
            assert_eq!(set.name().labels()[0].len(), 32);
            // Each NSEC3 RRset is signed.
            let sigs = zone.rrset(set.name(), RrType::Rrsig).expect("nsec3 signed");
            assert!(sigs.records().iter().any(
                |r| matches!(&r.rdata, RData::Rrsig(s) if s.type_covered == RrType::Nsec3)
            ));
        }
        // The chain is circular over the two hashes.
        let hashes: Vec<Vec<u8>> = nsec3s
            .iter()
            .map(|set| match &set.records()[0].rdata {
                RData::Nsec3(n) => n.next_hashed.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_ne!(hashes[0], hashes[1]);
        // The apex NSEC3 carries the hashed owner of www and vice versa;
        // verify via the nsec3 hash function.
        let salt = [0xAA, 0xBB];
        let apex_hash = crate::nsec3::nsec3_hash(&name("example.com"), &salt, 10);
        let www_hash = crate::nsec3::nsec3_hash(&name("www.example.com"), &salt, 10);
        assert!(hashes.contains(&apex_hash.to_vec()));
        assert!(hashes.contains(&www_hash.to_vec()));
    }

    #[test]
    fn nsec3_zone_fully_validates() {
        let mut zone = test_zone();
        let keys = test_keys();
        let cfg = config().with_nsec3(crate::nsec3::Nsec3Config::new(5, vec![0x01]));
        sign_zone(&mut zone, &keys, &cfg).unwrap();
        let dnskeys = [keys.ksk_dnskey(), keys.zsk_dnskey()];
        for rrset in zone.rrsets().collect::<Vec<_>>() {
            if rrset.rtype() == RrType::Rrsig {
                continue;
            }
            let sigs = crate::validate::covering_rrsigs(
                zone.rrset(rrset.name(), RrType::Rrsig).as_ref(),
                rrset.rtype(),
            );
            assert!(
                crate::validate::validate_rrset(&rrset, &sigs, &dnskeys, &keys.zone, 1_450_000_500)
                    .is_ok(),
                "unvalidatable {} {}",
                rrset.name(),
                rrset.rtype()
            );
        }
    }

    fn second_keys() -> ZoneKeys {
        let mut rng = StdRng::seed_from_u64(7);
        ZoneKeys::generate_default(&mut rng, name("example.com"), Algorithm::RsaSha256).unwrap()
    }

    /// The full chain check a validating resolver performs: DS → DNSKEY
    /// RRset → answer RRSIG, at `now`.
    fn chain_validates(zone: &Zone, ds: &dsec_wire::DsRdata, now: u32) -> bool {
        let apex = name("example.com");
        let dnskey_set = zone.rrset(&apex, RrType::Dnskey).unwrap();
        let dnskey_sigs = crate::validate::covering_rrsigs(
            zone.rrset(&apex, RrType::Rrsig).as_ref(),
            RrType::Dnskey,
        );
        let Ok(trusted) = crate::validate::authenticate_dnskeys(
            &apex,
            &dnskey_set,
            &dnskey_sigs,
            std::slice::from_ref(ds),
            now,
        ) else {
            return false;
        };
        let www = name("www.example.com");
        let a_set = zone.rrset(&www, RrType::A).unwrap();
        let a_sigs = crate::validate::covering_rrsigs(
            zone.rrset(&www, RrType::Rrsig).as_ref(),
            RrType::A,
        );
        crate::validate::validate_rrset(&a_set, &a_sigs, &trusted, &apex, now).is_ok()
    }

    #[test]
    fn double_signature_validates_under_either_ds() {
        let old = test_keys();
        let new = second_keys();
        let mut zone = test_zone();
        let set = SigningSet::double(&old, &new).unwrap();
        sign_zone_set(&mut zone, &set, &config()).unwrap();
        // Four DNSKEYs served, and the chain closes under the old DS *and*
        // the new DS — the whole point of the double-signature window.
        assert_eq!(
            zone.rrset(&name("example.com"), RrType::Dnskey).unwrap().records().len(),
            4
        );
        let now = 1_450_000_500;
        let old_ds = old.ds(dsec_crypto::DigestType::Sha256);
        let new_ds = new.ds(dsec_crypto::DigestType::Sha256);
        assert!(chain_validates(&zone, &old_ds, now), "old DS must still validate");
        assert!(chain_validates(&zone, &new_ds, now), "new DS must already validate");
    }

    #[test]
    fn single_set_rejects_the_other_generations_ds() {
        let old = test_keys();
        let new = second_keys();
        let mut zone = test_zone();
        sign_zone(&mut zone, &old, &config()).unwrap();
        let now = 1_450_000_500;
        assert!(chain_validates(&zone, &old.ds(dsec_crypto::DigestType::Sha256), now));
        assert!(
            !chain_validates(&zone, &new.ds(dsec_crypto::DigestType::Sha256), now),
            "a DS swapped before the zone serves the new keys must go bogus"
        );
    }

    #[test]
    fn prepublish_publishes_incoming_zsk_without_signing_with_it() {
        let active = test_keys();
        let incoming = second_keys();
        let mut zone = test_zone();
        let set = SigningSet::prepublish(&active, &incoming).unwrap();
        sign_zone_set(&mut zone, &set, &config()).unwrap();
        let dnskeys = zone.rrset(&name("example.com"), RrType::Dnskey).unwrap();
        assert_eq!(dnskeys.records().len(), 3, "active pair + incoming ZSK");
        // Only the active keys produce signatures.
        for rrset in zone.rrsets().collect::<Vec<_>>() {
            if rrset.rtype() != RrType::Rrsig {
                continue;
            }
            for r in rrset.records() {
                let RData::Rrsig(sig) = &r.rdata else { panic!() };
                assert!(
                    sig.key_tag == active.ksk_tag() || sig.key_tag == active.zsk_tag(),
                    "incoming ZSK must not sign during pre-publish"
                );
            }
        }
        // And the chain still closes under the unchanged DS.
        assert!(chain_validates(&zone, &active.ds(dsec_crypto::DigestType::Sha256), 1_450_000_500));
    }

    #[test]
    fn mixed_zone_sets_reject_construction() {
        let a = test_keys();
        let mut rng = StdRng::seed_from_u64(9);
        let b = ZoneKeys::generate_default(&mut rng, name("other.com"), Algorithm::RsaSha256).unwrap();
        assert!(matches!(
            SigningSet::double(&a, &b),
            Err(DnssecError::KeyZoneMismatch { .. })
        ));
        assert!(matches!(
            SigningSet::prepublish(&a, &b),
            Err(DnssecError::KeyZoneMismatch { .. })
        ));
    }

    #[test]
    fn expired_window_fails_the_chain() {
        let keys = test_keys();
        let mut zone = test_zone();
        let cfg = SignerConfig::valid_from(1_450_000_000, 10 * 86400);
        sign_zone(&mut zone, &keys, &cfg).unwrap();
        let ds = keys.ds(dsec_crypto::DigestType::Sha256);
        assert!(chain_validates(&zone, &ds, cfg.expiration - 1));
        assert!(
            !chain_validates(&zone, &ds, cfg.expiration + 1),
            "a stalled signer's zone must go bogus once RRSIGs expire"
        );
    }

    #[test]
    fn nsec_can_be_disabled() {
        let mut zone = test_zone();
        let mut cfg = config();
        cfg.nsec = false;
        sign_zone(&mut zone, &test_keys(), &cfg).unwrap();
        assert!(zone.rrset(&name("example.com"), RrType::Nsec).is_none());
    }
}
