//! Zone key management: KSK/ZSK pairs, DNSKEY records, and DS generation.
//!
//! Follows the split-key convention the paper describes (§2): the KSK signs
//! the DNSKEY RRset and is referenced by the parent's DS record; the ZSK
//! signs everything else.

use rand::RngCore;

use dsec_crypto::{Algorithm, DigestType, SigningKey};
use dsec_wire::{DnskeyRdata, DsRdata, Name, RData, Record};

use crate::DnssecError;

/// Default RSA modulus size for simulation keys (fast; not secure).
pub const DEFAULT_KEY_BITS: usize = 512;

/// The signing keys of one zone: a KSK and a ZSK.
#[derive(Debug, Clone)]
pub struct ZoneKeys {
    /// Zone these keys sign (owner of the DNSKEY RRset).
    pub zone: Name,
    /// Key-signing key (SEP bit set; hashed into the parent DS).
    pub ksk: SigningKey,
    /// Zone-signing key.
    pub zsk: SigningKey,
}

impl ZoneKeys {
    /// Generates a fresh KSK/ZSK pair for `zone`.
    pub fn generate(
        rng: &mut dyn RngCore,
        zone: Name,
        algorithm: Algorithm,
        bits: usize,
    ) -> Result<Self, DnssecError> {
        Ok(ZoneKeys {
            zone,
            ksk: SigningKey::generate(rng, algorithm, bits)?,
            zsk: SigningKey::generate(rng, algorithm, bits)?,
        })
    }

    /// Generates with the simulation default key size.
    pub fn generate_default(
        rng: &mut dyn RngCore,
        zone: Name,
        algorithm: Algorithm,
    ) -> Result<Self, DnssecError> {
        Self::generate(rng, zone, algorithm, DEFAULT_KEY_BITS)
    }

    /// The KSK's DNSKEY RDATA.
    pub fn ksk_dnskey(&self) -> DnskeyRdata {
        DnskeyRdata {
            flags: DnskeyRdata::ksk_flags(),
            protocol: 3,
            algorithm: self.ksk.algorithm.number(),
            public_key: self.ksk.public_key_wire(),
        }
    }

    /// The ZSK's DNSKEY RDATA.
    pub fn zsk_dnskey(&self) -> DnskeyRdata {
        DnskeyRdata {
            flags: DnskeyRdata::zsk_flags(),
            protocol: 3,
            algorithm: self.zsk.algorithm.number(),
            public_key: self.zsk.public_key_wire(),
        }
    }

    /// The two DNSKEY records for the zone apex.
    pub fn dnskey_records(&self, ttl: u32) -> Vec<Record> {
        vec![
            Record::new(self.zone.clone(), ttl, RData::Dnskey(self.ksk_dnskey())),
            Record::new(self.zone.clone(), ttl, RData::Dnskey(self.zsk_dnskey())),
        ]
    }

    /// The DS RDATA for the KSK — what the registrar must upload to the
    /// parent registry to complete the chain of trust.
    pub fn ds(&self, digest_type: DigestType) -> DsRdata {
        make_ds(&self.zone, &self.ksk_dnskey(), digest_type)
            .expect("supported digest type for own DS")
    }

    /// The key tag of the KSK (as referenced by DS and RRSIG records).
    pub fn ksk_tag(&self) -> u16 {
        self.ksk_dnskey().key_tag()
    }

    /// The key tag of the ZSK.
    pub fn zsk_tag(&self) -> u16 {
        self.zsk_dnskey().key_tag()
    }
}

/// Computes the DS RDATA for (`owner`, `dnskey`) with `digest_type`
/// (RFC 4034 §5.1.4: digest over canonical owner name ‖ DNSKEY RDATA).
pub fn make_ds(
    owner: &Name,
    dnskey: &DnskeyRdata,
    digest_type: DigestType,
) -> Option<DsRdata> {
    let mut material = owner.to_canonical_wire();
    material.extend_from_slice(&dnskey.to_wire());
    let digest = digest_type.digest(&material)?;
    Some(DsRdata {
        key_tag: dnskey.key_tag(),
        algorithm: dnskey.algorithm,
        digest_type: digest_type.number(),
        digest,
    })
}

/// Checks whether `ds` is a correct digest of (`owner`, `dnskey`).
///
/// Returns `None` when the digest type is unsupported (the validator maps
/// that to insecure rather than bogus, per RFC 4035 §5.2).
pub fn ds_matches(owner: &Name, dnskey: &DnskeyRdata, ds: &DsRdata) -> Option<bool> {
    let digest_type = DigestType::from_number(ds.digest_type);
    if !digest_type.is_supported() {
        return None;
    }
    let expected = make_ds(owner, dnskey, digest_type)?;
    Some(expected.key_tag == ds.key_tag && expected.digest == ds.digest && dnskey.algorithm == ds.algorithm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> ZoneKeys {
        let mut rng = StdRng::seed_from_u64(1);
        ZoneKeys::generate_default(&mut rng, Name::parse("example.com").unwrap(), Algorithm::RsaSha256)
            .unwrap()
    }

    #[test]
    fn ksk_and_zsk_have_conventional_flags() {
        let k = keys();
        assert!(k.ksk_dnskey().is_ksk());
        assert!(k.ksk_dnskey().is_zone_key());
        assert!(!k.zsk_dnskey().is_ksk());
        assert!(k.zsk_dnskey().is_zone_key());
        assert_eq!(k.ksk_dnskey().flags, 257);
        assert_eq!(k.zsk_dnskey().flags, 256);
    }

    #[test]
    fn dnskey_records_live_at_apex() {
        let k = keys();
        let records = k.dnskey_records(3600);
        assert_eq!(records.len(), 2);
        for r in &records {
            assert_eq!(r.name, k.zone);
            assert_eq!(r.ttl, 3600);
        }
    }

    #[test]
    fn ds_matches_own_ksk() {
        let k = keys();
        let ds = k.ds(DigestType::Sha256);
        assert_eq!(ds.key_tag, k.ksk_tag());
        assert_eq!(
            ds_matches(&k.zone, &k.ksk_dnskey(), &ds),
            Some(true)
        );
        // The ZSK does not match the KSK's DS.
        assert_eq!(
            ds_matches(&k.zone, &k.zsk_dnskey(), &ds),
            Some(false)
        );
    }

    #[test]
    fn ds_is_owner_sensitive() {
        let k = keys();
        let ds = k.ds(DigestType::Sha256);
        let other = Name::parse("other.com").unwrap();
        assert_eq!(ds_matches(&other, &k.ksk_dnskey(), &ds), Some(false));
    }

    #[test]
    fn ds_digest_types_differ() {
        let k = keys();
        let sha1 = k.ds(DigestType::Sha1);
        let sha256 = k.ds(DigestType::Sha256);
        assert_ne!(sha1.digest, sha256.digest);
        assert_eq!(sha1.digest.len(), 20);
        assert_eq!(sha256.digest.len(), 32);
        assert_eq!(sha1.key_tag, sha256.key_tag);
    }

    #[test]
    fn unsupported_digest_type_is_none() {
        let k = keys();
        let mut ds = k.ds(DigestType::Sha256);
        ds.digest_type = 99;
        assert_eq!(ds_matches(&k.zone, &k.ksk_dnskey(), &ds), None);
    }

    #[test]
    fn corrupted_ds_digest_fails() {
        let k = keys();
        let mut ds = k.ds(DigestType::Sha256);
        ds.digest[0] ^= 0xFF;
        assert_eq!(ds_matches(&k.zone, &k.ksk_dnskey(), &ds), Some(false));
    }

    #[test]
    fn ds_owner_case_insensitive() {
        let k = keys();
        let ds = k.ds(DigestType::Sha256);
        let upper = Name::parse("EXAMPLE.COM").unwrap();
        assert_eq!(ds_matches(&upper, &k.ksk_dnskey(), &ds), Some(true));
    }

    #[test]
    fn key_tags_usually_differ() {
        let k = keys();
        assert_ne!(k.ksk_tag(), k.zsk_tag());
    }
}
