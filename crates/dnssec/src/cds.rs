//! CDS / CDNSKEY automation (RFC 7344, RFC 8078): the in-band channel that
//! lets a child zone tell its parent which DS records to publish — removing
//! the error-prone human relay the paper blames for partial deployments.
//!
//! A registry that supports this (the paper knew of exactly one, `.cz`)
//! periodically scans child zones for CDS/CDNSKEY RRsets, authenticates
//! them with the *currently trusted* chain, and applies the requested
//! change. This module implements that decision procedure.

use dsec_crypto::{Algorithm, DigestType};
use dsec_wire::{DnskeyRdata, DsRdata, Name, RData, RrSet, RrsigRdata};

use crate::keys::make_ds;
use crate::validate::{validate_rrset, ValidationError};

/// What the parent should do after scanning a child's CDS/CDNSKEY.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdsAction {
    /// No CDS/CDNSKEY present: leave the DS RRset alone.
    NoChange,
    /// Replace the DS RRset with these records.
    ReplaceDs(Vec<DsRdata>),
    /// RFC 8078 §4: the child requested DS *deletion* (algorithm 0 CDS).
    DeleteDs,
}

/// Why a CDS/CDNSKEY scan was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdsError {
    /// The CDS/CDNSKEY RRset is not signed, or not signed by a key the
    /// parent already trusts (RFC 7344 §4.1: must be validated with the
    /// current chain).
    NotAuthenticated(ValidationError),
    /// RFC 8078 forbids bootstrapping *deletion* together with other CDS
    /// records.
    MixedDeleteAndUpdate,
    /// A CDS referenced an unsupported digest type, so the parent cannot
    /// reproduce the digest.
    UnsupportedDigest(u8),
    /// CDS and CDNSKEY were both published but disagree.
    CdsCdnskeyMismatch,
}

/// One child-zone scan input.
#[derive(Debug, Clone, Default)]
pub struct CdsScan {
    /// The child's CDS RRset, if published.
    pub cds: Option<RrSet>,
    /// The child's CDNSKEY RRset, if published.
    pub cdnskey: Option<RrSet>,
    /// RRSIGs over those RRsets.
    pub rrsigs: Vec<RrsigRdata>,
    /// DNSKEYs already chained from the parent's current DS (the trust
    /// anchor set for authenticating the change).
    pub trusted_keys: Vec<DnskeyRdata>,
}

/// Decides the parent-side action for a child scan (RFC 7344 §6.2).
pub fn process_scan(child: &Name, scan: &CdsScan, now: u32) -> Result<CdsAction, CdsError> {
    let (Some(_) | None, Some(_) | None) = (&scan.cds, &scan.cdnskey);
    if scan.cds.is_none() && scan.cdnskey.is_none() {
        return Ok(CdsAction::NoChange);
    }

    // Authenticate whichever sets are present with the current chain.
    for set in [&scan.cds, &scan.cdnskey].into_iter().flatten() {
        validate_rrset(set, &scan.rrsigs, &scan.trusted_keys, child, now)
            .map_err(CdsError::NotAuthenticated)?;
    }

    // Extract the requested DS set from CDS (preferred) or CDNSKEY.
    let from_cds: Option<Vec<DsRdata>> = scan.cds.as_ref().map(|set| {
        set.records()
            .iter()
            .filter_map(|r| match &r.rdata {
                RData::Cds(ds) => Some(ds.clone()),
                _ => None,
            })
            .collect()
    });
    let from_cdnskey: Option<Result<Vec<DsRdata>, CdsError>> = scan.cdnskey.as_ref().map(|set| {
        set.records()
            .iter()
            .filter_map(|r| match &r.rdata {
                RData::Cdnskey(k) => Some(k.clone()),
                _ => None,
            })
            .map(|k| cdnskey_to_ds(child, &k))
            .collect()
    });

    let requested: Vec<DsRdata> = match (from_cds, from_cdnskey) {
        (Some(cds), Some(cdnskey)) => {
            let cdnskey = cdnskey?;
            // Publishing both is redundant-but-legal; they must agree
            // (compare as sets, ignoring order).
            let mut a = cds.clone();
            let mut b = cdnskey;
            a.sort_by(cmp_ds);
            b.sort_by(cmp_ds);
            if a != b {
                return Err(CdsError::CdsCdnskeyMismatch);
            }
            cds
        }
        (Some(cds), None) => cds,
        (None, Some(cdnskey)) => cdnskey?,
        (None, None) => return Ok(CdsAction::NoChange),
    };

    // RFC 8078: algorithm 0 means "delete the DS RRset".
    let deletes = requested
        .iter()
        .filter(|ds| Algorithm::from_number(ds.algorithm) == Algorithm::Delete)
        .count();
    if deletes > 0 {
        if deletes != requested.len() {
            return Err(CdsError::MixedDeleteAndUpdate);
        }
        return Ok(CdsAction::DeleteDs);
    }
    for ds in &requested {
        if !DigestType::from_number(ds.digest_type).is_supported() {
            return Err(CdsError::UnsupportedDigest(ds.digest_type));
        }
    }
    Ok(CdsAction::ReplaceDs(requested))
}

/// Derives the DS a CDNSKEY implies (SHA-256, the modern default).
fn cdnskey_to_ds(child: &Name, key: &DnskeyRdata) -> Result<DsRdata, CdsError> {
    if Algorithm::from_number(key.algorithm) == Algorithm::Delete {
        // The RFC 8078 delete sentinel as a CDNSKEY.
        return Ok(DsRdata {
            key_tag: 0,
            algorithm: 0,
            digest_type: 0,
            digest: Vec::new(),
        });
    }
    make_ds(child, key, DigestType::Sha256).ok_or(CdsError::UnsupportedDigest(2))
}

fn cmp_ds(a: &DsRdata, b: &DsRdata) -> std::cmp::Ordering {
    (a.key_tag, a.algorithm, a.digest_type, &a.digest).cmp(&(
        b.key_tag,
        b.algorithm,
        b.digest_type,
        &b.digest,
    ))
}

/// Builds the RFC 8078 "delete DS" CDS record content.
pub fn delete_sentinel_cds() -> DsRdata {
    DsRdata {
        key_tag: 0,
        algorithm: 0,
        digest_type: 0,
        digest: vec![0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::ZoneKeys;
    use crate::signer::{sign_rrset, SignerConfig};
    use dsec_wire::{Record, RrType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const NOW: u32 = 1_460_000_000;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn keys() -> ZoneKeys {
        let mut rng = StdRng::seed_from_u64(77);
        ZoneKeys::generate_default(&mut rng, name("example.com"), Algorithm::RsaSha256).unwrap()
    }

    fn sign_set(set: &RrSet, k: &ZoneKeys) -> RrsigRdata {
        let cfg = SignerConfig::valid_from(NOW - 100, 30 * 86400);
        let rec = sign_rrset(set, &k.zsk, k.zsk_tag(), &k.zone, &cfg);
        let RData::Rrsig(s) = rec.rdata else { unreachable!() };
        s
    }

    fn cds_set(k: &ZoneKeys, ds: DsRdata) -> (RrSet, RrsigRdata) {
        let set = RrSet::new(vec![Record::new(k.zone.clone(), 3600, RData::Cds(ds))]).unwrap();
        let sig = sign_set(&set, k);
        (set, sig)
    }

    #[test]
    fn no_cds_means_no_change() {
        let scan = CdsScan::default();
        assert_eq!(
            process_scan(&name("example.com"), &scan, NOW),
            Ok(CdsAction::NoChange)
        );
    }

    #[test]
    fn valid_cds_replaces_ds() {
        let k = keys();
        let new_ds = k.ds(DigestType::Sha256);
        let (set, sig) = cds_set(&k, new_ds.clone());
        let scan = CdsScan {
            cds: Some(set),
            cdnskey: None,
            rrsigs: vec![sig],
            trusted_keys: vec![k.ksk_dnskey(), k.zsk_dnskey()],
        };
        assert_eq!(
            process_scan(&k.zone, &scan, NOW),
            Ok(CdsAction::ReplaceDs(vec![new_ds]))
        );
    }

    #[test]
    fn unsigned_cds_is_rejected() {
        let k = keys();
        let (set, _) = cds_set(&k, k.ds(DigestType::Sha256));
        let scan = CdsScan {
            cds: Some(set),
            cdnskey: None,
            rrsigs: vec![],
            trusted_keys: vec![k.ksk_dnskey(), k.zsk_dnskey()],
        };
        assert!(matches!(
            process_scan(&k.zone, &scan, NOW),
            Err(CdsError::NotAuthenticated(ValidationError::MissingRrsig))
        ));
    }

    #[test]
    fn cds_signed_by_untrusted_key_is_rejected() {
        // An attacker-controlled key signs the CDS: the parent must refuse
        // because the signer is not chained from the current DS.
        let k = keys();
        let mut rng = StdRng::seed_from_u64(88);
        let attacker =
            ZoneKeys::generate_default(&mut rng, name("example.com"), Algorithm::RsaSha256)
                .unwrap();
        let set = RrSet::new(vec![Record::new(
            k.zone.clone(),
            3600,
            RData::Cds(attacker.ds(DigestType::Sha256)),
        )])
        .unwrap();
        let sig = sign_set(&set, &attacker);
        let scan = CdsScan {
            cds: Some(set),
            cdnskey: None,
            rrsigs: vec![sig],
            trusted_keys: vec![k.ksk_dnskey(), k.zsk_dnskey()], // real keys
        };
        assert!(matches!(
            process_scan(&k.zone, &scan, NOW),
            Err(CdsError::NotAuthenticated(_))
        ));
    }

    #[test]
    fn delete_sentinel_requests_deletion() {
        let k = keys();
        let (set, sig) = cds_set(&k, delete_sentinel_cds());
        let scan = CdsScan {
            cds: Some(set),
            cdnskey: None,
            rrsigs: vec![sig],
            trusted_keys: vec![k.ksk_dnskey(), k.zsk_dnskey()],
        };
        assert_eq!(process_scan(&k.zone, &scan, NOW), Ok(CdsAction::DeleteDs));
    }

    #[test]
    fn mixed_delete_and_update_rejected() {
        let k = keys();
        let set = RrSet::new(vec![
            Record::new(k.zone.clone(), 3600, RData::Cds(delete_sentinel_cds())),
            Record::new(k.zone.clone(), 3600, RData::Cds(k.ds(DigestType::Sha256))),
        ])
        .unwrap();
        let sig = sign_set(&set, &k);
        let scan = CdsScan {
            cds: Some(set),
            cdnskey: None,
            rrsigs: vec![sig],
            trusted_keys: vec![k.ksk_dnskey(), k.zsk_dnskey()],
        };
        assert_eq!(
            process_scan(&k.zone, &scan, NOW),
            Err(CdsError::MixedDeleteAndUpdate)
        );
    }

    #[test]
    fn cdnskey_alone_derives_ds() {
        let k = keys();
        let set = RrSet::new(vec![Record::new(
            k.zone.clone(),
            3600,
            RData::Cdnskey(k.ksk_dnskey()),
        )])
        .unwrap();
        let sig = sign_set(&set, &k);
        let scan = CdsScan {
            cds: None,
            cdnskey: Some(set),
            rrsigs: vec![sig],
            trusted_keys: vec![k.ksk_dnskey(), k.zsk_dnskey()],
        };
        let action = process_scan(&k.zone, &scan, NOW).unwrap();
        assert_eq!(
            action,
            CdsAction::ReplaceDs(vec![k.ds(DigestType::Sha256)])
        );
    }

    #[test]
    fn matching_cds_and_cdnskey_accepted() {
        let k = keys();
        let cds = RrSet::new(vec![Record::new(
            k.zone.clone(),
            3600,
            RData::Cds(k.ds(DigestType::Sha256)),
        )])
        .unwrap();
        let cdnskey = RrSet::new(vec![Record::new(
            k.zone.clone(),
            3600,
            RData::Cdnskey(k.ksk_dnskey()),
        )])
        .unwrap();
        let sigs = vec![sign_set(&cds, &k), sign_set(&cdnskey, &k)];
        let scan = CdsScan {
            cds: Some(cds),
            cdnskey: Some(cdnskey),
            rrsigs: sigs,
            trusted_keys: vec![k.ksk_dnskey(), k.zsk_dnskey()],
        };
        assert!(matches!(
            process_scan(&k.zone, &scan, NOW),
            Ok(CdsAction::ReplaceDs(_))
        ));
    }

    #[test]
    fn disagreeing_cds_and_cdnskey_rejected() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(89);
        let other =
            ZoneKeys::generate_default(&mut rng, name("example.com"), Algorithm::RsaSha256)
                .unwrap();
        let cds = RrSet::new(vec![Record::new(
            k.zone.clone(),
            3600,
            RData::Cds(other.ds(DigestType::Sha256)),
        )])
        .unwrap();
        let cdnskey = RrSet::new(vec![Record::new(
            k.zone.clone(),
            3600,
            RData::Cdnskey(k.ksk_dnskey()),
        )])
        .unwrap();
        let sigs = vec![sign_set(&cds, &k), sign_set(&cdnskey, &k)];
        let scan = CdsScan {
            cds: Some(cds),
            cdnskey: Some(cdnskey),
            rrsigs: sigs,
            trusted_keys: vec![k.ksk_dnskey(), k.zsk_dnskey()],
        };
        assert_eq!(
            process_scan(&k.zone, &scan, NOW),
            Err(CdsError::CdsCdnskeyMismatch)
        );
    }

    #[test]
    fn unsupported_digest_rejected() {
        let k = keys();
        let mut ds = k.ds(DigestType::Sha256);
        ds.digest_type = 77;
        let (set, sig) = cds_set(&k, ds);
        let scan = CdsScan {
            cds: Some(set),
            cdnskey: None,
            rrsigs: vec![sig],
            trusted_keys: vec![k.ksk_dnskey(), k.zsk_dnskey()],
        };
        assert_eq!(
            process_scan(&k.zone, &scan, NOW),
            Err(CdsError::UnsupportedDigest(77))
        );
    }

    #[test]
    fn expired_cds_signature_rejected() {
        let k = keys();
        let (set, sig) = cds_set(&k, k.ds(DigestType::Sha256));
        let scan = CdsScan {
            cds: Some(set),
            cdnskey: None,
            rrsigs: vec![sig],
            trusted_keys: vec![k.ksk_dnskey(), k.zsk_dnskey()],
        };
        let much_later = NOW + 365 * 86400;
        assert!(matches!(
            process_scan(&k.zone, &scan, much_later),
            Err(CdsError::NotAuthenticated(ValidationError::Expired { .. }))
        ));
    }

    #[test]
    fn rrtype_constants_are_correct() {
        // Guard against the CDS/CDNSKEY type numbers regressing.
        assert_eq!(RrType::Cds.number(), 59);
        assert_eq!(RrType::Cdnskey.number(), 60);
    }
}
