//! # dsec-dnssec — the DNSSEC engine
//!
//! Everything between raw records and the measurement layer:
//!
//! - [`keys`]: KSK/ZSK management and DS generation;
//! - [`signer`]: zone signing with RRSIG + NSEC (RFC 4035 §2);
//! - [`validate`]: RRSIG verification and DS↔DNSKEY chain links
//!   (RFC 4035 §5) with typed failure reasons;
//! - [`deployment`]: the paper's not/partial/full/misconfigured taxonomy;
//! - [`cds`]: CDS/CDNSKEY automated delegation maintenance
//!   (RFC 7344 / RFC 8078);
//! - [`trust_anchor`]: the RFC 5011 follower state machine
//!   (AddPend → Valid → Revoked with hold-down timers).
//!
//! Signatures are real RSA over real canonical RRset bytes (via
//! `dsec-crypto`), so a "misconfigured" domain in the simulation is a
//! domain whose chain genuinely fails cryptographic validation.

#![warn(missing_docs)]

pub mod cds;
pub mod deployment;
pub mod keys;
pub mod nsec3;
pub mod signer;
pub mod trust_anchor;
pub mod validate;

pub use cds::{process_scan, CdsAction, CdsError, CdsScan};
pub use deployment::{classify, DeploymentStatus, Misconfiguration, Observation};
pub use keys::{ds_matches, make_ds, ZoneKeys, DEFAULT_KEY_BITS};
pub use nsec3::{hashed_owner_name, nsec3_hash, nsec3_hash_memoized, Nsec3Config, Nsec3Memo};
pub use signer::{sign_rrset, sign_zone, sign_zone_set, SignerConfig, SigningSet};
pub use trust_anchor::{AnchorState, AnchorTracker, ADD_HOLD_DOWN_DAYS};
pub use validate::{authenticate_dnskeys, validate_rrset, ValidationError};

/// Errors from key management and signing.
#[derive(Debug)]
pub enum DnssecError {
    /// The crypto layer rejected the operation.
    Crypto(dsec_crypto::CryptoError),
    /// The wire layer rejected a constructed record.
    Wire(dsec_wire::WireError),
    /// Keys for one zone were used to sign another.
    KeyZoneMismatch {
        /// Zone the keys belong to.
        key_zone: String,
        /// Zone being signed.
        zone: String,
    },
}

impl From<dsec_crypto::CryptoError> for DnssecError {
    fn from(e: dsec_crypto::CryptoError) -> Self {
        DnssecError::Crypto(e)
    }
}

impl From<dsec_wire::WireError> for DnssecError {
    fn from(e: dsec_wire::WireError) -> Self {
        DnssecError::Wire(e)
    }
}

impl std::fmt::Display for DnssecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnssecError::Crypto(e) => write!(f, "crypto error: {e}"),
            DnssecError::Wire(e) => write!(f, "wire error: {e}"),
            DnssecError::KeyZoneMismatch { key_zone, zone } => {
                write!(f, "keys for {key_zone} cannot sign zone {zone}")
            }
        }
    }
}

impl std::error::Error for DnssecError {}

#[cfg(test)]
mod proptests {
    use crate::keys::ZoneKeys;
    use crate::signer::{sign_rrset, sign_zone, SignerConfig};
    use crate::validate::validate_rrset;
    use dsec_crypto::Algorithm;
    use dsec_wire::{Name, RData, Record, RrSet, RrType, Zone};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    const NOW: u32 = 1_450_000_000;

    /// Key generation is the slow part; share one pair across cases.
    fn keys() -> &'static ZoneKeys {
        static KEYS: OnceLock<ZoneKeys> = OnceLock::new();
        KEYS.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(2024);
            ZoneKeys::generate_default(
                &mut rng,
                Name::parse("example.com").unwrap(),
                Algorithm::RsaSha256,
            )
            .unwrap()
        })
    }

    fn label() -> impl Strategy<Value = String> {
        proptest::string::string_regex("[a-z0-9]{1,12}").unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The signer/validator round-trip holds for arbitrary RRsets:
        /// whatever we sign validates, and any single-byte mutation of the
        /// RDATA no longer validates.
        #[test]
        fn sign_then_validate_round_trip(l in label(), ip in any::<[u8; 4]>(), ttl in 1u32..86400) {
            let k = keys();
            let owner = k.zone.child(&l).unwrap();
            let set = RrSet::new(vec![Record::new(owner, ttl, RData::A(ip.into()))]).unwrap();
            let rec = sign_rrset(&set, &k.zsk, k.zsk_tag(), &k.zone, &SignerConfig::valid_from(NOW, 86400));
            let RData::Rrsig(sig) = rec.rdata else { unreachable!() };
            prop_assert!(validate_rrset(&set, std::slice::from_ref(&sig), &[k.zsk_dnskey()], &k.zone, NOW).is_ok());

            // Mutate one byte of the address — the signature must break.
            let mut bad_ip = ip;
            bad_ip[0] ^= 1;
            let bad = RrSet::new(vec![Record::new(set.name().clone(), ttl, RData::A(bad_ip.into()))]).unwrap();
            prop_assert!(validate_rrset(&bad, &[sig], &[k.zsk_dnskey()], &k.zone, NOW).is_err());
        }

        /// Signing a whole zone leaves every authoritative RRset verifiable
        /// under the published DNSKEYs.
        #[test]
        fn signed_zones_fully_validate(labels in proptest::collection::hash_set(label(), 1..6)) {
            let k = keys();
            let mut zone = Zone::new(k.zone.clone());
            zone.add(Record::new(k.zone.clone(), 300, RData::Ns(Name::parse("ns1.op.net").unwrap()))).unwrap();
            for l in &labels {
                let owner = k.zone.child(l).unwrap();
                zone.add(Record::new(owner, 300, RData::A("192.0.2.7".parse().unwrap()))).unwrap();
            }
            sign_zone(&mut zone, k, &SignerConfig::valid_from(NOW, 86400)).unwrap();
            let dnskeys = [k.ksk_dnskey(), k.zsk_dnskey()];
            for rrset in zone.rrsets().collect::<Vec<_>>() {
                if rrset.rtype() == RrType::Rrsig {
                    continue;
                }
                let sigs = crate::validate::covering_rrsigs(
                    zone.rrset(rrset.name(), RrType::Rrsig).as_ref(),
                    rrset.rtype(),
                );
                prop_assert!(
                    validate_rrset(&rrset, &sigs, &dnskeys, &k.zone, NOW).is_ok(),
                    "unvalidatable {} {}", rrset.name(), rrset.rtype()
                );
            }
        }
    }
}
