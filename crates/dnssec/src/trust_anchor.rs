//! RFC 5011 automated trust-anchor updates: the follower's state
//! machine.
//!
//! A validating resolver that follows RFC 5011 does not trust a newly
//! published root key the moment it appears. The key sits in **AddPend**
//! for a hold-down period (30 days here, the RFC's
//! `add_hold_down_time` scaled to the simulation's day clock); only
//! after the hold-down elapses does it become a **Valid** trust anchor.
//! A key whose REVOKE bit the follower observes moves to **Revoked**
//! and is never trusted again.
//!
//! The machine is pure day arithmetic over plain day numbers — the
//! caller (the ecosystem's [`AnchorRollPlan`]) owns the calendar and
//! converts its `SimDate`s. The interesting failure mode falls straight
//! out of the arithmetic: if the *old* anchor is revoked before the
//! *new* one's hold-down elapses, the follower has no Valid anchor at
//! all and every validated answer goes Bogus until promotion day — the
//! stranded-validator window experiment E-A2 measures.
//!
//! [`AnchorRollPlan`]: ../../dsec_ecosystem/anchor/struct.AnchorRollPlan.html

/// RFC 5011 `add_hold_down_time`, in simulation days. The RFC requires
/// 30 days minimum; the simulation uses exactly that.
pub const ADD_HOLD_DOWN_DAYS: u32 = 30;

/// Where one tracked key is in the RFC 5011 lifecycle, as seen by a
/// follower on a given day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnchorState {
    /// Seen in the zone, hold-down timer running: **not** yet used for
    /// validation.
    AddPend,
    /// The hold-down elapsed without incident: a trust anchor.
    Valid,
    /// The REVOKE bit was observed: never trusted again.
    Revoked,
}

/// A follower's view of one candidate trust anchor.
///
/// Construct it the day the key is first observed in the zone's DNSKEY
/// RRset; query [`AnchorTracker::state_on`] with any later day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnchorTracker {
    /// Day the follower first saw the key published.
    first_seen: u32,
    /// Hold-down length applied to this key, days.
    hold_down_days: u32,
    /// Day the follower saw the REVOKE bit, if ever.
    revoked_on: Option<u32>,
}

impl AnchorTracker {
    /// A key first observed on `first_seen`, with the standard
    /// [`ADD_HOLD_DOWN_DAYS`] hold-down.
    pub fn seen(first_seen: u32) -> AnchorTracker {
        AnchorTracker {
            first_seen,
            hold_down_days: ADD_HOLD_DOWN_DAYS,
            revoked_on: None,
        }
    }

    /// Overrides the hold-down length (builder style; tests and
    /// what-if runs).
    pub fn with_hold_down(mut self, days: u32) -> AnchorTracker {
        self.hold_down_days = days;
        self
    }

    /// Records that the follower observed the REVOKE bit on `day`. A
    /// revocation seen during AddPend aborts the promotion entirely, per
    /// RFC 5011 §2.2.
    pub fn revoke(&mut self, day: u32) {
        if self.revoked_on.is_none() {
            self.revoked_on = Some(day);
        }
    }

    /// First day the key counts as a Valid trust anchor (if never
    /// revoked before then).
    pub fn valid_from(&self) -> u32 {
        self.first_seen.saturating_add(self.hold_down_days)
    }

    /// The key's state as the follower sees it on `day`.
    pub fn state_on(&self, day: u32) -> AnchorState {
        if let Some(revoked) = self.revoked_on {
            if day >= revoked {
                return AnchorState::Revoked;
            }
        }
        if day >= self.valid_from() {
            AnchorState::Valid
        } else {
            AnchorState::AddPend
        }
    }

    /// Whether the follower uses this key for validation on `day`.
    pub fn trusted_on(&self, day: u32) -> bool {
        self.state_on(day) == AnchorState::Valid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hold_down_gates_promotion() {
        let t = AnchorTracker::seen(100);
        assert_eq!(t.state_on(100), AnchorState::AddPend);
        assert_eq!(t.state_on(129), AnchorState::AddPend);
        assert_eq!(t.valid_from(), 130);
        assert_eq!(t.state_on(130), AnchorState::Valid);
        assert!(t.trusted_on(130));
        assert!(!t.trusted_on(129));
    }

    #[test]
    fn revocation_is_terminal() {
        let mut t = AnchorTracker::seen(100);
        t.revoke(200);
        assert_eq!(t.state_on(199), AnchorState::Valid);
        assert_eq!(t.state_on(200), AnchorState::Revoked);
        assert_eq!(t.state_on(10_000), AnchorState::Revoked);
        // A second revoke call does not move the day.
        t.revoke(300);
        assert_eq!(t.state_on(200), AnchorState::Revoked);
    }

    #[test]
    fn revocation_during_hold_down_aborts_promotion() {
        let mut t = AnchorTracker::seen(100);
        t.revoke(110);
        assert_eq!(t.state_on(109), AnchorState::AddPend);
        assert_eq!(t.state_on(110), AnchorState::Revoked);
        assert_eq!(t.state_on(130), AnchorState::Revoked, "never Valid");
    }

    #[test]
    fn custom_hold_down_applies() {
        let t = AnchorTracker::seen(0).with_hold_down(7);
        assert!(!t.trusted_on(6));
        assert!(t.trusted_on(7));
    }
}
