//! RRSIG and chain-link validation (RFC 4035 §5).
//!
//! The unit of work is one link: authenticate a DNSKEY RRset against the
//! parent's DS RRset, then validate arbitrary RRsets under those keys. The
//! full root-to-leaf walk lives in `dsec-resolver`; the *paper-level*
//! deployment classification lives in [`crate::deployment`].

use dsec_crypto::Algorithm;
use dsec_wire::{DnskeyRdata, DsRdata, Name, RData, RrSet, RrsigRdata};

use crate::keys::ds_matches;

/// Why validation of an RRset failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// No RRSIG covered the RRset.
    MissingRrsig,
    /// No DNSKEY was available at the signer.
    MissingDnskey,
    /// RRSIGs exist but none matches an available DNSKEY (key tag or
    /// algorithm mismatch).
    NoMatchingKey {
        /// Key tags the RRSIGs referenced.
        wanted_tags: Vec<u16>,
    },
    /// A candidate signature was cryptographically wrong.
    BadSignature,
    /// The signature window has passed.
    Expired {
        /// Expiration from the RRSIG.
        expiration: u32,
        /// Validation time.
        now: u32,
    },
    /// The signature window has not begun.
    NotYetValid {
        /// Inception from the RRSIG.
        inception: u32,
        /// Validation time.
        now: u32,
    },
    /// The RRSIG's signer is not the expected zone apex.
    WrongSigner {
        /// Signer field of the RRSIG.
        signer: String,
        /// Expected apex.
        expected: String,
    },
    /// No DS record matches any DNSKEY (broken chain link).
    NoDsMatch,
    /// The DS RRset exists but the child has no DNSKEY with the SEP role
    /// that hashes to it.
    DsPointsNowhere {
        /// Key tags the DS records referenced.
        ds_tags: Vec<u16>,
    },
    /// Every covering RRSIG / DS used an algorithm this validator does not
    /// implement — RFC 4035 treats the zone as insecure, not bogus.
    UnsupportedAlgorithm(u8),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::MissingRrsig => write!(f, "no covering RRSIG"),
            ValidationError::MissingDnskey => write!(f, "no DNSKEY at signer"),
            ValidationError::NoMatchingKey { wanted_tags } => {
                write!(f, "no DNSKEY matches RRSIG key tags {wanted_tags:?}")
            }
            ValidationError::BadSignature => write!(f, "signature verification failed"),
            ValidationError::Expired { expiration, now } => {
                write!(f, "signature expired at {expiration}, validated at {now}")
            }
            ValidationError::NotYetValid { inception, now } => {
                write!(f, "signature not valid before {inception}, validated at {now}")
            }
            ValidationError::WrongSigner { signer, expected } => {
                write!(f, "RRSIG signer {signer} is not the zone apex {expected}")
            }
            ValidationError::NoDsMatch => write!(f, "no DS matches any DNSKEY"),
            ValidationError::DsPointsNowhere { ds_tags } => {
                write!(f, "DS key tags {ds_tags:?} reference no present DNSKEY")
            }
            ValidationError::UnsupportedAlgorithm(a) => {
                write!(f, "unsupported algorithm {a} (zone treated as insecure)")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Verifies one RRSIG over one RRset with one specific DNSKEY.
pub fn verify_rrsig_with_key(
    rrset: &RrSet,
    rrsig: &RrsigRdata,
    dnskey: &DnskeyRdata,
    now: u32,
) -> Result<(), ValidationError> {
    if rrsig.expiration < now {
        return Err(ValidationError::Expired {
            expiration: rrsig.expiration,
            now,
        });
    }
    if rrsig.inception > now {
        return Err(ValidationError::NotYetValid {
            inception: rrsig.inception,
            now,
        });
    }
    if !dnskey.is_zone_key() || dnskey.protocol != 3 {
        return Err(ValidationError::BadSignature);
    }
    let algorithm = Algorithm::from_number(rrsig.algorithm);
    if !algorithm.is_supported() {
        return Err(ValidationError::UnsupportedAlgorithm(rrsig.algorithm));
    }
    let mut message = rrsig.signed_prefix();
    message.extend_from_slice(&rrset.canonical_wire(rrsig.original_ttl));
    match dsec_crypto::verify(algorithm, &dnskey.public_key, &message, &rrsig.signature) {
        Ok(true) => Ok(()),
        Ok(false) => Err(ValidationError::BadSignature),
        Err(dsec_crypto::CryptoError::UnsupportedAlgorithm(a)) => {
            Err(ValidationError::UnsupportedAlgorithm(a))
        }
        Err(dsec_crypto::CryptoError::MalformedKey(_)) => Err(ValidationError::BadSignature),
    }
}

/// Extracts the RRSIG RDATA covering `rtype` from a set of RRSIG records.
pub fn covering_rrsigs(rrsig_set: Option<&RrSet>, rtype: dsec_wire::RrType) -> Vec<RrsigRdata> {
    rrsig_set
        .map(|set| {
            set.records()
                .iter()
                .filter_map(|r| match &r.rdata {
                    RData::Rrsig(s) if s.type_covered == rtype => Some(s.clone()),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Validates an RRset: succeeds if *any* covering RRSIG verifies under
/// *any* provided DNSKEY with a matching (tag, algorithm), and the signer
/// field names `apex`.
///
/// Error reporting prefers the most specific failure observed.
pub fn validate_rrset(
    rrset: &RrSet,
    rrsigs: &[RrsigRdata],
    dnskeys: &[DnskeyRdata],
    apex: &Name,
    now: u32,
) -> Result<(), ValidationError> {
    let covering: Vec<&RrsigRdata> = rrsigs
        .iter()
        .filter(|s| s.type_covered == rrset.rtype())
        .collect();
    if covering.is_empty() {
        return Err(ValidationError::MissingRrsig);
    }
    if dnskeys.is_empty() {
        return Err(ValidationError::MissingDnskey);
    }
    let mut best: Option<ValidationError> = None;
    let mut matched_any_key = false;
    for rrsig in &covering {
        if rrsig.signer_name != *apex {
            keep_best(
                &mut best,
                ValidationError::WrongSigner {
                    signer: rrsig.signer_name.to_string(),
                    expected: apex.to_string(),
                },
            );
            continue;
        }
        for key in dnskeys {
            if key.key_tag() != rrsig.key_tag || key.algorithm != rrsig.algorithm {
                continue;
            }
            matched_any_key = true;
            match verify_rrsig_with_key(rrset, rrsig, key, now) {
                Ok(()) => return Ok(()),
                Err(e) => keep_best(&mut best, e),
            }
        }
    }
    if !matched_any_key && best.is_none() {
        return Err(ValidationError::NoMatchingKey {
            wanted_tags: covering.iter().map(|s| s.key_tag).collect(),
        });
    }
    Err(best.unwrap_or(ValidationError::BadSignature))
}

/// Prefers more diagnostic errors over less diagnostic ones.
fn keep_best(slot: &mut Option<ValidationError>, err: ValidationError) {
    let rank = |e: &ValidationError| match e {
        ValidationError::Expired { .. } | ValidationError::NotYetValid { .. } => 3,
        ValidationError::BadSignature => 2,
        ValidationError::UnsupportedAlgorithm(_) => 1,
        _ => 0,
    };
    if slot.as_ref().is_none_or(|old| rank(&err) > rank(old)) {
        *slot = Some(err);
    }
}

/// Authenticates a DNSKEY RRset against the parent's DS RRset: some DS must
/// match a present DNSKEY, and that DNSKEY must have signed the DNSKEY
/// RRset. Returns the full list of now-trusted DNSKEYs.
///
/// This is the chain link of RFC 4035 §5.2/5.3; the paper's "fully
/// deployed" criterion is exactly that this function succeeds at the SLD.
pub fn authenticate_dnskeys(
    owner: &Name,
    dnskey_rrset: &RrSet,
    rrsigs: &[RrsigRdata],
    ds_set: &[DsRdata],
    now: u32,
) -> Result<Vec<DnskeyRdata>, ValidationError> {
    let dnskeys: Vec<DnskeyRdata> = dnskey_rrset
        .records()
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::Dnskey(k) => Some(k.clone()),
            _ => None,
        })
        .collect();
    if dnskeys.is_empty() {
        return Err(ValidationError::MissingDnskey);
    }
    if ds_set.is_empty() {
        return Err(ValidationError::NoDsMatch);
    }
    // Find the DS ↔ DNSKEY anchor(s).
    let mut anchors: Vec<&DnskeyRdata> = Vec::new();
    let mut any_supported_ds = false;
    for ds in ds_set {
        for key in &dnskeys {
            match ds_matches(owner, key, ds) {
                Some(true) => {
                    any_supported_ds = true;
                    anchors.push(key);
                }
                Some(false) => {
                    any_supported_ds = true;
                }
                None => {}
            }
        }
    }
    if !any_supported_ds {
        // Every DS used an unknown digest type → insecure.
        return Err(ValidationError::UnsupportedAlgorithm(
            ds_set.first().map(|d| d.algorithm).unwrap_or(0),
        ));
    }
    if anchors.is_empty() {
        return Err(ValidationError::DsPointsNowhere {
            ds_tags: ds_set.iter().map(|d| d.key_tag).collect(),
        });
    }
    // The anchored key must have signed the DNSKEY RRset.
    let anchor_keys: Vec<DnskeyRdata> = anchors.into_iter().cloned().collect();
    validate_rrset(dnskey_rrset, rrsigs, &anchor_keys, owner, now)?;
    Ok(dnskeys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::ZoneKeys;
    use crate::signer::{sign_rrset, SignerConfig};
    use dsec_crypto::DigestType;
    use dsec_wire::{Record, RrType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const NOW: u32 = 1_450_000_000;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn keys() -> ZoneKeys {
        let mut rng = StdRng::seed_from_u64(10);
        ZoneKeys::generate_default(&mut rng, name("example.com"), Algorithm::RsaSha256).unwrap()
    }

    fn config() -> SignerConfig {
        SignerConfig::valid_from(NOW - 1000, 86400 * 30)
    }

    fn a_rrset() -> RrSet {
        RrSet::new(vec![Record::new(
            name("www.example.com"),
            300,
            RData::A("192.0.2.1".parse().unwrap()),
        )])
        .unwrap()
    }

    fn signed(rrset: &RrSet, k: &ZoneKeys) -> RrsigRdata {
        let rec = sign_rrset(rrset, &k.zsk, k.zsk_tag(), &k.zone, &config());
        match rec.rdata {
            RData::Rrsig(s) => s,
            _ => unreachable!(),
        }
    }

    #[test]
    fn valid_signature_verifies() {
        let k = keys();
        let set = a_rrset();
        let sig = signed(&set, &k);
        assert_eq!(
            validate_rrset(&set, &[sig], &[k.zsk_dnskey()], &k.zone, NOW),
            Ok(())
        );
    }

    #[test]
    fn missing_rrsig_reported() {
        let k = keys();
        let set = a_rrset();
        assert_eq!(
            validate_rrset(&set, &[], &[k.zsk_dnskey()], &k.zone, NOW),
            Err(ValidationError::MissingRrsig)
        );
    }

    #[test]
    fn missing_dnskey_reported() {
        let k = keys();
        let set = a_rrset();
        let sig = signed(&set, &k);
        assert_eq!(
            validate_rrset(&set, &[sig], &[], &k.zone, NOW),
            Err(ValidationError::MissingDnskey)
        );
    }

    #[test]
    fn tampered_rrset_fails() {
        let k = keys();
        let set = a_rrset();
        let sig = signed(&set, &k);
        let tampered = RrSet::new(vec![Record::new(
            name("www.example.com"),
            300,
            RData::A("192.0.2.2".parse().unwrap()),
        )])
        .unwrap();
        assert_eq!(
            validate_rrset(&tampered, &[sig], &[k.zsk_dnskey()], &k.zone, NOW),
            Err(ValidationError::BadSignature)
        );
    }

    #[test]
    fn expired_signature_fails() {
        let k = keys();
        let set = a_rrset();
        let sig = signed(&set, &k);
        let later = sig.expiration + 1;
        assert!(matches!(
            validate_rrset(&set, &[sig], &[k.zsk_dnskey()], &k.zone, later),
            Err(ValidationError::Expired { .. })
        ));
    }

    #[test]
    fn premature_signature_fails() {
        let k = keys();
        let set = a_rrset();
        let sig = signed(&set, &k);
        let before = sig.inception - 1;
        assert!(matches!(
            validate_rrset(&set, &[sig], &[k.zsk_dnskey()], &k.zone, before),
            Err(ValidationError::NotYetValid { .. })
        ));
    }

    #[test]
    fn wrong_key_reports_no_match() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(99);
        let other =
            ZoneKeys::generate_default(&mut rng, name("example.com"), Algorithm::RsaSha256)
                .unwrap();
        let set = a_rrset();
        let sig = signed(&set, &k);
        assert!(matches!(
            validate_rrset(&set, &[sig], &[other.zsk_dnskey()], &k.zone, NOW),
            Err(ValidationError::NoMatchingKey { .. })
        ));
    }

    #[test]
    fn wrong_signer_reported() {
        let k = keys();
        let set = a_rrset();
        let sig = signed(&set, &k);
        let wrong_apex = name("evil.com");
        assert!(matches!(
            validate_rrset(&set, &[sig], &[k.zsk_dnskey()], &wrong_apex, NOW),
            Err(ValidationError::WrongSigner { .. })
        ));
    }

    #[test]
    fn ttl_in_cache_does_not_break_validation() {
        // Records may be served with a decremented TTL; validation uses the
        // RRSIG's original_ttl, so a different record TTL must still verify.
        let k = keys();
        let set = a_rrset();
        let sig = signed(&set, &k);
        let aged = RrSet::new(vec![Record::new(
            name("www.example.com"),
            120, // decremented from 300
            RData::A("192.0.2.1".parse().unwrap()),
        )])
        .unwrap();
        assert_eq!(
            validate_rrset(&aged, &[sig], &[k.zsk_dnskey()], &k.zone, NOW),
            Ok(())
        );
    }

    fn dnskey_rrset_and_sig(k: &ZoneKeys) -> (RrSet, RrsigRdata) {
        let set = RrSet::new(k.dnskey_records(3600)).unwrap();
        let rec = sign_rrset(&set, &k.ksk, k.ksk_tag(), &k.zone, &config());
        let RData::Rrsig(sig) = rec.rdata else { unreachable!() };
        (set, sig)
    }

    #[test]
    fn chain_link_authenticates() {
        let k = keys();
        let (set, sig) = dnskey_rrset_and_sig(&k);
        let ds = k.ds(DigestType::Sha256);
        let trusted = authenticate_dnskeys(&k.zone, &set, &[sig], &[ds], NOW).unwrap();
        assert_eq!(trusted.len(), 2);
    }

    #[test]
    fn chain_link_fails_without_ds() {
        let k = keys();
        let (set, sig) = dnskey_rrset_and_sig(&k);
        assert_eq!(
            authenticate_dnskeys(&k.zone, &set, &[sig], &[], NOW),
            Err(ValidationError::NoDsMatch)
        );
    }

    #[test]
    fn chain_link_fails_with_mismatched_ds() {
        let k = keys();
        let mut rng = StdRng::seed_from_u64(123);
        let other =
            ZoneKeys::generate_default(&mut rng, name("example.com"), Algorithm::RsaSha256)
                .unwrap();
        let (set, sig) = dnskey_rrset_and_sig(&k);
        let wrong_ds = other.ds(DigestType::Sha256);
        assert!(matches!(
            authenticate_dnskeys(&k.zone, &set, &[sig], &[wrong_ds], NOW),
            Err(ValidationError::DsPointsNowhere { .. })
        ));
    }

    #[test]
    fn chain_link_fails_when_dnskey_signed_by_zsk_only() {
        // The DS anchors the KSK; a DNSKEY RRset signed only by the ZSK
        // cannot be chained (the anchor never signed it).
        let k = keys();
        let set = RrSet::new(k.dnskey_records(3600)).unwrap();
        let rec = sign_rrset(&set, &k.zsk, k.zsk_tag(), &k.zone, &config());
        let RData::Rrsig(sig) = rec.rdata else { unreachable!() };
        let ds = k.ds(DigestType::Sha256);
        assert!(authenticate_dnskeys(&k.zone, &set, &[sig], &[ds], NOW).is_err());
    }

    #[test]
    fn chain_link_with_garbage_ds_data() {
        // The paper found most registrars accept arbitrary bytes as DS
        // records; such a DS breaks the whole chain.
        let k = keys();
        let (set, sig) = dnskey_rrset_and_sig(&k);
        let garbage = DsRdata {
            key_tag: 1111,
            algorithm: 8,
            digest_type: 2,
            digest: b"copy paste error here".to_vec(),
        };
        assert!(matches!(
            authenticate_dnskeys(&k.zone, &set, &[sig], &[garbage], NOW),
            Err(ValidationError::DsPointsNowhere { .. })
        ));
    }

    #[test]
    fn unknown_ds_digest_type_is_insecure() {
        let k = keys();
        let (set, sig) = dnskey_rrset_and_sig(&k);
        let mut ds = k.ds(DigestType::Sha256);
        ds.digest_type = 250;
        assert!(matches!(
            authenticate_dnskeys(&k.zone, &set, &[sig], &[ds], NOW),
            Err(ValidationError::UnsupportedAlgorithm(_))
        ));
    }

    #[test]
    fn covering_rrsigs_filters_by_type() {
        let k = keys();
        let set = a_rrset();
        let sig_record = sign_rrset(&set, &k.zsk, k.zsk_tag(), &k.zone, &config());
        let rrsig_set = RrSet::new(vec![sig_record]).unwrap();
        assert_eq!(covering_rrsigs(Some(&rrsig_set), RrType::A).len(), 1);
        assert_eq!(covering_rrsigs(Some(&rrsig_set), RrType::Aaaa).len(), 0);
        assert_eq!(covering_rrsigs(None, RrType::A).len(), 0);
    }

    #[test]
    fn revoked_zone_key_flag_rejected() {
        // A DNSKEY without the zone-key bit must not validate anything.
        let k = keys();
        let set = a_rrset();
        let sig = signed(&set, &k);
        let mut bad_key = k.zsk_dnskey();
        bad_key.flags &= !dsec_wire::rdata::DNSKEY_FLAG_ZONE;
        // Key tag changes with flags, so force the original tag path by
        // checking verify_rrsig_with_key directly.
        assert_eq!(
            verify_rrsig_with_key(&set, &sig, &bad_key, NOW),
            Err(ValidationError::BadSignature)
        );
    }
}
