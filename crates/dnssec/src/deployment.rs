//! The paper's deployment taxonomy (Figure 1): **not deployed**,
//! **partially deployed** (DNSKEY + RRSIGs but no DS in the parent — cannot
//! be validated), and **fully deployed** (complete, verifiable chain), plus
//! the misconfiguration cases its §3 related work quantifies.

use dsec_wire::{DsRdata, Name, RrSet, RrsigRdata};

use crate::validate::{authenticate_dnskeys, ValidationError};

/// What a measurement observed about one domain's DNSSEC state.
///
/// This mirrors one OpenINTEL row: the DNSKEY RRset (if any), the RRSIGs
/// over it, and the DS RRset published in the parent zone.
#[derive(Debug, Clone, Default)]
pub struct Observation {
    /// The domain's DNSKEY RRset, if it publishes one.
    pub dnskey_rrset: Option<RrSet>,
    /// RRSIGs over the DNSKEY RRset.
    pub dnskey_rrsigs: Vec<RrsigRdata>,
    /// DS records in the parent zone.
    pub ds_set: Vec<DsRdata>,
}

impl Observation {
    /// True if the domain publishes at least one DNSKEY — the paper's
    /// "attempts to deploy DNSSEC" predicate (Table 1's percentage).
    pub fn has_dnskey(&self) -> bool {
        self.dnskey_rrset.is_some()
    }

    /// True if the parent publishes at least one DS.
    pub fn has_ds(&self) -> bool {
        !self.ds_set.is_empty()
    }
}

/// Why a deployment with all record kinds present still fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Misconfiguration {
    /// DNSKEY present but not signed (no RRSIG over the DNSKEY RRset).
    MissingRrsig,
    /// The DS in the parent matches none of the child's DNSKEYs — e.g. the
    /// registrar accepted a corrupted or stale DS upload.
    DsMismatch,
    /// Covering signatures exist but are outside their validity window.
    ExpiredSignature,
    /// Covering signatures exist but are cryptographically invalid.
    BadSignature,
}

/// The paper's per-domain deployment state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeploymentStatus {
    /// No DNSKEY published: the domain does not attempt DNSSEC.
    NotDeployed,
    /// DNSKEY + RRSIGs published but no DS uploaded: cannot validate.
    /// (Figure 1's "partial deployment".)
    PartiallyDeployed,
    /// Complete, cryptographically verified chain link.
    FullyDeployed,
    /// All pieces present, but the chain does not validate.
    Misconfigured(Misconfiguration),
    /// Signed with an algorithm the validator does not support: treated
    /// as insecure (neither validated nor bogus).
    InsecureUnsupported,
}

impl DeploymentStatus {
    /// The paper counts a domain as "attempting DNSSEC" when a DNSKEY is
    /// published, regardless of outcome.
    pub fn attempts_dnssec(&self) -> bool {
        !matches!(self, DeploymentStatus::NotDeployed)
    }

    /// Only a fully deployed domain provides DNSSEC's security benefit.
    pub fn is_secure(&self) -> bool {
        matches!(self, DeploymentStatus::FullyDeployed)
    }

    /// Partial or misconfigured: publishes DNSSEC material that cannot be
    /// used (the paper's headline finding — ~30% of signed .com/.net/.org
    /// domains are in this state).
    pub fn is_broken_attempt(&self) -> bool {
        matches!(
            self,
            DeploymentStatus::PartiallyDeployed | DeploymentStatus::Misconfigured(_)
        )
    }
}

/// Classifies one domain observation at validation time `now`.
pub fn classify(owner: &Name, obs: &Observation, now: u32) -> DeploymentStatus {
    let Some(dnskey_rrset) = &obs.dnskey_rrset else {
        return DeploymentStatus::NotDeployed;
    };
    if obs.ds_set.is_empty() {
        // DNSKEY but no DS: partial if it at least signs, misconfigured if
        // the keys are unsigned even locally.
        if obs.dnskey_rrsigs.is_empty() {
            return DeploymentStatus::Misconfigured(Misconfiguration::MissingRrsig);
        }
        return DeploymentStatus::PartiallyDeployed;
    }
    if obs.dnskey_rrsigs.is_empty() {
        return DeploymentStatus::Misconfigured(Misconfiguration::MissingRrsig);
    }
    match authenticate_dnskeys(owner, dnskey_rrset, &obs.dnskey_rrsigs, &obs.ds_set, now) {
        Ok(_) => DeploymentStatus::FullyDeployed,
        Err(ValidationError::Expired { .. }) | Err(ValidationError::NotYetValid { .. }) => {
            DeploymentStatus::Misconfigured(Misconfiguration::ExpiredSignature)
        }
        Err(ValidationError::DsPointsNowhere { .. }) | Err(ValidationError::NoDsMatch) => {
            DeploymentStatus::Misconfigured(Misconfiguration::DsMismatch)
        }
        Err(ValidationError::UnsupportedAlgorithm(_)) => DeploymentStatus::InsecureUnsupported,
        Err(ValidationError::MissingRrsig) => {
            DeploymentStatus::Misconfigured(Misconfiguration::MissingRrsig)
        }
        Err(_) => DeploymentStatus::Misconfigured(Misconfiguration::BadSignature),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::ZoneKeys;
    use crate::signer::{sign_rrset, SignerConfig};
    use dsec_crypto::{Algorithm, DigestType};
    use dsec_wire::RData;

    const NOW: u32 = 1_450_000_000;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn keys() -> ZoneKeys {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        ZoneKeys::generate_default(&mut rng, name("example.com"), Algorithm::RsaSha256).unwrap()
    }

    fn full_observation(k: &ZoneKeys) -> Observation {
        let set = RrSet::new(k.dnskey_records(3600)).unwrap();
        let cfg = SignerConfig::valid_from(NOW - 100, 30 * 86400);
        let rec = sign_rrset(&set, &k.ksk, k.ksk_tag(), &k.zone, &cfg);
        let RData::Rrsig(sig) = rec.rdata else { unreachable!() };
        Observation {
            dnskey_rrset: Some(set),
            dnskey_rrsigs: vec![sig],
            ds_set: vec![k.ds(DigestType::Sha256)],
        }
    }

    #[test]
    fn unsigned_domain_is_not_deployed() {
        let status = classify(&name("example.com"), &Observation::default(), NOW);
        assert_eq!(status, DeploymentStatus::NotDeployed);
        assert!(!status.attempts_dnssec());
        assert!(!status.is_secure());
    }

    #[test]
    fn full_chain_is_fully_deployed() {
        let k = keys();
        let obs = full_observation(&k);
        let status = classify(&k.zone, &obs, NOW);
        assert_eq!(status, DeploymentStatus::FullyDeployed);
        assert!(status.is_secure());
        assert!(!status.is_broken_attempt());
    }

    #[test]
    fn missing_ds_is_partial() {
        // The paper's central misdeployment: DNSKEY+RRSIG published, DS
        // never uploaded (≈30% of signed .com domains).
        let k = keys();
        let mut obs = full_observation(&k);
        obs.ds_set.clear();
        let status = classify(&k.zone, &obs, NOW);
        assert_eq!(status, DeploymentStatus::PartiallyDeployed);
        assert!(status.attempts_dnssec());
        assert!(status.is_broken_attempt());
        assert!(!status.is_secure());
    }

    #[test]
    fn missing_rrsig_is_misconfigured() {
        let k = keys();
        let mut obs = full_observation(&k);
        obs.dnskey_rrsigs.clear();
        assert_eq!(
            classify(&k.zone, &obs, NOW),
            DeploymentStatus::Misconfigured(Misconfiguration::MissingRrsig)
        );
    }

    #[test]
    fn unsigned_keys_without_ds_are_misconfigured_not_partial() {
        let k = keys();
        let mut obs = full_observation(&k);
        obs.dnskey_rrsigs.clear();
        obs.ds_set.clear();
        assert_eq!(
            classify(&k.zone, &obs, NOW),
            DeploymentStatus::Misconfigured(Misconfiguration::MissingRrsig)
        );
    }

    #[test]
    fn wrong_ds_is_ds_mismatch() {
        let k = keys();
        let mut obs = full_observation(&k);
        obs.ds_set[0].digest[0] ^= 0xFF;
        assert_eq!(
            classify(&k.zone, &obs, NOW),
            DeploymentStatus::Misconfigured(Misconfiguration::DsMismatch)
        );
    }

    #[test]
    fn expired_signature_detected() {
        let k = keys();
        let obs = full_observation(&k);
        let far_future = NOW + 365 * 86400;
        assert_eq!(
            classify(&k.zone, &obs, far_future),
            DeploymentStatus::Misconfigured(Misconfiguration::ExpiredSignature)
        );
    }

    #[test]
    fn unsupported_ds_digest_is_insecure() {
        let k = keys();
        let mut obs = full_observation(&k);
        obs.ds_set[0].digest_type = 200;
        assert_eq!(
            classify(&k.zone, &obs, NOW),
            DeploymentStatus::InsecureUnsupported
        );
    }

    #[test]
    fn garbage_ds_from_sloppy_registrar_breaks_domain() {
        // Table 2 finding: 10 of 12 web-upload registrars accept arbitrary
        // bytes as a DS record; model the resulting domain state.
        let k = keys();
        let mut obs = full_observation(&k);
        obs.ds_set = vec![DsRdata {
            key_tag: 0xBEEF,
            algorithm: 8,
            digest_type: 2,
            digest: b"pasted the wrong thing".to_vec(),
        }];
        let status = classify(&k.zone, &obs, NOW);
        assert_eq!(
            status,
            DeploymentStatus::Misconfigured(Misconfiguration::DsMismatch)
        );
        assert!(status.is_broken_attempt());
    }
}
