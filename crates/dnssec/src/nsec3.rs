//! NSEC3 hashed denial of existence (RFC 5155): the owner-name hashing
//! function and helpers for building hashed owner names.

use std::sync::{OnceLock, RwLock};

use dsec_crypto::base32;
use dsec_crypto::sha::sha1;
use dsec_wire::{FnvHashMap, Name, NameId, NameInterner};

/// NSEC3 parameters (hash algorithm is always 1 = SHA-1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nsec3Config {
    /// Extra hash iterations (0 = hash once).
    pub iterations: u16,
    /// Salt appended to every hash input.
    pub salt: Vec<u8>,
}

impl Nsec3Config {
    /// Conventional parameters: 10 iterations, 4-byte salt.
    pub fn new(iterations: u16, salt: Vec<u8>) -> Self {
        Nsec3Config { iterations, salt }
    }
}

/// RFC 5155 §5: `IH(salt, x, 0) = H(x || salt)`,
/// `IH(salt, x, k) = H(IH(salt, x, k-1) || salt)`, over the canonical
/// (lowercased, uncompressed) wire form of the owner name.
pub fn nsec3_hash(owner: &Name, salt: &[u8], iterations: u16) -> [u8; 20] {
    let mut input = owner.to_canonical_wire();
    input.extend_from_slice(salt);
    let mut digest = sha1(&input);
    for _ in 0..iterations {
        let mut next = digest.to_vec();
        next.extend_from_slice(salt);
        digest = sha1(&next);
    }
    digest
}

/// A memo table for [`nsec3_hash`]: `(interned owner, salt, iterations)
/// → digest`.
///
/// Under Zipf traffic and repeated daily scans the same owner names are
/// hashed over and over with the same zone parameters; the memo makes
/// every repeat a map probe instead of 1 + iterations SHA-1 passes.
/// Entries are keyed by the interned owner and iteration count, with the
/// salt stored alongside and byte-compared on lookup — a salt rotation
/// simply overwrites the stale entry, so the memo needs no invalidation
/// hook and lives for the process lifetime.
#[derive(Debug)]
pub struct Nsec3Memo {
    interner: NameInterner,
    shards: Vec<RwLock<FnvHashMap<(NameId, u16), MemoEntry>>>,
}

const MEMO_SHARDS: usize = 16;

#[derive(Debug)]
struct MemoEntry {
    salt: Vec<u8>,
    digest: [u8; 20],
}

impl Default for Nsec3Memo {
    fn default() -> Self {
        Self::new()
    }
}

impl Nsec3Memo {
    /// An empty memo.
    pub fn new() -> Self {
        Nsec3Memo {
            interner: NameInterner::new(),
            shards: (0..MEMO_SHARDS).map(|_| RwLock::default()).collect(),
        }
    }

    fn shard(&self, id: NameId) -> &RwLock<FnvHashMap<(NameId, u16), MemoEntry>> {
        &self.shards[(id.raw() as usize) & (MEMO_SHARDS - 1)]
    }

    /// [`nsec3_hash`], memoized. Byte-identical to the direct
    /// computation for every input.
    pub fn hash(&self, owner: &Name, salt: &[u8], iterations: u16) -> [u8; 20] {
        let id = self.interner.intern(owner);
        let key = (id, iterations);
        let shard = self.shard(id);
        if let Some(entry) = read_lock(shard).get(&key) {
            if entry.salt == salt {
                return entry.digest;
            }
        }
        let digest = nsec3_hash(owner, salt, iterations);
        write_lock(shard).insert(
            key,
            MemoEntry {
                salt: salt.to_vec(),
                digest,
            },
        );
        digest
    }
}

fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// [`nsec3_hash`] through a process-wide [`Nsec3Memo`] — the drop-in
/// fast path for signers and denial-proof construction.
pub fn nsec3_hash_memoized(owner: &Name, salt: &[u8], iterations: u16) -> [u8; 20] {
    static MEMO: OnceLock<Nsec3Memo> = OnceLock::new();
    MEMO.get_or_init(Nsec3Memo::new).hash(owner, salt, iterations)
}

/// The hashed owner name: `base32hex(H(owner)).<zone>`.
pub fn hashed_owner_name(
    owner: &Name,
    zone: &Name,
    salt: &[u8],
    iterations: u16,
) -> Result<Name, dsec_wire::WireError> {
    let hash = nsec3_hash(owner, salt, iterations);
    zone.child(&base32::encode_hex(&hash))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    /// RFC 5155 Appendix A vectors: salt AABBCCDD, 12 iterations.
    #[test]
    fn rfc5155_appendix_a_vectors() {
        let salt = [0xAA, 0xBB, 0xCC, 0xDD];
        let cases = [
            ("example", "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom"),
            ("a.example", "35mthgpgcu1qg68fab165klnsnk3dpvl"),
            ("ai.example", "gjeqe526plbf1g8mklp59enfd789njgi"),
            ("ns1.example", "2t7b4g4vsa5smi47k61mv5bv1a22bojr"),
            ("w.example", "k8udemvp1j2f7eg6jebps17vp3n8i58h"),
            ("*.w.example", "r53bq7cc2uvmubfu5ocmm6pers9tk9en"),
        ];
        for (owner, expected) in cases {
            let hash = nsec3_hash(&name(owner), &salt, 12);
            assert_eq!(
                base32::encode_hex(&hash),
                expected,
                "NSEC3 hash of {owner}"
            );
        }
    }

    #[test]
    fn hash_is_case_insensitive() {
        let salt = [0x01];
        assert_eq!(
            nsec3_hash(&name("Example.COM"), &salt, 5),
            nsec3_hash(&name("example.com"), &salt, 5)
        );
    }

    #[test]
    fn iterations_and_salt_change_the_hash() {
        let owner = name("example.com");
        let base = nsec3_hash(&owner, &[], 0);
        assert_ne!(base, nsec3_hash(&owner, &[], 1));
        assert_ne!(base, nsec3_hash(&owner, &[0xFF], 0));
    }

    #[test]
    fn hashed_owner_lives_under_zone() {
        let zone = name("example.com");
        let hashed = hashed_owner_name(&name("www.example.com"), &zone, &[0xAB], 3).unwrap();
        assert!(hashed.is_strict_subdomain_of(&zone));
        assert_eq!(hashed.label_count(), 3);
        assert_eq!(hashed.labels()[0].len(), 32);
    }

    #[test]
    fn memo_salt_rotation_overwrites_the_entry() {
        let memo = Nsec3Memo::new();
        let owner = name("www.example.com");
        assert_eq!(memo.hash(&owner, &[0xAA], 5), nsec3_hash(&owner, &[0xAA], 5));
        // Same owner, new salt: the stale entry is replaced, not served.
        assert_eq!(memo.hash(&owner, &[0xBB], 5), nsec3_hash(&owner, &[0xBB], 5));
        // And the replacement is itself memoized correctly.
        assert_eq!(memo.hash(&owner, &[0xBB], 5), nsec3_hash(&owner, &[0xBB], 5));
    }

    mod memo_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The memo must be byte-identical to the direct computation
            /// for arbitrary owners, salts, and iteration counts — on
            /// both the miss path (first call) and the hit path (second).
            #[test]
            fn memoized_digest_matches_direct_nsec3_hash(
                labels in proptest::collection::vec(
                    proptest::string::string_regex("[a-zA-Z0-9]{1,12}").unwrap(),
                    1..4,
                ),
                salt in proptest::collection::vec(any::<u8>(), 0..8),
                iterations in 0u16..12,
            ) {
                let owner = name(&labels.join("."));
                let direct = nsec3_hash(&owner, &salt, iterations);
                prop_assert_eq!(
                    nsec3_hash_memoized(&owner, &salt, iterations),
                    direct
                );
                prop_assert_eq!(
                    nsec3_hash_memoized(&owner, &salt, iterations),
                    direct
                );
            }
        }
    }
}
