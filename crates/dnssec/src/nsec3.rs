//! NSEC3 hashed denial of existence (RFC 5155): the owner-name hashing
//! function and helpers for building hashed owner names.

use dsec_crypto::base32;
use dsec_crypto::sha::sha1;
use dsec_wire::Name;

/// NSEC3 parameters (hash algorithm is always 1 = SHA-1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nsec3Config {
    /// Extra hash iterations (0 = hash once).
    pub iterations: u16,
    /// Salt appended to every hash input.
    pub salt: Vec<u8>,
}

impl Nsec3Config {
    /// Conventional parameters: 10 iterations, 4-byte salt.
    pub fn new(iterations: u16, salt: Vec<u8>) -> Self {
        Nsec3Config { iterations, salt }
    }
}

/// RFC 5155 §5: `IH(salt, x, 0) = H(x || salt)`,
/// `IH(salt, x, k) = H(IH(salt, x, k-1) || salt)`, over the canonical
/// (lowercased, uncompressed) wire form of the owner name.
pub fn nsec3_hash(owner: &Name, salt: &[u8], iterations: u16) -> [u8; 20] {
    let mut input = owner.to_canonical_wire();
    input.extend_from_slice(salt);
    let mut digest = sha1(&input);
    for _ in 0..iterations {
        let mut next = digest.to_vec();
        next.extend_from_slice(salt);
        digest = sha1(&next);
    }
    digest
}

/// The hashed owner name: `base32hex(H(owner)).<zone>`.
pub fn hashed_owner_name(
    owner: &Name,
    zone: &Name,
    salt: &[u8],
    iterations: u16,
) -> Result<Name, dsec_wire::WireError> {
    let hash = nsec3_hash(owner, salt, iterations);
    zone.child(&base32::encode_hex(&hash))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    /// RFC 5155 Appendix A vectors: salt AABBCCDD, 12 iterations.
    #[test]
    fn rfc5155_appendix_a_vectors() {
        let salt = [0xAA, 0xBB, 0xCC, 0xDD];
        let cases = [
            ("example", "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom"),
            ("a.example", "35mthgpgcu1qg68fab165klnsnk3dpvl"),
            ("ai.example", "gjeqe526plbf1g8mklp59enfd789njgi"),
            ("ns1.example", "2t7b4g4vsa5smi47k61mv5bv1a22bojr"),
            ("w.example", "k8udemvp1j2f7eg6jebps17vp3n8i58h"),
            ("*.w.example", "r53bq7cc2uvmubfu5ocmm6pers9tk9en"),
        ];
        for (owner, expected) in cases {
            let hash = nsec3_hash(&name(owner), &salt, 12);
            assert_eq!(
                base32::encode_hex(&hash),
                expected,
                "NSEC3 hash of {owner}"
            );
        }
    }

    #[test]
    fn hash_is_case_insensitive() {
        let salt = [0x01];
        assert_eq!(
            nsec3_hash(&name("Example.COM"), &salt, 5),
            nsec3_hash(&name("example.com"), &salt, 5)
        );
    }

    #[test]
    fn iterations_and_salt_change_the_hash() {
        let owner = name("example.com");
        let base = nsec3_hash(&owner, &[], 0);
        assert_ne!(base, nsec3_hash(&owner, &[], 1));
        assert_ne!(base, nsec3_hash(&owner, &[0xFF], 0));
    }

    #[test]
    fn hashed_owner_lives_under_zone() {
        let zone = name("example.com");
        let hashed = hashed_owner_name(&name("www.example.com"), &zone, &[0xAB], 3).unwrap();
        assert!(hashed.is_strict_subdomain_of(&zone));
        assert_eq!(hashed.label_count(), 3);
        assert_eq!(hashed.labels()[0].len(), 32);
    }
}
