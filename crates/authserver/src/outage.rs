//! Declarative outage scenarios on top of the [`FaultPlane`].
//!
//! An [`OutageScenario`] is a named set of scheduled down-windows —
//! which servers, from when, until when, in simulated epoch seconds.
//! Installing one translates it into [`FaultPlane::schedule_down`]
//! windows, which the sim-time-aware query paths
//! ([`crate::Network::query_udp_at`]) consult. Because window membership
//! is a pure function of the query's sim clock, a scenario plays back
//! identically run-to-run and across worker-thread counts: there is no
//! RNG, no wall clock, and no shared mutable schedule state on the query
//! path.
//!
//! Constructors cover the shapes the robustness experiments exercise:
//! a sustained single-operator outage ([`OutageScenario::operator_outage`]),
//! an arbitrary correlated window over any server set
//! ([`OutageScenario::window`] — a TLD-wide outage is just the registry
//! fleet), and correlated flapping ([`OutageScenario::flapping`]).

use dsec_wire::Name;

use crate::faults::FaultPlane;

/// One correlated down-window: every listed server is unreachable for
/// `[from_s, until_s)` of simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutageWindow {
    /// Nameserver hostnames down during the window.
    pub servers: Vec<Name>,
    /// Window start, simulated epoch seconds (inclusive).
    pub from_s: u32,
    /// Window end, simulated epoch seconds (exclusive).
    pub until_s: u32,
}

impl OutageWindow {
    /// The window's duration in seconds (0 for an empty interval).
    pub fn duration_s(&self) -> u32 {
        self.until_s.saturating_sub(self.from_s)
    }

    /// Whether simulated time `t` falls inside the half-open window.
    pub fn contains(&self, t: u32) -> bool {
        t >= self.from_s && t < self.until_s
    }
}

/// A named, declarative outage: a list of windows installed together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutageScenario {
    /// Scenario label, used in experiment artifacts.
    pub name: String,
    /// The scheduled windows.
    pub windows: Vec<OutageWindow>,
}

impl OutageScenario {
    /// A sustained outage of one operator's whole fleet: every server in
    /// `fleet` is down for `[from_s, until_s)`.
    pub fn operator_outage(
        name: impl Into<String>,
        fleet: Vec<Name>,
        from_s: u32,
        until_s: u32,
    ) -> Self {
        Self::window(name, fleet, from_s, until_s)
    }

    /// A single correlated window over an arbitrary server set (e.g. a
    /// TLD registry fleet for a TLD-wide outage).
    pub fn window(
        name: impl Into<String>,
        servers: Vec<Name>,
        from_s: u32,
        until_s: u32,
    ) -> Self {
        OutageScenario {
            name: name.into(),
            windows: vec![OutageWindow {
                servers,
                from_s,
                until_s,
            }],
        }
    }

    /// Correlated flapping: starting at `from_s`, the whole server set
    /// cycles `down_s` seconds down then `up_s` seconds up, `cycles`
    /// times — the degenerate sustained case with recovery gaps.
    pub fn flapping(
        name: impl Into<String>,
        servers: Vec<Name>,
        from_s: u32,
        down_s: u32,
        up_s: u32,
        cycles: u32,
    ) -> Self {
        let mut windows = Vec::with_capacity(cycles as usize);
        let period = down_s.saturating_add(up_s);
        for cycle in 0..cycles {
            let start = from_s.saturating_add(period.saturating_mul(cycle));
            windows.push(OutageWindow {
                servers: servers.clone(),
                from_s: start,
                until_s: start.saturating_add(down_s),
            });
        }
        OutageScenario {
            name: name.into(),
            windows,
        }
    }

    /// Translates the scenario into scheduled down-windows on `plane`.
    /// Idempotent only if the scenario was not installed before — callers
    /// re-running scenarios should [`FaultPlane::clear_schedules`] first.
    pub fn install(&self, plane: &FaultPlane) {
        for window in &self.windows {
            for ns in &window.servers {
                plane.schedule_down(ns, window.from_s, window.until_s);
            }
        }
    }

    /// Earliest window start (0 when the scenario has no windows).
    pub fn starts_at(&self) -> u32 {
        self.windows.iter().map(|w| w.from_s).min().unwrap_or(0)
    }

    /// Latest window end (0 when the scenario has no windows).
    pub fn ends_at(&self) -> u32 {
        self.windows.iter().map(|w| w.until_s).max().unwrap_or(0)
    }

    /// Whether any window is active at simulated time `t` — lets a
    /// campaign align load phases with the scenario (e.g. "does this
    /// rollover day overlap the outage?") without re-deriving window
    /// arithmetic.
    pub fn active_at(&self, t: u32) -> bool {
        self.windows.iter().any(|w| w.contains(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn operator_outage_installs_one_window_per_server() {
        let plane = FaultPlane::new();
        let fleet = vec![name("ns1.op.net"), name("ns2.op.net")];
        let scenario = OutageScenario::operator_outage("op-down", fleet.clone(), 100, 400);
        scenario.install(&plane);
        for ns in &fleet {
            assert!(plane.scheduled_down(ns, 100));
            assert!(plane.scheduled_down(ns, 399));
            assert!(!plane.scheduled_down(ns, 400));
        }
        assert_eq!(scenario.starts_at(), 100);
        assert_eq!(scenario.ends_at(), 400);
        assert_eq!(scenario.windows[0].duration_s(), 300);
        assert!(scenario.windows[0].contains(100));
        assert!(!scenario.windows[0].contains(400));
        assert!(scenario.active_at(250));
        assert!(!scenario.active_at(99));
    }

    #[test]
    fn active_at_spans_gaps_between_flap_cycles() {
        let scenario =
            OutageScenario::flapping("flap", vec![name("ns1.op.net")], 1000, 60, 40, 2);
        assert!(scenario.active_at(1030), "first down window");
        assert!(!scenario.active_at(1070), "up gap is not active");
        assert!(scenario.active_at(1130), "second down window");
        assert!(!scenario.active_at(1160), "after the last window");
    }

    #[test]
    fn flapping_generates_cycles() {
        let scenario =
            OutageScenario::flapping("flap", vec![name("ns1.op.net")], 1000, 60, 40, 3);
        assert_eq!(scenario.windows.len(), 3);
        assert_eq!(scenario.windows[0].from_s, 1000);
        assert_eq!(scenario.windows[0].until_s, 1060);
        assert_eq!(scenario.windows[1].from_s, 1100);
        assert_eq!(scenario.windows[2].from_s, 1200);
        assert_eq!(scenario.ends_at(), 1260);
        let plane = FaultPlane::new();
        scenario.install(&plane);
        let ns = name("ns1.op.net");
        assert!(plane.scheduled_down(&ns, 1030), "down in cycle 0");
        assert!(!plane.scheduled_down(&ns, 1070), "up between cycles");
        assert!(plane.scheduled_down(&ns, 1130), "down in cycle 1");
    }
}
