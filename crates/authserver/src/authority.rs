//! An authoritative nameserver: a set of zones plus the RFC 1034 §4.3.2
//! answer algorithm, including DNSSEC additions (RFC 4035 §3.1).
//!
//! ## Memcpy-fast answering
//!
//! The query path is built so that the steady state — a scanner or
//! traffic plane asking the same questions against unchanged zones — is
//! a lock-free map probe plus a memcpy:
//!
//! * Zones live behind an [`Epoch`] snapshot, so lookups take **zero
//!   shared locks**; mutations (re-signing, rollovers, DS swaps) go
//!   through the master copy and bump a per-zone generation.
//! * Every answered question is recorded in a striped **response cache**
//!   keyed by `(interned qname, qtype, echoed header bits)`, holding
//!   both the parsed [`Message`] and its pre-serialized wire bytes.
//!   Entries are invalidated by the *mutation path* — a generation
//!   mismatch on the answering zone, or an origin-set change — never by
//!   TTL, so a re-signed RRSIG is visible on the very next query.
//! * [`Authority::handle_datagram`] serves repeat questions by cloning
//!   the cached wire bytes and patching the 2-byte message id.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use dsec_wire::{
    Flags, FnvHashMap, Message, Name, NameId, NameInterner, Opcode, Question, RData, Rcode,
    Record, RrClass, RrType, Zone,
};

use crate::epoch::Epoch;

/// Response-cache stripes (power of two; same fan-out as the interner).
const CACHE_STRIPES: usize = 16;

/// One served zone: its contents plus the generation of its last
/// mutation. The zone is shared via `Arc` so epoch republishes and
/// frozen secondaries ([`Authority::snapshot`]) are pointer copies;
/// in-place edits go through [`Arc::make_mut`] (copy-on-write).
#[derive(Debug, Clone)]
struct ZoneSlot {
    gen: u64,
    zone: Arc<Zone>,
}

type ZoneMap = BTreeMap<Name, ZoneSlot>;

/// Cache key: the question plus every echoed query attribute that
/// changes the response bytes (RD/CD flags, EDNS presence, DO bit, and
/// the verbatim-echoed EDNS payload size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    qname: NameId,
    qtype: u16,
    /// Bit 0 = RD, bit 1 = CD, bit 2 = EDNS present, bit 3 = DO.
    echo: u8,
    /// Echoed EDNS payload size (0 without EDNS).
    payload: u16,
}

/// One cached answer.
struct CacheEntry {
    /// Exact-case qname the cached response echoes (wire bytes reusable
    /// only for a byte-identical question).
    qname: Name,
    /// The answering zone's origin and content generation; `None` when
    /// no served zone matched (REFUSED).
    origin: Option<(Name, u64)>,
    /// The response with id 0 and the cached question.
    msg: Message,
    /// `msg.to_wire()` — the datagram fast path.
    wire: Vec<u8>,
}

/// Striped map of pre-serialized answers. Growth is bounded by the
/// number of distinct `(qname, qtype, flags)` tuples ever asked — the
/// registered population for the scanner, not query volume — *and* by a
/// hard per-stripe entry cap, so resident memory stays flat no matter
/// how large the population: a full stripe stops admitting new keys
/// (serving uncached is always correct) while still overwriting
/// invalidated entries in place on the next miss for their key.
struct ResponseCache {
    enabled: AtomicBool,
    interner: NameInterner,
    stripes: Vec<RwLock<FnvHashMap<CacheKey, CacheEntry>>>,
    stripe_cap: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Default per-stripe entry cap: 16 stripes × 16Ki = 262 144 entries
/// per authority. Well above what a 1:2000 study population ever asks
/// one authority (so the steady-state cold-scan contract is untouched),
/// and the lever that keeps population-scale campaigns' resident cache
/// memory O(cap), not O(domains).
const CACHE_STRIPE_CAP: usize = 16 * 1024;

impl ResponseCache {
    fn new() -> Self {
        ResponseCache {
            enabled: AtomicBool::new(true),
            interner: NameInterner::new(),
            stripes: (0..CACHE_STRIPES)
                .map(|_| RwLock::new(FnvHashMap::default()))
                .collect(),
            stripe_cap: AtomicUsize::new(CACHE_STRIPE_CAP),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cache key for `query`, or `None` when the query is not
    /// cacheable (cache off, multi-question, non-QUERY opcode, or a
    /// class other than IN).
    fn key_for(&self, query: &Message, question: &Question) -> Option<CacheKey> {
        if !self.enabled.load(Ordering::Relaxed)
            || query.questions.len() != 1
            || query.opcode != Opcode::Query
            || question.qclass != RrClass::In
        {
            return None;
        }
        let mut echo = 0u8;
        if query.flags.recursion_desired {
            echo |= 1;
        }
        if query.flags.checking_disabled {
            echo |= 2;
        }
        let mut payload = 0u16;
        if let Some(edns) = &query.edns {
            echo |= 4;
            if edns.dnssec_ok {
                echo |= 8;
            }
            payload = edns.udp_payload_size;
        }
        Some(CacheKey {
            qname: self.interner.intern(&question.name),
            qtype: question.qtype.number(),
            echo,
            payload,
        })
    }

    fn stripe(&self, key: &CacheKey) -> &RwLock<FnvHashMap<CacheKey, CacheEntry>> {
        &self.stripes[(key.qname.raw() as usize) & (CACHE_STRIPES - 1)]
    }

    /// A cached response as a parsed message, re-stamped with the
    /// querier's id and exact-case question.
    fn message_hit(&self, key: &CacheKey, query: &Message, zones: &ZoneMap) -> Option<Message> {
        let stripe = self.stripe(key).read();
        let entry = stripe.get(key)?;
        if !entry_current(entry, zones) {
            return None;
        }
        let mut response = entry.msg.clone();
        response.id = query.id;
        response.questions = query.questions.clone();
        Some(response)
    }

    /// A cached response as raw wire bytes with the id patched in — only
    /// when the incoming question is byte-identical (same label case) to
    /// the cached one, since the response echoes the question verbatim.
    fn wire_hit(
        &self,
        key: &CacheKey,
        query: &Message,
        question: &Question,
        zones: &ZoneMap,
    ) -> Option<Vec<u8>> {
        let stripe = self.stripe(key).read();
        let entry = stripe.get(key)?;
        if !entry_current(entry, zones) || !same_label_bytes(&entry.qname, &question.name) {
            return None;
        }
        let mut wire = entry.wire.clone();
        wire[0..2].copy_from_slice(&query.id.to_be_bytes());
        Some(wire)
    }

    fn insert(&self, key: CacheKey, qname: Name, origin: Option<(Name, u64)>, response: &Message) {
        let cap = self.stripe_cap.load(Ordering::Relaxed);
        // Cheap read-probe first: once a stripe is full, misses on new
        // keys must not pay the clone + serialize below just to be
        // turned away at the write lock.
        {
            let stripe = self.stripe(&key).read();
            if stripe.len() >= cap && !stripe.contains_key(&key) {
                return;
            }
        }
        let mut msg = response.clone();
        msg.id = 0;
        let wire = msg.to_wire();
        let mut stripe = self.stripe(&key).write();
        if stripe.len() >= cap && !stripe.contains_key(&key) {
            return;
        }
        stripe.insert(
            key,
            CacheEntry {
                qname,
                origin,
                msg,
                wire,
            },
        );
    }

    /// Drops every entry whose qname sits at or under `origin` — the
    /// targeted sweep for a *newly served* origin, which can steal the
    /// longest match (or a REFUSED verdict) from existing entries.
    fn sweep_under(&self, origin: &Name) {
        for stripe in &self.stripes {
            stripe.write().retain(|_, e| !e.qname.is_subdomain_of(origin));
        }
    }

    fn clear(&self) {
        for stripe in &self.stripes {
            stripe.write().clear();
        }
    }
}

/// Whether `entry` still reflects the current zone set.
fn entry_current(entry: &CacheEntry, zones: &ZoneMap) -> bool {
    match &entry.origin {
        None => true,
        Some((origin, gen)) => zones.get(origin).is_some_and(|slot| slot.gen == *gen),
    }
}

/// Byte-level (case-sensitive) label equality — the test for reusing
/// pre-serialized question bytes.
fn same_label_bytes(a: &Name, b: &Name) -> bool {
    a.label_count() == b.label_count()
        && a.labels()
            .iter()
            .zip(b.labels())
            .all(|(x, y)| x.as_bytes() == y.as_bytes())
}

/// One DNS operator's authoritative service.
///
/// Thread-safe: the ecosystem mutates zones (daily re-signing, customer
/// changes) while the scanner queries concurrently. Queries take no
/// shared locks — see the module docs.
pub struct Authority {
    zones: Epoch<ZoneMap>,
    /// Monotonic source of [`ZoneSlot::gen`] values; never reused, so a
    /// removed-and-readded origin cannot revive stale cache entries.
    zone_gen: AtomicU64,
    cache: ResponseCache,
}

impl fmt::Debug for Authority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Authority")
            .field("zones", &self.zones)
            .finish_non_exhaustive()
    }
}

impl Default for Authority {
    fn default() -> Self {
        Authority {
            zones: Epoch::new(BTreeMap::new()),
            zone_gen: AtomicU64::new(0),
            cache: ResponseCache::new(),
        }
    }
}

impl Authority {
    /// An authority serving no zones.
    pub fn new() -> Self {
        Self::default()
    }

    fn next_gen(&self) -> u64 {
        self.zone_gen.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Installs or replaces the zone with the same origin.
    ///
    /// Replacements invalidate cached answers lazily (the slot
    /// generation changes); a *new* origin triggers a targeted cache
    /// sweep, since it may become the longest match for names previously
    /// answered by an ancestor zone or refused outright.
    pub fn upsert_zone(&self, zone: Zone) {
        let gen = self.next_gen();
        let origin = zone.origin().to_canonical();
        let slot = ZoneSlot {
            gen,
            zone: Arc::new(zone),
        };
        let newly_served = self
            .zones
            .mutate(|zones| zones.insert(origin.clone(), slot).is_none());
        if newly_served {
            self.cache.sweep_under(&origin);
        }
    }

    /// Removes the zone rooted at `origin`; returns whether it existed.
    /// Cached answers from it invalidate lazily (their origin lookup
    /// fails).
    pub fn remove_zone(&self, origin: &Name) -> bool {
        self.zones.mutate(|zones| zones.remove(origin).is_some())
    }

    /// Runs `f` over the zone rooted at `origin`, if served.
    pub fn with_zone<R>(&self, origin: &Name, f: impl FnOnce(&Zone) -> R) -> Option<R> {
        self.zones.read().get(origin).map(|slot| f(&slot.zone))
    }

    /// Runs `f` mutably over the zone rooted at `origin`, if served.
    /// Copy-on-write: frozen secondaries holding the old `Arc` keep the
    /// pre-edit contents. The slot generation bump invalidates every
    /// cached answer derived from this zone.
    pub fn with_zone_mut<R>(&self, origin: &Name, f: impl FnOnce(&mut Zone) -> R) -> Option<R> {
        let gen = self.next_gen();
        self.zones.mutate(|zones| {
            let slot = zones.get_mut(origin)?;
            let result = f(Arc::make_mut(&mut slot.zone));
            slot.gen = gen;
            Some(result)
        })
    }

    /// Origins of all served zones.
    pub fn zone_origins(&self) -> Vec<Name> {
        self.zones.read().keys().cloned().collect()
    }

    /// A copy of this authority frozen at the current zone contents —
    /// models a secondary that has stopped syncing from its primary.
    ///
    /// O(1): the snapshot shares the live zone-map `Arc`; later edits to
    /// the live authority copy-on-write and leave the frozen view
    /// untouched. The snapshot starts with an empty response cache of
    /// its own (no answers leak between the live and stale views).
    pub fn snapshot(&self) -> Authority {
        Authority {
            zones: self.zones.share(),
            zone_gen: AtomicU64::new(self.zone_gen.load(Ordering::Relaxed)),
            cache: ResponseCache::new(),
        }
    }

    /// Enables or disables the response cache (on by default). Disabling
    /// also drops every cached entry, so re-enabling starts cold.
    pub fn set_response_cache(&self, enabled: bool) {
        self.cache.enabled.store(enabled, Ordering::Relaxed);
        if !enabled {
            self.cache.clear();
        }
    }

    /// Overrides the response cache's total entry capacity (divided
    /// evenly across the stripes; default 262 144 entries; 0 admits no
    /// new entries at all). The cap is a hard resident-memory bound:
    /// full stripes stop admitting new keys but still refresh
    /// invalidated entries in place.
    pub fn set_response_cache_capacity(&self, entries: usize) {
        self.cache
            .stripe_cap
            .store(entries.div_ceil(CACHE_STRIPES), Ordering::Relaxed);
    }

    /// `(hits, misses)` of the response cache since construction.
    pub fn response_cache_stats(&self) -> (u64, u64) {
        (
            self.cache.hits.load(Ordering::Relaxed),
            self.cache.misses.load(Ordering::Relaxed),
        )
    }

    /// Answers one query message.
    pub fn handle_query(&self, query: &Message) -> Message {
        let mut response = query.response_to();
        let Some(question) = query.questions.first() else {
            response.rcode = Rcode::FormErr;
            return response;
        };
        let zones = self.zones.read();
        let key = self.cache.key_for(query, question);
        if let Some(key) = &key {
            if let Some(hit) = self.cache.message_hit(key, query, &zones) {
                self.cache.hits.fetch_add(1, Ordering::Relaxed);
                return hit;
            }
            self.cache.misses.fetch_add(1, Ordering::Relaxed);
        }
        let origin = answer(&zones, query, question, &mut response);
        if let Some(key) = key {
            self.cache
                .insert(key, question.name.clone(), origin, &response);
        }
        response
    }

    /// Answers one raw datagram; malformed input yields a FORMERR reply
    /// when at least the ID is readable, otherwise no reply (`None`).
    ///
    /// Replies larger than the querier's advertised EDNS payload size
    /// (512 bytes without EDNS, per RFC 1035) are truncated: the TC bit is
    /// set and the answer sections are emptied, telling the client to
    /// retry over TCP ([`Authority::handle_tcp_request`]).
    pub fn handle_datagram(&self, datagram: &[u8]) -> Option<Vec<u8>> {
        match Message::from_wire(datagram) {
            Ok(query) => {
                let limit = query
                    .edns
                    .map(|e| e.udp_payload_size as usize)
                    .unwrap_or(512)
                    .max(512);
                // Memcpy fast path: cached wire bytes, id patched in.
                if let Some(question) = query.questions.first() {
                    if let Some(key) = self.cache.key_for(&query, question) {
                        let zones = self.zones.read();
                        if let Some(wire) = self.cache.wire_hit(&key, &query, question, &zones) {
                            if wire.len() <= limit {
                                self.cache.hits.fetch_add(1, Ordering::Relaxed);
                                return Some(wire);
                            }
                        }
                    }
                }
                let response = self.handle_query(&query);
                let wire = response.to_wire();
                if wire.len() <= limit {
                    return Some(wire);
                }
                // RFC 2181 §9: set TC and drop the sections that did not
                // fit (dropping all of them is the conservative choice).
                let mut truncated = response;
                truncated.flags.truncated = true;
                truncated.answers.clear();
                truncated.authorities.clear();
                truncated.additionals.clear();
                Some(truncated.to_wire())
            }
            Err(_) if datagram.len() >= 2 => {
                let id = u16::from_be_bytes([datagram[0], datagram[1]]);
                let mut resp = Message::query(id, Name::root(), RrType::A, false);
                resp.questions.clear();
                resp.flags.response = true;
                resp.rcode = Rcode::FormErr;
                Some(resp.to_wire())
            }
            Err(_) => None,
        }
    }

    /// Answers one RFC 1035 §4.2.2 TCP-framed request (two-byte big-endian
    /// length prefix + message) with a framed response. TCP carries no
    /// size limit, so nothing is ever truncated here.
    pub fn handle_tcp_request(&self, framed: &[u8]) -> Option<Vec<u8>> {
        if framed.len() < 2 {
            return None;
        }
        let declared = u16::from_be_bytes([framed[0], framed[1]]) as usize;
        if framed.len() < 2 + declared {
            return None;
        }
        let query = Message::from_wire(&framed[2..2 + declared]).ok()?;
        let wire = self.handle_query(&query).to_wire();
        let mut out = Vec::with_capacity(2 + wire.len());
        out.extend_from_slice(&(wire.len() as u16).to_be_bytes());
        out.extend_from_slice(&wire);
        Some(out)
    }
}

/// The RFC 1034 §4.3.2 answer algorithm over one zone snapshot. Fills
/// `response` and returns the answering zone's `(origin, generation)`,
/// or `None` when no served zone matched (REFUSED).
fn answer(
    zones: &ZoneMap,
    query: &Message,
    question: &Question,
    response: &mut Message,
) -> Option<(Name, u64)> {
    let qname = &question.name;
    let qtype = question.qtype;
    let dnssec_ok = query.dnssec_ok();

    // Longest-match zone for the qname: walk the ancestor chain so the
    // lookup stays O(labels · log zones) even when one operator serves
    // tens of thousands of customer zones.
    let mut found: Option<(&Name, &ZoneSlot)> = None;
    let mut candidate = Some(qname.clone());
    while let Some(c) = candidate {
        if let Some((key, slot)) = zones.get_key_value(&c) {
            found = Some((key, slot));
            break;
        }
        candidate = c.parent();
    }
    let Some((origin_key, slot)) = found else {
        response.rcode = Rcode::Refused;
        return None;
    };
    let provenance = Some((origin_key.clone(), slot.gen));
    let zone: &Zone = &slot.zone;

    response.flags = Flags {
        response: true,
        authoritative: true,
        recursion_desired: query.flags.recursion_desired,
        checking_disabled: query.flags.checking_disabled,
        ..Flags::default()
    };

    // Delegation? (A DS query for the cut itself is answered by this
    // zone — the parent owns the DS RRset.)
    if let Some((cut, ns_set)) = zone.find_delegation(qname) {
        let ds_query_at_cut = qtype == RrType::Ds && *qname == cut;
        if !ds_query_at_cut {
            response.flags.authoritative = false;
            for record in ns_set.records() {
                response.authorities.push(record.clone());
            }
            if dnssec_ok {
                // DS (or its absence) travels with the referral.
                let has_ds = match zone.rrset_records(&cut, RrType::Ds) {
                    Some(ds) => {
                        response.authorities.extend(ds.iter().cloned());
                        true
                    }
                    None => false,
                };
                append_rrsigs(zone, &cut, &[RrType::Ds], &mut response.authorities);
                // NSEC proves DS absence for unsigned children.
                if !has_ds {
                    if let Some(nsec) = zone.rrset_records(&cut, RrType::Nsec) {
                        response.authorities.extend(nsec.iter().cloned());
                        append_rrsigs(zone, &cut, &[RrType::Nsec], &mut response.authorities);
                    }
                }
            }
            // Glue.
            for record in ns_set.records() {
                if let RData::Ns(host) = &record.rdata {
                    if host.is_subdomain_of(&cut) {
                        if let Some(glue) = zone.rrset_records(host, RrType::A) {
                            response.additionals.extend(glue.iter().cloned());
                        }
                    }
                }
            }
            return provenance;
        }
    }

    // Exact-match answer.
    if let Some(rrset) = zone.rrset_records(qname, qtype) {
        response.answers.extend(rrset.iter().cloned());
        if dnssec_ok {
            append_rrsigs(zone, qname, &[qtype], &mut response.answers);
        }
        return provenance;
    }

    // CNAME at the name?
    if let Some(cname) = zone.rrset_records(qname, RrType::Cname) {
        response.answers.extend(cname.iter().cloned());
        if dnssec_ok {
            append_rrsigs(zone, qname, &[RrType::Cname], &mut response.answers);
        }
        return provenance;
    }

    // Negative answer: NODATA (name exists) or NXDOMAIN.
    let exists = zone.name_exists(qname) || *qname == *zone.origin();
    if !exists {
        response.rcode = Rcode::NxDomain;
    }
    if let Some(soa) = zone.rrset_records(zone.origin(), RrType::Soa) {
        response.authorities.extend(soa.iter().cloned());
        if dnssec_ok {
            append_rrsigs(zone, zone.origin(), &[RrType::Soa], &mut response.authorities);
        }
    }
    if dnssec_ok {
        // NSEC3 zones: attach the NSEC3 matching (NODATA) or covering
        // (NXDOMAIN) the qname's hash. NSEC zones: the plain denial.
        if let Some(owner) = nsec3_denial_owner(zone, qname) {
            if let Some(nsec3) = zone.rrset_records(&owner, RrType::Nsec3) {
                response.authorities.extend(nsec3.iter().cloned());
                append_rrsigs(zone, &owner, &[RrType::Nsec3], &mut response.authorities);
            }
        } else {
            let nsec_owner = if exists {
                Some(qname.clone())
            } else {
                covering_nsec_owner(zone, qname)
            };
            if let Some(owner) = nsec_owner {
                if let Some(nsec) = zone.rrset_records(&owner, RrType::Nsec) {
                    response.authorities.extend(nsec.iter().cloned());
                    append_rrsigs(zone, &owner, &[RrType::Nsec], &mut response.authorities);
                }
            }
        }
    }
    provenance
}

/// Appends RRSIGs at `owner` covering any of `types`.
fn append_rrsigs(zone: &Zone, owner: &Name, types: &[RrType], out: &mut Vec<Record>) {
    if let Some(sigs) = zone.rrset_records(owner, RrType::Rrsig) {
        for record in sigs {
            if let RData::Rrsig(s) = &record.rdata {
                if types.contains(&s.type_covered) {
                    out.push(record.clone());
                }
            }
        }
    }
}

/// For an NSEC3 zone (apex NSEC3PARAM present), the hashed owner of the
/// NSEC3 record matching or covering `qname`'s hash; `None` for NSEC
/// zones.
fn nsec3_denial_owner(zone: &Zone, qname: &Name) -> Option<Name> {
    let param_set = zone.rrset_records(zone.origin(), RrType::Nsec3Param)?;
    let RData::Nsec3Param(param) = &param_set[0].rdata else {
        return None;
    };
    let qhash = dsec_dnssec::nsec3_hash_memoized(qname, &param.salt, param.iterations);
    // Collect (owner-hash, owner) for every NSEC3 in the zone.
    let mut entries: Vec<([u8; 20], Name)> = zone
        .rrsets()
        .filter(|set| set.rtype() == RrType::Nsec3)
        .filter_map(|set| {
            let label = set.name().labels().first()?.as_bytes().to_vec();
            let text = String::from_utf8(label).ok()?;
            let raw = dsec_crypto::base32::decode_hex(&text)?;
            let hash: [u8; 20] = raw.try_into().ok()?;
            Some((hash, set.name().clone()))
        })
        .collect();
    if entries.is_empty() {
        return None;
    }
    entries.sort_by_key(|a| a.0);
    // Exact match (NODATA) or the greatest owner-hash ≤ qhash; the last
    // entry covers the wrap-around interval.
    entries
        .iter()
        .rev()
        .find(|(h, _)| *h <= qhash)
        .or_else(|| entries.last())
        .map(|(_, owner)| owner.clone())
}

/// Finds the NSEC whose (owner, next) interval covers `qname`.
fn covering_nsec_owner(zone: &Zone, qname: &Name) -> Option<Name> {
    use std::cmp::Ordering;
    let mut owners: Vec<Name> = zone
        .rrsets()
        .filter(|set| set.rtype() == RrType::Nsec)
        .map(|set| set.name().clone())
        .collect();
    owners.sort();
    // The covering owner is the greatest NSEC owner < qname; with a
    // circular chain the last owner covers names beyond the end.
    owners
        .iter()
        .rev()
        .find(|o| o.canonical_cmp(qname) == Ordering::Less)
        .or_else(|| owners.last())
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsec_crypto::Algorithm;
    use dsec_dnssec::{sign_zone, SignerConfig, ZoneKeys};
    use dsec_wire::{DsRdata, SoaRdata};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn build_zone(signed: bool) -> (Zone, Option<ZoneKeys>) {
        let mut z = Zone::new(name("example.com"));
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Soa(SoaRdata {
                mname: name("ns1.example.com"),
                rname: name("hostmaster.example.com"),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        ))
        .unwrap();
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Ns(name("ns1.example.com")),
        ))
        .unwrap();
        z.add(Record::new(
            name("www.example.com"),
            300,
            RData::A("192.0.2.10".parse().unwrap()),
        ))
        .unwrap();
        z.add(Record::new(
            name("alias.example.com"),
            300,
            RData::Cname(name("www.example.com")),
        ))
        .unwrap();
        // Delegation with glue, child unsigned (no DS).
        z.add(Record::new(
            name("sub.example.com"),
            3600,
            RData::Ns(name("ns1.sub.example.com")),
        ))
        .unwrap();
        z.add(Record::new(
            name("ns1.sub.example.com"),
            3600,
            RData::A("192.0.2.53".parse().unwrap()),
        ))
        .unwrap();
        // Signed delegation.
        z.add(Record::new(
            name("signedchild.example.com"),
            3600,
            RData::Ns(name("ns1.other-op.net")),
        ))
        .unwrap();
        z.add(Record::new(
            name("signedchild.example.com"),
            3600,
            RData::Ds(DsRdata {
                key_tag: 1,
                algorithm: 8,
                digest_type: 2,
                digest: vec![9; 32],
            }),
        ))
        .unwrap();
        if signed {
            let mut rng = StdRng::seed_from_u64(7);
            let keys = ZoneKeys::generate_default(&mut rng, name("example.com"), Algorithm::RsaSha256)
                .unwrap();
            sign_zone(&mut z, &keys, &SignerConfig::valid_from(1_450_000_000, 30 * 86400))
                .unwrap();
            (z, Some(keys))
        } else {
            (z, None)
        }
    }

    fn authority(signed: bool) -> Authority {
        let auth = Authority::new();
        auth.upsert_zone(build_zone(signed).0);
        auth
    }

    fn ask(auth: &Authority, qname: &str, qtype: RrType, dnssec: bool) -> Message {
        let q = Message::query(42, name(qname), qtype, dnssec);
        auth.handle_query(&q)
    }

    #[test]
    fn positive_answer() {
        let auth = authority(false);
        let resp = ask(&auth, "www.example.com", RrType::A, false);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(resp.flags.authoritative);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(resp.answers[0].rtype(), RrType::A);
    }

    #[test]
    fn positive_answer_includes_rrsig_with_do() {
        let auth = authority(true);
        let resp = ask(&auth, "www.example.com", RrType::A, true);
        assert_eq!(resp.answers.len(), 2);
        assert!(resp.answers.iter().any(|r| r.rtype() == RrType::Rrsig));
    }

    #[test]
    fn rrsigs_withheld_without_do() {
        let auth = authority(true);
        let resp = ask(&auth, "www.example.com", RrType::A, false);
        assert!(!resp.answers.iter().any(|r| r.rtype() == RrType::Rrsig));
    }

    #[test]
    fn dnskey_query_answers_at_apex() {
        let auth = authority(true);
        let resp = ask(&auth, "example.com", RrType::Dnskey, true);
        assert_eq!(
            resp.answers
                .iter()
                .filter(|r| r.rtype() == RrType::Dnskey)
                .count(),
            2
        );
        assert!(resp.answers.iter().any(|r| r.rtype() == RrType::Rrsig));
    }

    #[test]
    fn referral_for_unsigned_child_carries_nsec_ds_denial() {
        let auth = authority(true);
        let resp = ask(&auth, "deep.sub.example.com", RrType::A, true);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(!resp.flags.authoritative);
        assert!(resp.authorities.iter().any(|r| r.rtype() == RrType::Ns));
        assert!(!resp.authorities.iter().any(|r| r.rtype() == RrType::Ds));
        assert!(resp.authorities.iter().any(|r| r.rtype() == RrType::Nsec));
        // Glue travels in additional.
        assert!(resp.additionals.iter().any(|r| r.rtype() == RrType::A));
    }

    #[test]
    fn referral_for_signed_child_carries_ds() {
        let auth = authority(true);
        let resp = ask(&auth, "www.signedchild.example.com", RrType::A, true);
        assert!(resp.authorities.iter().any(|r| r.rtype() == RrType::Ds));
        assert!(resp
            .authorities
            .iter()
            .any(|r| matches!(&r.rdata, RData::Rrsig(s) if s.type_covered == RrType::Ds)));
    }

    #[test]
    fn ds_query_at_cut_is_answered_by_parent() {
        let auth = authority(true);
        let resp = ask(&auth, "signedchild.example.com", RrType::Ds, true);
        assert!(resp.flags.authoritative);
        assert!(resp.answers.iter().any(|r| r.rtype() == RrType::Ds));
    }

    #[test]
    fn cname_returned_for_other_types() {
        let auth = authority(false);
        let resp = ask(&auth, "alias.example.com", RrType::A, false);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(resp.answers[0].rtype(), RrType::Cname);
    }

    #[test]
    fn nodata_has_soa_and_nsec() {
        let auth = authority(true);
        let resp = ask(&auth, "www.example.com", RrType::Mx, true);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(resp.answers.is_empty());
        assert!(resp.authorities.iter().any(|r| r.rtype() == RrType::Soa));
        assert!(resp
            .authorities
            .iter()
            .any(|r| r.rtype() == RrType::Nsec && r.name == name("www.example.com")));
    }

    #[test]
    fn nxdomain_has_covering_nsec() {
        let auth = authority(true);
        let resp = ask(&auth, "nope.example.com", RrType::A, true);
        assert_eq!(resp.rcode, Rcode::NxDomain);
        assert!(resp.authorities.iter().any(|r| r.rtype() == RrType::Soa));
        assert!(resp.authorities.iter().any(|r| r.rtype() == RrType::Nsec));
    }

    #[test]
    fn nsec3_zone_negative_answers_carry_nsec3() {
        let auth = Authority::new();
        let (mut zone, _) = build_zone(false);
        let mut rng = StdRng::seed_from_u64(17);
        let keys =
            ZoneKeys::generate_default(&mut rng, name("example.com"), Algorithm::RsaSha256)
                .unwrap();
        let cfg = SignerConfig::valid_from(1_450_000_000, 30 * 86400)
            .with_nsec3(dsec_dnssec::Nsec3Config::new(7, vec![0xAB, 0xCD]));
        sign_zone(&mut zone, &keys, &cfg).unwrap();
        auth.upsert_zone(zone);
        // NXDOMAIN: a covering NSEC3 travels in the authority section.
        let resp = ask(&auth, "nope.example.com", RrType::A, true);
        assert_eq!(resp.rcode, Rcode::NxDomain);
        assert!(resp.authorities.iter().any(|r| r.rtype() == RrType::Nsec3));
        assert!(!resp.authorities.iter().any(|r| r.rtype() == RrType::Nsec));
        // NODATA: the matching NSEC3 appears.
        let resp = ask(&auth, "www.example.com", RrType::Mx, true);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(resp.authorities.iter().any(|r| r.rtype() == RrType::Nsec3));
        // Without DO, no NSEC3 leaks.
        let resp = ask(&auth, "nope.example.com", RrType::A, false);
        assert!(!resp.authorities.iter().any(|r| r.rtype() == RrType::Nsec3));
    }

    #[test]
    fn out_of_bailiwick_refused() {
        let auth = authority(false);
        let resp = ask(&auth, "other.org", RrType::A, false);
        assert_eq!(resp.rcode, Rcode::Refused);
    }

    #[test]
    fn longest_zone_match_wins() {
        let auth = authority(false);
        // Also serve the child zone on the same authority.
        let mut child = Zone::new(name("sub.example.com"));
        child
            .add(Record::new(
                name("host.sub.example.com"),
                60,
                RData::A("192.0.2.77".parse().unwrap()),
            ))
            .unwrap();
        auth.upsert_zone(child);
        let resp = ask(&auth, "host.sub.example.com", RrType::A, false);
        assert_eq!(resp.answers.len(), 1, "child zone must answer, not parent referral");
    }

    #[test]
    fn datagram_round_trip() {
        let auth = authority(false);
        let q = Message::query(9, name("www.example.com"), RrType::A, false);
        let out = auth.handle_datagram(&q.to_wire()).unwrap();
        let resp = Message::from_wire(&out).unwrap();
        assert_eq!(resp.id, 9);
        assert_eq!(resp.answers.len(), 1);
    }

    #[test]
    fn malformed_datagram_gets_formerr() {
        let auth = authority(false);
        let out = auth.handle_datagram(&[0xAB, 0xCD, 0xFF]).unwrap();
        let resp = Message::from_wire(&out).unwrap();
        assert_eq!(resp.id, 0xABCD);
        assert_eq!(resp.rcode, Rcode::FormErr);
        assert!(auth.handle_datagram(&[1]).is_none());
    }

    #[test]
    fn oversized_udp_reply_is_truncated() {
        // A zone with enough TXT data that the DO response exceeds the
        // 512-byte no-EDNS limit.
        let auth = Authority::new();
        let mut z = Zone::new(name("big.com"));
        for i in 0..6 {
            z.add(Record::new(
                name("big.com"),
                60,
                RData::Txt(vec![vec![b'x'; 200], vec![i]]),
            ))
            .unwrap();
        }
        auth.upsert_zone(z);
        // No EDNS → 512-byte limit → truncated.
        let q = Message::query(5, name("big.com"), RrType::Txt, false);
        let out = auth.handle_datagram(&q.to_wire()).unwrap();
        assert!(out.len() <= 512);
        let resp = Message::from_wire(&out).unwrap();
        assert!(resp.flags.truncated);
        assert!(resp.answers.is_empty());
        // Truncation must hold on the repeat (cached) query too.
        let out = auth.handle_datagram(&q.to_wire()).unwrap();
        assert!(Message::from_wire(&out).unwrap().flags.truncated);
        // With EDNS 4096 → fits, not truncated.
        let q = Message::query(6, name("big.com"), RrType::Txt, true);
        let out = auth.handle_datagram(&q.to_wire()).unwrap();
        let resp = Message::from_wire(&out).unwrap();
        assert!(!resp.flags.truncated);
        assert_eq!(resp.answers.len(), 6);
        // Over TCP the full answer always comes back.
        let mut framed = Vec::new();
        let qwire = Message::query(7, name("big.com"), RrType::Txt, false).to_wire();
        framed.extend_from_slice(&(qwire.len() as u16).to_be_bytes());
        framed.extend_from_slice(&qwire);
        let out = auth.handle_tcp_request(&framed).unwrap();
        let declared = u16::from_be_bytes([out[0], out[1]]) as usize;
        assert_eq!(declared, out.len() - 2);
        let resp = Message::from_wire(&out[2..]).unwrap();
        assert!(!resp.flags.truncated);
        assert_eq!(resp.answers.len(), 6);
    }

    #[test]
    fn tcp_rejects_short_frames() {
        let auth = Authority::new();
        assert!(auth.handle_tcp_request(&[]).is_none());
        assert!(auth.handle_tcp_request(&[0]).is_none());
        assert!(auth.handle_tcp_request(&[0, 10, 1, 2]).is_none()); // short body
    }

    #[test]
    fn empty_question_is_formerr() {
        let auth = authority(false);
        let mut q = Message::query(1, name("x.example.com"), RrType::A, false);
        q.questions.clear();
        let resp = auth.handle_query(&q);
        assert_eq!(resp.rcode, Rcode::FormErr);
    }

    #[test]
    fn zone_management() {
        let auth = Authority::new();
        assert!(auth.zone_origins().is_empty());
        auth.upsert_zone(build_zone(false).0);
        assert_eq!(auth.zone_origins(), vec![name("example.com")]);
        assert!(
            auth.with_zone(&name("example.com"), |z| z.len()).unwrap() > 0
        );
        auth.with_zone_mut(&name("example.com"), |z| {
            z.add(Record::new(
                name("new.example.com"),
                60,
                RData::A("192.0.2.1".parse().unwrap()),
            ))
            .unwrap();
        });
        assert!(auth.remove_zone(&name("example.com")));
        assert!(!auth.remove_zone(&name("example.com")));
    }

    // ——— response-cache behavior ———

    #[test]
    fn repeat_queries_hit_the_cache_and_match() {
        let auth = authority(true);
        let first = ask(&auth, "www.example.com", RrType::A, true);
        let second = ask(&auth, "www.example.com", RrType::A, true);
        assert_eq!(first, second);
        let (hits, misses) = auth.response_cache_stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn cache_hit_echoes_querier_id_and_case() {
        let auth = authority(false);
        let warm = Message::query(1, name("www.example.com"), RrType::A, false);
        auth.handle_query(&warm);
        let q = Message::query(77, name("WWW.Example.COM"), RrType::A, false);
        let resp = auth.handle_query(&q);
        assert_eq!(resp.id, 77);
        assert_eq!(resp.questions[0].name.to_string(), "WWW.Example.COM.");
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(auth.response_cache_stats().0, 1, "case variant still hits");
    }

    #[test]
    fn zone_edit_invalidates_cached_answers() {
        let auth = authority(false);
        assert_eq!(ask(&auth, "www.example.com", RrType::A, false).answers.len(), 1);
        assert_eq!(ask(&auth, "www.example.com", RrType::A, false).answers.len(), 1);
        auth.with_zone_mut(&name("example.com"), |z| {
            z.add(Record::new(
                name("www.example.com"),
                60,
                RData::A("192.0.2.99".parse().unwrap()),
            ))
            .unwrap();
        });
        assert_eq!(
            ask(&auth, "www.example.com", RrType::A, false).answers.len(),
            2,
            "edit must be visible on the very next query"
        );
    }

    #[test]
    fn zone_replacement_invalidates_cached_answers() {
        let auth = authority(false);
        assert_eq!(ask(&auth, "www.example.com", RrType::A, false).answers.len(), 1);
        // Replace the whole zone with one lacking the www record.
        let mut replacement = Zone::new(name("example.com"));
        replacement
            .add(Record::new(
                name("example.com"),
                3600,
                RData::Ns(name("ns1.example.com")),
            ))
            .unwrap();
        auth.upsert_zone(replacement);
        let resp = ask(&auth, "www.example.com", RrType::A, false);
        assert!(resp.answers.is_empty(), "replaced zone answers, not the cache");
    }

    #[test]
    fn new_origin_sweeps_refused_and_parent_answers() {
        let auth = authority(false);
        // Cache a REFUSED verdict for an unserved name…
        assert_eq!(ask(&auth, "host.newzone.org", RrType::A, false).rcode, Rcode::Refused);
        // …and a parent-zone answer for a name about to be shadowed.
        assert_eq!(ask(&auth, "host.sub.example.com", RrType::A, false).answers.len(), 0);
        // Serving the zones must steal both longest matches.
        let mut org = Zone::new(name("newzone.org"));
        org.add(Record::new(
            name("host.newzone.org"),
            60,
            RData::A("192.0.2.5".parse().unwrap()),
        ))
        .unwrap();
        auth.upsert_zone(org);
        let mut child = Zone::new(name("sub.example.com"));
        child
            .add(Record::new(
                name("host.sub.example.com"),
                60,
                RData::A("192.0.2.6".parse().unwrap()),
            ))
            .unwrap();
        auth.upsert_zone(child);
        assert_eq!(ask(&auth, "host.newzone.org", RrType::A, false).answers.len(), 1);
        assert_eq!(ask(&auth, "host.sub.example.com", RrType::A, false).answers.len(), 1);
    }

    #[test]
    fn zone_removal_invalidates_cached_answers() {
        let auth = authority(false);
        assert_eq!(ask(&auth, "www.example.com", RrType::A, false).answers.len(), 1);
        auth.remove_zone(&name("example.com"));
        assert_eq!(
            ask(&auth, "www.example.com", RrType::A, false).rcode,
            Rcode::Refused
        );
    }

    #[test]
    fn cached_datagrams_patch_the_id() {
        let auth = authority(false);
        let q1 = Message::query(9, name("www.example.com"), RrType::A, false);
        let first = auth.handle_datagram(&q1.to_wire()).unwrap();
        let q2 = Message::query(0xBEEF, name("www.example.com"), RrType::A, false);
        let second = auth.handle_datagram(&q2.to_wire()).unwrap();
        let resp = Message::from_wire(&second).unwrap();
        assert_eq!(resp.id, 0xBEEF);
        // Identical apart from the id bytes.
        assert_eq!(&first[2..], &second[2..]);
    }

    #[test]
    fn disabling_the_cache_bypasses_it() {
        let auth = authority(false);
        auth.set_response_cache(false);
        for _ in 0..3 {
            assert_eq!(ask(&auth, "www.example.com", RrType::A, false).answers.len(), 1);
        }
        assert_eq!(auth.response_cache_stats(), (0, 0));
        auth.set_response_cache(true);
        ask(&auth, "www.example.com", RrType::A, false);
        ask(&auth, "www.example.com", RrType::A, false);
        assert_eq!(auth.response_cache_stats(), (1, 1));
    }

    #[test]
    fn capacity_cap_stops_growth_but_keeps_serving() {
        let auth = authority(false);
        // Admit one entry at the default (roomy) capacity…
        assert_eq!(ask(&auth, "www.example.com", RrType::A, false).answers.len(), 1);
        // …then freeze the cache: capacity 0 admits no new keys.
        auth.set_response_cache_capacity(0);
        for i in 0..8 {
            for _ in 0..2 {
                let resp = ask(&auth, &format!("x{i}.example.com"), RrType::A, false);
                assert_eq!(resp.rcode, Rcode::NxDomain, "full cache must not change answers");
            }
        }
        // 1 admitted miss + 16 rejected misses, zero hits: repeat asks
        // of never-admitted names stay misses — growth has stopped.
        assert_eq!(auth.response_cache_stats(), (0, 17));
        // The entry admitted before the freeze still serves…
        assert_eq!(ask(&auth, "www.example.com", RrType::A, false).answers.len(), 1);
        assert_eq!(auth.response_cache_stats(), (1, 17));
        // …and an invalidated entry is refreshed *in place* even at full
        // capacity (existing keys bypass the cap).
        auth.with_zone_mut(&name("example.com"), |z| {
            z.add(Record::new(
                name("www.example.com"),
                60,
                RData::A("192.0.2.99".parse().unwrap()),
            ))
            .unwrap();
        });
        assert_eq!(ask(&auth, "www.example.com", RrType::A, false).answers.len(), 2);
        assert_eq!(auth.response_cache_stats(), (1, 18), "stale entry re-inserted");
        assert_eq!(ask(&auth, "www.example.com", RrType::A, false).answers.len(), 2);
        assert_eq!(auth.response_cache_stats(), (2, 18), "refreshed entry hits again");
    }

    #[test]
    fn do_bit_and_flags_partition_the_cache() {
        let auth = authority(true);
        let plain = ask(&auth, "www.example.com", RrType::A, false);
        let with_do = ask(&auth, "www.example.com", RrType::A, true);
        assert!(!plain.answers.iter().any(|r| r.rtype() == RrType::Rrsig));
        assert!(with_do.answers.iter().any(|r| r.rtype() == RrType::Rrsig));
        // Both were misses: distinct keys, no cross-contamination.
        assert_eq!(auth.response_cache_stats().1, 2);
    }

    #[test]
    fn snapshot_is_frozen_and_cheap_to_take() {
        let auth = authority(false);
        let frozen = auth.snapshot();
        auth.with_zone_mut(&name("example.com"), |z| {
            z.add(Record::new(
                name("www.example.com"),
                60,
                RData::A("192.0.2.2".parse().unwrap()),
            ))
            .unwrap();
        });
        assert_eq!(ask(&auth, "www.example.com", RrType::A, false).answers.len(), 2);
        assert_eq!(
            ask(&frozen, "www.example.com", RrType::A, false).answers.len(),
            1,
            "frozen secondary keeps the pre-edit contents"
        );
    }
}
