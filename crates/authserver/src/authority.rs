//! An authoritative nameserver: a set of zones plus the RFC 1034 §4.3.2
//! answer algorithm, including DNSSEC additions (RFC 4035 §3.1).

use std::collections::BTreeMap;

use parking_lot::RwLock;

use dsec_wire::{Flags, Message, Name, RData, Rcode, Record, RrType, Zone};

/// One DNS operator's authoritative service.
///
/// Thread-safe: the ecosystem mutates zones (daily re-signing, customer
/// changes) while the scanner queries concurrently.
#[derive(Debug, Default)]
pub struct Authority {
    zones: RwLock<BTreeMap<Name, Zone>>,
}

impl Authority {
    /// An authority serving no zones.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs or replaces the zone with the same origin.
    pub fn upsert_zone(&self, zone: Zone) {
        self.zones
            .write()
            .insert(zone.origin().to_canonical(), zone);
    }

    /// Removes the zone rooted at `origin`; returns whether it existed.
    pub fn remove_zone(&self, origin: &Name) -> bool {
        self.zones.write().remove(&origin.to_canonical()).is_some()
    }

    /// Runs `f` over the zone rooted at `origin`, if served.
    pub fn with_zone<R>(&self, origin: &Name, f: impl FnOnce(&Zone) -> R) -> Option<R> {
        self.zones.read().get(&origin.to_canonical()).map(f)
    }

    /// Runs `f` mutably over the zone rooted at `origin`, if served.
    pub fn with_zone_mut<R>(&self, origin: &Name, f: impl FnOnce(&mut Zone) -> R) -> Option<R> {
        self.zones.write().get_mut(&origin.to_canonical()).map(f)
    }

    /// Origins of all served zones.
    pub fn zone_origins(&self) -> Vec<Name> {
        self.zones.read().keys().cloned().collect()
    }

    /// A deep copy of this authority frozen at the current zone contents
    /// — models a secondary that has stopped syncing from its primary.
    pub fn snapshot(&self) -> Authority {
        Authority {
            zones: RwLock::new(self.zones.read().clone()),
        }
    }

    /// Answers one query message.
    pub fn handle_query(&self, query: &Message) -> Message {
        let mut response = query.response_to();
        let Some(question) = query.questions.first() else {
            response.rcode = Rcode::FormErr;
            return response;
        };
        let qname = question.name.to_canonical();
        let qtype = question.qtype;
        let dnssec_ok = query.dnssec_ok();

        let zones = self.zones.read();
        // Longest-match zone for the qname: walk the ancestor chain so the
        // lookup stays O(labels · log zones) even when one operator serves
        // tens of thousands of customer zones.
        let mut zone = None;
        let mut candidate = Some(qname.clone());
        while let Some(c) = candidate {
            if let Some(z) = zones.get(&c) {
                zone = Some(z);
                break;
            }
            candidate = c.parent();
        }
        let Some(zone) = zone else {
            response.rcode = Rcode::Refused;
            return response;
        };

        response.flags = Flags {
            response: true,
            authoritative: true,
            recursion_desired: query.flags.recursion_desired,
            checking_disabled: query.flags.checking_disabled,
            ..Flags::default()
        };

        // Delegation? (A DS query for the cut itself is answered by this
        // zone — the parent owns the DS RRset.)
        if let Some((cut, ns_set)) = zone.find_delegation(&qname) {
            let ds_query_at_cut = qtype == RrType::Ds && qname == cut;
            if !ds_query_at_cut {
                response.flags.authoritative = false;
                for record in ns_set.records() {
                    response.authorities.push(record.clone());
                }
                if dnssec_ok {
                    // DS (or its absence) travels with the referral.
                    if let Some(ds) = zone.rrset(&cut, RrType::Ds) {
                        response.authorities.extend(ds.records().iter().cloned());
                    }
                    append_rrsigs(zone, &cut, &[RrType::Ds], &mut response.authorities);
                    // NSEC proves DS absence for unsigned children.
                    if zone.rrset(&cut, RrType::Ds).is_none() {
                        if let Some(nsec) = zone.rrset(&cut, RrType::Nsec) {
                            response.authorities.extend(nsec.records().iter().cloned());
                            append_rrsigs(zone, &cut, &[RrType::Nsec], &mut response.authorities);
                        }
                    }
                }
                // Glue.
                for record in ns_set.records() {
                    if let RData::Ns(host) = &record.rdata {
                        if host.is_subdomain_of(&cut) {
                            if let Some(glue) = zone.rrset(host, RrType::A) {
                                response.additionals.extend(glue.records().iter().cloned());
                            }
                        }
                    }
                }
                return response;
            }
        }

        // Exact-match answer.
        if let Some(rrset) = zone.rrset(&qname, qtype) {
            response.answers.extend(rrset.records().iter().cloned());
            if dnssec_ok {
                append_rrsigs(zone, &qname, &[qtype], &mut response.answers);
            }
            return response;
        }

        // CNAME at the name?
        if let Some(cname) = zone.rrset(&qname, RrType::Cname) {
            response.answers.extend(cname.records().iter().cloned());
            if dnssec_ok {
                append_rrsigs(zone, &qname, &[RrType::Cname], &mut response.answers);
            }
            return response;
        }

        // Negative answer: NODATA (name exists) or NXDOMAIN.
        let exists = zone.name_exists(&qname) || qname == *zone.origin();
        if !exists {
            response.rcode = Rcode::NxDomain;
        }
        if let Some(soa) = zone.rrset(zone.origin(), RrType::Soa) {
            response.authorities.extend(soa.records().iter().cloned());
            if dnssec_ok {
                append_rrsigs(zone, zone.origin(), &[RrType::Soa], &mut response.authorities);
            }
        }
        if dnssec_ok {
            // NSEC3 zones: attach the NSEC3 matching (NODATA) or covering
            // (NXDOMAIN) the qname's hash. NSEC zones: the plain denial.
            if let Some(owner) = nsec3_denial_owner(zone, &qname) {
                if let Some(nsec3) = zone.rrset(&owner, RrType::Nsec3) {
                    response.authorities.extend(nsec3.records().iter().cloned());
                    append_rrsigs(zone, &owner, &[RrType::Nsec3], &mut response.authorities);
                }
            } else {
                let nsec_owner = if exists {
                    Some(qname.clone())
                } else {
                    covering_nsec_owner(zone, &qname)
                };
                if let Some(owner) = nsec_owner {
                    if let Some(nsec) = zone.rrset(&owner, RrType::Nsec) {
                        response.authorities.extend(nsec.records().iter().cloned());
                        append_rrsigs(zone, &owner, &[RrType::Nsec], &mut response.authorities);
                    }
                }
            }
        }
        response
    }

    /// Answers one raw datagram; malformed input yields a FORMERR reply
    /// when at least the ID is readable, otherwise no reply (`None`).
    ///
    /// Replies larger than the querier's advertised EDNS payload size
    /// (512 bytes without EDNS, per RFC 1035) are truncated: the TC bit is
    /// set and the answer sections are emptied, telling the client to
    /// retry over TCP ([`Authority::handle_tcp_request`]).
    pub fn handle_datagram(&self, datagram: &[u8]) -> Option<Vec<u8>> {
        match Message::from_wire(datagram) {
            Ok(query) => {
                let limit = query
                    .edns
                    .map(|e| e.udp_payload_size as usize)
                    .unwrap_or(512)
                    .max(512);
                let response = self.handle_query(&query);
                let wire = response.to_wire();
                if wire.len() <= limit {
                    return Some(wire);
                }
                // RFC 2181 §9: set TC and drop the sections that did not
                // fit (dropping all of them is the conservative choice).
                let mut truncated = response;
                truncated.flags.truncated = true;
                truncated.answers.clear();
                truncated.authorities.clear();
                truncated.additionals.clear();
                Some(truncated.to_wire())
            }
            Err(_) if datagram.len() >= 2 => {
                let id = u16::from_be_bytes([datagram[0], datagram[1]]);
                let mut resp = Message::query(id, Name::root(), RrType::A, false);
                resp.questions.clear();
                resp.flags.response = true;
                resp.rcode = Rcode::FormErr;
                Some(resp.to_wire())
            }
            Err(_) => None,
        }
    }

    /// Answers one RFC 1035 §4.2.2 TCP-framed request (two-byte big-endian
    /// length prefix + message) with a framed response. TCP carries no
    /// size limit, so nothing is ever truncated here.
    pub fn handle_tcp_request(&self, framed: &[u8]) -> Option<Vec<u8>> {
        if framed.len() < 2 {
            return None;
        }
        let declared = u16::from_be_bytes([framed[0], framed[1]]) as usize;
        if framed.len() < 2 + declared {
            return None;
        }
        let query = Message::from_wire(&framed[2..2 + declared]).ok()?;
        let wire = self.handle_query(&query).to_wire();
        let mut out = Vec::with_capacity(2 + wire.len());
        out.extend_from_slice(&(wire.len() as u16).to_be_bytes());
        out.extend_from_slice(&wire);
        Some(out)
    }
}

/// Appends RRSIGs at `owner` covering any of `types`.
fn append_rrsigs(zone: &Zone, owner: &Name, types: &[RrType], out: &mut Vec<Record>) {
    if let Some(sigs) = zone.rrset(owner, RrType::Rrsig) {
        for record in sigs.records() {
            if let RData::Rrsig(s) = &record.rdata {
                if types.contains(&s.type_covered) {
                    out.push(record.clone());
                }
            }
        }
    }
}

/// For an NSEC3 zone (apex NSEC3PARAM present), the hashed owner of the
/// NSEC3 record matching or covering `qname`'s hash; `None` for NSEC
/// zones.
fn nsec3_denial_owner(zone: &Zone, qname: &Name) -> Option<Name> {
    let param_set = zone.rrset(zone.origin(), RrType::Nsec3Param)?;
    let RData::Nsec3Param(param) = &param_set.records()[0].rdata else {
        return None;
    };
    let qhash = dsec_dnssec::nsec3_hash(qname, &param.salt, param.iterations);
    // Collect (owner-hash, owner) for every NSEC3 in the zone.
    let mut entries: Vec<([u8; 20], Name)> = zone
        .rrsets()
        .filter(|set| set.rtype() == RrType::Nsec3)
        .filter_map(|set| {
            let label = set.name().labels().first()?.as_bytes().to_vec();
            let text = String::from_utf8(label).ok()?;
            let raw = dsec_crypto::base32::decode_hex(&text)?;
            let hash: [u8; 20] = raw.try_into().ok()?;
            Some((hash, set.name().clone()))
        })
        .collect();
    if entries.is_empty() {
        return None;
    }
    entries.sort_by_key(|a| a.0);
    // Exact match (NODATA) or the greatest owner-hash ≤ qhash; the last
    // entry covers the wrap-around interval.
    entries
        .iter()
        .rev()
        .find(|(h, _)| *h <= qhash)
        .or_else(|| entries.last())
        .map(|(_, owner)| owner.clone())
}

/// Finds the NSEC whose (owner, next) interval covers `qname`.
fn covering_nsec_owner(zone: &Zone, qname: &Name) -> Option<Name> {
    use std::cmp::Ordering;
    let mut owners: Vec<Name> = zone
        .rrsets()
        .filter(|set| set.rtype() == RrType::Nsec)
        .map(|set| set.name().clone())
        .collect();
    owners.sort();
    // The covering owner is the greatest NSEC owner < qname; with a
    // circular chain the last owner covers names beyond the end.
    owners
        .iter()
        .rev()
        .find(|o| o.canonical_cmp(qname) == Ordering::Less)
        .or_else(|| owners.last())
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsec_crypto::Algorithm;
    use dsec_dnssec::{sign_zone, SignerConfig, ZoneKeys};
    use dsec_wire::{DsRdata, SoaRdata};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn build_zone(signed: bool) -> (Zone, Option<ZoneKeys>) {
        let mut z = Zone::new(name("example.com"));
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Soa(SoaRdata {
                mname: name("ns1.example.com"),
                rname: name("hostmaster.example.com"),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        ))
        .unwrap();
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Ns(name("ns1.example.com")),
        ))
        .unwrap();
        z.add(Record::new(
            name("www.example.com"),
            300,
            RData::A("192.0.2.10".parse().unwrap()),
        ))
        .unwrap();
        z.add(Record::new(
            name("alias.example.com"),
            300,
            RData::Cname(name("www.example.com")),
        ))
        .unwrap();
        // Delegation with glue, child unsigned (no DS).
        z.add(Record::new(
            name("sub.example.com"),
            3600,
            RData::Ns(name("ns1.sub.example.com")),
        ))
        .unwrap();
        z.add(Record::new(
            name("ns1.sub.example.com"),
            3600,
            RData::A("192.0.2.53".parse().unwrap()),
        ))
        .unwrap();
        // Signed delegation.
        z.add(Record::new(
            name("signedchild.example.com"),
            3600,
            RData::Ns(name("ns1.other-op.net")),
        ))
        .unwrap();
        z.add(Record::new(
            name("signedchild.example.com"),
            3600,
            RData::Ds(DsRdata {
                key_tag: 1,
                algorithm: 8,
                digest_type: 2,
                digest: vec![9; 32],
            }),
        ))
        .unwrap();
        if signed {
            let mut rng = StdRng::seed_from_u64(7);
            let keys = ZoneKeys::generate_default(&mut rng, name("example.com"), Algorithm::RsaSha256)
                .unwrap();
            sign_zone(&mut z, &keys, &SignerConfig::valid_from(1_450_000_000, 30 * 86400))
                .unwrap();
            (z, Some(keys))
        } else {
            (z, None)
        }
    }

    fn authority(signed: bool) -> Authority {
        let auth = Authority::new();
        auth.upsert_zone(build_zone(signed).0);
        auth
    }

    fn ask(auth: &Authority, qname: &str, qtype: RrType, dnssec: bool) -> Message {
        let q = Message::query(42, name(qname), qtype, dnssec);
        auth.handle_query(&q)
    }

    #[test]
    fn positive_answer() {
        let auth = authority(false);
        let resp = ask(&auth, "www.example.com", RrType::A, false);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(resp.flags.authoritative);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(resp.answers[0].rtype(), RrType::A);
    }

    #[test]
    fn positive_answer_includes_rrsig_with_do() {
        let auth = authority(true);
        let resp = ask(&auth, "www.example.com", RrType::A, true);
        assert_eq!(resp.answers.len(), 2);
        assert!(resp.answers.iter().any(|r| r.rtype() == RrType::Rrsig));
    }

    #[test]
    fn rrsigs_withheld_without_do() {
        let auth = authority(true);
        let resp = ask(&auth, "www.example.com", RrType::A, false);
        assert!(!resp.answers.iter().any(|r| r.rtype() == RrType::Rrsig));
    }

    #[test]
    fn dnskey_query_answers_at_apex() {
        let auth = authority(true);
        let resp = ask(&auth, "example.com", RrType::Dnskey, true);
        assert_eq!(
            resp.answers
                .iter()
                .filter(|r| r.rtype() == RrType::Dnskey)
                .count(),
            2
        );
        assert!(resp.answers.iter().any(|r| r.rtype() == RrType::Rrsig));
    }

    #[test]
    fn referral_for_unsigned_child_carries_nsec_ds_denial() {
        let auth = authority(true);
        let resp = ask(&auth, "deep.sub.example.com", RrType::A, true);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(!resp.flags.authoritative);
        assert!(resp.authorities.iter().any(|r| r.rtype() == RrType::Ns));
        assert!(!resp.authorities.iter().any(|r| r.rtype() == RrType::Ds));
        assert!(resp.authorities.iter().any(|r| r.rtype() == RrType::Nsec));
        // Glue travels in additional.
        assert!(resp.additionals.iter().any(|r| r.rtype() == RrType::A));
    }

    #[test]
    fn referral_for_signed_child_carries_ds() {
        let auth = authority(true);
        let resp = ask(&auth, "www.signedchild.example.com", RrType::A, true);
        assert!(resp.authorities.iter().any(|r| r.rtype() == RrType::Ds));
        assert!(resp
            .authorities
            .iter()
            .any(|r| matches!(&r.rdata, RData::Rrsig(s) if s.type_covered == RrType::Ds)));
    }

    #[test]
    fn ds_query_at_cut_is_answered_by_parent() {
        let auth = authority(true);
        let resp = ask(&auth, "signedchild.example.com", RrType::Ds, true);
        assert!(resp.flags.authoritative);
        assert!(resp.answers.iter().any(|r| r.rtype() == RrType::Ds));
    }

    #[test]
    fn cname_returned_for_other_types() {
        let auth = authority(false);
        let resp = ask(&auth, "alias.example.com", RrType::A, false);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(resp.answers[0].rtype(), RrType::Cname);
    }

    #[test]
    fn nodata_has_soa_and_nsec() {
        let auth = authority(true);
        let resp = ask(&auth, "www.example.com", RrType::Mx, true);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(resp.answers.is_empty());
        assert!(resp.authorities.iter().any(|r| r.rtype() == RrType::Soa));
        assert!(resp
            .authorities
            .iter()
            .any(|r| r.rtype() == RrType::Nsec && r.name == name("www.example.com")));
    }

    #[test]
    fn nxdomain_has_covering_nsec() {
        let auth = authority(true);
        let resp = ask(&auth, "nope.example.com", RrType::A, true);
        assert_eq!(resp.rcode, Rcode::NxDomain);
        assert!(resp.authorities.iter().any(|r| r.rtype() == RrType::Soa));
        assert!(resp.authorities.iter().any(|r| r.rtype() == RrType::Nsec));
    }

    #[test]
    fn nsec3_zone_negative_answers_carry_nsec3() {
        let auth = Authority::new();
        let (mut zone, _) = build_zone(false);
        let mut rng = StdRng::seed_from_u64(17);
        let keys =
            ZoneKeys::generate_default(&mut rng, name("example.com"), Algorithm::RsaSha256)
                .unwrap();
        let cfg = SignerConfig::valid_from(1_450_000_000, 30 * 86400)
            .with_nsec3(dsec_dnssec::Nsec3Config::new(7, vec![0xAB, 0xCD]));
        sign_zone(&mut zone, &keys, &cfg).unwrap();
        auth.upsert_zone(zone);
        // NXDOMAIN: a covering NSEC3 travels in the authority section.
        let resp = ask(&auth, "nope.example.com", RrType::A, true);
        assert_eq!(resp.rcode, Rcode::NxDomain);
        assert!(resp.authorities.iter().any(|r| r.rtype() == RrType::Nsec3));
        assert!(!resp.authorities.iter().any(|r| r.rtype() == RrType::Nsec));
        // NODATA: the matching NSEC3 appears.
        let resp = ask(&auth, "www.example.com", RrType::Mx, true);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(resp.authorities.iter().any(|r| r.rtype() == RrType::Nsec3));
        // Without DO, no NSEC3 leaks.
        let resp = ask(&auth, "nope.example.com", RrType::A, false);
        assert!(!resp.authorities.iter().any(|r| r.rtype() == RrType::Nsec3));
    }

    #[test]
    fn out_of_bailiwick_refused() {
        let auth = authority(false);
        let resp = ask(&auth, "other.org", RrType::A, false);
        assert_eq!(resp.rcode, Rcode::Refused);
    }

    #[test]
    fn longest_zone_match_wins() {
        let auth = authority(false);
        // Also serve the child zone on the same authority.
        let mut child = Zone::new(name("sub.example.com"));
        child
            .add(Record::new(
                name("host.sub.example.com"),
                60,
                RData::A("192.0.2.77".parse().unwrap()),
            ))
            .unwrap();
        auth.upsert_zone(child);
        let resp = ask(&auth, "host.sub.example.com", RrType::A, false);
        assert_eq!(resp.answers.len(), 1, "child zone must answer, not parent referral");
    }

    #[test]
    fn datagram_round_trip() {
        let auth = authority(false);
        let q = Message::query(9, name("www.example.com"), RrType::A, false);
        let out = auth.handle_datagram(&q.to_wire()).unwrap();
        let resp = Message::from_wire(&out).unwrap();
        assert_eq!(resp.id, 9);
        assert_eq!(resp.answers.len(), 1);
    }

    #[test]
    fn malformed_datagram_gets_formerr() {
        let auth = authority(false);
        let out = auth.handle_datagram(&[0xAB, 0xCD, 0xFF]).unwrap();
        let resp = Message::from_wire(&out).unwrap();
        assert_eq!(resp.id, 0xABCD);
        assert_eq!(resp.rcode, Rcode::FormErr);
        assert!(auth.handle_datagram(&[1]).is_none());
    }

    #[test]
    fn oversized_udp_reply_is_truncated() {
        // A zone with enough TXT data that the DO response exceeds the
        // 512-byte no-EDNS limit.
        let auth = Authority::new();
        let mut z = Zone::new(name("big.com"));
        for i in 0..6 {
            z.add(Record::new(
                name("big.com"),
                60,
                RData::Txt(vec![vec![b'x'; 200], vec![i]]),
            ))
            .unwrap();
        }
        auth.upsert_zone(z);
        // No EDNS → 512-byte limit → truncated.
        let q = Message::query(5, name("big.com"), RrType::Txt, false);
        let out = auth.handle_datagram(&q.to_wire()).unwrap();
        assert!(out.len() <= 512);
        let resp = Message::from_wire(&out).unwrap();
        assert!(resp.flags.truncated);
        assert!(resp.answers.is_empty());
        // With EDNS 4096 → fits, not truncated.
        let q = Message::query(6, name("big.com"), RrType::Txt, true);
        let out = auth.handle_datagram(&q.to_wire()).unwrap();
        let resp = Message::from_wire(&out).unwrap();
        assert!(!resp.flags.truncated);
        assert_eq!(resp.answers.len(), 6);
        // Over TCP the full answer always comes back.
        let mut framed = Vec::new();
        let qwire = Message::query(7, name("big.com"), RrType::Txt, false).to_wire();
        framed.extend_from_slice(&(qwire.len() as u16).to_be_bytes());
        framed.extend_from_slice(&qwire);
        let out = auth.handle_tcp_request(&framed).unwrap();
        let declared = u16::from_be_bytes([out[0], out[1]]) as usize;
        assert_eq!(declared, out.len() - 2);
        let resp = Message::from_wire(&out[2..]).unwrap();
        assert!(!resp.flags.truncated);
        assert_eq!(resp.answers.len(), 6);
    }

    #[test]
    fn tcp_rejects_short_frames() {
        let auth = Authority::new();
        assert!(auth.handle_tcp_request(&[]).is_none());
        assert!(auth.handle_tcp_request(&[0]).is_none());
        assert!(auth.handle_tcp_request(&[0, 10, 1, 2]).is_none()); // short body
    }

    #[test]
    fn empty_question_is_formerr() {
        let auth = authority(false);
        let mut q = Message::query(1, name("x.example.com"), RrType::A, false);
        q.questions.clear();
        let resp = auth.handle_query(&q);
        assert_eq!(resp.rcode, Rcode::FormErr);
    }

    #[test]
    fn zone_management() {
        let auth = Authority::new();
        assert!(auth.zone_origins().is_empty());
        auth.upsert_zone(build_zone(false).0);
        assert_eq!(auth.zone_origins(), vec![name("example.com")]);
        assert!(
            auth.with_zone(&name("example.com"), |z| z.len()).unwrap() > 0
        );
        auth.with_zone_mut(&name("example.com"), |z| {
            z.add(Record::new(
                name("new.example.com"),
                60,
                RData::A("192.0.2.1".parse().unwrap()),
            ))
            .unwrap();
        });
        assert!(auth.remove_zone(&name("example.com")));
        assert!(!auth.remove_zone(&name("example.com")));
    }
}
