//! # dsec-authserver — authoritative DNS serving
//!
//! [`Authority`] implements the authoritative answer algorithm over signed
//! zones (positive answers with RRSIGs, referrals with DS, NSEC-backed
//! negative answers, DO-bit gating). [`Network`] is the in-memory
//! transport that stands in for the Internet: a directory of authorities
//! addressable by nameserver hostname, dispatching real wire-level
//! [`dsec_wire::Message`]s.
//!
//! `Authority::handle_datagram` is transport-agnostic — the `udp_wire`
//! example binds it to a real `std::net::UdpSocket`.

#![warn(missing_docs)]

pub mod authority;
pub mod epoch;
pub mod faults;
pub mod network;
pub mod outage;

pub use authority::Authority;
pub use epoch::Epoch;
pub use faults::{Fault, FaultPlane, FaultProfile, FaultStats, FlapSchedule};
pub use network::{Network, QueryOutcome, BASE_LATENCY_MS};
pub use outage::{OutageScenario, OutageWindow};
