//! Epoch-published snapshots: a single-writer, many-reader cell whose
//! read path is one uncontended atomic acquisition plus a reference
//! count — never a held lock, never a clone of the data.
//!
//! [`Epoch<T>`] keeps the current state in an [`Arc<T>`] behind a
//! [`parking_lot::RwLock`]. Readers take the read lock just long enough
//! to bump the refcount and walk away with a frozen snapshot; writers
//! go through [`Arc::make_mut`], which edits **in place** while nobody
//! holds a snapshot (the steady state during bulk loads, where reads
//! are transient) and copies-on-write exactly once when one is
//! outstanding. A snapshot handed to a reader stays valid for as long
//! as the reader keeps it — superseded states are freed by the
//! refcount when their last holder drops, so memory is bounded by the
//! number of *live* snapshots, not by mutation count.
//!
//! Two cells can also share one snapshot ([`Epoch::share`]): the clone
//! is O(1), and the first mutation on either side un-shares it. That is
//! exactly the fault plane's frozen-authority semantics — capture now,
//! diverge lazily.

use std::sync::Arc;

use parking_lot::RwLock;

/// A copy-on-write snapshot cell. See the module docs.
pub struct Epoch<T: Clone> {
    inner: RwLock<Arc<T>>,
}

impl<T: Clone> std::fmt::Debug for Epoch<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Epoch").finish_non_exhaustive()
    }
}

impl<T: Clone + Default> Default for Epoch<T> {
    fn default() -> Self {
        Epoch::new(T::default())
    }
}

impl<T: Clone> Epoch<T> {
    /// A cell starting at `value`.
    pub fn new(value: T) -> Self {
        Epoch {
            inner: RwLock::new(Arc::new(value)),
        }
    }

    /// The current snapshot, frozen: later mutations never show through
    /// it. The read lock is held only for the refcount bump.
    pub fn read(&self) -> Arc<T> {
        self.inner.read().clone()
    }

    /// Mutates the state; readers see the new state on their next
    /// [`Epoch::read`]. In place when no snapshot is outstanding, one
    /// copy-on-write clone when one is.
    pub fn mutate<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.inner.write();
        f(Arc::make_mut(&mut guard))
    }

    /// A new cell sharing this one's current snapshot — O(1); the first
    /// mutation on either cell un-shares it (copy-on-write).
    pub fn share(&self) -> Epoch<T> {
        Epoch {
            inner: RwLock::new(self.read()),
        }
    }

    /// A clone of the current state (used to seed unrelated storage).
    pub fn clone_master(&self) -> T {
        self.inner.read().as_ref().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_sees_initial_value() {
        let cell = Epoch::new(vec![1, 2, 3]);
        assert_eq!(*cell.read(), [1, 2, 3]);
        assert_eq!(*cell.read(), [1, 2, 3]);
    }

    #[test]
    fn mutation_is_visible_on_next_read() {
        let cell = Epoch::new(0u64);
        assert_eq!(*cell.read(), 0);
        cell.mutate(|v| *v = 7);
        assert_eq!(*cell.read(), 7);
    }

    #[test]
    fn interleaved_mutation_and_transient_reads_stay_in_place() {
        // The population-build pattern: mutate, peek, mutate, peek. With
        // no snapshot held across the mutation, `Arc::make_mut` must
        // reuse the allocation — no per-cycle clone of the state.
        let cell = Epoch::new(vec![0u64]);
        let home = Arc::as_ptr(&cell.read()) as usize;
        for i in 1..100 {
            cell.mutate(|v| v.push(i));
            let snap = cell.read();
            assert_eq!(snap.len() as u64, i + 1);
            assert_eq!(Arc::as_ptr(&snap) as usize, home, "no clone while unshared");
        }
    }

    #[test]
    fn held_snapshots_survive_mutation_unchanged() {
        let cell = Epoch::new(String::from("first"));
        let before = cell.read();
        cell.mutate(|v| *v = String::from("second"));
        let after = cell.read();
        assert_eq!(*before, "first");
        assert_eq!(*after, "second");
    }

    #[test]
    fn shared_cells_diverge_on_first_mutation() {
        let live = Epoch::new(vec![1, 2]);
        let frozen = live.share();
        assert_eq!(
            Arc::as_ptr(&live.read()),
            Arc::as_ptr(&frozen.read()),
            "sharing is O(1): same allocation"
        );
        live.mutate(|v| v.push(3));
        assert_eq!(*live.read(), [1, 2, 3]);
        assert_eq!(*frozen.read(), [1, 2], "the frozen side never moves");
    }

    #[test]
    fn concurrent_readers_and_writer_agree() {
        let cell = std::sync::Arc::new(Epoch::new(0u64));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = cell.clone();
                scope.spawn(move || {
                    let mut last = 0;
                    for _ in 0..1000 {
                        let v = *cell.read();
                        assert!(v >= last, "reads never go backwards");
                        last = v;
                    }
                });
            }
            scope.spawn(|| {
                for i in 1..=50 {
                    cell.mutate(|v| *v = i);
                }
            });
        });
        assert_eq!(*cell.read(), 50);
    }
}
