//! The in-memory "network": a directory of authoritative servers
//! addressable by nameserver hostname.
//!
//! This replaces the Internet in the simulation. Every query the resolver
//! or scanner makes is a real wire-format `Message` dispatched to a real
//! `Authority` — only the transport is a function call instead of UDP.
//! (For real sockets, see [`crate::Authority::handle_datagram`] and the
//! `udp_wire` example.)
//!
//! The network carries a [`FaultPlane`]: when enabled it injects drops,
//! delays, truncation, error rcodes, stale answers, and server downtime
//! into [`Network::query_udp`], so consumers must cope with the same
//! degradations a real scan sees. Disabled (the default), the transport
//! is perfect and behavior is identical to the pre-fault-plane network.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use dsec_wire::{Message, Name, Rcode};

use crate::authority::Authority;
use crate::epoch::Epoch;
use crate::faults::{Fault, FaultPlane};

/// Nominal one-way-trip-and-back latency of a clean exchange, in
/// simulated milliseconds.
pub const BASE_LATENCY_MS: u32 = 20;

/// The result of one simulated UDP exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutcome {
    /// A response arrived within the caller's deadline.
    Answered {
        /// The response message (possibly truncated or an error rcode).
        response: Message,
        /// Simulated round-trip latency in milliseconds.
        latency_ms: u32,
    },
    /// The server exists but no response arrived in time (dropped packet,
    /// excessive delay, or the server is down).
    Timeout,
    /// No server is registered at that hostname.
    Unreachable,
}

impl QueryOutcome {
    /// The response, if one arrived.
    pub fn into_response(self) -> Option<Message> {
        match self {
            QueryOutcome::Answered { response, .. } => Some(response),
            _ => None,
        }
    }
}

/// A directory of nameservers.
///
/// The hostname → authority map sits behind an [`Epoch`] snapshot:
/// lookups on the query hot path take zero shared locks, while the rare
/// mutations (registration churn) go through the epoch's master copy.
#[derive(Debug, Default)]
pub struct Network {
    servers: Epoch<HashMap<Name, Arc<Authority>>>,
    /// Nameserver hostnames of the root servers.
    root_hints: RwLock<Vec<Name>>,
    /// Total UDP queries dispatched (measurement bookkeeping).
    queries: AtomicU64,
    /// Total TCP queries dispatched (truncation fallback bookkeeping).
    tcp_queries: AtomicU64,
    /// Fault injection; dormant by default.
    faults: FaultPlane,
}

impl Network {
    /// An empty network with a dormant fault plane.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `authority` under the nameserver hostname `ns`.
    /// One authority may be registered under many hostnames.
    pub fn register(&self, ns: Name, authority: Arc<Authority>) {
        let ns = ns.to_canonical();
        self.servers.mutate(|servers| {
            servers.insert(ns, authority);
        });
    }

    /// Removes a nameserver hostname from the directory.
    pub fn deregister(&self, ns: &Name) -> bool {
        self.servers.mutate(|servers| servers.remove(ns).is_some())
    }

    /// Declares the root server hostnames used as resolution starting
    /// points.
    pub fn set_root_hints(&self, hints: Vec<Name>) {
        *self.root_hints.write() = hints;
    }

    /// The configured root server hostnames.
    pub fn root_hints(&self) -> Vec<Name> {
        self.root_hints.read().clone()
    }

    /// The authority registered at `ns`, if any. Lock-free in the steady
    /// state (`Name`'s `Hash`/`Eq` fold case, so no canonical copy is
    /// allocated either).
    pub fn authority(&self, ns: &Name) -> Option<Arc<Authority>> {
        self.servers.read().get(ns).cloned()
    }

    /// Enables or disables the wire-response cache on every registered
    /// authority (on by default). Used by determinism harnesses to prove
    /// cached and uncached runs are byte-identical.
    pub fn set_response_cache(&self, enabled: bool) {
        for authority in self.servers.read().values() {
            authority.set_response_cache(enabled);
        }
    }

    /// Sets the wire-response cache entry capacity on every registered
    /// authority (default 262 144 entries per authority; 0 freezes
    /// admission). The hard bound that keeps cache memory O(capacity),
    /// not O(population), at campaign scale.
    pub fn set_response_cache_capacity(&self, entries: usize) {
        for authority in self.servers.read().values() {
            authority.set_response_cache_capacity(entries);
        }
    }

    /// Aggregate `(hits, misses)` of the per-authority response caches.
    /// An authority registered under several hostnames is counted once.
    pub fn response_cache_stats(&self) -> (u64, u64) {
        let mut seen = std::collections::HashSet::new();
        let mut hits = 0;
        let mut misses = 0;
        for authority in self.servers.read().values() {
            if seen.insert(Arc::as_ptr(authority)) {
                let (h, m) = authority.response_cache_stats();
                hits += h;
                misses += m;
            }
        }
        (hits, misses)
    }

    /// The fault-injection plane (dormant until
    /// [`FaultPlane::enable`]d).
    pub fn faults(&self) -> &FaultPlane {
        &self.faults
    }

    /// Sends `query` to the server at `ns`. `None` models an unreachable
    /// nameserver — unregistered, down, or (with faults enabled) a
    /// dropped packet. Fault-oblivious compatibility wrapper around
    /// [`Network::query_udp`] with an effectively infinite deadline.
    pub fn query(&self, ns: &Name, query: &Message) -> Option<Message> {
        self.query_udp(ns, query, u32::MAX).into_response()
    }

    /// Sends `query` to the server at `ns` over simulated UDP, waiting at
    /// most `deadline_ms` for the response.
    pub fn query_udp(&self, ns: &Name, query: &Message, deadline_ms: u32) -> QueryOutcome {
        self.query_udp_inner(ns, query, deadline_ms, None)
    }

    /// Like [`Network::query_udp`], additionally stamped with the query's
    /// simulated epoch seconds so scheduled down-windows
    /// ([`FaultPlane::schedule_down`]) apply. Timing-oblivious callers
    /// keep using [`Network::query_udp`] and never see windows.
    pub fn query_udp_at(
        &self,
        ns: &Name,
        query: &Message,
        deadline_ms: u32,
        now_s: u32,
    ) -> QueryOutcome {
        self.query_udp_inner(ns, query, deadline_ms, Some(now_s))
    }

    fn query_udp_inner(
        &self,
        ns: &Name,
        query: &Message,
        deadline_ms: u32,
        now_s: Option<u32>,
    ) -> QueryOutcome {
        let Some(authority) = self.authority(ns) else {
            return QueryOutcome::Unreachable;
        };
        self.queries.fetch_add(1, Ordering::Relaxed);
        if self.faults.server_down(ns)
            || now_s.is_some_and(|t| self.faults.window_down(ns, t))
        {
            return QueryOutcome::Timeout;
        }
        let (qname, qtype) = match query.questions.first() {
            Some(q) => (q.name.clone(), q.qtype.number()),
            None => (Name::root(), 0),
        };
        match self.faults.decide(ns, &qname, qtype) {
            None => QueryOutcome::Answered {
                response: authority.handle_query(query),
                latency_ms: BASE_LATENCY_MS,
            },
            Some(Fault::Drop) => QueryOutcome::Timeout,
            Some(Fault::Delay(ms)) => {
                let latency_ms = BASE_LATENCY_MS.saturating_add(ms);
                if latency_ms > deadline_ms {
                    QueryOutcome::Timeout
                } else {
                    QueryOutcome::Answered {
                        response: authority.handle_query(query),
                        latency_ms,
                    }
                }
            }
            Some(Fault::Truncate) => {
                // RFC 2181 §9: a truncated response's sections cannot be
                // relied upon; the caller must retry over TCP.
                let mut response = query.response_to();
                response.flags.truncated = true;
                QueryOutcome::Answered {
                    response,
                    latency_ms: BASE_LATENCY_MS,
                }
            }
            Some(Fault::ServFail) => QueryOutcome::Answered {
                response: error_response(query, Rcode::ServFail),
                latency_ms: BASE_LATENCY_MS,
            },
            Some(Fault::Refused) => QueryOutcome::Answered {
                response: error_response(query, Rcode::Refused),
                latency_ms: BASE_LATENCY_MS,
            },
            Some(Fault::Stale) => {
                let stale = self.faults.stale_authority(ns, &authority);
                QueryOutcome::Answered {
                    response: stale.handle_query(query),
                    latency_ms: BASE_LATENCY_MS,
                }
            }
        }
    }

    /// Sends `query` to the server at `ns` over simulated TCP — the
    /// truncation-fallback path. TCP responses are never truncated and
    /// the stream either connects or it does not, so only downtime
    /// (flaps, kill switch) affects it; the per-packet fault profile and
    /// scripted UDP faults do not apply.
    pub fn query_tcp(&self, ns: &Name, query: &Message) -> QueryOutcome {
        self.query_tcp_inner(ns, query, None)
    }

    /// Like [`Network::query_tcp`], stamped with sim-time so scheduled
    /// down-windows apply (a downed server accepts no TCP either).
    pub fn query_tcp_at(&self, ns: &Name, query: &Message, now_s: u32) -> QueryOutcome {
        self.query_tcp_inner(ns, query, Some(now_s))
    }

    fn query_tcp_inner(&self, ns: &Name, query: &Message, now_s: Option<u32>) -> QueryOutcome {
        let Some(authority) = self.authority(ns) else {
            return QueryOutcome::Unreachable;
        };
        self.tcp_queries.fetch_add(1, Ordering::Relaxed);
        if self.faults.server_down(ns)
            || now_s.is_some_and(|t| self.faults.window_down(ns, t))
        {
            return QueryOutcome::Timeout;
        }
        QueryOutcome::Answered {
            response: authority.handle_query(query),
            // Connection establishment costs an extra round trip.
            latency_ms: BASE_LATENCY_MS * 2,
        }
    }

    /// Total UDP queries dispatched since construction.
    pub fn query_count(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Total TCP (truncation-fallback) queries dispatched since
    /// construction.
    pub fn tcp_query_count(&self) -> u64 {
        self.tcp_queries.load(Ordering::Relaxed)
    }

    /// Number of registered nameserver hostnames.
    pub fn server_count(&self) -> usize {
        self.servers.read().len()
    }
}

/// A minimal error response to `query` with the given rcode.
fn error_response(query: &Message, rcode: Rcode) -> Message {
    let mut response = query.response_to();
    response.rcode = rcode;
    response
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultProfile;
    use dsec_wire::{RData, Rcode, Record, RrType, Zone};

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn simple_authority() -> Arc<Authority> {
        let auth = Authority::new();
        let mut z = Zone::new(name("example.com"));
        z.add(Record::new(
            name("www.example.com"),
            60,
            RData::A("192.0.2.1".parse().unwrap()),
        ))
        .unwrap();
        auth.upsert_zone(z);
        Arc::new(auth)
    }

    #[test]
    fn register_and_query() {
        let net = Network::new();
        net.register(name("ns1.op.net"), simple_authority());
        let q = Message::query(1, name("www.example.com"), RrType::A, false);
        let resp = net.query(&name("ns1.op.net"), &q).unwrap();
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(net.query_count(), 1);
    }

    #[test]
    fn unknown_server_is_unreachable() {
        let net = Network::new();
        let q = Message::query(1, name("www.example.com"), RrType::A, false);
        assert!(net.query(&name("ns1.ghost.net"), &q).is_none());
        assert_eq!(
            net.query_udp(&name("ns1.ghost.net"), &q, 100),
            QueryOutcome::Unreachable
        );
        assert_eq!(net.query_count(), 0);
    }

    #[test]
    fn hostname_lookup_is_case_insensitive() {
        let net = Network::new();
        net.register(name("NS1.Op.NET"), simple_authority());
        let q = Message::query(1, name("www.example.com"), RrType::A, false);
        assert!(net.query(&name("ns1.op.net"), &q).is_some());
    }

    #[test]
    fn shared_authority_under_two_hostnames() {
        let net = Network::new();
        let auth = simple_authority();
        net.register(name("ns1.op.net"), auth.clone());
        net.register(name("ns2.op.net"), auth);
        assert_eq!(net.server_count(), 2);
        let q = Message::query(1, name("www.example.com"), RrType::A, false);
        assert_eq!(
            net.query(&name("ns2.op.net"), &q).unwrap().answers.len(),
            1
        );
    }

    #[test]
    fn deregister_makes_unreachable() {
        let net = Network::new();
        net.register(name("ns1.op.net"), simple_authority());
        assert!(net.deregister(&name("ns1.op.net")));
        assert!(!net.deregister(&name("ns1.op.net")));
        let q = Message::query(1, name("www.example.com"), RrType::A, false);
        assert!(net.query(&name("ns1.op.net"), &q).is_none());
    }

    #[test]
    fn root_hints_round_trip() {
        let net = Network::new();
        assert!(net.root_hints().is_empty());
        net.set_root_hints(vec![name("a.root-servers.net")]);
        assert_eq!(net.root_hints(), vec![name("a.root-servers.net")]);
    }

    #[test]
    fn refused_for_unserved_zone_propagates() {
        let net = Network::new();
        net.register(name("ns1.op.net"), simple_authority());
        let q = Message::query(1, name("www.other.org"), RrType::A, false);
        let resp = net.query(&name("ns1.op.net"), &q).unwrap();
        assert_eq!(resp.rcode, Rcode::Refused);
    }

    #[test]
    fn certain_drop_times_out_and_legacy_query_sees_none() {
        let net = Network::new();
        net.register(name("ns1.op.net"), simple_authority());
        net.faults().enable(11);
        net.faults().set_global_profile(FaultProfile {
            drop_prob: 1.0,
            ..FaultProfile::default()
        });
        let q = Message::query(1, name("www.example.com"), RrType::A, false);
        assert_eq!(
            net.query_udp(&name("ns1.op.net"), &q, 1000),
            QueryOutcome::Timeout
        );
        assert!(net.query(&name("ns1.op.net"), &q).is_none());
        // Dropped packets still count as dispatched queries.
        assert_eq!(net.query_count(), 2);
    }

    #[test]
    fn delay_beyond_deadline_times_out() {
        let net = Network::new();
        net.register(name("ns1.op.net"), simple_authority());
        net.faults().enable(11);
        net.faults().set_global_profile(FaultProfile {
            delay_prob: 1.0,
            delay_ms: 900,
            ..FaultProfile::default()
        });
        let q = Message::query(1, name("www.example.com"), RrType::A, false);
        assert_eq!(
            net.query_udp(&name("ns1.op.net"), &q, 500),
            QueryOutcome::Timeout
        );
        match net.query_udp(&name("ns1.op.net"), &q, 2000) {
            QueryOutcome::Answered { latency_ms, .. } => {
                assert_eq!(latency_ms, BASE_LATENCY_MS + 900)
            }
            other => panic!("expected late answer, got {other:?}"),
        }
    }

    #[test]
    fn truncated_udp_answer_resolves_over_tcp() {
        let net = Network::new();
        net.register(name("ns1.op.net"), simple_authority());
        net.faults().enable(11);
        net.faults().set_global_profile(FaultProfile {
            truncate_prob: 1.0,
            ..FaultProfile::default()
        });
        let q = Message::query(1, name("www.example.com"), RrType::A, false);
        let udp = net
            .query_udp(&name("ns1.op.net"), &q, 1000)
            .into_response()
            .unwrap();
        assert!(udp.flags.truncated);
        assert!(udp.answers.is_empty());
        let tcp = net.query_tcp(&name("ns1.op.net"), &q).into_response().unwrap();
        assert!(!tcp.flags.truncated);
        assert_eq!(tcp.answers.len(), 1);
        assert_eq!(net.tcp_query_count(), 1);
    }

    #[test]
    fn error_rcode_faults_return_errors() {
        let net = Network::new();
        net.register(name("ns1.op.net"), simple_authority());
        net.faults().enable(11);
        net.faults().set_global_profile(FaultProfile {
            servfail_prob: 1.0,
            ..FaultProfile::default()
        });
        let q = Message::query(1, name("www.example.com"), RrType::A, false);
        let resp = net.query(&name("ns1.op.net"), &q).unwrap();
        assert_eq!(resp.rcode, Rcode::ServFail);
    }

    #[test]
    fn stale_fault_freezes_zone_contents() {
        let net = Network::new();
        let auth = simple_authority();
        net.register(name("ns1.op.net"), auth.clone());
        net.faults().enable(11);
        net.faults().set_server_profile(
            &name("ns1.op.net"),
            FaultProfile {
                stale_prob: 1.0,
                ..FaultProfile::default()
            },
        );
        let q = Message::query(1, name("www.example.com"), RrType::A, false);
        // First stale serve freezes the copy.
        assert_eq!(net.query(&name("ns1.op.net"), &q).unwrap().answers.len(), 1);
        // The live zone changes…
        auth.with_zone_mut(&name("example.com"), |z| {
            z.add(Record::new(
                name("www.example.com"),
                60,
                RData::A("192.0.2.2".parse().unwrap()),
            ))
            .unwrap();
        });
        // …but the stale secondary still serves the frozen copy.
        assert_eq!(net.query(&name("ns1.op.net"), &q).unwrap().answers.len(), 1);
        net.faults().clear_server_profile(&name("ns1.op.net"));
        assert_eq!(net.query(&name("ns1.op.net"), &q).unwrap().answers.len(), 2);
    }

    #[test]
    fn scheduled_window_downs_sim_time_queries_only() {
        let net = Network::new();
        net.register(name("ns1.op.net"), simple_authority());
        net.faults().enable(12);
        net.faults().schedule_down(&name("ns1.op.net"), 1000, 2000);
        let q = Message::query(1, name("www.example.com"), RrType::A, false);
        // Inside the window the sim-time path times out over UDP and TCP.
        assert_eq!(
            net.query_udp_at(&name("ns1.op.net"), &q, 500, 1500),
            QueryOutcome::Timeout
        );
        assert_eq!(
            net.query_tcp_at(&name("ns1.op.net"), &q, 1500),
            QueryOutcome::Timeout
        );
        // Before and after the window, service is normal.
        assert!(net.query_udp_at(&name("ns1.op.net"), &q, 500, 999).into_response().is_some());
        assert!(net.query_udp_at(&name("ns1.op.net"), &q, 500, 2000).into_response().is_some());
        // The timing-oblivious path never consults windows.
        assert!(net.query_udp(&name("ns1.op.net"), &q, 500).into_response().is_some());
        assert_eq!(net.faults().stats().downtime_drops, 2);
    }

    #[test]
    fn downed_server_times_out_on_both_transports() {
        let net = Network::new();
        net.register(name("ns1.op.net"), simple_authority());
        net.faults().enable(11);
        net.faults().set_down(&name("ns1.op.net"), true);
        let q = Message::query(1, name("www.example.com"), RrType::A, false);
        assert_eq!(
            net.query_udp(&name("ns1.op.net"), &q, 1000),
            QueryOutcome::Timeout
        );
        assert_eq!(
            net.query_tcp(&name("ns1.op.net"), &q),
            QueryOutcome::Timeout
        );
        net.faults().set_down(&name("ns1.op.net"), false);
        assert!(net.query(&name("ns1.op.net"), &q).is_some());
    }
}
