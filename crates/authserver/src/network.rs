//! The in-memory "network": a directory of authoritative servers
//! addressable by nameserver hostname.
//!
//! This replaces the Internet in the simulation. Every query the resolver
//! or scanner makes is a real wire-format `Message` dispatched to a real
//! `Authority` — only the transport is a function call instead of UDP.
//! (For real sockets, see [`crate::Authority::handle_datagram`] and the
//! `udp_wire` example.)

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use dsec_wire::{Message, Name};

use crate::authority::Authority;

/// A directory of nameservers.
#[derive(Debug, Default)]
pub struct Network {
    servers: RwLock<HashMap<Name, Arc<Authority>>>,
    /// Nameserver hostnames of the root servers.
    root_hints: RwLock<Vec<Name>>,
    /// Total queries dispatched (measurement bookkeeping).
    queries: RwLock<u64>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `authority` under the nameserver hostname `ns`.
    /// One authority may be registered under many hostnames.
    pub fn register(&self, ns: Name, authority: Arc<Authority>) {
        self.servers.write().insert(ns.to_canonical(), authority);
    }

    /// Removes a nameserver hostname from the directory.
    pub fn deregister(&self, ns: &Name) -> bool {
        self.servers.write().remove(&ns.to_canonical()).is_some()
    }

    /// Declares the root server hostnames used as resolution starting
    /// points.
    pub fn set_root_hints(&self, hints: Vec<Name>) {
        *self.root_hints.write() = hints;
    }

    /// The configured root server hostnames.
    pub fn root_hints(&self) -> Vec<Name> {
        self.root_hints.read().clone()
    }

    /// The authority registered at `ns`, if any.
    pub fn authority(&self, ns: &Name) -> Option<Arc<Authority>> {
        self.servers.read().get(&ns.to_canonical()).cloned()
    }

    /// Sends `query` to the server at `ns`. `None` models an unreachable
    /// nameserver (the hostname is not registered).
    pub fn query(&self, ns: &Name, query: &Message) -> Option<Message> {
        let authority = self.authority(ns)?;
        *self.queries.write() += 1;
        Some(authority.handle_query(query))
    }

    /// Total queries dispatched since construction.
    pub fn query_count(&self) -> u64 {
        *self.queries.read()
    }

    /// Number of registered nameserver hostnames.
    pub fn server_count(&self) -> usize {
        self.servers.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsec_wire::{RData, Rcode, Record, RrType, Zone};

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn simple_authority() -> Arc<Authority> {
        let auth = Authority::new();
        let mut z = Zone::new(name("example.com"));
        z.add(Record::new(
            name("www.example.com"),
            60,
            RData::A("192.0.2.1".parse().unwrap()),
        ))
        .unwrap();
        auth.upsert_zone(z);
        Arc::new(auth)
    }

    #[test]
    fn register_and_query() {
        let net = Network::new();
        net.register(name("ns1.op.net"), simple_authority());
        let q = Message::query(1, name("www.example.com"), RrType::A, false);
        let resp = net.query(&name("ns1.op.net"), &q).unwrap();
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(net.query_count(), 1);
    }

    #[test]
    fn unknown_server_is_unreachable() {
        let net = Network::new();
        let q = Message::query(1, name("www.example.com"), RrType::A, false);
        assert!(net.query(&name("ns1.ghost.net"), &q).is_none());
        assert_eq!(net.query_count(), 0);
    }

    #[test]
    fn hostname_lookup_is_case_insensitive() {
        let net = Network::new();
        net.register(name("NS1.Op.NET"), simple_authority());
        let q = Message::query(1, name("www.example.com"), RrType::A, false);
        assert!(net.query(&name("ns1.op.net"), &q).is_some());
    }

    #[test]
    fn shared_authority_under_two_hostnames() {
        let net = Network::new();
        let auth = simple_authority();
        net.register(name("ns1.op.net"), auth.clone());
        net.register(name("ns2.op.net"), auth);
        assert_eq!(net.server_count(), 2);
        let q = Message::query(1, name("www.example.com"), RrType::A, false);
        assert_eq!(
            net.query(&name("ns2.op.net"), &q).unwrap().answers.len(),
            1
        );
    }

    #[test]
    fn deregister_makes_unreachable() {
        let net = Network::new();
        net.register(name("ns1.op.net"), simple_authority());
        assert!(net.deregister(&name("ns1.op.net")));
        assert!(!net.deregister(&name("ns1.op.net")));
        let q = Message::query(1, name("www.example.com"), RrType::A, false);
        assert!(net.query(&name("ns1.op.net"), &q).is_none());
    }

    #[test]
    fn root_hints_round_trip() {
        let net = Network::new();
        assert!(net.root_hints().is_empty());
        net.set_root_hints(vec![name("a.root-servers.net")]);
        assert_eq!(net.root_hints(), vec![name("a.root-servers.net")]);
    }

    #[test]
    fn refused_for_unserved_zone_propagates() {
        let net = Network::new();
        net.register(name("ns1.op.net"), simple_authority());
        let q = Message::query(1, name("www.other.org"), RrType::A, false);
        let resp = net.query(&name("ns1.op.net"), &q).unwrap();
        assert_eq!(resp.rcode, Rcode::Refused);
    }
}
