//! The fault-injection plane: everything that can go wrong between a
//! querier and an authoritative server, modelled deterministically.
//!
//! The paper's measurements ran against the real Internet, where scans
//! routinely hit unreachable nameservers, lame delegations, timeouts, and
//! truncated responses. [`FaultPlane`] sits inside
//! [`crate::Network::query_udp`] and injects those failure modes —
//! per-nameserver or globally — from a seeded deterministic RNG:
//!
//! * **Drop** — the query (or its response) is lost; the caller times out.
//! * **Delay** — the response arrives late; past the caller's deadline it
//!   is indistinguishable from a drop.
//! * **Truncate** — the response comes back with TC set and empty
//!   sections; the caller must retry over (simulated) TCP.
//! * **ServFail** / **Refused** — the server answers with an error rcode
//!   (overloaded resolver backend, lame delegation).
//! * **Stale** — the answer is served from a frozen copy of the zones as
//!   they were when the fault first fired (an unsynced secondary).
//!
//! Determinism: every decision is a pure function of the plane's seed,
//! the (server, qname, qtype) tuple, and a per-tuple attempt counter, so
//! two runs with the same seed produce identical fault sequences even
//! when queries are issued from multiple scanner threads in different
//! interleavings.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use dsec_wire::Name;

use crate::authority::Authority;

/// One injected fault for a single simulated UDP exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Query or response lost in transit; the caller times out.
    Drop,
    /// Response delayed by this many milliseconds; if it exceeds the
    /// caller's deadline it becomes a timeout.
    Delay(u32),
    /// Response truncated: TC bit set, sections emptied (RFC 2181 §9).
    Truncate,
    /// The server answers SERVFAIL.
    ServFail,
    /// The server answers REFUSED (lame delegation).
    Refused,
    /// The answer is served from a stale zone copy (unsynced secondary).
    Stale,
}

/// Fault probabilities for one scope (global or per-server).
///
/// Probabilities are evaluated in declaration order against a single
/// uniform draw, so they are mutually exclusive and should sum to ≤ 1.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultProfile {
    /// Probability a query is dropped (timeout).
    pub drop_prob: f64,
    /// Probability the response is delayed by [`FaultProfile::delay_ms`].
    pub delay_prob: f64,
    /// Injected delay in milliseconds when a delay fires.
    pub delay_ms: u32,
    /// Probability the response is truncated (TC bit).
    pub truncate_prob: f64,
    /// Probability of a SERVFAIL response.
    pub servfail_prob: f64,
    /// Probability of a REFUSED response.
    pub refused_prob: f64,
    /// Probability the answer comes from a stale zone copy.
    pub stale_prob: f64,
}

impl FaultProfile {
    /// A profile that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// The ISSUE's canonical chaos mix: `p` split between drops and
    /// SERVFAILs (e.g. `mixed(0.05)` ≈ 2.5% drops + 2.5% SERVFAIL).
    pub fn mixed(p: f64) -> Self {
        FaultProfile {
            drop_prob: p / 2.0,
            servfail_prob: p / 2.0,
            ..Self::default()
        }
    }

    fn is_zero(&self) -> bool {
        self.drop_prob <= 0.0
            && self.delay_prob <= 0.0
            && self.truncate_prob <= 0.0
            && self.servfail_prob <= 0.0
            && self.refused_prob <= 0.0
            && self.stale_prob <= 0.0
    }

    /// Maps one uniform draw in `[0, 1)` to a fault (or none).
    fn pick(&self, draw: f64) -> Option<Fault> {
        let mut threshold = self.drop_prob;
        if draw < threshold {
            return Some(Fault::Drop);
        }
        threshold += self.delay_prob;
        if draw < threshold {
            return Some(Fault::Delay(self.delay_ms));
        }
        threshold += self.truncate_prob;
        if draw < threshold {
            return Some(Fault::Truncate);
        }
        threshold += self.servfail_prob;
        if draw < threshold {
            return Some(Fault::ServFail);
        }
        threshold += self.refused_prob;
        if draw < threshold {
            return Some(Fault::Refused);
        }
        threshold += self.stale_prob;
        if draw < threshold {
            return Some(Fault::Stale);
        }
        None
    }
}

/// A periodic up/down schedule over simulation days: the server is down
/// for `down_days` out of every `up_days + down_days`, offset by `phase`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlapSchedule {
    /// Consecutive days the server is up in each period.
    pub up_days: u32,
    /// Consecutive days the server is down in each period.
    pub down_days: u32,
    /// Offset into the period on day 0 (derived from the hostname when
    /// installed via [`FaultPlane::flap_server`], so a fleet of flapping
    /// servers does not blink in unison).
    pub phase: u32,
}

impl FlapSchedule {
    /// Whether the schedule has the server down on `day`.
    pub fn is_down(&self, day: u32) -> bool {
        let period = self.up_days + self.down_days;
        if period == 0 {
            return false;
        }
        (day.wrapping_add(self.phase)) % period >= self.up_days
    }
}

/// Counts of injected faults, by kind.
#[derive(Debug, Default)]
struct FaultCounters {
    drops: AtomicU64,
    delays: AtomicU64,
    truncations: AtomicU64,
    servfails: AtomicU64,
    refusals: AtomicU64,
    stale_serves: AtomicU64,
    downtime_drops: AtomicU64,
}

/// A point-in-time copy of the fault counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Queries dropped by the drop probability.
    pub drops: u64,
    /// Responses delayed (whether or not they beat the deadline).
    pub delays: u64,
    /// Responses truncated.
    pub truncations: u64,
    /// SERVFAIL responses injected.
    pub servfails: u64,
    /// REFUSED responses injected.
    pub refusals: u64,
    /// Answers served from a stale zone copy.
    pub stale_serves: u64,
    /// Queries dropped because the server was down (flap or kill switch).
    pub downtime_drops: u64,
}

impl FaultStats {
    /// Total injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.drops
            + self.delays
            + self.truncations
            + self.servfails
            + self.refusals
            + self.stale_serves
            + self.downtime_drops
    }
}

/// Attempt-counter key: the 64-bit draw hash plus the full
/// (server, qname, qtype) triple it was folded from. `Hash` writes only
/// the precomputed fold (cheap), while `Eq` compares the whole triple —
/// so distinct triples that collide in the 64-bit fold get their own
/// counters instead of silently sharing one and skewing draws.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AttemptKey {
    hash: u64,
    server: Name,
    qname: Name,
    qtype: u16,
}

impl std::hash::Hash for AttemptKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// The fault-injection plane a [`crate::Network`] consults on every
/// simulated packet. Disabled (the default) it adds one atomic load to
/// the hot path and changes nothing.
#[derive(Debug, Default)]
pub struct FaultPlane {
    /// Fast-path gate: false ⇒ no locks taken, no RNG consumed.
    enabled: AtomicBool,
    seed: AtomicU64,
    /// Current simulation day, advanced by the world tick (flapping).
    day: AtomicU32,
    global: RwLock<FaultProfile>,
    per_server: RwLock<HashMap<Name, FaultProfile>>,
    flaps: RwLock<HashMap<Name, FlapSchedule>>,
    /// Servers administratively forced down.
    down: RwLock<HashMap<Name, bool>>,
    /// Scheduled down-windows per server: half-open `[from_s, until_s)`
    /// intervals in simulated epoch seconds, consulted by the sim-time-
    /// aware query paths ([`crate::Network::query_udp_at`]). Purely
    /// declarative — membership is a function of the query's sim clock,
    /// so outage behavior is deterministic and thread-order independent.
    windows: RwLock<HashMap<Name, Vec<(u32, u32)>>>,
    /// Scripted outcomes consumed FIFO per server (deterministic tests).
    scripts: Mutex<HashMap<Name, VecDeque<Fault>>>,
    /// Per-(server, qname, qtype) attempt counters: make draws
    /// independent of cross-thread query interleaving. Pruned at each
    /// campaign epoch ([`FaultPlane::begin_epoch`]) so multi-day
    /// campaigns don't grow it without bound.
    attempts: Mutex<HashMap<AttemptKey, u32>>,
    /// Stale zone copies, frozen lazily when a Stale fault first fires.
    stale: Mutex<HashMap<Name, Arc<Authority>>>,
    counters: FaultCounters,
}

impl FaultPlane {
    /// A disabled fault plane (the default state).
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds the plane and enables injection. Clears attempt counters and
    /// stale copies so a re-seeded run starts from a clean slate.
    pub fn enable(&self, seed: u64) {
        self.seed.store(seed, Ordering::Relaxed);
        self.attempts.lock().clear();
        self.stale.lock().clear();
        self.enabled.store(true, Ordering::Release);
    }

    /// Disables all injection (scripts, profiles, and flaps are retained
    /// but dormant).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Starts a new campaign epoch: prunes the per-(server, qname, qtype)
    /// attempt counters so multi-day campaigns don't accumulate one
    /// counter per triple forever, and so every snapshot re-draws from
    /// attempt 0 (per-snapshot determinism independent of campaign
    /// length). Stale zone copies are retained — a frozen secondary stays
    /// frozen until its fault clears.
    pub fn begin_epoch(&self) {
        self.attempts.lock().clear();
    }

    /// Whether the plane is live.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Sets the fault profile applied to every server without a
    /// per-server override.
    pub fn set_global_profile(&self, profile: FaultProfile) {
        *self.global.write() = profile;
    }

    /// Sets a per-server override profile.
    pub fn set_server_profile(&self, ns: &Name, profile: FaultProfile) {
        self.per_server.write().insert(ns.to_canonical(), profile);
    }

    /// Removes a per-server override.
    pub fn clear_server_profile(&self, ns: &Name) {
        self.per_server.write().remove(&ns.to_canonical());
    }

    /// Installs an up/down flap schedule for a server; the phase is
    /// derived from the hostname so flapping fleets desynchronize.
    pub fn flap_server(&self, ns: &Name, up_days: u32, down_days: u32) {
        let phase = (fnv1a(&ns.to_canonical_wire(), 0x1F1A9) % (up_days + down_days).max(1) as u64)
            as u32;
        self.flaps.write().insert(
            ns.to_canonical(),
            FlapSchedule {
                up_days,
                down_days,
                phase,
            },
        );
    }

    /// Removes a server's flap schedule.
    pub fn clear_flap(&self, ns: &Name) {
        self.flaps.write().remove(&ns.to_canonical());
    }

    /// Forces a server down (or back up) regardless of probabilities.
    pub fn set_down(&self, ns: &Name, down: bool) {
        if down {
            self.down.write().insert(ns.to_canonical(), true);
        } else {
            self.down.write().remove(&ns.to_canonical());
        }
    }

    /// Schedules a down-window for `ns`: the server times out for every
    /// sim-time-aware query with `from_s <= now < until_s`. Windows
    /// accumulate (a server may go down repeatedly — flapping scenarios
    /// install many short windows).
    pub fn schedule_down(&self, ns: &Name, from_s: u32, until_s: u32) {
        if from_s >= until_s {
            return;
        }
        self.windows
            .write()
            .entry(ns.to_canonical())
            .or_default()
            .push((from_s, until_s));
    }

    /// Removes every scheduled down-window for `ns`.
    pub fn clear_schedule(&self, ns: &Name) {
        self.windows.write().remove(&ns.to_canonical());
    }

    /// Removes all scheduled down-windows.
    pub fn clear_schedules(&self) {
        self.windows.write().clear();
    }

    /// Whether a scheduled window has `ns` down at sim-time `now_s`.
    /// Pure configuration lookup: no counters, no enable gate — used by
    /// scenario harnesses to print outage timelines.
    pub fn scheduled_down(&self, ns: &Name, now_s: u32) -> bool {
        self.windows
            .read()
            .get(&ns.to_canonical())
            .map(|ws| ws.iter().any(|&(from, until)| now_s >= from && now_s < until))
            .unwrap_or(false)
    }

    /// Whether a scheduled window has `ns` down at sim-time `now_s`,
    /// counting a downtime drop when it does (the query path).
    pub(crate) fn window_down(&self, ns: &Name, now_s: u32) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let down = self.scheduled_down(ns, now_s);
        if down {
            self.counters.downtime_drops.fetch_add(1, Ordering::Relaxed);
        }
        down
    }

    /// Queues forced fault outcomes for the next UDP queries to `ns`,
    /// consumed FIFO before any probabilistic draw (deterministic tests:
    /// "drop twice, then answer"). TCP queries do not consume entries.
    pub fn script(&self, ns: &Name, faults: impl IntoIterator<Item = Fault>) {
        self.scripts
            .lock()
            .entry(ns.to_canonical())
            .or_default()
            .extend(faults);
    }

    /// Advances the plane's notion of the current simulation day (drives
    /// flap schedules). Called from the world tick.
    pub fn set_day(&self, day: u32) {
        self.day.store(day, Ordering::Relaxed);
    }

    /// Snapshot of the injected-fault counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            drops: self.counters.drops.load(Ordering::Relaxed),
            delays: self.counters.delays.load(Ordering::Relaxed),
            truncations: self.counters.truncations.load(Ordering::Relaxed),
            servfails: self.counters.servfails.load(Ordering::Relaxed),
            refusals: self.counters.refusals.load(Ordering::Relaxed),
            stale_serves: self.counters.stale_serves.load(Ordering::Relaxed),
            downtime_drops: self.counters.downtime_drops.load(Ordering::Relaxed),
        }
    }

    /// Whether `ns` is down right now (kill switch or flap schedule).
    /// Counts a downtime drop when it is.
    pub(crate) fn server_down(&self, ns: &Name) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let canonical = ns.to_canonical();
        let down = self.down.read().contains_key(&canonical)
            || self
                .flaps
                .read()
                .get(&canonical)
                .map(|f| f.is_down(self.day.load(Ordering::Relaxed)))
                .unwrap_or(false);
        if down {
            self.counters.downtime_drops.fetch_add(1, Ordering::Relaxed);
        }
        down
    }

    /// Decides the fault (if any) for one UDP query. `None` means the
    /// exchange is clean.
    pub(crate) fn decide(&self, ns: &Name, qname: &Name, qtype: u16) -> Option<Fault> {
        if !self.is_enabled() {
            return None;
        }
        let canonical = ns.to_canonical();
        // Scripted outcome first.
        if let Some(queue) = self.scripts.lock().get_mut(&canonical) {
            if let Some(fault) = queue.pop_front() {
                self.count(fault);
                return Some(fault);
            }
        }
        let profile = {
            let per_server = self.per_server.read();
            match per_server.get(&canonical) {
                Some(p) => *p,
                None => *self.global.read(),
            }
        };
        if profile.is_zero() {
            return None;
        }
        // Key the draw on (server, qname, qtype, attempt#): identical
        // across runs regardless of thread interleaving. (Canonical wire
        // form is lowercase already, so hashing `ns` directly equals
        // hashing its canonical name.)
        let mut hash = fnv1a(&ns.to_canonical_wire(), 0xF0_17);
        hash = fnv1a(&qname.to_canonical_wire(), hash);
        hash = fnv1a(&qtype.to_be_bytes(), hash);
        let key = AttemptKey {
            hash,
            server: canonical,
            qname: qname.to_canonical(),
            qtype,
        };
        let attempt = {
            let mut attempts = self.attempts.lock();
            let counter = attempts.entry(key).or_insert(0);
            let current = *counter;
            *counter += 1;
            current
        };
        let draw = uniform_draw(
            self.seed.load(Ordering::Relaxed),
            hash ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let fault = profile.pick(draw)?;
        self.count(fault);
        Some(fault)
    }

    /// The stale authority for `ns`, freezing a copy of `live`'s zones on
    /// first use (the secondary stopped syncing when the fault began).
    pub(crate) fn stale_authority(&self, ns: &Name, live: &Authority) -> Arc<Authority> {
        self.stale
            .lock()
            .entry(ns.to_canonical())
            .or_insert_with(|| Arc::new(live.snapshot()))
            .clone()
    }

    fn count(&self, fault: Fault) {
        let counter = match fault {
            Fault::Drop => &self.counters.drops,
            Fault::Delay(_) => &self.counters.delays,
            Fault::Truncate => &self.counters.truncations,
            Fault::ServFail => &self.counters.servfails,
            Fault::Refused => &self.counters.refusals,
            Fault::Stale => &self.counters.stale_serves,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// FNV-1a over `bytes`, chained from `state`.
fn fnv1a(bytes: &[u8], state: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ state.wrapping_mul(0x100_0000_01b3);
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// A uniform draw in `[0, 1)` from (seed, key) via SplitMix64 finalling.
fn uniform_draw(seed: u64, key: u64) -> f64 {
    let mut z = seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn disabled_plane_injects_nothing() {
        let plane = FaultPlane::new();
        plane.set_global_profile(FaultProfile {
            drop_prob: 1.0,
            ..FaultProfile::default()
        });
        // Not enabled → profile dormant.
        assert_eq!(plane.decide(&name("ns1.op.net"), &name("x.com"), 1), None);
        assert!(!plane.server_down(&name("ns1.op.net")));
        assert_eq!(plane.stats().total(), 0);
    }

    #[test]
    fn certain_drop_fires_every_time() {
        let plane = FaultPlane::new();
        plane.enable(42);
        plane.set_global_profile(FaultProfile {
            drop_prob: 1.0,
            ..FaultProfile::default()
        });
        for _ in 0..5 {
            assert_eq!(
                plane.decide(&name("ns1.op.net"), &name("x.com"), 1),
                Some(Fault::Drop)
            );
        }
        assert_eq!(plane.stats().drops, 5);
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<Option<Fault>> {
            let plane = FaultPlane::new();
            plane.enable(seed);
            plane.set_global_profile(FaultProfile::mixed(0.5));
            (0..64)
                .map(|i| {
                    plane.decide(
                        &name("ns1.op.net"),
                        &name(&format!("d{i}.com")),
                        1,
                    )
                })
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds give different faults");
    }

    #[test]
    fn per_key_attempts_are_interleaving_independent() {
        // Two planes, same seed: querying A,B,A vs B,A,A must give each
        // (key, attempt) pair the same outcome.
        let plane1 = FaultPlane::new();
        let plane2 = FaultPlane::new();
        for plane in [&plane1, &plane2] {
            plane.enable(99);
            plane.set_global_profile(FaultProfile::mixed(0.6));
        }
        let ns = name("ns1.op.net");
        let a = name("a.com");
        let b = name("b.com");
        let mut out1 = vec![
            ("a0", plane1.decide(&ns, &a, 1)),
            ("b0", plane1.decide(&ns, &b, 1)),
            ("a1", plane1.decide(&ns, &a, 1)),
        ];
        let mut out2 = vec![
            ("b0", plane2.decide(&ns, &b, 1)),
            ("a0", plane2.decide(&ns, &a, 1)),
            ("a1", plane2.decide(&ns, &a, 1)),
        ];
        out1.sort_by_key(|(k, _)| *k);
        out2.sort_by_key(|(k, _)| *k);
        assert_eq!(out1, out2);
    }

    #[test]
    fn begin_epoch_prunes_counters_and_replays_draws() {
        let plane = FaultPlane::new();
        plane.enable(42);
        plane.set_global_profile(FaultProfile::mixed(0.5));
        let ns = name("ns1.op.net");
        let ask = |p: &FaultPlane| -> Vec<Option<Fault>> {
            (0..16)
                .map(|i| p.decide(&ns, &name(&format!("d{}.com", i % 4)), 48))
                .collect()
        };
        let first = ask(&plane);
        assert_eq!(plane.attempts.lock().len(), 4, "one counter per triple");
        plane.begin_epoch();
        assert!(plane.attempts.lock().is_empty(), "epoch prunes counters");
        // A fresh epoch re-draws from attempt 0: the sequence replays.
        assert_eq!(ask(&plane), first);
    }

    #[test]
    fn colliding_attempt_hashes_keep_separate_counters() {
        // Two distinct triples forced onto the same 64-bit hash must not
        // share a HashMap slot: Eq compares the full triple.
        let a = AttemptKey {
            hash: 0xDEAD_BEEF,
            server: name("ns1.op.net"),
            qname: name("a.com"),
            qtype: 48,
        };
        let b = AttemptKey {
            hash: 0xDEAD_BEEF,
            server: name("ns2.op.net"),
            qname: name("b.com"),
            qtype: 1,
        };
        assert_ne!(a, b);
        let mut counters: HashMap<AttemptKey, u32> = HashMap::new();
        *counters.entry(a).or_insert(0) += 1;
        *counters.entry(b).or_insert(0) += 1;
        assert_eq!(counters.len(), 2);
    }

    #[test]
    fn scripts_run_before_probabilities() {
        let plane = FaultPlane::new();
        plane.enable(1);
        let ns = name("ns1.op.net");
        plane.script(&ns, [Fault::Drop, Fault::Truncate]);
        assert_eq!(plane.decide(&ns, &name("x.com"), 1), Some(Fault::Drop));
        assert_eq!(plane.decide(&ns, &name("x.com"), 1), Some(Fault::Truncate));
        // Queue drained, zero profile → clean.
        assert_eq!(plane.decide(&ns, &name("x.com"), 1), None);
    }

    #[test]
    fn flap_schedule_cycles_with_days() {
        let schedule = FlapSchedule {
            up_days: 3,
            down_days: 2,
            phase: 0,
        };
        let pattern: Vec<bool> = (0..10).map(|d| schedule.is_down(d)).collect();
        assert_eq!(
            pattern,
            vec![false, false, false, true, true, false, false, false, true, true]
        );
    }

    #[test]
    fn kill_switch_and_flaps_mark_server_down() {
        let plane = FaultPlane::new();
        plane.enable(5);
        let ns = name("ns1.op.net");
        assert!(!plane.server_down(&ns));
        plane.set_down(&ns, true);
        assert!(plane.server_down(&ns));
        plane.set_down(&ns, false);
        assert!(!plane.server_down(&ns));
        plane.flap_server(&ns, 1, 1);
        let down_days: Vec<bool> = (0..4)
            .map(|d| {
                plane.set_day(d);
                plane.server_down(&ns)
            })
            .collect();
        assert_eq!(down_days.iter().filter(|&&d| d).count(), 2, "{down_days:?}");
    }

    #[test]
    fn scheduled_windows_are_half_open_and_accumulate() {
        let plane = FaultPlane::new();
        plane.enable(9);
        let ns = name("ns1.op.net");
        plane.schedule_down(&ns, 100, 200);
        plane.schedule_down(&ns, 300, 400);
        plane.schedule_down(&ns, 500, 400); // empty interval ignored
        assert!(!plane.window_down(&ns, 99));
        assert!(plane.window_down(&ns, 100), "start inclusive");
        assert!(plane.window_down(&ns, 199));
        assert!(!plane.window_down(&ns, 200), "end exclusive");
        assert!(plane.window_down(&ns, 350), "second window");
        assert!(!plane.window_down(&ns, 450));
        assert_eq!(plane.stats().downtime_drops, 3);
        plane.clear_schedule(&ns);
        assert!(!plane.window_down(&ns, 150));
    }

    #[test]
    fn disabled_plane_ignores_windows_but_scheduled_down_reads_config() {
        let plane = FaultPlane::new();
        let ns = name("ns1.op.net");
        plane.schedule_down(&ns, 0, 1000);
        assert!(!plane.window_down(&ns, 500), "dormant plane injects nothing");
        assert!(plane.scheduled_down(&ns, 500), "pure config lookup");
        assert_eq!(plane.stats().downtime_drops, 0);
        plane.clear_schedules();
        assert!(!plane.scheduled_down(&ns, 500));
    }

    #[test]
    fn profile_pick_respects_ordering() {
        let profile = FaultProfile {
            drop_prob: 0.1,
            delay_prob: 0.1,
            delay_ms: 700,
            truncate_prob: 0.1,
            servfail_prob: 0.1,
            refused_prob: 0.1,
            stale_prob: 0.1,
        };
        assert_eq!(profile.pick(0.05), Some(Fault::Drop));
        assert_eq!(profile.pick(0.15), Some(Fault::Delay(700)));
        assert_eq!(profile.pick(0.25), Some(Fault::Truncate));
        assert_eq!(profile.pick(0.35), Some(Fault::ServFail));
        assert_eq!(profile.pick(0.45), Some(Fault::Refused));
        assert_eq!(profile.pick(0.55), Some(Fault::Stale));
        assert_eq!(profile.pick(0.65), None);
    }
}
