//! Retry, backoff, and server-health policy for the iterative resolver.
//!
//! A real scan cannot assume every authoritative server answers the first
//! packet: queries are dropped, servers flap, responses arrive truncated.
//! This module gives the resolver the same machinery production stub
//! resolvers use — bounded retries with exponential backoff, rotation
//! across every NS hostname at a zone cut, and a penalty cache that
//! steers subsequent queries toward servers that have been answering.
//!
//! Backoff is *simulated*: the resolver records how long it would have
//! waited instead of sleeping, so tests and million-domain campaigns stay
//! fast while latency accounting stays meaningful.

use std::cell::Cell;
use std::collections::HashMap;

use parking_lot::Mutex;

use dsec_wire::Name;

/// Knobs for the resolver's retry behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total query attempts across all servers before giving up on a
    /// zone cut.
    pub max_attempts: u32,
    /// How long to wait for each UDP response, in simulated ms.
    pub deadline_ms: u32,
    /// First retry backoff, in simulated ms.
    pub base_backoff_ms: u32,
    /// Backoff ceiling, in simulated ms.
    pub max_backoff_ms: u32,
    /// Total simulated-time budget for one top-level resolution, in ms.
    /// Per-attempt deadlines bound a single exchange, but a sustained
    /// outage can stack NS rotations, backoff, and TCP fallback far past
    /// any realistic client deadline; once the accumulated simulated
    /// latency of a resolution crosses this budget, the retry ladder
    /// stops cold and the query fails fast (counted as budget-exhausted).
    pub budget_ms: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            deadline_ms: 500,
            base_backoff_ms: 50,
            max_backoff_ms: 800,
            budget_ms: 3_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: one attempt per zone cut, mirroring
    /// the pre-retry resolver.
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Exponential backoff before retry number `attempt` (0-based),
    /// capped at [`RetryPolicy::max_backoff_ms`].
    pub fn backoff_ms(&self, attempt: u32) -> u32 {
        let shifted = self
            .base_backoff_ms
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
        shifted.min(self.max_backoff_ms)
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct ServerHealth {
    /// Consecutive-failure penalty; decays on success.
    penalty: u32,
}

/// Per-server health bookkeeping: servers that keep timing out sink to
/// the back of the candidate ordering.
#[derive(Debug, Default)]
pub struct HealthCache {
    servers: Mutex<HashMap<Name, ServerHealth>>,
}

impl HealthCache {
    /// An empty cache: every server starts healthy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a successful exchange with `ns` (halves its penalty). Only
    /// servers with a recorded failure are tracked: a never-failed server
    /// must not grow the map (a million-domain campaign would otherwise
    /// accumulate an all-zero-penalty entry per server), and an entry
    /// whose penalty decays to 0 is dropped for the same reason.
    pub fn record_success(&self, ns: &Name) {
        let mut servers = self.servers.lock();
        let key = ns.to_canonical();
        if let Some(health) = servers.get_mut(&key) {
            health.penalty /= 2;
            if health.penalty == 0 {
                servers.remove(&key);
            }
        }
    }

    /// Records a failed exchange (timeout, error rcode) with `ns`.
    pub fn record_failure(&self, ns: &Name) {
        let mut servers = self.servers.lock();
        let health = servers.entry(ns.to_canonical()).or_default();
        health.penalty = health.penalty.saturating_add(1);
    }

    /// How many servers currently carry a non-zero penalty entry. Bounded
    /// by the number of *failing* servers, not by campaign size.
    pub fn tracked_servers(&self) -> usize {
        self.servers.lock().len()
    }

    /// The current penalty of `ns` (0 = healthy or unknown).
    pub fn penalty(&self, ns: &Name) -> u32 {
        self.servers
            .lock()
            .get(&ns.to_canonical())
            .map(|h| h.penalty)
            .unwrap_or(0)
    }

    /// Orders candidate servers healthiest-first. The sort is stable, so
    /// with no recorded failures the caller's order is preserved —
    /// keeping fault-free resolution identical to the pre-retry code.
    pub fn order(&self, servers: &[Name]) -> Vec<Name> {
        self.order_indices(servers)
            .into_iter()
            .map(|i| servers[i].clone())
            .collect()
    }

    /// Like [`HealthCache::order`], but returns positions into `servers`
    /// instead of cloned names. With no tracked failures (the fault-free
    /// hot path) this is the identity permutation and touches no name
    /// bytes at all — the per-query cost is one short mutex hold.
    pub fn order_indices(&self, servers: &[Name]) -> Vec<usize> {
        let penalties = self.servers.lock();
        if penalties.is_empty() {
            return (0..servers.len()).collect();
        }
        let mut ordered: Vec<usize> = (0..servers.len()).collect();
        ordered.sort_by_key(|&i| {
            penalties
                .get(&servers[i].to_canonical())
                .map(|h| h.penalty)
                .unwrap_or(0)
        });
        ordered
    }
}

/// Monotonic counters describing how hard the resolver had to work.
///
/// Counters are plain [`Cell`]s, not atomics: each [`Resolver`] — and
/// therefore each worker thread of a pool — accumulates privately with
/// zero synchronization, and callers merge [`snapshot`]s once at the end
/// of a run (the traffic driver sums its workers' snapshots after join).
/// This removes the last shared read-modify-write from the per-query
/// path; the trade-off is that `ResolverStats` (and `Resolver`) are no
/// longer `Sync`, which nothing required — workers always owned their
/// resolver.
///
/// [`Resolver`]: crate::Resolver
/// [`snapshot`]: ResolverStats::snapshot
#[derive(Debug, Default)]
pub struct ResolverStats {
    udp_attempts: Cell<u64>,
    timeouts: Cell<u64>,
    tcp_fallbacks: Cell<u64>,
    error_rcodes: Cell<u64>,
    backoff_ms: Cell<u64>,
    cache_hits: Cell<u64>,
    cache_misses: Cell<u64>,
    stale_hits: Cell<u64>,
    negative_hits: Cell<u64>,
    budget_exhausted: Cell<u64>,
    breaker_trips: Cell<u64>,
    breaker_short_circuits: Cell<u64>,
    poison_races: Cell<u64>,
    poison_admitted: Cell<u64>,
    poison_scrubbed: Cell<u64>,
}

/// A point-in-time copy of [`ResolverStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStatsSnapshot {
    /// UDP query attempts issued.
    pub udp_attempts: u64,
    /// Attempts that ended in a timeout (drop, delay, downtime).
    pub timeouts: u64,
    /// Truncated responses retried over TCP.
    pub tcp_fallbacks: u64,
    /// SERVFAIL/REFUSED responses received.
    pub error_rcodes: u64,
    /// Total simulated backoff the resolver would have slept, in ms.
    pub backoff_ms: u64,
    /// [`resolve_cached`](crate::Resolver::resolve_cached) lookups served
    /// from the positive cache.
    pub cache_hits: u64,
    /// [`resolve_cached`](crate::Resolver::resolve_cached) lookups that
    /// had to resolve from the roots.
    pub cache_misses: u64,
    /// Expired-but-servable answers returned after upstream resolution
    /// failed (RFC 8767 serve-stale).
    pub stale_hits: u64,
    /// Cached NXDOMAIN/NODATA answers served without touching
    /// authorities (RFC 2308 negative caching). Also counted in
    /// `cache_hits`.
    pub negative_hits: u64,
    /// Resolutions aborted because accumulated simulated latency crossed
    /// [`RetryPolicy::budget_ms`].
    pub budget_exhausted: u64,
    /// Circuit-breaker transitions into the open state.
    pub breaker_trips: u64,
    /// Upstream attempts skipped because an authority's breaker was
    /// open (and the probe slot for the current interval was spent).
    pub breaker_short_circuits: u64,
    /// Query exchanges contested by an on-path spoofing race (an
    /// [`OnPathThreat`](crate::OnPathThreat) covered the query).
    pub poison_races: u64,
    /// Forged responses that won their race and were admitted into a
    /// resolution (the answers carry
    /// [`Answer::poisoned`](crate::Answer::poisoned)).
    pub poison_admitted: u64,
    /// Records dropped by strict bailiwick filtering
    /// ([`SpoofGuard::strict_bailiwick`](crate::SpoofGuard)).
    pub poison_scrubbed: u64,
}

impl ResolverStatsSnapshot {
    /// Whether any retry-triggering event was recorded.
    pub fn degraded(&self) -> bool {
        self.timeouts > 0 || self.tcp_fallbacks > 0 || self.error_rcodes > 0
    }

    /// Cache hits as a fraction of cached lookups (0.0 when none ran).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

impl ResolverStats {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn count_attempt(&self) {
        self.udp_attempts.set(self.udp_attempts.get() + 1);
    }

    pub(crate) fn count_timeout(&self) {
        self.timeouts.set(self.timeouts.get() + 1);
    }

    pub(crate) fn count_tcp_fallback(&self) {
        self.tcp_fallbacks.set(self.tcp_fallbacks.get() + 1);
    }

    pub(crate) fn count_error_rcode(&self) {
        self.error_rcodes.set(self.error_rcodes.get() + 1);
    }

    pub(crate) fn count_backoff(&self, ms: u32) {
        self.backoff_ms.set(self.backoff_ms.get() + ms as u64);
    }

    pub(crate) fn count_cache_hit(&self) {
        self.cache_hits.set(self.cache_hits.get() + 1);
    }

    pub(crate) fn count_cache_miss(&self) {
        self.cache_misses.set(self.cache_misses.get() + 1);
    }

    pub(crate) fn count_stale_hit(&self) {
        self.stale_hits.set(self.stale_hits.get() + 1);
    }

    pub(crate) fn count_negative_hit(&self) {
        self.negative_hits.set(self.negative_hits.get() + 1);
    }

    pub(crate) fn count_budget_exhausted(&self) {
        self.budget_exhausted.set(self.budget_exhausted.get() + 1);
    }

    pub(crate) fn count_breaker_trip(&self) {
        self.breaker_trips.set(self.breaker_trips.get() + 1);
    }

    pub(crate) fn count_breaker_short_circuit(&self) {
        self.breaker_short_circuits.set(self.breaker_short_circuits.get() + 1);
    }

    pub(crate) fn count_poison_race(&self) {
        self.poison_races.set(self.poison_races.get() + 1);
    }

    pub(crate) fn count_poison_admitted(&self) {
        self.poison_admitted.set(self.poison_admitted.get() + 1);
    }

    pub(crate) fn count_poison_scrubbed(&self, records: u64) {
        self.poison_scrubbed.set(self.poison_scrubbed.get() + records);
    }

    /// A copy of the current counter values.
    pub fn snapshot(&self) -> ResolverStatsSnapshot {
        ResolverStatsSnapshot {
            udp_attempts: self.udp_attempts.get(),
            timeouts: self.timeouts.get(),
            tcp_fallbacks: self.tcp_fallbacks.get(),
            error_rcodes: self.error_rcodes.get(),
            backoff_ms: self.backoff_ms.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            stale_hits: self.stale_hits.get(),
            negative_hits: self.negative_hits.get(),
            budget_exhausted: self.budget_exhausted.get(),
            breaker_trips: self.breaker_trips.get(),
            breaker_short_circuits: self.breaker_short_circuits.get(),
            poison_races: self.poison_races.get(),
            poison_admitted: self.poison_admitted.get(),
            poison_scrubbed: self.poison_scrubbed.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff_ms(0), 50);
        assert_eq!(policy.backoff_ms(1), 100);
        assert_eq!(policy.backoff_ms(2), 200);
        assert_eq!(policy.backoff_ms(3), 400);
        assert_eq!(policy.backoff_ms(4), 800);
        assert_eq!(policy.backoff_ms(10), 800, "capped");
        assert_eq!(policy.backoff_ms(40), 800, "shift overflow capped");
    }

    #[test]
    fn health_ordering_is_stable_without_failures() {
        let health = HealthCache::new();
        let servers = vec![name("ns1.a.net"), name("ns2.a.net"), name("ns3.a.net")];
        assert_eq!(health.order(&servers), servers);
    }

    #[test]
    fn failing_server_sinks_in_ordering() {
        let health = HealthCache::new();
        let servers = vec![name("ns1.a.net"), name("ns2.a.net")];
        health.record_failure(&name("ns1.a.net"));
        health.record_failure(&name("ns1.a.net"));
        assert_eq!(
            health.order(&servers),
            vec![name("ns2.a.net"), name("ns1.a.net")]
        );
        // Successes decay the penalty back down.
        health.record_success(&name("ns1.a.net"));
        health.record_success(&name("ns1.a.net"));
        assert_eq!(health.penalty(&name("ns1.a.net")), 0);
        assert_eq!(health.order(&servers), servers);
        // ...and the fully recovered server is no longer tracked at all.
        assert_eq!(health.tracked_servers(), 0);
    }

    #[test]
    fn success_on_healthy_server_does_not_grow_cache() {
        let health = HealthCache::new();
        for i in 0..100 {
            health.record_success(&name(&format!("ns{i}.a.net")));
        }
        assert_eq!(health.tracked_servers(), 0);
        assert_eq!(health.penalty(&name("ns7.a.net")), 0);
    }

    #[test]
    fn entries_are_dropped_once_penalty_decays_to_zero() {
        let health = HealthCache::new();
        health.record_failure(&name("ns1.a.net"));
        health.record_failure(&name("ns1.a.net"));
        health.record_failure(&name("ns1.a.net"));
        assert_eq!(health.tracked_servers(), 1);
        health.record_success(&name("ns1.a.net")); // 3 → 1
        assert_eq!(health.tracked_servers(), 1);
        health.record_success(&name("ns1.a.net")); // 1 → 0: dropped
        assert_eq!(health.tracked_servers(), 0);
        // A dropped server behaves exactly like an unknown one.
        assert_eq!(health.penalty(&name("ns1.a.net")), 0);
    }

    #[test]
    fn stats_snapshot_tracks_counters() {
        let stats = ResolverStats::new();
        assert!(!stats.snapshot().degraded());
        stats.count_attempt();
        stats.count_timeout();
        stats.count_backoff(150);
        let snap = stats.snapshot();
        assert_eq!(snap.udp_attempts, 1);
        assert_eq!(snap.timeouts, 1);
        assert_eq!(snap.backoff_ms, 150);
        assert!(snap.degraded());
    }
}
