//! A DNSViz / DNSSEC-Debugger-style chain diagnosis (the tooling the
//! paper's §3 points administrators at): walk root → … → domain and
//! report, per zone, the keys found, the DS linkage, and the signature
//! state, with actionable advice for each failure mode the study
//! documents.

use std::fmt;

use dsec_authserver::Network;
use dsec_crypto::Algorithm;
use dsec_dnssec::validate::{covering_rrsigs, ValidationError};
use dsec_dnssec::{authenticate_dnskeys, ds_matches};
use dsec_wire::{DnskeyRdata, DsRdata, Message, Name, RData, Record, RrSet, RrType};

/// One DNSKEY as seen at a zone apex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyInfo {
    /// RFC 4034 key tag.
    pub tag: u16,
    /// Algorithm mnemonic.
    pub algorithm: String,
    /// SEP (KSK) bit set.
    pub is_ksk: bool,
}

/// The DS linkage state of one zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsLink {
    /// The root: anchored by the configured trust anchor.
    TrustAnchor {
        /// Whether the anchor matched a served KSK.
        matched: bool,
    },
    /// No DS at the parent: insecure delegation (the paper's "partial
    /// deployment" when the zone itself is signed).
    Absent,
    /// DS present and matching a served DNSKEY.
    Matched {
        /// The matched key tag.
        tag: u16,
    },
    /// DS present but matching nothing served — the copy/paste-error /
    /// hijack signature.
    Mismatched {
        /// Key tags the DS records reference.
        ds_tags: Vec<u16>,
    },
}

/// The DNSKEY RRset signature state of one zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignatureState {
    /// No DNSKEY published at all.
    Unsigned,
    /// Signed and currently valid; seconds until expiry.
    Valid {
        /// Seconds until the covering signature expires.
        expires_in: u32,
    },
    /// Signed but outside the validity window.
    Expired,
    /// Signed but the cryptography fails.
    Invalid,
    /// DNSKEYs present but no covering RRSIG.
    MissingRrsig,
}

/// Diagnosis of one zone on the chain.
#[derive(Debug, Clone)]
pub struct ZoneDiagnosis {
    /// The zone apex.
    pub zone: Name,
    /// Keys served at the apex.
    pub keys: Vec<KeyInfo>,
    /// DS linkage from the parent.
    pub ds_link: DsLink,
    /// Signature state of the DNSKEY RRset.
    pub signatures: SignatureState,
    /// Whether this link authenticates under the chain so far.
    pub link_ok: bool,
}

/// A whole-chain diagnosis.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// The diagnosed domain.
    pub target: Name,
    /// Per-zone reports, root first.
    pub zones: Vec<ZoneDiagnosis>,
    /// Overall verdict.
    pub verdict: crate::Security,
    /// Actionable advice, one line per finding.
    pub advice: Vec<String>,
}

impl Diagnosis {
    /// True when every link validates.
    pub fn is_secure(&self) -> bool {
        self.verdict.is_secure()
    }
}

/// Walks the delegation chain to `target` and diagnoses every link.
pub fn diagnose(
    network: &Network,
    trust_anchor: &[DsRdata],
    target: &Name,
    now: u32,
) -> Diagnosis {
    let mut zones = Vec::new();
    let mut advice = Vec::new();
    let mut verdict = crate::Security::Secure;
    let mut chain_broken = false;

    // The chain of zones: root, then each suffix of target.
    let mut apexes = vec![Name::root()];
    let labels = target.labels();
    for i in (0..labels.len()).rev() {
        apexes.push(
            Name::from_labels(labels[i..].to_vec()).expect("suffix of a valid name is valid"),
        );
    }

    let mut servers = network.root_hints();
    let mut parent_ds: Vec<DsRdata> = trust_anchor.to_vec();
    let mut is_root = true;

    for apex in apexes {
        let Some(resp) = query_any(network, &servers, &apex, RrType::Dnskey) else {
            advice.push(format!("{apex}: no nameserver answered"));
            verdict = crate::Security::Bogus(ValidationError::MissingDnskey);
            break;
        };

        // Is this apex actually a zone (or just a non-cut label)?
        let dnskey_records: Vec<Record> = resp
            .answers
            .iter()
            .filter(|r| r.rtype() == RrType::Dnskey)
            .cloned()
            .collect();
        let keys: Vec<KeyInfo> = dnskey_records
            .iter()
            .filter_map(|r| match &r.rdata {
                RData::Dnskey(k) => Some(key_info(k)),
                _ => None,
            })
            .collect();

        let sigs = covering_rrsigs(
            RrSet::new(
                resp.answers
                    .iter()
                    .filter(|r| r.rtype() == RrType::Rrsig)
                    .cloned()
                    .collect(),
            )
            .ok()
            .as_ref(),
            RrType::Dnskey,
        );

        let signatures = if dnskey_records.is_empty() {
            SignatureState::Unsigned
        } else if sigs.is_empty() {
            SignatureState::MissingRrsig
        } else {
            let best_expiry = sigs.iter().map(|s| s.expiration).max().unwrap_or(0);
            if best_expiry < now {
                SignatureState::Expired
            } else {
                SignatureState::Valid {
                    expires_in: best_expiry - now,
                }
            }
        };

        // DS linkage.
        let dnskeys: Vec<DnskeyRdata> = dnskey_records
            .iter()
            .filter_map(|r| match &r.rdata {
                RData::Dnskey(k) => Some(k.clone()),
                _ => None,
            })
            .collect();
        let matched_tag = parent_ds.iter().find_map(|ds| {
            dnskeys
                .iter()
                .find(|k| ds_matches(&apex, k, ds) == Some(true))
                .map(|k| k.key_tag())
        });
        let ds_link = if is_root {
            DsLink::TrustAnchor {
                matched: matched_tag.is_some(),
            }
        } else if parent_ds.is_empty() {
            DsLink::Absent
        } else {
            match matched_tag {
                Some(tag) => DsLink::Matched { tag },
                None => DsLink::Mismatched {
                    ds_tags: parent_ds.iter().map(|d| d.key_tag).collect(),
                },
            }
        };

        // Authenticate the link when a chain is still alive.
        let mut link_ok = false;
        if !chain_broken && !parent_ds.is_empty() && dnskey_records.is_empty() && !is_root {
            // A DS with no DNSKEY behind it: the domain is dark for
            // validators.
            verdict = crate::Security::Bogus(ValidationError::MissingDnskey);
            chain_broken = true;
            advice.push(format!(
                "{apex}: the parent publishes a DS but the zone serves no \
                 DNSKEY — validating resolvers will SERVFAIL; remove the DS \
                 or sign the zone"
            ));
        }
        if !chain_broken && !parent_ds.is_empty() && !dnskey_records.is_empty() {
            let rrset = RrSet::new(dnskey_records.clone()).expect("uniform DNSKEY set");
            match authenticate_dnskeys(&apex, &rrset, &sigs, &parent_ds, now) {
                Ok(_) => link_ok = true,
                Err(e) => {
                    verdict = crate::Security::Bogus(e);
                    chain_broken = true;
                }
            }
        } else if !chain_broken && parent_ds.is_empty()
            && matches!(verdict, crate::Security::Secure) {
                verdict = crate::Security::Insecure;
            }

        // Advice per finding.
        match (&ds_link, &signatures) {
            (DsLink::Absent, SignatureState::Valid { .. }) => advice.push(format!(
                "{apex}: zone is signed but the parent has no DS — partially \
                 deployed; upload the DS record via your registrar"
            )),
            (DsLink::Absent, SignatureState::Unsigned) => {}
            (DsLink::Mismatched { ds_tags }, _) => advice.push(format!(
                "{apex}: the parent DS (tags {ds_tags:?}) matches no served \
                 DNSKEY — validating resolvers will SERVFAIL; re-upload the \
                 correct DS (or investigate an unauthorized change)"
            )),
            (_, SignatureState::Expired) => advice.push(format!(
                "{apex}: DNSKEY signatures have expired — re-sign the zone"
            )),
            (_, SignatureState::MissingRrsig) => advice.push(format!(
                "{apex}: DNSKEYs are published but unsigned — sign the zone"
            )),
            _ => {}
        }

        zones.push(ZoneDiagnosis {
            zone: apex.clone(),
            keys,
            ds_link,
            signatures,
            link_ok,
        });
        is_root = false;

        if apex == *target {
            break;
        }

        // Fetch the referral for the next zone down: NS + DS at the cut.
        let next = &apexes_child(&apex, target);
        let Some(resp) = query_any(network, &servers, next, RrType::Ns) else {
            break;
        };
        let referral_ns: Vec<Name> = resp
            .answers
            .iter()
            .chain(resp.authorities.iter())
            .filter_map(|r| match &r.rdata {
                RData::Ns(h) if r.name == *next => Some(h.clone()),
                _ => None,
            })
            .collect();
        let Some(ds_resp) = query_any(network, &servers, next, RrType::Ds) else {
            break;
        };
        parent_ds = ds_resp
            .answers
            .iter()
            .filter_map(|r| match &r.rdata {
                RData::Ds(ds) => Some(ds.clone()),
                _ => None,
            })
            .collect();
        if !referral_ns.is_empty() {
            servers = referral_ns;
        }
    }

    if matches!(verdict, crate::Security::Secure)
        && zones.last().map(|z| z.keys.is_empty()).unwrap_or(true)
    {
        verdict = crate::Security::Insecure;
    }

    Diagnosis {
        target: target.clone(),
        zones,
        verdict,
        advice,
    }
}

/// The next apex below `current` on the way to `target`.
fn apexes_child(current: &Name, target: &Name) -> Name {
    let labels = target.labels();
    let next_len = current.label_count() + 1;
    Name::from_labels(labels[labels.len() - next_len..].to_vec())
        .expect("suffix of a valid name is valid")
}

fn key_info(k: &DnskeyRdata) -> KeyInfo {
    KeyInfo {
        tag: k.key_tag(),
        algorithm: Algorithm::from_number(k.algorithm).mnemonic(),
        is_ksk: k.is_ksk(),
    }
}

fn query_any(network: &Network, servers: &[Name], qname: &Name, rtype: RrType) -> Option<Message> {
    let query = Message::query(0, qname.clone(), rtype, true);
    servers.iter().find_map(|ns| network.query(ns, &query))
}

/// How a wrong answer got wrong — the three capture planes a chaos
/// campaign must tell apart when assigning blame.
///
/// `Hijacked` (registrar channel) and `Poisoned` (on-path) both hand the
/// user attacker-controlled records, but the fix lives with a different
/// party: the registrar's DS/NS authentication for the former, the
/// resolver operator's entropy/bailiwick hardening for the latter.
/// `Bogus` is the validator refusing to serve either kind of forgery —
/// an availability loss, not an integrity loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureKind {
    /// The answer matches the registrant's intended data.
    Clean,
    /// On-path capture: a forged response won the spoofing race and the
    /// resolver admitted it ([`Answer::poisoned`](crate::Answer)).
    Poisoned,
    /// Registrar-channel capture: the chain looks clean (or merely
    /// insecure) but the served records disagree with the registrant's
    /// authoritative data — a forged-DS/forged-NS takeover.
    Hijacked,
    /// The validator caught a broken chain and withheld the answer.
    Bogus,
}

impl CaptureKind {
    /// One-line explanation naming the responsible plane.
    pub fn explanation(&self) -> &'static str {
        match self {
            CaptureKind::Clean => "answer matches the registrant's data",
            CaptureKind::Poisoned => {
                "on-path capture: a forged response beat the resolver's \
                 entropy — harden txid/port/0x20, enable strict bailiwick"
            }
            CaptureKind::Hijacked => {
                "registrar-channel capture: served records diverge from the \
                 registrant's — audit the registrar's DS/NS change \
                 authentication"
            }
            CaptureKind::Bogus => {
                "validation failure: the chain is broken, the validator \
                 withheld the answer (availability loss, integrity intact)"
            }
        }
    }
}

impl fmt::Display for CaptureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            CaptureKind::Clean => "clean",
            CaptureKind::Poisoned => "poisoned",
            CaptureKind::Hijacked => "hijacked",
            CaptureKind::Bogus => "bogus",
        };
        write!(f, "{label}: {}", self.explanation())
    }
}

/// Classifies how `answer` relates to the registrant's intended records
/// (`expected`, when known — pass `None` to skip the hijack check).
///
/// Precedence: an admitted forgery is `Poisoned` regardless of what the
/// records happen to say; a bogus chain is the validator speaking; only
/// a clean-looking answer whose records diverge from `expected` is the
/// registrar-channel `Hijacked` signature.
pub fn capture_kind(answer: &crate::Answer, expected: Option<&[Record]>) -> CaptureKind {
    if answer.poisoned {
        return CaptureKind::Poisoned;
    }
    if matches!(answer.security, crate::Security::Bogus(_)) {
        return CaptureKind::Bogus;
    }
    if let Some(expected) = expected {
        let served: Vec<&Record> = answer
            .records
            .iter()
            .filter(|r| r.rtype() != RrType::Rrsig)
            .collect();
        let legit: Vec<&Record> = expected
            .iter()
            .filter(|r| r.rtype() != RrType::Rrsig)
            .collect();
        if served != legit {
            return CaptureKind::Hijacked;
        }
    }
    CaptureKind::Clean
}

impl fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "chain diagnosis for {}", self.target)?;
        for z in &self.zones {
            let link = match &z.ds_link {
                DsLink::TrustAnchor { matched: true } => "anchor ✓".to_string(),
                DsLink::TrustAnchor { matched: false } => "anchor ✗".to_string(),
                DsLink::Absent => "no DS (insecure delegation)".to_string(),
                DsLink::Matched { tag } => format!("DS → key {tag} ✓"),
                DsLink::Mismatched { ds_tags } => format!("DS tags {ds_tags:?} match NOTHING"),
            };
            let sig = match &z.signatures {
                SignatureState::Unsigned => "unsigned".to_string(),
                SignatureState::Valid { expires_in } => {
                    format!("signatures valid ({}d left)", expires_in / 86_400)
                }
                SignatureState::Expired => "signatures EXPIRED".to_string(),
                SignatureState::Invalid => "signatures INVALID".to_string(),
                SignatureState::MissingRrsig => "DNSKEY without RRSIG".to_string(),
            };
            writeln!(
                f,
                "  {:<24} {} keys; {}; {}{}",
                z.zone.to_string(),
                z.keys.len(),
                link,
                sig,
                if z.link_ok { "; link ok" } else { "" }
            )?;
        }
        writeln!(f, "verdict: {:?}", self.verdict)?;
        for a in &self.advice {
            writeln!(f, "  advice: {a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod capture_tests {
    use super::*;
    use crate::{Answer, Security};
    use dsec_wire::Rcode;

    fn answer(records: Vec<Record>, security: Security, poisoned: bool) -> Answer {
        Answer {
            records,
            rcode: Rcode::NoError,
            security,
            chain: Vec::new(),
            negative_ttl: None,
            poisoned,
        }
    }

    fn a_record(name: &str, ip: &str) -> Record {
        Record::new(
            Name::parse(name).unwrap(),
            300,
            RData::A(ip.parse().unwrap()),
        )
    }

    #[test]
    fn matching_records_are_clean() {
        let legit = vec![a_record("www.example.nl", "192.0.2.80")];
        let served = answer(legit.clone(), Security::Insecure, false);
        assert_eq!(capture_kind(&served, Some(&legit)), CaptureKind::Clean);
        assert_eq!(capture_kind(&served, None), CaptureKind::Clean);
    }

    #[test]
    fn poisoned_flag_wins_over_everything() {
        let legit = vec![a_record("www.example.nl", "192.0.2.80")];
        let served = answer(legit.clone(), Security::Insecure, true);
        assert_eq!(capture_kind(&served, Some(&legit)), CaptureKind::Poisoned);
    }

    #[test]
    fn diverging_records_are_the_hijack_signature() {
        let legit = vec![a_record("www.example.nl", "192.0.2.80")];
        let forged = vec![a_record("www.example.nl", "203.0.113.66")];
        let served = answer(forged, Security::Insecure, false);
        assert_eq!(capture_kind(&served, Some(&legit)), CaptureKind::Hijacked);
        // Without a baseline the divergence is invisible.
        let served = answer(vec![a_record("www.example.nl", "203.0.113.66")], Security::Insecure, false);
        assert_eq!(capture_kind(&served, None), CaptureKind::Clean);
    }

    #[test]
    fn bogus_chain_is_the_validator_speaking() {
        use dsec_dnssec::validate::ValidationError;
        let served = answer(
            Vec::new(),
            Security::Bogus(ValidationError::MissingRrsig),
            false,
        );
        assert_eq!(capture_kind(&served, None), CaptureKind::Bogus);
        // Each kind explains itself distinctly.
        for kind in [
            CaptureKind::Clean,
            CaptureKind::Poisoned,
            CaptureKind::Hijacked,
            CaptureKind::Bogus,
        ] {
            assert!(!kind.to_string().is_empty());
        }
    }
}
