//! A positive answer cache keyed by (qname, qtype) with TTL-based expiry
//! and an optional capacity bound.
//!
//! TTLs count in the same seconds as the simulation clock, so cached
//! entries age naturally as the simulated days advance. A bounded cache
//! ([`Cache::bounded`]) never holds more than `capacity` entries: when an
//! insert would exceed the bound, expired entries are evicted first, then
//! the oldest-inserted live entries until the cache fits. Long-running
//! query campaigns (the traffic plane) use this to keep resolver memory
//! proportional to the working set instead of the population.

use std::collections::HashMap;

use parking_lot::RwLock;

use dsec_wire::{Name, RrType};

use crate::Answer;

/// Default cap on a cached entry's lifetime, seconds (RFC 8767 spirit).
const MAX_TTL: u32 = 86_400;

#[derive(Debug, Clone)]
struct Entry {
    answer: Answer,
    expires_at: u32,
    /// Monotonic insertion sequence number, for oldest-first eviction.
    seq: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<(Name, u16), Entry>,
    next_seq: u64,
}

impl Inner {
    /// Expired-first, then oldest-entry eviction down to `capacity`.
    fn enforce(&mut self, capacity: usize, now: u32) -> usize {
        if self.entries.len() <= capacity {
            return 0;
        }
        let before = self.entries.len();
        self.entries.retain(|_, e| e.expires_at > now);
        let mut excess = self.entries.len().saturating_sub(capacity);
        if excess > 0 {
            // Oldest `excess` insertion sequence numbers go. Collecting
            // and sorting the keys is O(n log n) but eviction is rare:
            // `put` amortizes it by evicting in batches.
            let mut by_age: Vec<(u64, (Name, u16))> = self
                .entries
                .iter()
                .map(|(k, e)| (e.seq, k.clone()))
                .collect();
            by_age.sort_unstable_by_key(|entry| entry.0);
            for (_, key) in by_age.into_iter().take(excess) {
                self.entries.remove(&key);
                excess -= 1;
                if excess == 0 {
                    break;
                }
            }
        }
        before - self.entries.len()
    }
}

/// A thread-safe positive cache, optionally capacity-bounded.
#[derive(Debug)]
pub struct Cache {
    inner: RwLock<Inner>,
    capacity: usize,
}

impl Default for Cache {
    fn default() -> Self {
        Cache {
            inner: RwLock::new(Inner::default()),
            capacity: usize::MAX,
        }
    }
}

impl Cache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `capacity` entries (at least 1).
    pub fn bounded(capacity: usize) -> Self {
        Cache {
            inner: RwLock::new(Inner::default()),
            capacity: capacity.max(1),
        }
    }

    /// The capacity bound (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a live entry.
    pub fn get(&self, qname: &Name, qtype: RrType, now: u32) -> Option<Answer> {
        let key = (qname.to_canonical(), qtype.number());
        let inner = self.inner.read();
        let entry = inner.entries.get(&key)?;
        if entry.expires_at <= now {
            return None;
        }
        Some(entry.answer.clone())
    }

    /// Stores an answer; lifetime is the minimum record TTL, capped at one
    /// day. Negative and empty answers are cached for 60 seconds. On a
    /// bounded cache the insert never leaves more than `capacity` entries:
    /// expired ones are dropped first, then the oldest.
    pub fn put(&self, qname: &Name, qtype: RrType, answer: &Answer, now: u32) {
        let ttl = answer
            .records
            .iter()
            .map(|r| r.ttl)
            .min()
            .unwrap_or(60)
            .clamp(1, MAX_TTL);
        let key = (qname.to_canonical(), qtype.number());
        let mut inner = self.inner.write();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.entries.insert(
            key,
            Entry {
                answer: answer.clone(),
                expires_at: now.saturating_add(ttl),
                seq,
            },
        );
        let capacity = self.capacity;
        inner.enforce(capacity, now);
    }

    /// Drops expired entries; returns how many were evicted.
    pub fn evict_expired(&self, now: u32) -> usize {
        let mut inner = self.inner.write();
        let before = inner.entries.len();
        inner.entries.retain(|_, e| e.expires_at > now);
        before - inner.entries.len()
    }

    /// Evicts down to the capacity bound — expired entries first, then the
    /// oldest-inserted — and returns how many were dropped. A no-op on an
    /// unbounded or not-yet-full cache. The traffic driver calls this
    /// periodically so a shared cache stays bounded even between inserts.
    pub fn enforce_capacity(&self, now: u32) -> usize {
        if self.capacity == usize::MAX {
            return 0;
        }
        self.inner.write().enforce(self.capacity, now)
    }

    /// Number of entries (live or not-yet-evicted).
    pub fn len(&self) -> usize {
        self.inner.read().entries.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.read().entries.is_empty()
    }

    /// Removes everything.
    pub fn clear(&self) {
        self.inner.write().entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Security;
    use dsec_wire::{RData, Rcode, Record};

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn answer(ttl: u32) -> Answer {
        Answer {
            records: vec![Record::new(
                name("www.example.com"),
                ttl,
                RData::A("192.0.2.1".parse().unwrap()),
            )],
            rcode: Rcode::NoError,
            security: Security::Insecure,
            chain: Vec::new(),
        }
    }

    #[test]
    fn hit_within_ttl_miss_after() {
        let cache = Cache::new();
        cache.put(&name("www.example.com"), RrType::A, &answer(300), 1000);
        assert!(cache.get(&name("www.example.com"), RrType::A, 1299).is_some());
        assert!(cache.get(&name("www.example.com"), RrType::A, 1300).is_none());
    }

    #[test]
    fn key_includes_qtype_and_is_case_insensitive() {
        let cache = Cache::new();
        cache.put(&name("www.example.com"), RrType::A, &answer(300), 0);
        assert!(cache.get(&name("WWW.EXAMPLE.COM"), RrType::A, 10).is_some());
        assert!(cache.get(&name("www.example.com"), RrType::Aaaa, 10).is_none());
    }

    #[test]
    fn empty_answers_get_short_ttl() {
        let cache = Cache::new();
        let empty = Answer {
            records: Vec::new(),
            rcode: Rcode::NxDomain,
            security: Security::Insecure,
            chain: Vec::new(),
        };
        cache.put(&name("gone.example.com"), RrType::A, &empty, 0);
        assert!(cache.get(&name("gone.example.com"), RrType::A, 59).is_some());
        assert!(cache.get(&name("gone.example.com"), RrType::A, 61).is_none());
    }

    #[test]
    fn ttl_is_capped() {
        let cache = Cache::new();
        cache.put(&name("www.example.com"), RrType::A, &answer(10_000_000), 0);
        assert!(cache.get(&name("www.example.com"), RrType::A, 86_399).is_some());
        assert!(cache.get(&name("www.example.com"), RrType::A, 86_401).is_none());
    }

    #[test]
    fn eviction_and_clear() {
        let cache = Cache::new();
        cache.put(&name("a.example.com"), RrType::A, &answer(100), 0);
        cache.put(&name("b.example.com"), RrType::A, &answer(10_000), 0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evict_expired(5000), 1);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn bounded_cache_never_exceeds_capacity() {
        let cache = Cache::bounded(4);
        for i in 0..32 {
            cache.put(&name(&format!("d{i}.example.com")), RrType::A, &answer(300), 0);
            assert!(cache.len() <= 4, "len {} after insert {i}", cache.len());
        }
        assert_eq!(cache.capacity(), 4);
    }

    #[test]
    fn bounded_eviction_prefers_expired_over_live() {
        let cache = Cache::bounded(3);
        // Oldest entry, but the only live one at eviction time.
        cache.put(&name("live.example.com"), RrType::A, &answer(10_000), 0);
        cache.put(&name("old1.example.com"), RrType::A, &answer(100), 0);
        cache.put(&name("old2.example.com"), RrType::A, &answer(100), 0);
        // Both `old*` entries are expired at t=500; inserting a fourth
        // entry must drop them and keep the older-but-live entry.
        cache.put(&name("new.example.com"), RrType::A, &answer(300), 500);
        assert!(cache.get(&name("live.example.com"), RrType::A, 500).is_some());
        assert!(cache.get(&name("new.example.com"), RrType::A, 500).is_some());
        assert!(cache.get(&name("old1.example.com"), RrType::A, 500).is_none());
    }

    #[test]
    fn bounded_eviction_falls_back_to_oldest() {
        let cache = Cache::bounded(2);
        cache.put(&name("first.example.com"), RrType::A, &answer(10_000), 0);
        cache.put(&name("second.example.com"), RrType::A, &answer(10_000), 1);
        cache.put(&name("third.example.com"), RrType::A, &answer(10_000), 2);
        // Nothing expired, so the oldest insert (`first`) went.
        assert!(cache.get(&name("first.example.com"), RrType::A, 3).is_none());
        assert!(cache.get(&name("second.example.com"), RrType::A, 3).is_some());
        assert!(cache.get(&name("third.example.com"), RrType::A, 3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn enforce_capacity_is_callable_mid_stream() {
        let cache = Cache::bounded(8);
        for i in 0..8 {
            cache.put(&name(&format!("d{i}.example.com")), RrType::A, &answer(60), 0);
        }
        // All 8 fit; at t=100 they are all expired but still resident.
        assert_eq!(cache.len(), 8);
        // Under capacity → no-op even with expired entries.
        assert_eq!(cache.enforce_capacity(100), 0);
        cache.put(&name("fresh.example.com"), RrType::A, &answer(600), 100);
        // The insert itself enforced the bound (8 expired dropped).
        assert_eq!(cache.len(), 1);
        assert_eq!(Cache::new().enforce_capacity(100), 0);
    }
}
