//! A positive answer cache keyed by (qname, qtype) with TTL-based expiry.
//!
//! TTLs count in the same seconds as the simulation clock, so cached
//! entries age naturally as the simulated days advance.

use std::collections::HashMap;

use parking_lot::RwLock;

use dsec_wire::{Name, RrType};

use crate::Answer;

/// Default cap on a cached entry's lifetime, seconds (RFC 8767 spirit).
const MAX_TTL: u32 = 86_400;

#[derive(Debug, Clone)]
struct Entry {
    answer: Answer,
    expires_at: u32,
}

/// A thread-safe positive cache.
#[derive(Debug, Default)]
pub struct Cache {
    entries: RwLock<HashMap<(Name, u16), Entry>>,
}

impl Cache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a live entry.
    pub fn get(&self, qname: &Name, qtype: RrType, now: u32) -> Option<Answer> {
        let key = (qname.to_canonical(), qtype.number());
        let entries = self.entries.read();
        let entry = entries.get(&key)?;
        if entry.expires_at <= now {
            return None;
        }
        Some(entry.answer.clone())
    }

    /// Stores an answer; lifetime is the minimum record TTL, capped at one
    /// day. Negative and empty answers are cached for 60 seconds.
    pub fn put(&self, qname: &Name, qtype: RrType, answer: &Answer, now: u32) {
        let ttl = answer
            .records
            .iter()
            .map(|r| r.ttl)
            .min()
            .unwrap_or(60)
            .clamp(1, MAX_TTL);
        let key = (qname.to_canonical(), qtype.number());
        self.entries.write().insert(
            key,
            Entry {
                answer: answer.clone(),
                expires_at: now.saturating_add(ttl),
            },
        );
    }

    /// Drops expired entries; returns how many were evicted.
    pub fn evict_expired(&self, now: u32) -> usize {
        let mut entries = self.entries.write();
        let before = entries.len();
        entries.retain(|_, e| e.expires_at > now);
        before - entries.len()
    }

    /// Number of entries (live or not-yet-evicted).
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Removes everything.
    pub fn clear(&self) {
        self.entries.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Security;
    use dsec_wire::{RData, Rcode, Record};

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn answer(ttl: u32) -> Answer {
        Answer {
            records: vec![Record::new(
                name("www.example.com"),
                ttl,
                RData::A("192.0.2.1".parse().unwrap()),
            )],
            rcode: Rcode::NoError,
            security: Security::Insecure,
            chain: Vec::new(),
        }
    }

    #[test]
    fn hit_within_ttl_miss_after() {
        let cache = Cache::new();
        cache.put(&name("www.example.com"), RrType::A, &answer(300), 1000);
        assert!(cache.get(&name("www.example.com"), RrType::A, 1299).is_some());
        assert!(cache.get(&name("www.example.com"), RrType::A, 1300).is_none());
    }

    #[test]
    fn key_includes_qtype_and_is_case_insensitive() {
        let cache = Cache::new();
        cache.put(&name("www.example.com"), RrType::A, &answer(300), 0);
        assert!(cache.get(&name("WWW.EXAMPLE.COM"), RrType::A, 10).is_some());
        assert!(cache.get(&name("www.example.com"), RrType::Aaaa, 10).is_none());
    }

    #[test]
    fn empty_answers_get_short_ttl() {
        let cache = Cache::new();
        let empty = Answer {
            records: Vec::new(),
            rcode: Rcode::NxDomain,
            security: Security::Insecure,
            chain: Vec::new(),
        };
        cache.put(&name("gone.example.com"), RrType::A, &empty, 0);
        assert!(cache.get(&name("gone.example.com"), RrType::A, 59).is_some());
        assert!(cache.get(&name("gone.example.com"), RrType::A, 61).is_none());
    }

    #[test]
    fn ttl_is_capped() {
        let cache = Cache::new();
        cache.put(&name("www.example.com"), RrType::A, &answer(10_000_000), 0);
        assert!(cache.get(&name("www.example.com"), RrType::A, 86_399).is_some());
        assert!(cache.get(&name("www.example.com"), RrType::A, 86_401).is_none());
    }

    #[test]
    fn eviction_and_clear() {
        let cache = Cache::new();
        cache.put(&name("a.example.com"), RrType::A, &answer(100), 0);
        cache.put(&name("b.example.com"), RrType::A, &answer(10_000), 0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evict_expired(5000), 1);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }
}
