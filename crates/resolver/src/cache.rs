//! A positive answer cache keyed by (qname, qtype) with TTL-based expiry
//! and an optional capacity bound — lock-striped for contention-free
//! multi-worker access.
//!
//! TTLs count in the same seconds as the simulation clock, so cached
//! entries age naturally as the simulated days advance. A bounded cache
//! ([`Cache::bounded`]) never holds more than `capacity` entries: when an
//! insert would exceed the bound, expired entries are evicted first, then
//! the oldest-inserted live entries until the cache fits. Long-running
//! query campaigns (the traffic plane) use this to keep resolver memory
//! proportional to the working set instead of the population.
//!
//! ## Concurrency
//!
//! Entries live in N independently locked shards; a key's shard is chosen
//! by [`name_hash64`], so two workers touching different names almost
//! never contend. The capacity bound is enforced *per shard* (each shard
//! holds at most `capacity / N` entries, expired-first/oldest-next
//! eviction within the shard), which keeps eviction decisions local to
//! one lock while still bounding the whole cache by `capacity`. Small
//! caches (below [`STRIPE_THRESHOLD`]) use a single shard so the bound
//! and eviction order are exact — the multi-shard layout is a throughput
//! optimization for caches big enough that per-shard capacity is
//! meaningful.
//!
//! Keys are interned: the cache owns a [`NameInterner`] and exposes
//! [`Cache::key_of`], so repeat lookups of the same name hash a `u32`
//! instead of re-hashing label bytes, and callers that plan queries ahead
//! (the traffic driver) can precompute a [`CacheKey`] once per planned
//! query and skip name handling entirely on the hot path. Entries hold
//! `Arc<Answer>`, so a hit is a refcount bump under a read lock — the
//! deep copy of the old single-lock design is gone from the critical
//! section (and, for [`Cache::get_shared`] callers, gone entirely).

use std::sync::Arc;

use parking_lot::RwLock;

use dsec_wire::{name_hash64, FnvHashMap, Name, NameId, NameInterner, RrType};

use crate::Answer;

/// Default cap on a cached entry's lifetime, seconds (RFC 8767 spirit).
const MAX_TTL: u32 = 86_400;

/// Cap on a negative entry's lifetime, seconds (RFC 2308 §5 recommends
/// 1–3 hours; we take the upper bound).
pub const MAX_NEGATIVE_TTL: u32 = 10_800;

/// Negative/empty answers with no SOA-derived TTL fall back to this.
const DEFAULT_NEGATIVE_TTL: u32 = 60;

/// Caches bounded below this capacity use a single shard, keeping the
/// exact global eviction order of the old single-lock design; at or
/// above it, per-shard capacity is large enough for striping to make
/// sense.
pub const STRIPE_THRESHOLD: usize = 256;

/// Shard count used by striped caches (unbounded or large-capacity).
const DEFAULT_SHARDS: usize = 16;

/// A precomputed cache key: the interned qname, the qtype, and the shard
/// the pair lives in. Only meaningful to the [`Cache`] that issued it
/// (ids come from that cache's interner).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKey {
    id: NameId,
    qtype: u16,
    shard: u32,
}

#[derive(Debug, Clone)]
struct Entry {
    answer: Arc<Answer>,
    expires_at: u32,
    /// Monotonic insertion sequence number, for oldest-first eviction.
    seq: u64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: FnvHashMap<(u32, u16), Entry>,
    next_seq: u64,
}

impl Shard {
    /// Expired-first, then oldest-entry eviction down to `capacity`.
    /// Entries still inside their serve-stale horizon (`expires_at +
    /// max_stale > now`) count as live for the expiry sweep, so a
    /// bounded cache keeps stale-servable entries around unless the
    /// capacity bound forces the oldest out.
    fn enforce(&mut self, capacity: usize, now: u32, max_stale: u32) -> usize {
        if self.entries.len() <= capacity {
            return 0;
        }
        let before = self.entries.len();
        self.entries
            .retain(|_, e| e.expires_at.saturating_add(max_stale) > now);
        let mut excess = self.entries.len().saturating_sub(capacity);
        if excess > 0 {
            // Oldest `excess` insertion sequence numbers go. Collecting
            // and sorting the keys is O(n log n) but eviction is rare:
            // `put` amortizes it by evicting in batches.
            let mut by_age: Vec<(u64, (u32, u16))> = self
                .entries
                .iter()
                .map(|(k, e)| (e.seq, *k))
                .collect();
            by_age.sort_unstable_by_key(|entry| entry.0);
            for (_, key) in by_age.into_iter().take(excess) {
                self.entries.remove(&key);
                excess -= 1;
                if excess == 0 {
                    break;
                }
            }
        }
        before - self.entries.len()
    }
}

/// A thread-safe, lock-striped positive cache, optionally
/// capacity-bounded. See the module docs for the sharding model.
#[derive(Debug)]
pub struct Cache {
    shards: Vec<RwLock<Shard>>,
    capacity: usize,
    per_shard_capacity: usize,
    interner: NameInterner,
    /// Serve-stale horizon (RFC 8767): how long past expiry an entry
    /// stays readable via [`Cache::get_stale`]. 0 disables serve-stale
    /// and restores strict at-expiry eviction.
    max_stale: u32,
}

impl Default for Cache {
    fn default() -> Self {
        Self::with_shards(usize::MAX, DEFAULT_SHARDS)
    }
}

impl Cache {
    /// An empty, unbounded cache ([`DEFAULT_SHARDS`]-way striped).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `capacity` entries (at least 1).
    /// Capacities below [`STRIPE_THRESHOLD`] get a single shard (exact
    /// bound and eviction order); larger ones are striped.
    pub fn bounded(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = if capacity < STRIPE_THRESHOLD { 1 } else { DEFAULT_SHARDS };
        Self::with_shards(capacity, shards)
    }

    /// An empty cache with an explicit shard count (mostly for tests that
    /// pin down striped behavior). `shards` is clamped to at least 1; the
    /// per-shard bound is `capacity / shards`, at least 1.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.max(1);
        let per_shard_capacity = if capacity == usize::MAX {
            usize::MAX
        } else {
            (capacity / shards).max(1)
        };
        Cache {
            shards: (0..shards).map(|_| RwLock::new(Shard::default())).collect(),
            capacity,
            per_shard_capacity,
            interner: NameInterner::new(),
            max_stale: 0,
        }
    }

    /// Sets the serve-stale horizon, in seconds past expiry (RFC 8767).
    /// Expired entries within the horizon survive expiry sweeps and are
    /// readable through [`Cache::get_stale`]; 0 (the default) disables
    /// serve-stale entirely.
    pub fn with_max_stale(mut self, max_stale: u32) -> Self {
        self.max_stale = max_stale;
        self
    }

    /// The configured serve-stale horizon, seconds (0 = disabled).
    pub fn max_stale(&self) -> u32 {
        self.max_stale
    }

    /// The capacity bound (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards the key space is striped over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Interns `qname` and returns the precomputed key for
    /// (`qname`, `qtype`). The first call for a name pays one label hash
    /// and a possible interner insert; afterwards the key is a couple of
    /// integer operations. Keys from one cache must not be used on
    /// another.
    pub fn key_of(&self, qname: &Name, qtype: RrType) -> CacheKey {
        let hash = name_hash64(qname);
        let id = self.interner.intern(qname);
        let qtype = qtype.number();
        CacheKey {
            id,
            qtype,
            shard: ((hash ^ (qtype as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                % self.shards.len() as u64) as u32,
        }
    }

    /// Looks up a live entry by precomputed key, sharing the stored
    /// answer (no deep copy).
    pub fn get_shared(&self, key: CacheKey, now: u32) -> Option<Arc<Answer>> {
        let shard = self.shards[key.shard as usize].read();
        let entry = shard.entries.get(&(key.id.raw(), key.qtype))?;
        if entry.expires_at <= now {
            return None;
        }
        Some(Arc::clone(&entry.answer))
    }

    /// Looks up an entry that may be *expired* but is still within the
    /// serve-stale horizon (`expires_at + max_stale > now`). Fresh
    /// entries qualify too, so a caller falling back after a failed
    /// refresh never loses a race against a concurrent insert. Returns
    /// `None` when serve-stale is disabled (`max_stale == 0`) and the
    /// entry is expired, or when the entry is past the horizon — a
    /// stale read never resurrects anything beyond `max_stale`.
    pub fn get_stale(&self, key: CacheKey, now: u32) -> Option<Arc<Answer>> {
        let shard = self.shards[key.shard as usize].read();
        let entry = shard.entries.get(&(key.id.raw(), key.qtype))?;
        if entry.expires_at.saturating_add(self.max_stale) <= now {
            return None;
        }
        Some(Arc::clone(&entry.answer))
    }

    /// Looks up a live entry (compat wrapper: interns the name and deep-
    /// copies the answer; hot paths should use [`Cache::key_of`] +
    /// [`Cache::get_shared`]).
    pub fn get(&self, qname: &Name, qtype: RrType, now: u32) -> Option<Answer> {
        self.get_shared(self.key_of(qname, qtype), now)
            .map(|answer| (*answer).clone())
    }

    /// Stores an answer under a precomputed key; lifetime is the minimum
    /// record TTL, capped at one day. Negative and empty answers are
    /// cached under the RFC 2308 TTL — the SOA-minimum-derived
    /// [`Answer::negative_ttl`] when the resolution captured one, capped
    /// at [`MAX_NEGATIVE_TTL`], else 60 seconds. On a bounded cache the
    /// insert never leaves more than the shard's slice of `capacity` in
    /// the shard: expired entries are dropped first, then the oldest.
    pub fn put_shared(&self, key: CacheKey, answer: &Arc<Answer>, now: u32) {
        let ttl = match answer.records.iter().map(|r| r.ttl).min() {
            Some(ttl) => ttl.clamp(1, MAX_TTL),
            None => answer
                .negative_ttl
                .unwrap_or(DEFAULT_NEGATIVE_TTL)
                .clamp(1, MAX_NEGATIVE_TTL),
        };
        let per_shard_capacity = self.per_shard_capacity;
        let mut shard = self.shards[key.shard as usize].write();
        let seq = shard.next_seq;
        shard.next_seq += 1;
        shard.entries.insert(
            (key.id.raw(), key.qtype),
            Entry {
                answer: Arc::clone(answer),
                expires_at: now.saturating_add(ttl),
                seq,
            },
        );
        shard.enforce(per_shard_capacity, now, self.max_stale);
    }

    /// Stores an answer (compat wrapper over [`Cache::put_shared`]; one
    /// deep copy to move the answer behind an `Arc`).
    pub fn put(&self, qname: &Name, qtype: RrType, answer: &Answer, now: u32) {
        self.put_shared(self.key_of(qname, qtype), &Arc::new(answer.clone()), now);
    }

    /// Drops entries past their serve-stale horizon (plain expiry when
    /// `max_stale` is 0); returns how many were evicted. Walks the
    /// shards one at a time — no global lock.
    pub fn evict_expired(&self, now: u32) -> usize {
        let max_stale = self.max_stale;
        self.shards
            .iter()
            .map(|shard| {
                let mut shard = shard.write();
                let before = shard.entries.len();
                shard
                    .entries
                    .retain(|_, e| e.expires_at.saturating_add(max_stale) > now);
                before - shard.entries.len()
            })
            .sum()
    }

    /// Evicts down to the capacity bound — expired entries first, then
    /// the oldest-inserted, per shard — and returns how many were
    /// dropped. A no-op on an unbounded or not-yet-full cache. The
    /// traffic driver calls this periodically so a shared cache stays
    /// bounded even between inserts. Shards are enforced one lock at a
    /// time; concurrent readers of other shards are never blocked.
    pub fn enforce_capacity(&self, now: u32) -> usize {
        if self.capacity == usize::MAX {
            return 0;
        }
        self.shards
            .iter()
            .map(|shard| {
                // Shared-lock probe first: a shard at or under its bound
                // has nothing to evict (exactly `Shard::enforce`'s own
                // early-out), and the read lock coexists with concurrent
                // lookups where the old unconditional write lock
                // serialized every worker behind the sweep. `put_shared`
                // re-enforces under its own write lock, so a racing
                // insert between the probe and here is still bounded.
                if shard.read().entries.len() <= self.per_shard_capacity {
                    return 0;
                }
                shard.write().enforce(self.per_shard_capacity, now, self.max_stale)
            })
            .sum()
    }

    /// Number of entries (live or not-yet-evicted), summed shard by
    /// shard.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|shard| shard.read().entries.len()).sum()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|shard| shard.read().entries.is_empty())
    }

    /// Removes every entry (interned ids remain valid).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().entries.clear();
        }
    }

    /// Evicts every entry whose qname is at/under `origin`, returning how
    /// many were dropped. This is the subtree flush strict-bailiwick
    /// hygiene and RFC 5011 re-priming call for: after a trust-anchor
    /// change (or a detected forgery flood) nothing signed under the old
    /// regime may keep being served from cache. Flushing at the root
    /// empties the cache. Shards are swept one write lock at a time.
    pub fn flush_origin(&self, origin: &Name) -> usize {
        if origin.is_root() {
            let flushed = self.len();
            self.clear();
            return flushed;
        }
        self.shards
            .iter()
            .map(|shard| {
                let mut shard = shard.write();
                let before = shard.entries.len();
                shard.entries.retain(|(raw, _), _| {
                    !self
                        .interner
                        .resolve(NameId::from_raw(*raw))
                        .map(|name| name.is_subdomain_of(origin))
                        .unwrap_or(false)
                });
                before - shard.entries.len()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Security;
    use dsec_wire::{RData, Rcode, Record};

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn answer(ttl: u32) -> Answer {
        Answer {
            records: vec![Record::new(
                name("www.example.com"),
                ttl,
                RData::A("192.0.2.1".parse().unwrap()),
            )],
            rcode: Rcode::NoError,
            security: Security::Insecure,
            chain: Vec::new(),
            negative_ttl: None,
            poisoned: false,
        }
    }

    fn negative(negative_ttl: Option<u32>) -> Answer {
        Answer {
            records: Vec::new(),
            rcode: Rcode::NxDomain,
            security: Security::Insecure,
            chain: Vec::new(),
            negative_ttl,
            poisoned: false,
        }
    }

    #[test]
    fn hit_within_ttl_miss_after() {
        let cache = Cache::new();
        cache.put(&name("www.example.com"), RrType::A, &answer(300), 1000);
        assert!(cache.get(&name("www.example.com"), RrType::A, 1299).is_some());
        assert!(cache.get(&name("www.example.com"), RrType::A, 1300).is_none());
    }

    #[test]
    fn key_includes_qtype_and_is_case_insensitive() {
        let cache = Cache::new();
        cache.put(&name("www.example.com"), RrType::A, &answer(300), 0);
        assert!(cache.get(&name("WWW.EXAMPLE.COM"), RrType::A, 10).is_some());
        assert!(cache.get(&name("www.example.com"), RrType::Aaaa, 10).is_none());
        assert_eq!(
            cache.key_of(&name("WWW.EXAMPLE.COM"), RrType::A),
            cache.key_of(&name("www.example.com"), RrType::A),
        );
    }

    #[test]
    fn empty_answers_get_short_ttl() {
        let cache = Cache::new();
        cache.put(&name("gone.example.com"), RrType::A, &negative(None), 0);
        assert!(cache.get(&name("gone.example.com"), RrType::A, 59).is_some());
        assert!(cache.get(&name("gone.example.com"), RrType::A, 61).is_none());
    }

    #[test]
    fn negative_answers_use_soa_minimum_ttl() {
        let cache = Cache::new();
        cache.put(&name("gone.example.com"), RrType::A, &negative(Some(300)), 0);
        assert!(cache.get(&name("gone.example.com"), RrType::A, 299).is_some());
        assert!(cache.get(&name("gone.example.com"), RrType::A, 300).is_none());
        // RFC 2308 cap: an absurd SOA minimum is clamped to 3 hours.
        cache.put(&name("huge.example.com"), RrType::A, &negative(Some(1_000_000)), 0);
        assert!(cache.get(&name("huge.example.com"), RrType::A, MAX_NEGATIVE_TTL - 1).is_some());
        assert!(cache.get(&name("huge.example.com"), RrType::A, MAX_NEGATIVE_TTL).is_none());
    }

    #[test]
    fn stale_reads_only_within_horizon() {
        let cache = Cache::bounded(16).with_max_stale(600);
        let key = cache.key_of(&name("www.example.com"), RrType::A);
        cache.put_shared(key, &Arc::new(answer(300)), 0);
        // Fresh: both paths hit.
        assert!(cache.get_shared(key, 299).is_some());
        assert!(cache.get_stale(key, 299).is_some());
        // Expired but within max_stale: only the stale path hits.
        assert!(cache.get_shared(key, 500).is_none());
        assert!(cache.get_stale(key, 500).is_some());
        // Past expires_at + max_stale: gone for good.
        assert!(cache.get_stale(key, 900).is_none());
    }

    #[test]
    fn zero_max_stale_disables_stale_reads() {
        let cache = Cache::new();
        let key = cache.key_of(&name("www.example.com"), RrType::A);
        cache.put_shared(key, &Arc::new(answer(300)), 0);
        assert!(cache.get_stale(key, 299).is_some(), "fresh still readable");
        assert!(cache.get_stale(key, 300).is_none());
    }

    #[test]
    fn expiry_sweep_respects_stale_horizon() {
        let cache = Cache::bounded(16).with_max_stale(600);
        let key = cache.key_of(&name("www.example.com"), RrType::A);
        cache.put_shared(key, &Arc::new(answer(300)), 0);
        assert_eq!(cache.evict_expired(500), 0, "stale-servable entry survives");
        assert!(cache.get_stale(key, 500).is_some());
        assert_eq!(cache.evict_expired(901), 1, "past horizon it goes");
        assert!(cache.get_stale(key, 901).is_none());
    }

    #[test]
    fn ttl_is_capped() {
        let cache = Cache::new();
        cache.put(&name("www.example.com"), RrType::A, &answer(10_000_000), 0);
        assert!(cache.get(&name("www.example.com"), RrType::A, 86_399).is_some());
        assert!(cache.get(&name("www.example.com"), RrType::A, 86_401).is_none());
    }

    #[test]
    fn eviction_and_clear() {
        let cache = Cache::new();
        cache.put(&name("a.example.com"), RrType::A, &answer(100), 0);
        cache.put(&name("b.example.com"), RrType::A, &answer(10_000), 0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evict_expired(5000), 1);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn bounded_cache_never_exceeds_capacity() {
        let cache = Cache::bounded(4);
        assert_eq!(cache.shard_count(), 1, "small bound stays single-shard");
        for i in 0..32 {
            cache.put(&name(&format!("d{i}.example.com")), RrType::A, &answer(300), 0);
            assert!(cache.len() <= 4, "len {} after insert {i}", cache.len());
        }
        assert_eq!(cache.capacity(), 4);
    }

    #[test]
    fn bounded_eviction_prefers_expired_over_live() {
        let cache = Cache::bounded(3);
        // Oldest entry, but the only live one at eviction time.
        cache.put(&name("live.example.com"), RrType::A, &answer(10_000), 0);
        cache.put(&name("old1.example.com"), RrType::A, &answer(100), 0);
        cache.put(&name("old2.example.com"), RrType::A, &answer(100), 0);
        // Both `old*` entries are expired at t=500; inserting a fourth
        // entry must drop them and keep the older-but-live entry.
        cache.put(&name("new.example.com"), RrType::A, &answer(300), 500);
        assert!(cache.get(&name("live.example.com"), RrType::A, 500).is_some());
        assert!(cache.get(&name("new.example.com"), RrType::A, 500).is_some());
        assert!(cache.get(&name("old1.example.com"), RrType::A, 500).is_none());
    }

    #[test]
    fn bounded_eviction_falls_back_to_oldest() {
        let cache = Cache::bounded(2);
        cache.put(&name("first.example.com"), RrType::A, &answer(10_000), 0);
        cache.put(&name("second.example.com"), RrType::A, &answer(10_000), 1);
        cache.put(&name("third.example.com"), RrType::A, &answer(10_000), 2);
        // Nothing expired, so the oldest insert (`first`) went.
        assert!(cache.get(&name("first.example.com"), RrType::A, 3).is_none());
        assert!(cache.get(&name("second.example.com"), RrType::A, 3).is_some());
        assert!(cache.get(&name("third.example.com"), RrType::A, 3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn enforce_capacity_is_callable_mid_stream() {
        let cache = Cache::bounded(8);
        for i in 0..8 {
            cache.put(&name(&format!("d{i}.example.com")), RrType::A, &answer(60), 0);
        }
        // All 8 fit; at t=100 they are all expired but still resident.
        assert_eq!(cache.len(), 8);
        // Under capacity → no-op even with expired entries.
        assert_eq!(cache.enforce_capacity(100), 0);
        cache.put(&name("fresh.example.com"), RrType::A, &answer(600), 100);
        // The insert itself enforced the bound (8 expired dropped).
        assert_eq!(cache.len(), 1);
        assert_eq!(Cache::new().enforce_capacity(100), 0);
    }

    #[test]
    fn large_bounds_are_striped() {
        let cache = Cache::bounded(STRIPE_THRESHOLD);
        assert_eq!(cache.shard_count(), 16);
        assert_eq!(Cache::new().shard_count(), 16, "unbounded is striped too");
    }

    #[test]
    fn striped_capacity_bound_holds_under_concurrent_insert() {
        let cache = Cache::with_shards(1024, 16);
        std::thread::scope(|scope| {
            for worker in 0..8 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..500 {
                        let qname = name(&format!("w{worker}-d{i}.example.com"));
                        cache.put(&qname, RrType::A, &answer(600), 0);
                        assert!(cache.len() <= 1024, "bound violated mid-insert");
                    }
                });
            }
        });
        assert!(cache.len() <= 1024, "final len {} over bound", cache.len());
        // Plenty was inserted: the shards actually filled up.
        assert!(cache.len() >= 1024 / 2, "final len {} suspiciously small", cache.len());
    }

    #[test]
    fn striped_eviction_prefers_expired_within_each_shard() {
        // 4 shards × 16 per-shard capacity. Flood with expired entries,
        // then insert a handful of live ones late: every live insert
        // overflows its shard, and the expired residents must go first.
        let cache = Cache::with_shards(64, 4);
        for i in 0..120 {
            cache.put(&name(&format!("stale{i}.example.com")), RrType::A, &answer(100), 0);
        }
        let live: Vec<Name> = (0..8).map(|i| name(&format!("live{i}.example.com"))).collect();
        for qname in &live {
            cache.put(qname, RrType::A, &answer(600), 500);
        }
        for qname in &live {
            assert!(
                cache.get(qname, RrType::A, 500).is_some(),
                "{qname} evicted while expired entries remained in its shard"
            );
        }
        assert!(cache.len() <= 64);
    }

    #[test]
    fn striped_and_single_shard_agree_on_hits() {
        // Same deterministic workload against a 1-shard and a 16-shard
        // cache with capacity above the working set: every get must
        // agree, so a resolver's hit/miss counters are identical no
        // matter the shard layout.
        let single = Cache::with_shards(100_000, 1);
        let striped = Cache::with_shards(100_000, 16);
        let mut hits = 0u64;
        let mut state = 0x9E37_79B9u64;
        for step in 0..4_000u32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let domain = name(&format!("d{}.example.com", state % 257));
            let qtype = if state & 1 == 0 { RrType::A } else { RrType::Aaaa };
            let now = step / 4;
            let (a, b) = (single.get(&domain, qtype, now), striped.get(&domain, qtype, now));
            assert_eq!(a.is_some(), b.is_some(), "hit/miss diverged at step {step}");
            if a.is_some() {
                hits += 1;
            } else {
                let fresh = answer(120);
                single.put(&domain, qtype, &fresh, now);
                striped.put(&domain, qtype, &fresh, now);
            }
        }
        assert!(hits > 0, "workload produced no hits at all");
        assert_eq!(single.len(), striped.len());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

            /// A stale read never resurrects an entry past its
            /// `expires_at + max_stale` horizon, for any TTL, horizon,
            /// and probe time — and within the horizon, stale reads are
            /// a superset of fresh reads.
            #[test]
            fn stale_reads_never_outlive_max_stale(
                ttl in 1u32..100_000,
                max_stale in 0u32..100_000,
                inserted_at in 0u32..1_000_000,
                probe_offset in 0u32..400_000,
            ) {
                let cache = Cache::bounded(16).with_max_stale(max_stale);
                let key = cache.key_of(&name("p.example.com"), RrType::A);
                cache.put_shared(key, &Arc::new(answer(ttl)), inserted_at);
                let expires_at = inserted_at
                    .saturating_add(ttl.clamp(1, 86_400));
                let now = inserted_at.saturating_add(probe_offset);
                let stale = cache.get_stale(key, now);
                let fresh = cache.get_shared(key, now);
                if now >= expires_at.saturating_add(max_stale) {
                    prop_assert!(stale.is_none(), "served past the stale horizon");
                }
                if fresh.is_some() {
                    prop_assert!(stale.is_some(), "stale path lost a fresh entry");
                }
                // Sweeping at `now` never removes what get_stale would
                // still serve.
                let served_before = cache.get_stale(key, now).is_some();
                cache.evict_expired(now);
                prop_assert_eq!(cache.get_stale(key, now).is_some(), served_before);
            }

            /// After a trust-anchor change under `origin`, flushing the
            /// subtree evicts *exactly* the entries at or below it —
            /// no stale-signed entry survives, and nothing outside the
            /// subtree is touched — for any mix of cached names.
            #[test]
            fn flush_origin_evicts_exactly_the_subtree(
                picks in proptest::collection::vec(0usize..6, 1..24),
            ) {
                let cache = Cache::new();
                let pool = [
                    "example.com",
                    "www.example.com",
                    "a.b.example.com",
                    "example.net",
                    "www.example.net",
                    "com",
                ];
                let origin = name("example.com");
                let planted: Vec<(Name, RrType)> = picks
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| {
                        let qtype = if i % 2 == 0 { RrType::A } else { RrType::Aaaa };
                        (name(pool[p]), qtype)
                    })
                    .collect();
                for (qname, qtype) in &planted {
                    cache.put(qname, *qtype, &answer(600), 0);
                }
                let before = cache.len();
                let flushed = cache.flush_origin(&origin);
                prop_assert_eq!(cache.len() + flushed, before, "flush lost count");
                for (qname, qtype) in &planted {
                    let hit = cache.get(qname, *qtype, 0).is_some();
                    if qname.is_subdomain_of(&origin) {
                        prop_assert!(!hit, "stale entry {qname} survived the flush");
                    } else {
                        prop_assert!(hit, "outside entry {qname} was evicted");
                    }
                }
            }

            /// Negative-cache TTLs are clamped to the SOA minimum the
            /// resolution captured, never exceeding the RFC 2308 cap.
            #[test]
            fn negative_ttls_clamp_to_soa_minimum(
                soa_minimum in 0u32..200_000,
                probe in 0u32..200_000,
            ) {
                let cache = Cache::new();
                let key = cache.key_of(&name("n.example.com"), RrType::A);
                cache.put_shared(key, &Arc::new(negative(Some(soa_minimum))), 0);
                let effective = soa_minimum.clamp(1, MAX_NEGATIVE_TTL);
                prop_assert_eq!(
                    cache.get_shared(key, probe).is_some(),
                    probe < effective,
                    "negative entry lifetime must be exactly min(SOA minimum, {})",
                    MAX_NEGATIVE_TTL
                );
            }
        }
    }

    #[test]
    fn shared_answers_are_not_deep_copied() {
        let cache = Cache::new();
        let key = cache.key_of(&name("www.example.com"), RrType::A);
        cache.put_shared(key, &Arc::new(answer(300)), 0);
        let first = cache.get_shared(key, 10).unwrap();
        let second = cache.get_shared(key, 10).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "hits share one allocation");
        assert!(cache.get_shared(key, 301).is_none(), "TTL still applies");
    }
}
