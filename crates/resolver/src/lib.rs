//! # dsec-resolver — a validating iterative resolver
//!
//! Walks the delegation tree from the configured root hints over a
//! [`dsec_authserver::Network`], maintaining the DNSSEC chain of trust from
//! a configured trust anchor (the root KSK's DS). Every zone cut is either
//! *securely delegated* (signed DS that chains to the child's DNSKEYs),
//! *insecurely delegated* (provably no DS), or *bogus* (broken link).
//!
//! Like production validators, a bogus chain yields SERVFAIL unless the
//! query sets the CD (checking disabled) bit. This is exactly the failure
//! mode the paper warns partial deployments cause once a DS exists but the
//! zone data cannot be validated.

#![warn(missing_docs)]

pub mod breaker;
pub mod cache;
pub mod diagnose;
pub mod retry;
pub mod spoofguard;

use dsec_authserver::{Network, QueryOutcome};
use dsec_crypto::DigestType;
use dsec_dnssec::validate::ValidationError;
use dsec_dnssec::{authenticate_dnskeys, validate_rrset};
use dsec_wire::{
    group_rrsets, DnskeyRdata, DsRdata, Message, Name, RData, Rcode, Record, RrSet, RrType,
};

pub use breaker::{BreakerEvent, BreakerPolicy, BreakerSet, Transition};
pub use cache::{Cache, CacheKey};
pub use diagnose::{capture_kind, diagnose, CaptureKind, Diagnosis, DsLink, SignatureState, ZoneDiagnosis};
pub use retry::{HealthCache, ResolverStats, ResolverStatsSnapshot, RetryPolicy};
pub use spoofguard::{OnPathThreat, SpoofGuard, POISON_A, POISON_AAAA, POISON_TTL};

/// The RFC 4035 security state of a resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Security {
    /// Every link from the trust anchor validated.
    Secure,
    /// The chain was cleanly broken by an unsigned delegation (or no trust
    /// anchor is configured) — ordinary unsigned DNS.
    Insecure,
    /// A link exists but does not validate; the answer must not be trusted.
    Bogus(ValidationError),
}

impl Security {
    /// True for [`Security::Secure`].
    pub fn is_secure(&self) -> bool {
        matches!(self, Security::Secure)
    }
}

/// The outcome of one resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answer {
    /// Answer-section records (empty on negative answers and SERVFAIL).
    pub records: Vec<Record>,
    /// Final response code seen (or synthesized SERVFAIL on bogus).
    pub rcode: Rcode,
    /// Chain security for the answer.
    pub security: Security,
    /// Referral chain walked, outermost first (for diagnostics).
    pub chain: Vec<Name>,
    /// For negative (empty-answer) responses: the RFC 2308 negative TTL,
    /// `min(SOA record TTL, SOA minimum)` captured from the authority
    /// section. `None` when the response carried no SOA (or the answer
    /// is positive) — the cache falls back to a short default.
    pub negative_ttl: Option<u32>,
    /// True when an on-path attacker's forged response won the spoofing
    /// race and was admitted into this resolution (see
    /// [`spoofguard::OnPathThreat`]). A validating chain still turns the
    /// forgery into [`Security::Bogus`]; on non-validating paths the flag
    /// is the only trace that the records are attacker-controlled.
    pub poisoned: bool,
}

/// Errors that abort resolution before any answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// No root hints configured.
    NoRootHints,
    /// Every candidate nameserver for some zone was unreachable.
    AllServersUnreachable(String),
    /// The referral/CNAME walk exceeded the step budget (loop suspected).
    TooManySteps,
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::NoRootHints => write!(f, "no root hints configured"),
            ResolveError::AllServersUnreachable(zone) => {
                write!(f, "all nameservers unreachable for {zone}")
            }
            ResolveError::TooManySteps => write!(f, "resolution exceeded step budget"),
        }
    }
}

impl std::error::Error for ResolveError {}

use std::sync::Arc;

/// How degraded the network path was during a robust resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degradation {
    /// Every exchange succeeded on the first attempt.
    None,
    /// Timeouts, truncations, or error rcodes forced retries, but an
    /// answer was eventually obtained.
    Retried,
    /// Some zone cut never answered within the retry budget.
    Unreachable,
}

/// A fault-aware resolution: the answer plus how hard it was to get.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RobustAnswer {
    /// The resolution outcome (synthesized SERVFAIL when unreachable).
    pub answer: Answer,
    /// Path degradation observed while resolving.
    pub degradation: Degradation,
}

/// A validating iterative resolver bound to a network.
///
/// A `Resolver` is a per-worker object: its stats and query-id counters
/// are unsynchronized (`Cell`-based), so it is `Send` but not `Sync`.
/// Pools share state through the [`Cache`] (see
/// [`Resolver::with_shared_cache`]), which *is* designed for concurrent
/// use — lock-striped, contention-free across workers.
pub struct Resolver {
    network: Arc<Network>,
    /// Trust anchor: DS records for the root KSK. Empty → no validation.
    trust_anchor: Vec<DsRdata>,
    /// Checking-disabled: return bogus data instead of SERVFAIL.
    pub checking_disabled: bool,
    /// Step budget for referrals + CNAME chases.
    max_steps: usize,
    cache: Arc<Cache>,
    next_id: std::cell::Cell<u16>,
    /// Retry/backoff knobs for each zone-cut exchange.
    policy: retry::RetryPolicy,
    /// Per-server penalty cache steering retries toward live servers.
    health: retry::HealthCache,
    /// Attempt/timeout/fallback accounting.
    stats: retry::ResolverStats,
    /// Per-authority circuit breakers (None = always query).
    breaker: Option<breaker::BreakerSet>,
    /// Simulated ms spent so far in the current top-level resolution,
    /// checked against [`RetryPolicy::budget_ms`].
    budget_spent: std::cell::Cell<u32>,
    /// Anti-spoofing defense profile (entropy, 0x20, bailiwick).
    spoof_guard: SpoofGuard,
    /// The on-path spoofing threat this resolver is exposed to, if any.
    threat: Option<OnPathThreat>,
    /// Set by [`Resolver::guard_response`] when a forged response was
    /// substituted; consumed when the terminal answer is built so the
    /// [`Answer::poisoned`] flag lands on exactly that resolution.
    forged_in_flight: std::cell::Cell<bool>,
}

impl Resolver {
    /// A resolver with a trust anchor (pass an empty vec for a
    /// non-validating resolver).
    pub fn new(network: Arc<Network>, trust_anchor: Vec<DsRdata>) -> Self {
        Resolver {
            network,
            trust_anchor,
            checking_disabled: false,
            max_steps: 48,
            cache: Arc::new(Cache::new()),
            next_id: std::cell::Cell::new(1),
            policy: retry::RetryPolicy::default(),
            health: retry::HealthCache::new(),
            stats: retry::ResolverStats::new(),
            breaker: None,
            budget_spent: std::cell::Cell::new(0),
            spoof_guard: SpoofGuard::default(),
            threat: None,
            forged_in_flight: std::cell::Cell::new(false),
        }
    }

    /// Replaces the anti-spoofing defense profile (builder style). The
    /// default is [`SpoofGuard::hardened`].
    pub fn with_spoof_guard(mut self, guard: SpoofGuard) -> Self {
        self.spoof_guard = guard;
        self
    }

    /// Exposes this resolver to an on-path spoofing threat (builder
    /// style). Without a threat no forged packets exist and the guard
    /// logic is skipped entirely on the hot path.
    pub fn with_on_path_threat(mut self, threat: OnPathThreat) -> Self {
        self.threat = Some(threat);
        self
    }

    /// The active anti-spoofing defense profile.
    pub fn spoof_guard(&self) -> &SpoofGuard {
        &self.spoof_guard
    }

    /// Replaces the retry policy (builder style).
    pub fn with_policy(mut self, policy: retry::RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables per-authority circuit breaking (builder style). Breaker
    /// state is private to this resolver — pool workers learn about an
    /// outage independently, keeping tallies deterministic per worker.
    pub fn with_breaker(mut self, policy: breaker::BreakerPolicy) -> Self {
        self.breaker = Some(breaker::BreakerSet::new(policy));
        self
    }

    /// The circuit-breaker set, when enabled.
    pub fn breaker(&self) -> Option<&breaker::BreakerSet> {
        self.breaker.as_ref()
    }

    /// Replaces the positive cache with a caller-owned one (builder
    /// style). A pool of resolvers handed clones of the same `Arc` share
    /// one cache: any member's answers serve the whole pool, which is how
    /// the traffic plane runs a resolver farm behind a single cache.
    pub fn with_shared_cache(mut self, cache: Arc<Cache>) -> Self {
        self.cache = cache;
        self
    }

    /// Attempt/timeout/TCP-fallback counters accumulated so far.
    pub fn stats(&self) -> retry::ResolverStatsSnapshot {
        self.stats.snapshot()
    }

    /// The per-server health cache.
    pub fn health(&self) -> &retry::HealthCache {
        &self.health
    }

    /// Access to the positive cache.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Resolves with the positive cache consulted first.
    pub fn resolve_cached(
        &self,
        qname: &Name,
        qtype: RrType,
        now: u32,
    ) -> Result<Answer, ResolveError> {
        let key = self.cache.key_of(qname, qtype);
        self.resolve_cached_keyed(key, qname, qtype, now)
            .map(|answer| (*answer).clone())
    }

    /// Like [`Resolver::resolve_cached`], but with a precomputed
    /// [`CacheKey`] (from this resolver's cache's [`Cache::key_of`]) and
    /// a shared, copy-free answer. The traffic driver plans its whole
    /// stream ahead of time and keys every query once, so the per-query
    /// hot path is a striped-shard probe plus a refcount bump — no name
    /// hashing, no record cloning.
    pub fn resolve_cached_keyed(
        &self,
        key: CacheKey,
        qname: &Name,
        qtype: RrType,
        now: u32,
    ) -> Result<Arc<Answer>, ResolveError> {
        if let Some(hit) = self.cache.get_shared(key, now) {
            self.stats.count_cache_hit();
            if hit.records.is_empty() && matches!(hit.rcode, Rcode::NxDomain | Rcode::NoError) {
                // A cached NXDOMAIN/NODATA served without touching
                // authorities (RFC 2308).
                self.stats.count_negative_hit();
            }
            return Ok(hit);
        }
        self.stats.count_cache_miss();
        match self.resolve(qname, qtype, now) {
            Ok(answer) => {
                let answer = Arc::new(answer);
                self.cache.put_shared(key, &answer, now);
                Ok(answer)
            }
            Err(e) => {
                // RFC 8767 serve-stale: on *transport* failure only (a
                // bogus chain still SERVFAILs through the Ok path above —
                // staleness must never mask a validation failure), fall
                // back to an expired entry within the stale horizon.
                if let Some(stale) = self.cache.get_stale(key, now) {
                    self.stats.count_stale_hit();
                    return Ok(stale);
                }
                Err(e)
            }
        }
    }

    /// Resolves (qname, qtype) from the roots, validating along the way.
    /// The whole walk — every zone cut, DNSKEY fetch, retry, backoff, and
    /// CNAME chase — shares one [`RetryPolicy::budget_ms`] latency
    /// budget; once the accumulated simulated time crosses it, remaining
    /// retry ladders are cut short (counted as budget-exhausted).
    pub fn resolve(&self, qname: &Name, qtype: RrType, now: u32) -> Result<Answer, ResolveError> {
        self.budget_spent.set(0);
        let result = self.resolve_within_budget(qname, qtype, now);
        if self.budget_spent.get() >= self.policy.budget_ms {
            self.stats.count_budget_exhausted();
        }
        result
    }

    fn resolve_within_budget(
        &self,
        qname: &Name,
        qtype: RrType,
        now: u32,
    ) -> Result<Answer, ResolveError> {
        let mut chain = Vec::new();
        let mut cname_budget = 8;
        let mut current_qname = qname.clone();
        let mut all_records = Vec::new();
        loop {
            let (mut answer, target) =
                self.resolve_no_cname(&current_qname, qtype, now, &mut chain)?;
            all_records.append(&mut answer.records);
            match target {
                Some(next) if cname_budget > 0 && !matches!(answer.security, Security::Bogus(_)) => {
                    cname_budget -= 1;
                    current_qname = next;
                }
                _ => return Ok(self.finish(answer, all_records, chain)),
            }
        }
    }

    fn finish(&self, answer: Answer, records: Vec<Record>, chain: Vec<Name>) -> Answer {
        let mut a = answer;
        a.chain = chain;
        if matches!(a.security, Security::Bogus(_)) && !self.checking_disabled {
            a.records = Vec::new();
            a.rcode = Rcode::ServFail;
            return a;
        }
        a.records = records;
        a
    }

    /// One full root-to-answer walk without CNAME chasing. Returns the
    /// answer and, if the answer is a CNAME for another qtype, the target.
    fn resolve_no_cname(
        &self,
        qname: &Name,
        qtype: RrType,
        now: u32,
        chain: &mut Vec<Name>,
    ) -> Result<(Answer, Option<Name>), ResolveError> {
        let mut servers = self.network.root_hints();
        if servers.is_empty() {
            return Err(ResolveError::NoRootHints);
        }
        let mut zone = Name::root();
        // Trusted DNSKEYs of `zone`, or the reason the chain is not secure.
        let mut zone_keys: Result<Vec<DnskeyRdata>, Security> = if self.trust_anchor.is_empty() {
            Err(Security::Insecure)
        } else {
            self.chain_to_zone(&Name::root(), &servers, &self.trust_anchor, now)
        };

        for _ in 0..self.max_steps {
            chain.push(zone.clone());
            let resp = self
                .query_any(&servers, qname, qtype, now, &zone)
                .ok_or_else(|| ResolveError::AllServersUnreachable(zone.to_string()))?;

            // Referral?
            let ns_records: Vec<&Record> = resp
                .authorities
                .iter()
                .filter(|r| r.rtype() == RrType::Ns)
                .collect();
            let is_referral =
                resp.answers.is_empty() && !resp.flags.authoritative && !ns_records.is_empty();
            if is_referral {
                let cut = ns_records[0].name.clone();
                let ds_records: Vec<DsRdata> = resp
                    .authorities
                    .iter()
                    .filter_map(|r| match &r.rdata {
                        RData::Ds(ds) if r.name == cut => Some(ds.clone()),
                        _ => None,
                    })
                    .collect();
                let next_servers: Vec<Name> = ns_records
                    .iter()
                    .filter_map(|r| match &r.rdata {
                        RData::Ns(host) => Some(host.clone()),
                        _ => None,
                    })
                    .collect();

                // Advance the trust chain.
                zone_keys = match zone_keys {
                    Ok(parent_keys) => {
                        if ds_records.is_empty() {
                            // Unsigned delegation → insecure subtree.
                            Err(Security::Insecure)
                        } else {
                            // Validate the DS RRset signature with parent keys.
                            let ds_rrset = RrSet::new(
                                resp.authorities
                                    .iter()
                                    .filter(|r| r.rtype() == RrType::Ds && r.name == cut)
                                    .cloned()
                                    .collect(),
                            )
                            .expect("non-empty DS set");
                            let ds_sigs: Vec<_> = resp
                                .authorities
                                .iter()
                                .filter_map(|r| match &r.rdata {
                                    RData::Rrsig(s)
                                        if s.type_covered == RrType::Ds && r.name == cut =>
                                    {
                                        Some(s.clone())
                                    }
                                    _ => None,
                                })
                                .collect();
                            match validate_rrset(&ds_rrset, &ds_sigs, &parent_keys, &zone, now) {
                                Ok(()) => {
                                    self.chain_to_zone(&cut, &next_servers, &ds_records, now)
                                }
                                Err(e) => Err(Security::Bogus(e)),
                            }
                        }
                    }
                    Err(state) => Err(state),
                };

                zone = cut;
                servers = next_servers;
                if servers.is_empty() {
                    return Err(ResolveError::AllServersUnreachable(zone.to_string()));
                }
                // A bogus delegation can never be repaired further down,
                // but resolution continues so CD-mode callers still get
                // the (untrusted) data.
                continue;
            }

            // Terminal answer.
            let security = self.validate_answer(&resp, &zone, &zone_keys, now);
            let cname_target = resp.answers.iter().find_map(|r| match &r.rdata {
                RData::Cname(t) if qtype != RrType::Cname => Some(t.clone()),
                _ => None,
            });
            let has_direct_answer = resp.answers.iter().any(|r| r.rtype() == qtype);
            // RFC 2308: a negative answer's cacheable lifetime is
            // min(SOA record TTL, SOA minimum), taken from the SOA the
            // authority attached to the NXDOMAIN/NODATA response.
            let negative_ttl = if resp.answers.is_empty() {
                resp.authorities.iter().find_map(|r| match &r.rdata {
                    RData::Soa(soa) => Some(r.ttl.min(soa.minimum)),
                    _ => None,
                })
            } else {
                None
            };
            let records = resp
                .answers
                .iter()
                .filter(|r| r.rtype() != RrType::Rrsig)
                .cloned()
                .collect();
            let poisoned = self.forged_in_flight.take();
            if poisoned {
                self.stats.count_poison_admitted();
            }
            return Ok((
                Answer {
                    records,
                    rcode: resp.rcode,
                    security,
                    chain: Vec::new(),
                    negative_ttl,
                    poisoned,
                },
                if has_direct_answer { None } else { cname_target },
            ));
        }
        Err(ResolveError::TooManySteps)
    }

    /// Fetches `zone`'s DNSKEY RRset from its servers and authenticates it
    /// against `ds_records`.
    fn chain_to_zone(
        &self,
        zone: &Name,
        servers: &[Name],
        ds_records: &[DsRdata],
        now: u32,
    ) -> Result<Vec<DnskeyRdata>, Security> {
        let Some(resp) = self.query_any(servers, zone, RrType::Dnskey, now, zone) else {
            return Err(Security::Bogus(ValidationError::MissingDnskey));
        };
        let dnskey_records: Vec<Record> = resp
            .answers
            .iter()
            .filter(|r| r.rtype() == RrType::Dnskey)
            .cloned()
            .collect();
        if dnskey_records.is_empty() {
            return Err(Security::Bogus(ValidationError::MissingDnskey));
        }
        let dnskey_rrset = RrSet::new(dnskey_records).expect("uniform DNSKEY set");
        let sigs: Vec<_> = resp
            .answers
            .iter()
            .filter_map(|r| match &r.rdata {
                RData::Rrsig(s) if s.type_covered == RrType::Dnskey => Some(s.clone()),
                _ => None,
            })
            .collect();
        match authenticate_dnskeys(zone, &dnskey_rrset, &sigs, ds_records, now) {
            Ok(keys) => Ok(keys),
            Err(ValidationError::UnsupportedAlgorithm(_)) => Err(Security::Insecure),
            Err(e) => Err(Security::Bogus(e)),
        }
    }

    /// Validates the answer (or negative-answer) sections with the current
    /// zone keys.
    fn validate_answer(
        &self,
        resp: &Message,
        zone: &Name,
        zone_keys: &Result<Vec<DnskeyRdata>, Security>,
        now: u32,
    ) -> Security {
        let keys = match zone_keys {
            Ok(keys) => keys,
            Err(state) => return state.clone(),
        };
        // Validate every non-RRSIG RRset in the answer section; negative
        // answers validate the authority section (SOA/NSEC).
        let section = if resp.answers.is_empty() {
            &resp.authorities
        } else {
            &resp.answers
        };
        let sigs: Vec<_> = section
            .iter()
            .filter_map(|r| match &r.rdata {
                RData::Rrsig(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        for rrset in group_rrsets(section) {
            if rrset.rtype() == RrType::Rrsig {
                continue;
            }
            if let Err(e) = validate_rrset(&rrset, &sigs, keys, zone, now) {
                return Security::Bogus(e);
            }
        }
        Security::Secure
    }

    /// Records a transport-level failure against `ns` with the breaker,
    /// counting a trip when this failure opened it.
    fn note_upstream_failure(&self, ns: &Name, now: u32) {
        if let Some(breaker) = &self.breaker {
            if breaker.record_failure(ns, now) {
                self.stats.count_breaker_trip();
            }
        }
    }

    /// Records a live response from `ns` with the breaker (any response —
    /// even an error rcode — proves the server is up).
    fn note_upstream_success(&self, ns: &Name, now: u32) {
        if let Some(breaker) = &self.breaker {
            breaker.record_success(ns, now);
        }
    }

    /// Charges `ms` of simulated latency against the resolution budget.
    fn spend(&self, ms: u32) {
        self.budget_spent.set(self.budget_spent.get().saturating_add(ms));
    }

    /// Applies the on-path threat model to an accepted response: the
    /// deterministic Kaminsky race (a won race substitutes the attacker's
    /// forged response for the legitimate one), then strict-bailiwick
    /// scrubbing of whichever response survives. When no threat is
    /// configured no forged packets exist, so this is a single branch on
    /// the hot path.
    fn guard_response(&self, response: Message, query: &Message, bailiwick: &Name) -> Message {
        let Some(threat) = &self.threat else {
            return response;
        };
        let Some(q) = query.questions.first() else {
            return response;
        };
        let mut resp = response;
        if threat.covers(&q.name, q.qtype) {
            self.stats.count_poison_race();
            if threat.race_won(&self.spoof_guard, &q.name, q.qtype) {
                resp = threat.forged_response(query);
                self.forged_in_flight.set(true);
            }
        }
        let scrubbed = self.spoof_guard.scrub_response(&mut resp, bailiwick);
        if scrubbed > 0 {
            self.stats.count_poison_scrubbed(scrubbed as u64);
        }
        resp
    }

    /// Queries the zone cut's servers with retries, backoff, health-aware
    /// rotation, and TCP fallback on truncation.
    ///
    /// Each round walks every candidate server healthiest-first; a server
    /// that times out is penalized and the next one is tried after a
    /// simulated exponential backoff. A truncated response is retried
    /// over TCP against the same server. SERVFAIL/REFUSED responses are
    /// kept as a last resort so a lame-but-responding fleet still yields
    /// its rcode to the caller (as the pre-retry resolver did), while a
    /// healthier server later in the rotation can still win.
    ///
    /// Two degradation guards bound the ladder: the resolution-wide
    /// latency budget ([`RetryPolicy::budget_ms`]) cuts it off once the
    /// accumulated simulated time (answer latencies, timeout deadlines,
    /// backoff) crosses the budget, and an enabled circuit breaker
    /// ([`Resolver::with_breaker`]) skips servers whose breaker is open,
    /// letting one half-open probe through per probe interval.
    fn query_any(
        &self,
        servers: &[Name],
        qname: &Name,
        qtype: RrType,
        now: u32,
        bailiwick: &Name,
    ) -> Option<Message> {
        let id = self.next_id.get();
        self.next_id.set(id.wrapping_add(1));
        let query = Message::query(id, qname.clone(), qtype, true);
        if servers.is_empty() {
            return None;
        }
        let mut attempts = 0u32;
        let mut retries = 0u32;
        let mut last_error_response: Option<Message> = None;
        while attempts < self.policy.max_attempts {
            let attempts_at_round_start = attempts;
            // Index-based healthiest-first order: on the fault-free path
            // this is the identity permutation with zero name clones.
            for idx in self.health.order_indices(servers) {
                let ns = &servers[idx];
                if attempts >= self.policy.max_attempts {
                    break;
                }
                if self.budget_spent.get() >= self.policy.budget_ms {
                    return last_error_response;
                }
                if let Some(breaker) = &self.breaker {
                    if !breaker.allow(ns, now) {
                        self.stats.count_breaker_short_circuit();
                        continue;
                    }
                }
                attempts += 1;
                self.stats.count_attempt();
                match self
                    .network
                    .query_udp_at(ns, &query, self.policy.deadline_ms, now)
                {
                    QueryOutcome::Unreachable => {
                        // Not registered: retrying cannot help this server.
                        self.health.record_failure(ns);
                        self.note_upstream_failure(ns, now);
                    }
                    QueryOutcome::Timeout => {
                        self.stats.count_timeout();
                        self.health.record_failure(ns);
                        self.note_upstream_failure(ns, now);
                        let backoff = self.policy.backoff_ms(retries);
                        self.stats.count_backoff(backoff);
                        self.spend(self.policy.deadline_ms.saturating_add(backoff));
                        retries += 1;
                    }
                    QueryOutcome::Answered { response, latency_ms } => {
                        self.spend(latency_ms);
                        if response.flags.truncated {
                            self.stats.count_tcp_fallback();
                            match self.network.query_tcp_at(ns, &query, now) {
                                QueryOutcome::Answered { response, latency_ms } => {
                                    self.spend(latency_ms);
                                    self.health.record_success(ns);
                                    self.note_upstream_success(ns, now);
                                    return Some(self.guard_response(response, &query, bailiwick));
                                }
                                _ => {
                                    self.stats.count_timeout();
                                    self.health.record_failure(ns);
                                    self.note_upstream_failure(ns, now);
                                    self.spend(self.policy.deadline_ms);
                                    continue;
                                }
                            }
                        }
                        // Any response — even an error rcode — proves the
                        // server is alive: the breaker only guards against
                        // transport-level outages.
                        self.note_upstream_success(ns, now);
                        if matches!(response.rcode, Rcode::ServFail | Rcode::Refused) {
                            self.stats.count_error_rcode();
                            self.health.record_failure(ns);
                            last_error_response.get_or_insert(response);
                            continue;
                        }
                        self.health.record_success(ns);
                        return Some(self.guard_response(response, &query, bailiwick));
                    }
                }
            }
            // Every candidate short-circuited by an open breaker: another
            // round in the same sim-second cannot make progress.
            if attempts == attempts_at_round_start {
                break;
            }
            // A round with zero live candidates cannot improve: stop early.
            if servers
                .iter()
                .all(|ns| self.network.authority(ns).is_none())
            {
                break;
            }
        }
        last_error_response
    }

    /// Resolves like [`Resolver::resolve`], additionally reporting how
    /// degraded the network path was. Transport-level failure (every
    /// server at some zone cut dead beyond the retry budget) is mapped to
    /// a synthesized SERVFAIL answer with
    /// [`Degradation::Unreachable`] instead of an error, so scanning
    /// pipelines can record the observation and move on.
    pub fn resolve_robust(
        &self,
        qname: &Name,
        qtype: RrType,
        now: u32,
    ) -> Result<RobustAnswer, ResolveError> {
        let before = self.stats.snapshot();
        match self.resolve(qname, qtype, now) {
            Ok(answer) => {
                let after = self.stats.snapshot();
                let retried = after.timeouts > before.timeouts
                    || after.tcp_fallbacks > before.tcp_fallbacks
                    || after.error_rcodes > before.error_rcodes;
                Ok(RobustAnswer {
                    answer,
                    degradation: if retried {
                        Degradation::Retried
                    } else {
                        Degradation::None
                    },
                })
            }
            Err(ResolveError::AllServersUnreachable(zone)) => Ok(RobustAnswer {
                answer: Answer {
                    records: Vec::new(),
                    rcode: Rcode::ServFail,
                    security: Security::Insecure,
                    chain: vec![Name::parse(&zone).unwrap_or_else(|_| Name::root())],
                    negative_ttl: None,
                    poisoned: false,
                },
                degradation: Degradation::Unreachable,
            }),
            Err(e) => Err(e),
        }
    }
}

/// The trust anchor (root KSK DS) for a root zone signed with `root_keys`.
pub fn trust_anchor_for(root_keys: &dsec_dnssec::ZoneKeys) -> Vec<DsRdata> {
    vec![root_keys.ds(DigestType::Sha256)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsec_authserver::Authority;
    use dsec_crypto::Algorithm;
    use dsec_dnssec::{sign_zone, SignerConfig, ZoneKeys};
    use dsec_wire::{SoaRdata, Zone};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    const NOW: u32 = 1_450_000_000;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn soa(zone: &str) -> Record {
        let owner = if zone == "." { Name::root() } else { name(zone) };
        Record::new(
            owner,
            3600,
            RData::Soa(SoaRdata {
                mname: name("ns1.invalid"),
                rname: name("hostmaster.invalid"),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        )
    }

    /// A three-level signed hierarchy: . → com → example.com.
    struct World {
        network: Arc<Network>,
        root_keys: ZoneKeys,
        example_auth: Arc<Authority>,
    }

    fn build_world(sign_example: bool, upload_example_ds: bool) -> World {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let cfg = SignerConfig::valid_from(NOW - 100, 90 * 86400);

        let root_keys =
            ZoneKeys::generate_default(&mut rng, Name::root(), Algorithm::RsaSha256).unwrap();
        let com_keys =
            ZoneKeys::generate_default(&mut rng, name("com"), Algorithm::RsaSha256).unwrap();
        let example_keys =
            ZoneKeys::generate_default(&mut rng, name("example.com"), Algorithm::RsaSha256)
                .unwrap();

        // example.com zone.
        let mut example = Zone::new(name("example.com"));
        example.add(soa("example.com")).unwrap();
        example
            .add(Record::new(
                name("example.com"),
                3600,
                RData::Ns(name("ns1.operator.net")),
            ))
            .unwrap();
        example
            .add(Record::new(
                name("www.example.com"),
                300,
                RData::A("192.0.2.80".parse().unwrap()),
            ))
            .unwrap();
        example
            .add(Record::new(
                name("alias.example.com"),
                300,
                RData::Cname(name("www.example.com")),
            ))
            .unwrap();
        if sign_example {
            sign_zone(&mut example, &example_keys, &cfg).unwrap();
        }

        // com zone: delegation (+DS if uploaded).
        let mut com = Zone::new(name("com"));
        com.add(soa("com")).unwrap();
        com.add(Record::new(
            name("com"),
            3600,
            RData::Ns(name("a.gtld-servers.net")),
        ))
        .unwrap();
        com.add(Record::new(
            name("example.com"),
            172800,
            RData::Ns(name("ns1.operator.net")),
        ))
        .unwrap();
        if upload_example_ds {
            com.add(Record::new(
                name("example.com"),
                86400,
                RData::Ds(example_keys.ds(DigestType::Sha256)),
            ))
            .unwrap();
        }
        sign_zone(&mut com, &com_keys, &cfg).unwrap();

        // root zone.
        let mut root = Zone::new(Name::root());
        root.add(soa(".")).unwrap();
        root.add(Record::new(
            Name::root(),
            3600,
            RData::Ns(name("a.root-servers.net")),
        ))
        .unwrap();
        root.add(Record::new(
            name("com"),
            172800,
            RData::Ns(name("a.gtld-servers.net")),
        ))
        .unwrap();
        root.add(Record::new(
            name("com"),
            86400,
            RData::Ds(com_keys.ds(DigestType::Sha256)),
        ))
        .unwrap();
        sign_zone(&mut root, &root_keys, &cfg).unwrap();

        let network = Arc::new(Network::new());
        let root_auth = Authority::new();
        root_auth.upsert_zone(root);
        network.register(name("a.root-servers.net"), Arc::new(root_auth));
        let com_auth = Authority::new();
        com_auth.upsert_zone(com);
        network.register(name("a.gtld-servers.net"), Arc::new(com_auth));
        let example_auth = Arc::new(Authority::new());
        example_auth.upsert_zone(example);
        network.register(name("ns1.operator.net"), example_auth.clone());
        network.set_root_hints(vec![name("a.root-servers.net")]);

        World {
            network,
            root_keys,
            example_auth,
        }
    }

    #[test]
    fn secure_resolution_end_to_end() {
        let w = build_world(true, true);
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys));
        let answer = resolver
            .resolve(&name("www.example.com"), RrType::A, NOW)
            .unwrap();
        assert_eq!(answer.rcode, Rcode::NoError);
        assert_eq!(answer.security, Security::Secure);
        assert_eq!(answer.records.len(), 1);
        assert_eq!(
            answer.chain,
            vec![Name::root(), name("com"), name("example.com")]
        );
    }

    #[test]
    fn unsigned_leaf_is_insecure() {
        let w = build_world(false, false);
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys));
        let answer = resolver
            .resolve(&name("www.example.com"), RrType::A, NOW)
            .unwrap();
        assert_eq!(answer.security, Security::Insecure);
        assert_eq!(answer.records.len(), 1, "insecure data still resolves");
    }

    #[test]
    fn partial_deployment_resolves_but_is_insecure() {
        // The paper's "partially deployed": signed zone, no DS uploaded.
        let w = build_world(true, false);
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys));
        let answer = resolver
            .resolve(&name("www.example.com"), RrType::A, NOW)
            .unwrap();
        assert_eq!(answer.security, Security::Insecure);
        assert_eq!(answer.records.len(), 1);
    }

    #[test]
    fn ds_without_signatures_is_bogus_servfail() {
        // DS uploaded but the child zone was never signed: a validating
        // resolver must SERVFAIL — the domain goes dark for DNSSEC users.
        let w = build_world(false, true);
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys));
        let answer = resolver
            .resolve(&name("www.example.com"), RrType::A, NOW)
            .unwrap();
        assert_eq!(answer.rcode, Rcode::ServFail);
        assert!(matches!(answer.security, Security::Bogus(_)));
        assert!(answer.records.is_empty());
    }

    #[test]
    fn checking_disabled_returns_bogus_data() {
        let w = build_world(false, true);
        let mut resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys));
        resolver.checking_disabled = true;
        let answer = resolver
            .resolve(&name("www.example.com"), RrType::A, NOW)
            .unwrap();
        assert!(matches!(answer.security, Security::Bogus(_)));
        assert_eq!(answer.records.len(), 1, "CD returns data despite bogus");
    }

    #[test]
    fn no_trust_anchor_means_insecure() {
        let w = build_world(true, true);
        let resolver = Resolver::new(w.network.clone(), Vec::new());
        let answer = resolver
            .resolve(&name("www.example.com"), RrType::A, NOW)
            .unwrap();
        assert_eq!(answer.security, Security::Insecure);
    }

    #[test]
    fn wrong_trust_anchor_is_bogus() {
        let w = build_world(true, true);
        let mut rng = StdRng::seed_from_u64(4242);
        let fake_root =
            ZoneKeys::generate_default(&mut rng, Name::root(), Algorithm::RsaSha256).unwrap();
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&fake_root));
        let answer = resolver
            .resolve(&name("www.example.com"), RrType::A, NOW)
            .unwrap();
        assert_eq!(answer.rcode, Rcode::ServFail);
    }

    #[test]
    fn cname_is_chased_securely() {
        let w = build_world(true, true);
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys));
        let answer = resolver
            .resolve(&name("alias.example.com"), RrType::A, NOW)
            .unwrap();
        assert_eq!(answer.security, Security::Secure);
        assert!(answer.records.iter().any(|r| r.rtype() == RrType::Cname));
        assert!(answer.records.iter().any(|r| r.rtype() == RrType::A));
    }

    #[test]
    fn nxdomain_propagates() {
        let w = build_world(true, true);
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys));
        let answer = resolver
            .resolve(&name("missing.example.com"), RrType::A, NOW)
            .unwrap();
        assert_eq!(answer.rcode, Rcode::NxDomain);
        assert!(answer.records.is_empty());
    }

    #[test]
    fn expired_signatures_turn_bogus() {
        let w = build_world(true, true);
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys));
        let after_expiry = NOW + 120 * 86400;
        let answer = resolver
            .resolve(&name("www.example.com"), RrType::A, after_expiry)
            .unwrap();
        assert_eq!(answer.rcode, Rcode::ServFail);
    }

    #[test]
    fn tampered_zone_data_detected() {
        // Overwrite the A record *after* signing: the RRSIG no longer
        // matches → bogus.
        let w = build_world(true, true);
        w.example_auth.with_zone_mut(&name("example.com"), |z| {
            z.remove_rrset(&name("www.example.com"), RrType::A);
            z.add(Record::new(
                name("www.example.com"),
                300,
                RData::A("203.0.113.66".parse().unwrap()), // hijack
            ))
            .unwrap();
        });
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys));
        let answer = resolver
            .resolve(&name("www.example.com"), RrType::A, NOW)
            .unwrap();
        assert_eq!(
            answer.rcode,
            Rcode::ServFail,
            "hijacked data must not validate"
        );
    }

    #[test]
    fn unreachable_nameserver_reported() {
        let w = build_world(true, true);
        w.network.deregister(&name("ns1.operator.net"));
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys));
        let err = resolver
            .resolve(&name("www.example.com"), RrType::A, NOW)
            .unwrap_err();
        assert!(matches!(err, ResolveError::AllServersUnreachable(_)));
    }

    #[test]
    fn missing_root_hints_reported() {
        let w = build_world(true, true);
        w.network.set_root_hints(Vec::new());
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys));
        assert_eq!(
            resolver.resolve(&name("www.example.com"), RrType::A, NOW),
            Err(ResolveError::NoRootHints)
        );
    }

    #[test]
    fn diagnose_healthy_chain() {
        let w = build_world(true, true);
        let report = crate::diagnose::diagnose(
            &w.network,
            &trust_anchor_for(&w.root_keys),
            &name("example.com"),
            NOW,
        );
        assert!(report.is_secure(), "{report}");
        assert_eq!(report.zones.len(), 3);
        assert!(report.zones.iter().all(|z| z.link_ok));
        assert!(report.advice.is_empty());
        let text = report.to_string();
        assert!(text.contains("verdict: Secure"));
    }

    #[test]
    fn diagnose_partial_deployment() {
        let w = build_world(true, false);
        let report = crate::diagnose::diagnose(
            &w.network,
            &trust_anchor_for(&w.root_keys),
            &name("example.com"),
            NOW,
        );
        assert_eq!(report.verdict, Security::Insecure);
        let leaf = report.zones.last().unwrap();
        assert_eq!(leaf.ds_link, crate::diagnose::DsLink::Absent);
        assert!(matches!(
            leaf.signatures,
            crate::diagnose::SignatureState::Valid { .. }
        ));
        assert!(report.advice.iter().any(|a| a.contains("partially")));
    }

    #[test]
    fn diagnose_unsigned_domain() {
        let w = build_world(false, false);
        let report = crate::diagnose::diagnose(
            &w.network,
            &trust_anchor_for(&w.root_keys),
            &name("example.com"),
            NOW,
        );
        assert_eq!(report.verdict, Security::Insecure);
        let leaf = report.zones.last().unwrap();
        assert!(leaf.keys.is_empty());
        assert_eq!(leaf.signatures, crate::diagnose::SignatureState::Unsigned);
    }

    #[test]
    fn diagnose_ds_mismatch() {
        let w = build_world(false, true); // DS uploaded, zone unsigned
        let report = crate::diagnose::diagnose(
            &w.network,
            &trust_anchor_for(&w.root_keys),
            &name("example.com"),
            NOW,
        );
        assert!(matches!(report.verdict, Security::Bogus(_)));
        assert!(report
            .advice
            .iter()
            .any(|a| a.contains("SERVFAIL") || a.contains("unsigned")));
    }

    #[test]
    fn diagnose_expired_signatures() {
        let w = build_world(true, true);
        let later = NOW + 120 * 86_400;
        let report = crate::diagnose::diagnose(
            &w.network,
            &trust_anchor_for(&w.root_keys),
            &name("example.com"),
            later,
        );
        assert!(matches!(report.verdict, Security::Bogus(_)));
        assert!(report
            .zones
            .iter()
            .any(|z| z.signatures == crate::diagnose::SignatureState::Expired));
        assert!(report.advice.iter().any(|a| a.contains("re-sign")));
    }

    #[test]
    fn retries_through_dropped_packets() {
        // Two dropped packets in a row on the leaf's only server: the
        // resolver backs off, retries, and still validates the chain.
        let w = build_world(true, true);
        let ns = name("ns1.operator.net");
        w.network.faults().enable(3);
        w.network
            .faults()
            .script(&ns, [dsec_authserver::Fault::Drop, dsec_authserver::Fault::Drop]);
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys));
        let answer = resolver
            .resolve(&name("www.example.com"), RrType::A, NOW)
            .unwrap();
        assert_eq!(answer.security, Security::Secure);
        assert_eq!(answer.records.len(), 1);
        let stats = resolver.stats();
        assert_eq!(stats.timeouts, 2);
        assert!(stats.backoff_ms > 0, "backoff accounted for retries");
    }

    #[test]
    fn dead_fleet_yields_servfail_with_unreachable_diagnosis() {
        let w = build_world(true, true);
        w.network.faults().enable(4);
        for ns in ["a.root-servers.net", "a.gtld-servers.net", "ns1.operator.net"] {
            w.network.faults().set_down(&name(ns), true);
        }
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys))
            .with_policy(RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            });
        let robust = resolver
            .resolve_robust(&name("www.example.com"), RrType::A, NOW)
            .unwrap();
        assert_eq!(robust.answer.rcode, Rcode::ServFail);
        assert!(robust.answer.records.is_empty());
        assert_eq!(robust.degradation, Degradation::Unreachable);
        // The plain API still reports the hard error for callers that
        // want to distinguish transport failure from lookup failure.
        assert!(matches!(
            resolver.resolve(&name("www.example.com"), RrType::A, NOW),
            Err(ResolveError::AllServersUnreachable(_))
        ));
    }

    #[test]
    fn truncation_triggers_single_tcp_fallback() {
        let w = build_world(true, true);
        let ns = name("ns1.operator.net");
        w.network.faults().enable(5);
        w.network
            .faults()
            .script(&ns, [dsec_authserver::Fault::Truncate]);
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys));
        let answer = resolver
            .resolve(&name("www.example.com"), RrType::A, NOW)
            .unwrap();
        assert_eq!(answer.security, Security::Secure, "TCP answer validates");
        assert_eq!(
            w.network.tcp_query_count(),
            1,
            "exactly one TCP fallback for one truncation"
        );
        assert_eq!(resolver.stats().tcp_fallbacks, 1);
    }

    #[test]
    fn robust_resolution_reports_clean_and_retried_paths() {
        let w = build_world(true, true);
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys));
        let clean = resolver
            .resolve_robust(&name("www.example.com"), RrType::A, NOW)
            .unwrap();
        assert_eq!(clean.degradation, Degradation::None);
        assert_eq!(clean.answer.security, Security::Secure);

        w.network.faults().enable(6);
        w.network
            .faults()
            .script(&name("a.gtld-servers.net"), [dsec_authserver::Fault::Drop]);
        let retried = resolver
            .resolve_robust(&name("www.example.com"), RrType::A, NOW)
            .unwrap();
        assert_eq!(retried.degradation, Degradation::Retried);
        assert_eq!(retried.answer.security, Security::Secure);
    }

    #[test]
    fn failing_server_is_deprioritized_across_queries() {
        let w = build_world(true, true);
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys));
        w.network.faults().enable(7);
        w.network
            .faults()
            .set_down(&name("ns1.operator.net"), true);
        let _ = resolver.resolve(&name("www.example.com"), RrType::A, NOW);
        let penalty_while_down = resolver.health().penalty(&name("ns1.operator.net"));
        assert!(penalty_while_down > 0, "timeouts accumulate penalty");
        w.network
            .faults()
            .set_down(&name("ns1.operator.net"), false);
        let answer = resolver
            .resolve(&name("www.example.com"), RrType::A, NOW)
            .unwrap();
        assert_eq!(answer.security, Security::Secure);
        assert!(
            resolver.health().penalty(&name("ns1.operator.net")) < penalty_while_down,
            "successes decay the penalty"
        );
    }

    #[test]
    fn negative_answers_cached_under_soa_minimum() {
        let w = build_world(true, true);
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys));
        let first = resolver
            .resolve_cached(&name("missing.example.com"), RrType::A, NOW)
            .unwrap();
        assert_eq!(first.rcode, Rcode::NxDomain);
        assert_eq!(first.negative_ttl, Some(300), "min(SOA TTL 3600, minimum 300)");
        let queries = w.network.query_count();
        // Within the SOA minimum, the repeat miss is a negative hit.
        let hit = resolver
            .resolve_cached(&name("missing.example.com"), RrType::A, NOW + 299)
            .unwrap();
        assert_eq!(hit.rcode, Rcode::NxDomain);
        assert_eq!(w.network.query_count(), queries, "served from negative cache");
        assert_eq!(resolver.stats().negative_hits, 1);
        // Past it, authorities are consulted again.
        let _ = resolver
            .resolve_cached(&name("missing.example.com"), RrType::A, NOW + 300)
            .unwrap();
        assert!(w.network.query_count() > queries);
    }

    #[test]
    fn stale_answer_served_during_outage_window() {
        let w = build_world(true, true);
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys))
            .with_shared_cache(Arc::new(Cache::bounded(64).with_max_stale(3600)));
        let warm = resolver
            .resolve_cached(&name("www.example.com"), RrType::A, NOW)
            .unwrap();
        assert_eq!(warm.security, Security::Secure);
        // Whole fleet goes dark; the www A record (TTL 300) has expired.
        w.network.faults().enable(21);
        for ns in ["a.root-servers.net", "a.gtld-servers.net", "ns1.operator.net"] {
            w.network.faults().set_down(&name(ns), true);
        }
        let stale = resolver
            .resolve_cached(&name("www.example.com"), RrType::A, NOW + 400)
            .unwrap();
        assert_eq!(stale.records, warm.records, "stale serve returns the old data");
        assert_eq!(resolver.stats().stale_hits, 1);
        // Past the stale horizon, the transport failure propagates:
        // serve-stale never resurrects entries beyond max_stale.
        assert!(resolver
            .resolve_cached(&name("www.example.com"), RrType::A, NOW + 300 + 3600 + 10)
            .is_err());
    }

    #[test]
    fn stale_serve_does_not_mask_bogus_servfail() {
        // DS uploaded but the zone unsigned: validation fails, answers
        // SERVFAIL through the Ok path — and the SERVFAIL is what gets
        // cached and re-served, never a stale "good" answer.
        let w = build_world(false, true);
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys))
            .with_shared_cache(Arc::new(Cache::bounded(64).with_max_stale(3600)));
        let bogus = resolver
            .resolve_cached(&name("www.example.com"), RrType::A, NOW)
            .unwrap();
        assert_eq!(bogus.rcode, Rcode::ServFail);
        assert_eq!(resolver.stats().stale_hits, 0);
    }

    #[test]
    fn breaker_trips_during_window_and_recloses_after() {
        let w = build_world(true, true);
        w.network.faults().enable(22);
        let ns = name("ns1.operator.net");
        w.network.faults().schedule_down(&ns, NOW, NOW + 100);
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys))
            .with_breaker(BreakerPolicy::default());
        // During the window, failures accumulate and the breaker trips;
        // further attempts in the same sim-second short-circuit.
        let _ = resolver.resolve(&name("www.example.com"), RrType::A, NOW + 10);
        assert!(resolver.stats().breaker_trips >= 1);
        assert_eq!(resolver.breaker().unwrap().open_count(), 1);
        let _ = resolver.resolve(&name("www.example.com"), RrType::A, NOW + 10);
        assert!(resolver.stats().breaker_short_circuits > 0);
        // After the window, the first probe succeeds and the breaker
        // re-closes — full recovery, validated answer.
        let answer = resolver
            .resolve(&name("www.example.com"), RrType::A, NOW + 200)
            .unwrap();
        assert_eq!(answer.security, Security::Secure);
        assert_eq!(resolver.breaker().unwrap().open_count(), 0);
        let kinds: Vec<Transition> = resolver
            .breaker()
            .unwrap()
            .transitions()
            .iter()
            .map(|e| e.transition)
            .collect();
        assert!(kinds.contains(&Transition::Trip));
        assert!(kinds.contains(&Transition::Probe));
        assert!(kinds.contains(&Transition::Close));
    }

    #[test]
    fn sustained_outage_exhausts_latency_budget() {
        let w = build_world(true, true);
        w.network.faults().enable(23);
        for ns in ["a.root-servers.net", "a.gtld-servers.net", "ns1.operator.net"] {
            w.network.faults().set_down(&name(ns), true);
        }
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys));
        let err = resolver
            .resolve(&name("www.example.com"), RrType::A, NOW)
            .unwrap_err();
        assert!(matches!(err, ResolveError::AllServersUnreachable(_)));
        let stats = resolver.stats();
        assert_eq!(stats.budget_exhausted, 1, "the 3s budget was crossed once");
        // Without the budget, the walk would burn 8 attempts on the root
        // DNSKEY fetch and 8 more on the root zone cut; the budget cuts
        // it off well before that.
        assert!(stats.udp_attempts <= 6, "attempts {} not clamped", stats.udp_attempts);
    }

    #[test]
    fn cache_round_trip() {
        let w = build_world(true, true);
        let resolver = Resolver::new(w.network.clone(), trust_anchor_for(&w.root_keys));
        let a1 = resolver
            .resolve_cached(&name("www.example.com"), RrType::A, NOW)
            .unwrap();
        let queries_after_first = w.network.query_count();
        let a2 = resolver
            .resolve_cached(&name("www.example.com"), RrType::A, NOW + 10)
            .unwrap();
        assert_eq!(a1.records, a2.records);
        assert_eq!(
            w.network.query_count(),
            queries_after_first,
            "second hit from cache"
        );
        // After TTL expiry the network is consulted again.
        let _ = resolver
            .resolve_cached(&name("www.example.com"), RrType::A, NOW + 10_000)
            .unwrap();
        assert!(w.network.query_count() > queries_after_first);
    }
}
