//! Per-authority circuit breakers: fail fast during sustained outages.
//!
//! A sustained operator outage would otherwise turn every cache miss into
//! a full retry ladder — `max_attempts` UDP exchanges, backoff, and a
//! possible TCP fallback — against servers that are known to be down.
//! A [`BreakerSet`] tracks consecutive failures per authority hostname
//! (keyed by an interned [`NameId`], so the per-attempt check hashes one
//! `u32`): after [`BreakerPolicy::failure_threshold`] consecutive
//! failures the authority's breaker *trips* and subsequent attempts are
//! short-circuited without touching the network.
//!
//! An open breaker is not a permanent verdict. Every
//! [`BreakerPolicy::probe_interval_s`] of *simulated* time, one attempt
//! per authority is let through as a half-open probe; a successful probe
//! closes the breaker, a failed one keeps it open until the next
//! interval. Probe scheduling is a pure function of the query's sim-time
//! (`now / probe_interval_s` buckets) — never wall-clock — so breaker
//! behavior is deterministic and reproducible run-to-run.
//!
//! Each [`Resolver`](crate::Resolver) owns its breaker state (the set is
//! `Send` but deliberately not shared): worker threads of a pool learn
//! about an outage independently, which keeps outcome tallies identical
//! across thread counts when faults are deterministic scheduled windows
//! (a down-window is down for every probe inside it, so fail-fast and
//! full-ladder agree on the answer; only the attempt counts differ).

use std::cell::RefCell;

use dsec_wire::{FnvHashMap, Name, NameInterner};

/// Knobs for per-authority circuit breaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failures against one authority before its breaker
    /// trips open.
    pub failure_threshold: u32,
    /// Width of the half-open probe window, in simulated seconds: one
    /// attempt per authority is allowed through per window while open.
    pub probe_interval_s: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 3,
            probe_interval_s: 1,
        }
    }
}

/// What a breaker did, for the transition log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Closed → open: the failure threshold was crossed.
    Trip,
    /// A half-open probe attempt was let through while open.
    Probe,
    /// Open → closed: a probe succeeded.
    Close,
}

impl Transition {
    /// Human-readable label for timelines.
    pub fn label(self) -> &'static str {
        match self {
            Transition::Trip => "trip",
            Transition::Probe => "half-open probe",
            Transition::Close => "close",
        }
    }
}

/// One breaker state change, stamped with the sim-time second it
/// happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerEvent {
    /// Simulated epoch seconds of the query that caused the transition.
    pub at: u32,
    /// The authority hostname whose breaker transitioned.
    pub authority: Name,
    /// What happened.
    pub transition: Transition,
}

#[derive(Debug, Default, Clone, Copy)]
struct AuthorityState {
    /// Consecutive failures since the last success.
    consecutive_failures: u32,
    /// True while tripped open.
    open: bool,
    /// The probe bucket (`now / probe_interval_s`) whose half-open slot
    /// was already spent, if any.
    probed_bucket: Option<u32>,
}

/// Per-authority breaker states for one resolver. See the module docs.
#[derive(Debug, Default)]
pub struct BreakerSet {
    policy: BreakerPolicy,
    interner: NameInterner,
    states: RefCell<FnvHashMap<u32, AuthorityState>>,
    events: RefCell<Vec<BreakerEvent>>,
}

impl BreakerSet {
    /// An empty set: every authority starts closed (healthy).
    pub fn new(policy: BreakerPolicy) -> Self {
        BreakerSet {
            policy: BreakerPolicy {
                // A zero interval would make every open breaker probe on
                // every attempt (no short-circuiting at all); clamp.
                probe_interval_s: policy.probe_interval_s.max(1),
                failure_threshold: policy.failure_threshold.max(1),
            },
            ..BreakerSet::default()
        }
    }

    /// The (clamped) policy in force.
    pub fn policy(&self) -> BreakerPolicy {
        self.policy
    }

    /// Whether an attempt against `ns` may proceed at sim-time `now`.
    /// Closed breakers always allow; open breakers allow exactly one
    /// half-open probe per probe interval (logged as such) and
    /// short-circuit everything else.
    pub fn allow(&self, ns: &Name, now: u32) -> bool {
        let id = self.interner.intern(ns).raw();
        let mut states = self.states.borrow_mut();
        let Some(state) = states.get_mut(&id) else {
            return true;
        };
        if !state.open {
            return true;
        }
        let bucket = now / self.policy.probe_interval_s;
        if state.probed_bucket == Some(bucket) {
            return false;
        }
        state.probed_bucket = Some(bucket);
        self.events.borrow_mut().push(BreakerEvent {
            at: now,
            authority: ns.clone(),
            transition: Transition::Probe,
        });
        true
    }

    /// Records a failed exchange with `ns`; returns true when this
    /// failure tripped the breaker open.
    pub fn record_failure(&self, ns: &Name, now: u32) -> bool {
        let id = self.interner.intern(ns).raw();
        let mut states = self.states.borrow_mut();
        let state = states.entry(id).or_default();
        state.consecutive_failures = state.consecutive_failures.saturating_add(1);
        if !state.open && state.consecutive_failures >= self.policy.failure_threshold {
            state.open = true;
            self.events.borrow_mut().push(BreakerEvent {
                at: now,
                authority: ns.clone(),
                transition: Transition::Trip,
            });
            return true;
        }
        false
    }

    /// Records a successful exchange with `ns`; returns true when this
    /// success closed an open breaker.
    pub fn record_success(&self, ns: &Name, now: u32) -> bool {
        let id = self.interner.intern(ns).raw();
        let mut states = self.states.borrow_mut();
        let Some(state) = states.get_mut(&id) else {
            return false;
        };
        let was_open = state.open;
        states.remove(&id);
        if was_open {
            self.events.borrow_mut().push(BreakerEvent {
                at: now,
                authority: ns.clone(),
                transition: Transition::Close,
            });
        }
        was_open
    }

    /// How many authorities are currently tripped open.
    pub fn open_count(&self) -> usize {
        self.states.borrow().values().filter(|s| s.open).count()
    }

    /// The transition log so far, in occurrence order.
    pub fn transitions(&self) -> Vec<BreakerEvent> {
        self.events.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn tripped(set: &BreakerSet, ns: &Name, now: u32) -> bool {
        let mut tripped = false;
        for _ in 0..set.policy().failure_threshold {
            tripped = set.record_failure(ns, now);
        }
        tripped
    }

    #[test]
    fn trips_after_threshold_and_short_circuits() {
        let set = BreakerSet::new(BreakerPolicy::default());
        let ns = name("ns1.op.net");
        assert!(set.allow(&ns, 100));
        assert!(!set.record_failure(&ns, 100));
        assert!(!set.record_failure(&ns, 100));
        assert!(set.record_failure(&ns, 100), "third failure trips");
        assert_eq!(set.open_count(), 1);
        // One half-open probe per sim-second bucket, then short-circuit.
        assert!(set.allow(&ns, 100), "first attempt in bucket probes");
        assert!(!set.allow(&ns, 100), "second attempt short-circuits");
        assert!(set.allow(&ns, 101), "new bucket, new probe");
        assert!(!set.allow(&ns, 101));
    }

    #[test]
    fn successful_probe_closes_the_breaker() {
        let set = BreakerSet::new(BreakerPolicy::default());
        let ns = name("ns1.op.net");
        assert!(tripped(&set, &ns, 50));
        assert!(set.allow(&ns, 51));
        assert!(set.record_success(&ns, 51), "probe success closes");
        assert_eq!(set.open_count(), 0);
        assert!(set.allow(&ns, 51), "closed breaker allows freely");
        assert!(set.allow(&ns, 51));
        // The failure streak reset with the success.
        assert!(!set.record_failure(&ns, 52));
    }

    #[test]
    fn success_on_healthy_authority_is_free() {
        let set = BreakerSet::new(BreakerPolicy::default());
        let ns = name("ns1.op.net");
        assert!(!set.record_success(&ns, 10));
        assert!(set.transitions().is_empty());
    }

    #[test]
    fn breakers_are_independent_per_authority() {
        let set = BreakerSet::new(BreakerPolicy::default());
        let (a, b) = (name("ns1.op.net"), name("ns2.other.net"));
        assert!(tripped(&set, &a, 10));
        assert!(set.allow(&b, 10), "other authority unaffected");
        assert!(set.allow(&b, 10));
        assert_eq!(set.open_count(), 1);
    }

    #[test]
    fn transition_log_records_trip_probe_close_in_order() {
        let set = BreakerSet::new(BreakerPolicy {
            failure_threshold: 2,
            probe_interval_s: 10,
        });
        let ns = name("ns1.op.net");
        set.record_failure(&ns, 100);
        set.record_failure(&ns, 100);
        assert!(set.allow(&ns, 105), "probe in bucket 10");
        assert!(!set.allow(&ns, 109), "same bucket exhausted");
        assert!(set.allow(&ns, 110), "next bucket");
        set.record_success(&ns, 110);
        let kinds: Vec<Transition> =
            set.transitions().iter().map(|e| e.transition).collect();
        assert_eq!(
            kinds,
            vec![
                Transition::Trip,
                Transition::Probe,
                Transition::Probe,
                Transition::Close
            ]
        );
        assert_eq!(set.transitions()[0].at, 100);
        assert_eq!(set.transitions()[3].authority, ns);
    }

    #[test]
    fn zero_policy_values_are_clamped() {
        let set = BreakerSet::new(BreakerPolicy {
            failure_threshold: 0,
            probe_interval_s: 0,
        });
        assert_eq!(set.policy().failure_threshold, 1);
        assert_eq!(set.policy().probe_interval_s, 1);
        let ns = name("ns1.op.net");
        assert!(set.record_failure(&ns, 5), "threshold 1 trips immediately");
        assert!(set.allow(&ns, 5));
        assert!(!set.allow(&ns, 5));
    }
}
