//! On-path spoofing defenses and the deterministic Kaminsky race.
//!
//! A blind off-path attacker who wants to poison a resolver's cache must
//! guess every unpredictable field of the outstanding query before the
//! legitimate authority answers: the 16-bit transaction id, the source
//! port (RFC 5452), and — when the resolver randomizes qname case — the
//! 0x20 encoding of every ASCII letter in the name (draft-vixie-dnsext-
//! dns0x20). [`SpoofGuard`] is the per-resolver defense profile; the
//! entropy it yields feeds the standard race bound
//!
//! ```text
//! P(win) = 1 − (1 − 2^−bits)^spoofs
//! ```
//!
//! for an attacker sending `spoofs` forged packets per race window.
//!
//! The race itself is simulated *analytically and deterministically*: an
//! [`OnPathThreat`] carries a seed, and the outcome for a given
//! `(qname, qtype)` is a pure splitmix draw over
//! `(seed, name_hash64(qname), qtype)` compared against the bound — no
//! wall-clock, no shared RNG state, so repeat resolutions and any thread
//! interleaving agree byte-for-byte.
//!
//! Bailiwick filtering is the orthogonal defense (RFC 5452 §5.2 / the
//! classic "scrub out-of-zone records" rule): even a *won* race cannot
//! plant records for names outside the zone being queried when
//! [`SpoofGuard::strict_bailiwick`] is on.

use std::net::{Ipv4Addr, Ipv6Addr};

use dsec_wire::{name_hash64, Message, Name, RData, Record, RrType};

/// The forged A record every won race plants (the attacker's sinkhole,
/// same address the registrar-channel takeover plane serves).
pub const POISON_A: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 66);

/// The forged AAAA counterpart of [`POISON_A`].
pub const POISON_AAAA: Ipv6Addr = Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 0x66);

/// TTL of forged records: long, so a single won race sticks in caches.
pub const POISON_TTL: u32 = 86_400;

/// Per-resolver anti-spoofing defense profile.
///
/// The entropy knobs are *effective* bits: a resolver with a weak RNG or
/// a sequential transaction id has fewer effective `txid_bits` than the
/// field width, which is exactly how the pre-2008 resolvers Kaminsky
/// broke are modeled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpoofGuard {
    /// Effective entropy of the transaction id (0..=16).
    pub txid_bits: u32,
    /// Effective entropy of the UDP source port (0 = fixed port, ..=16).
    pub port_bits: u32,
    /// 0x20 qname-case randomization: ~1 extra bit per ASCII letter of
    /// the qname.
    pub use_0x20: bool,
    /// Strict bailiwick filtering: scrub every record whose owner falls
    /// outside the zone being queried before accepting a response.
    pub strict_bailiwick: bool,
}

impl Default for SpoofGuard {
    fn default() -> Self {
        SpoofGuard::hardened()
    }
}

impl SpoofGuard {
    /// A post-Kaminsky resolver: full txid and source-port entropy,
    /// 0x20 encoding, strict bailiwick. This is the default profile, so
    /// resolvers built without explicit hardening knobs behave like a
    /// patched modern resolver.
    pub fn hardened() -> Self {
        SpoofGuard {
            txid_bits: 16,
            port_bits: 16,
            use_0x20: true,
            strict_bailiwick: true,
        }
    }

    /// A pre-2008 resolver: weak transaction-id RNG (~10 effective
    /// bits), fixed source port, no 0x20, no bailiwick scrubbing.
    pub fn naive() -> Self {
        SpoofGuard {
            txid_bits: 10,
            port_bits: 0,
            use_0x20: false,
            strict_bailiwick: false,
        }
    }

    /// Total entropy an off-path spoofer must guess for a query on
    /// `qname`: txid + source port + (with 0x20) one bit per ASCII
    /// letter in the name.
    pub fn entropy_bits(&self, qname: &Name) -> u32 {
        let case_bits = if self.use_0x20 {
            qname
                .labels()
                .iter()
                .flat_map(|l| l.as_bytes())
                .filter(|b| b.is_ascii_alphabetic())
                .count() as u32
        } else {
            0
        };
        self.txid_bits + self.port_bits + case_bits
    }

    /// The analytic probability that at least one of `spoofs` forged
    /// packets matches all guessable fields before the legitimate answer
    /// lands: `1 − (1 − 2^−bits)^spoofs`.
    pub fn race_success_probability(&self, qname: &Name, spoofs: u32) -> f64 {
        let bits = self.entropy_bits(qname);
        if bits >= 1024 {
            return 0.0;
        }
        let per_packet = (0.5f64).powi(bits as i32);
        1.0 - (1.0 - per_packet).powi(spoofs as i32)
    }

    /// Drops every record whose owner name is not at/under `bailiwick`,
    /// returning how many were scrubbed. No-op unless
    /// [`SpoofGuard::strict_bailiwick`] is set.
    pub fn scrub_records(&self, records: &mut Vec<Record>, bailiwick: &Name) -> usize {
        if !self.strict_bailiwick {
            return 0;
        }
        let before = records.len();
        records.retain(|r| r.name.is_subdomain_of(bailiwick));
        before - records.len()
    }

    /// Applies [`SpoofGuard::scrub_records`] to every section of a
    /// response message.
    pub fn scrub_response(&self, resp: &mut Message, bailiwick: &Name) -> usize {
        self.scrub_records(&mut resp.answers, bailiwick)
            + self.scrub_records(&mut resp.authorities, bailiwick)
            + self.scrub_records(&mut resp.additionals, bailiwick)
    }
}

/// An on-path/off-path spoofing threat aimed at one zone: every query
/// for a name at/under `zone` is raced by `spoofs_per_race` forged
/// packets. Produced by the attack plane's `OnPathVector::KaminskyRace`
/// campaign arm and attached to resolvers by the traffic driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnPathThreat {
    /// Zone whose queries are raced.
    pub zone: Name,
    /// Forged packets the attacker lands inside one race window.
    pub spoofs_per_race: u32,
    /// Seed of the deterministic race draw.
    pub seed: u64,
}

impl OnPathThreat {
    /// A threat against `zone` with the given packet budget and seed.
    pub fn new(zone: Name, spoofs_per_race: u32, seed: u64) -> Self {
        OnPathThreat {
            zone,
            spoofs_per_race,
            seed,
        }
    }

    /// Whether a query for `(qname, qtype)` is in this threat's blast
    /// radius. DNSKEY/DS fetches are chain maintenance, not data the
    /// Kaminsky payload targets, so they are not raced.
    pub fn covers(&self, qname: &Name, qtype: RrType) -> bool {
        !matches!(qtype, RrType::Dnskey | RrType::Ds) && qname.is_subdomain_of(&self.zone)
    }

    /// The deterministic race outcome for `(qname, qtype)` under defense
    /// profile `guard`: a pure splitmix draw over
    /// `(seed, name_hash64(qname), qtype)` compared against the analytic
    /// bound. Every retransmission and every worker computes the same
    /// answer, which keeps multi-threaded tallies byte-identical.
    pub fn race_won(&self, guard: &SpoofGuard, qname: &Name, qtype: RrType) -> bool {
        let p = guard.race_success_probability(qname, self.spoofs_per_race);
        if p <= 0.0 {
            return false;
        }
        let mix = splitmix64(
            self.seed
                ^ name_hash64(qname)
                ^ (qtype.number() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        // 53 uniform mantissa bits → a draw in [0, 1).
        let draw = (mix >> 11) as f64 / (1u64 << 53) as f64;
        draw < p
    }

    /// The forged response a won race substitutes for the legitimate
    /// one: an authoritative answer pointing `qname` at the attacker's
    /// sinkhole, plus the classic Kaminsky payload — out-of-bailiwick
    /// records trying to plant the attacker's nameserver over the target
    /// zone's *parent* neighborhood. Strict bailiwick scrubbing removes
    /// exactly those extras.
    pub fn forged_response(&self, query: &Message) -> Message {
        let mut resp = query.response_to();
        resp.flags.authoritative = true;
        let Some(q) = query.questions.first() else {
            return resp;
        };
        let rdata = match q.qtype {
            RrType::Aaaa => RData::Aaaa(POISON_AAAA),
            _ => RData::A(POISON_A),
        };
        resp.answers
            .push(Record::new(q.name.clone(), POISON_TTL, rdata));
        // Out-of-bailiwick payload: an A record for a name *outside* the
        // attacked zone, smuggled into the answer section. Only a
        // resolver without strict bailiwick filtering admits it.
        if let Some(outside) = out_of_bailiwick_target(&self.zone) {
            resp.answers
                .push(Record::new(outside, POISON_TTL, RData::A(POISON_A)));
        }
        resp
    }
}

/// A name guaranteed to be outside `zone`'s bailiwick: a sibling label
/// under the zone's parent (`victim.nl` → `pwned-sibling.nl`). `None`
/// only for a threat against the root, whose bailiwick is everything.
fn out_of_bailiwick_target(zone: &Name) -> Option<Name> {
    let parent = zone.parent()?;
    parent.child("pwned-sibling").ok()
}

/// The splitmix64 finalizer: one deterministic well-mixed draw per key.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn hardened_entropy_dwarfs_naive() {
        let qname = name("www.victim.nl");
        let hardened = SpoofGuard::hardened().entropy_bits(&qname);
        let naive = SpoofGuard::naive().entropy_bits(&qname);
        // 16 txid + 16 port + 11 letters of "wwwvictimnl".
        assert_eq!(hardened, 43);
        assert_eq!(naive, 10);
    }

    #[test]
    fn race_probability_matches_closed_form() {
        let guard = SpoofGuard::naive();
        let qname = name("w1.victim.nl");
        let p = guard.race_success_probability(&qname, 300);
        let expected = 1.0 - (1.0 - (0.5f64).powi(10)).powi(300);
        assert!((p - expected).abs() < 1e-12);
        // Hardened probability is astronomically small.
        let hp = SpoofGuard::hardened().race_success_probability(&qname, 300);
        assert!(hp < 1e-9);
    }

    #[test]
    fn race_draw_is_deterministic_and_seeded() {
        let guard = SpoofGuard::naive();
        let threat = OnPathThreat::new(name("victim.nl"), 300, 7);
        let qname = name("w1.victim.nl");
        let first = threat.race_won(&guard, &qname, RrType::A);
        for _ in 0..8 {
            assert_eq!(threat.race_won(&guard, &qname, RrType::A), first);
        }
        // Some seed flips the outcome for some name — the draw is not
        // constant.
        let flipped = (0..64u64).any(|s| {
            OnPathThreat::new(name("victim.nl"), 300, s).race_won(&guard, &qname, RrType::A)
                != first
        });
        assert!(flipped);
    }

    #[test]
    fn hardened_guard_never_loses_the_race() {
        let guard = SpoofGuard::hardened();
        let threat = OnPathThreat::new(name("victim.nl"), 4_096, 0xDEAD);
        for i in 0..512 {
            let qname = name(&format!("w{i}.victim.nl"));
            assert!(!threat.race_won(&guard, &qname, RrType::A));
        }
    }

    #[test]
    fn chain_maintenance_queries_are_not_raced() {
        let threat = OnPathThreat::new(name("victim.nl"), 300, 7);
        assert!(threat.covers(&name("www.victim.nl"), RrType::A));
        assert!(threat.covers(&name("victim.nl"), RrType::Aaaa));
        assert!(!threat.covers(&name("victim.nl"), RrType::Dnskey));
        assert!(!threat.covers(&name("victim.nl"), RrType::Ds));
        assert!(!threat.covers(&name("other.nl"), RrType::A));
    }

    #[test]
    fn forged_response_carries_out_of_bailiwick_payload() {
        let threat = OnPathThreat::new(name("victim.nl"), 300, 7);
        let query = Message::query(9, name("w1.victim.nl"), RrType::A, true);
        let forged = threat.forged_response(&query);
        assert!(forged.flags.authoritative);
        assert_eq!(forged.id, 9);
        assert_eq!(forged.answers.len(), 2);
        assert!(forged
            .answers
            .iter()
            .any(|r| !r.name.is_subdomain_of(&name("victim.nl"))));
    }

    #[test]
    fn strict_bailiwick_scrubs_only_out_of_zone() {
        let guard = SpoofGuard::hardened();
        let zone = name("victim.nl");
        let mut records = vec![
            Record::new(name("w1.victim.nl"), 300, RData::A(POISON_A)),
            Record::new(name("pwned-sibling.nl"), 300, RData::A(POISON_A)),
            Record::new(name("victim.nl"), 300, RData::A(POISON_A)),
            Record::new(name("bank.example"), 300, RData::A(POISON_A)),
        ];
        let scrubbed = guard.scrub_records(&mut records, &zone);
        assert_eq!(scrubbed, 2);
        assert!(records.iter().all(|r| r.name.is_subdomain_of(&zone)));
        // A lax guard keeps everything.
        let mut lax = vec![Record::new(name("bank.example"), 300, RData::A(POISON_A))];
        assert_eq!(SpoofGuard::naive().scrub_records(&mut lax, &zone), 0);
        assert_eq!(lax.len(), 1);
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use dsec_wire::{Name, RData, Record};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

        /// Strict bailiwick filtering never admits a record owned
        /// outside the zone cut, for any mix of in- and out-of-zone
        /// records an attacker stuffs into a response — and never
        /// drops an in-zone record while doing it.
        #[test]
        fn strict_bailiwick_admits_no_out_of_zone_record(
            picks in proptest::collection::vec(0usize..6, 0..16),
        ) {
            let bailiwick = Name::parse("victim.example").unwrap();
            let owners = [
                "victim.example",
                "www.victim.example",
                "deep.a.victim.example",
                "evil.example",
                "other.test",
                "example",
            ];
            let mut records: Vec<Record> = picks
                .iter()
                .map(|&p| Record::new(
                    Name::parse(owners[p]).unwrap(),
                    300,
                    RData::A(POISON_A),
                ))
                .collect();
            let in_zone = records
                .iter()
                .filter(|r| r.name.is_subdomain_of(&bailiwick))
                .count();
            let dropped = SpoofGuard::hardened().scrub_records(&mut records, &bailiwick);
            prop_assert_eq!(records.len(), in_zone, "an in-zone record was dropped");
            prop_assert_eq!(dropped + in_zone, picks.len(), "a record went missing");
            prop_assert!(
                records.iter().all(|r| r.name.is_subdomain_of(&bailiwick)),
                "an out-of-zone record survived the scrub"
            );
        }
    }
}
