//! # dsec-probe — the customer-perspective registrar probe
//!
//! Implements the paper's §5.1 methodology: for each registrar, buy
//! domains, try to deploy DNSSEC in every hosting arrangement, convey DS
//! records over every channel the registrar offers, and test the channels'
//! validation and authentication. The harness only uses customer-visible
//! actions, so everything it reports is *measured*, not read from
//! configuration.

#![warn(missing_docs)]

pub mod harness;
pub mod report;

pub use harness::probe_registrar;
pub use report::{DsChannel, Finding, ProbeReport};

use dsec_ecosystem::World;

/// Probes every named registrar in `names`, in order.
pub fn probe_all(world: &mut World, names: &[&str]) -> Vec<ProbeReport> {
    names
        .iter()
        .filter_map(|name| {
            let id = world.registrar_by_name(name)?;
            Some(probe_registrar(world, id))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsec_ecosystem::{
        ExternalDs, OperatorDnssec, Plan, RegistrarPolicy, Tld, TldPolicy, TldRole, WorldConfig,
        ALL_TLDS,
    };
    use dsec_wire::Name;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn world() -> World {
        World::new(WorldConfig {
            key_pool: 2,
            ..WorldConfig::default()
        })
    }

    fn policy(
        operator_dnssec: OperatorDnssec,
        external_ds: ExternalDs,
        publishes: bool,
    ) -> RegistrarPolicy {
        RegistrarPolicy {
            operator_dnssec,
            external_ds,
            tlds: ALL_TLDS
                .iter()
                .map(|&t| {
                    (
                        t,
                        TldPolicy {
                            role: TldRole::Registrar,
                            publishes_ds: publishes,
                        },
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn probe_discovers_default_signing_registrar() {
        let mut w = world();
        let id = w.add_registrar(
            "FullReg",
            name("fullreg.net"),
            policy(
                OperatorDnssec::Default,
                ExternalDs::Web { validates: true },
                true,
            ),
        );
        let report = probe_registrar(&mut w, id);
        assert_eq!(report.dnssec_default, Finding::Yes);
        assert_eq!(report.operator_support, Finding::Yes);
        assert_eq!(report.hosted_fully_deployed, Finding::Yes);
        assert_eq!(report.external_support, Finding::Yes);
        assert_eq!(report.ds_channel, Some(DsChannel::Web));
        assert_eq!(report.validates_ds, Finding::Yes);
        assert_eq!(report.external_fully_deployed, Finding::Yes);
        assert!(report.any_dnssec_support());
        // DS published for every TLD it signs in.
        assert!(report.publishes_ds.values().all(|&v| v));
    }

    #[test]
    fn probe_discovers_no_dnssec_registrar() {
        let mut w = world();
        let id = w.add_registrar(
            "NoneReg",
            name("nonereg.net"),
            RegistrarPolicy::no_dnssec(&ALL_TLDS),
        );
        let report = probe_registrar(&mut w, id);
        assert_eq!(report.dnssec_default, Finding::No);
        assert_eq!(report.operator_support, Finding::No);
        assert_eq!(report.external_support, Finding::No);
        assert!(!report.any_dnssec_support());
    }

    #[test]
    fn probe_discovers_paid_dnssec() {
        let mut w = world();
        let id = w.add_registrar(
            "GoDaddyLike",
            name("gdlike.net"),
            policy(
                OperatorDnssec::Paid {
                    cents_per_year: 3500,
                    adoption_rate: 0.0,
                },
                ExternalDs::Web { validates: false },
                true,
            ),
        );
        let report = probe_registrar(&mut w, id);
        assert_eq!(report.dnssec_default, Finding::No);
        assert_eq!(report.dnssec_paid_cents, Some(3500));
        assert_eq!(report.operator_support, Finding::Yes);
        // Non-validating web form caught by step 7.
        assert_eq!(report.validates_ds, Finding::No);
    }

    #[test]
    fn probe_discovers_plan_gated_signing() {
        let mut w = world();
        let id = w.add_registrar(
            "NameCheapLike",
            name("nclike.net"),
            policy(
                OperatorDnssec::DefaultOnPlans(vec![Plan::Premium]),
                ExternalDs::Web { validates: false },
                true,
            ),
        );
        let report = probe_registrar(&mut w, id);
        assert_eq!(report.dnssec_default, Finding::Partial);
        assert_eq!(report.operator_support, Finding::Yes);
    }

    #[test]
    fn probe_discovers_optin() {
        let mut w = world();
        let id = w.add_registrar(
            "OVHLike",
            name("ovhlike.net"),
            policy(
                OperatorDnssec::OptIn { adoption_rate: 0.2 },
                ExternalDs::Web { validates: true },
                true,
            ),
        );
        let report = probe_registrar(&mut w, id);
        assert_eq!(report.dnssec_default, Finding::No);
        assert_eq!(report.dnssec_optin, Finding::Yes);
        assert_eq!(report.validates_ds, Finding::Yes);
    }

    #[test]
    fn probe_detects_forged_email_vulnerability() {
        let mut w = world();
        let id = w.add_registrar(
            "LaxMail",
            name("laxmail.net"),
            policy(
                OperatorDnssec::Unsupported,
                ExternalDs::Email {
                    verifies_sender: false,
                    accepts_foreign_sender: false,
                    validates: false,
                },
                true,
            ),
        );
        let report = probe_registrar(&mut w, id);
        assert_eq!(report.ds_channel, Some(DsChannel::Email));
        assert_eq!(report.verifies_email, Finding::No);
        assert_eq!(report.accepts_foreign_email, Finding::No);
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("forged email sender")));
    }

    #[test]
    fn probe_detects_foreign_address_acceptance() {
        let mut w = world();
        let id = w.add_registrar(
            "WorstMail",
            name("worstmail.net"),
            policy(
                OperatorDnssec::Unsupported,
                ExternalDs::Email {
                    verifies_sender: false,
                    accepts_foreign_sender: true,
                    validates: false,
                },
                true,
            ),
        );
        let report = probe_registrar(&mut w, id);
        assert_eq!(report.accepts_foreign_email, Finding::Yes);
    }

    #[test]
    fn probe_verified_email_channel_is_clean() {
        let mut w = world();
        let id = w.add_registrar(
            "StrictMail",
            name("strictmail.net"),
            policy(
                OperatorDnssec::Unsupported,
                ExternalDs::Email {
                    verifies_sender: true,
                    accepts_foreign_sender: false,
                    validates: false,
                },
                true,
            ),
        );
        let report = probe_registrar(&mut w, id);
        assert_eq!(report.verifies_email, Finding::Yes);
        assert_eq!(report.accepts_foreign_email, Finding::No);
        assert!(report.notes.iter().all(|n| !n.contains("SECURITY")));
    }

    #[test]
    fn probe_discovers_fetch_dnskey_channel() {
        let mut w = world();
        let id = w.add_registrar(
            "PCExtremeLike",
            name("pcxlike.net"),
            policy(
                OperatorDnssec::Default,
                ExternalDs::FetchDnskey,
                true,
            ),
        );
        let report = probe_registrar(&mut w, id);
        assert_eq!(report.ds_channel, Some(DsChannel::FetchDnskey));
        assert_eq!(report.validates_ds, Finding::Yes);
        assert_eq!(report.external_fully_deployed, Finding::Yes);
    }

    #[test]
    fn probe_discovers_home_tld_only_ds_publication() {
        // Loopia-like: signs everywhere, uploads DS only for .se.
        let mut w = world();
        let mut tlds: std::collections::BTreeMap<Tld, TldPolicy> = ALL_TLDS
            .iter()
            .map(|&t| (t, TldPolicy::without_ds(TldRole::Registrar)))
            .collect();
        tlds.insert(Tld::Se, TldPolicy::full(TldRole::Registrar));
        let id = w.add_registrar(
            "LoopiaLike",
            name("loopialike.se"),
            RegistrarPolicy {
                operator_dnssec: OperatorDnssec::Default,
                external_ds: ExternalDs::Email {
                    verifies_sender: true,
                    accepts_foreign_sender: false,
                    validates: false,
                },
                tlds,
            },
        );
        let report = probe_registrar(&mut w, id);
        assert_eq!(report.hosted_fully_deployed, Finding::Partial);
        assert_eq!(report.publishes_ds.get(&Tld::Se), Some(&true));
        assert_eq!(report.publishes_ds.get(&Tld::Com), Some(&false));
        // External upload still works for .com (the §6.3 Loopia test).
        assert_eq!(report.external_support, Finding::Yes);
    }

    #[test]
    fn probe_all_skips_unknown_names() {
        let mut w = world();
        w.add_registrar(
            "OnlyOne",
            name("onlyone.net"),
            RegistrarPolicy::no_dnssec(&ALL_TLDS),
        );
        let reports = probe_all(&mut w, &["OnlyOne", "Ghost"]);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].registrar, "OnlyOne");
    }
}
