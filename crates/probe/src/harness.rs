//! The 8-step probe workflow (§5.1), executed as a paying customer
//! against the simulated registrars.
//!
//! The harness may only use customer-visible actions — `purchase`,
//! `enable_dnssec`, `switch_to_owner_hosting`, `upload_ds` — and DNS
//! queries; the registrar's *policy* is never read directly. Everything
//! in the resulting [`ProbeReport`] is therefore *discovered*, exactly as
//! the paper's authors discovered it.

use dsec_dnssec::{classify, DeploymentStatus};
use dsec_ecosystem::{
    ActionError, DsSubmission, Hosting, Plan, RegistrarId, Tld, UploadOutcome, World,
};
use dsec_wire::DsRdata;

use crate::report::{DsChannel, Finding, ProbeReport};

/// Runs the full probe against one registrar.
pub fn probe_registrar(world: &mut World, registrar: RegistrarId) -> ProbeReport {
    let info = world.registrar(registrar);
    let mut report = ProbeReport::new(info.name.clone(), info.operator_ns_domain(world));
    // Re-probing the same registrar (OVH and NameCheap appear in both of
    // the paper's lists) buys fresh domains.
    let nonce = world.domain_count();
    let email = "probe@securepki.org".to_string();

    // Pick a TLD this registrar actually sells, preferring .com.
    let tld = [Tld::Com, Tld::Net, Tld::Org, Tld::Nl, Tld::Se]
        .into_iter()
        .find(|&t| world.resolve_sponsor(registrar, t).is_ok());
    let Some(tld) = tld else {
        report.notes.push("registrar sells none of the studied TLDs".into());
        return report;
    };

    // ---- Steps 1–3: registrar-hosted purchase, default / opt-in / paid.
    probe_hosted(world, registrar, tld, &email, nonce, &mut report);

    // ---- Per-TLD DS publication (Table 3's ▲): repeat the hosted
    // experiment in every TLD the registrar sells.
    if report.operator_support == Finding::Yes {
        for t in dsec_ecosystem::ALL_TLDS {
            if world.resolve_sponsor(registrar, t).is_err() {
                continue;
            }
            if let Some(published) = probe_ds_publication(world, registrar, t, &email, nonce) {
                report.publishes_ds.insert(t, published);
            }
        }
    }

    // ---- Steps 4–8: owner-operated domain, DS conveyance channels.
    probe_external(world, registrar, tld, &email, nonce, &mut report);

    report
}

/// Steps 1–3: buy a hosted domain on each plan and see whether / how it
/// gets signed.
fn probe_hosted(
    world: &mut World,
    registrar: RegistrarId,
    tld: Tld,
    email: &str,
    nonce: usize,
    report: &mut ProbeReport,
) {
    let mut default_free = false;
    let mut default_premium = false;
    let mut enabled_domain = None;

    for (plan, flag) in [(Plan::Free, false), (Plan::Premium, true)] {
        let label = format!(
            "probe-{}-{nonce}-{}",
            slug(&report.registrar),
            if flag { "p" } else { "f" }
        );
        let Ok(domain) = world.purchase(
            registrar,
            &label,
            tld,
            Hosting::Registrar { plan },
            email.to_string(),
        ) else {
            continue;
        };
        let signed = world.observation_of(&domain).has_dnskey();
        if flag {
            default_premium = signed;
        } else {
            default_free = signed;
        }
        if signed && enabled_domain.is_none() {
            enabled_domain = Some(domain);
        } else if !signed && enabled_domain.is_none() {
            // Try opting in for free.
            match world.enable_dnssec(&domain) {
                Ok(()) => {
                    report.dnssec_optin = Finding::Yes;
                    enabled_domain = Some(domain);
                }
                Err(ActionError::RequiresPayment { cents_per_year }) => {
                    report.dnssec_paid_cents = Some(cents_per_year);
                    if world.enable_dnssec_paid(&domain).is_ok() {
                        enabled_domain = Some(domain);
                    }
                }
                Err(_) => {}
            }
        }
    }

    report.dnssec_default = match (default_free, default_premium) {
        (true, true) => Finding::Yes,
        (false, true) | (true, false) => Finding::Partial, // plan-gated
        (false, false) => Finding::No,
    };
    if report.dnssec_default == Finding::Partial {
        report
            .notes
            .push("DNSSEC by default only on some plans".into());
    }

    match &enabled_domain {
        Some(domain) => {
            report.operator_support = Finding::Yes;
            // Step 3: verify complete deployment.
            let obs = world.observation_of(domain);
            let status = classify(domain, &obs, world.today.epoch_seconds());
            report.hosted_fully_deployed = match status {
                DeploymentStatus::FullyDeployed => Finding::Yes,
                DeploymentStatus::PartiallyDeployed => Finding::Partial,
                _ => Finding::No,
            };
        }
        None => {
            report.operator_support = Finding::No;
        }
    }
}

/// Buys one hosted, signed domain in `tld` and reports whether a DS
/// actually appeared in the registry.
fn probe_ds_publication(
    world: &mut World,
    registrar: RegistrarId,
    tld: Tld,
    email: &str,
    nonce: usize,
) -> Option<bool> {
    let label = format!(
        "probe-{}-{nonce}-dspub",
        slug(&world.registrar(registrar).name)
    );
    let domain = world
        .purchase(
            registrar,
            &label,
            tld,
            Hosting::Registrar { plan: Plan::Premium },
            email.to_string(),
        )
        .ok()?;
    if !world.observation_of(&domain).has_dnskey() {
        // Not signed by default on this TLD either; try opting in.
        if world.enable_dnssec(&domain).is_err() && world.enable_dnssec_paid(&domain).is_err() {
            return None;
        }
    }
    if !world.observation_of(&domain).has_dnskey() {
        return None;
    }
    Some(world.observation_of(&domain).has_ds())
}

/// Steps 4–8: switch to an owner-run nameserver, sign it ourselves, and
/// try every DS conveyance channel, including the security tests.
fn probe_external(
    world: &mut World,
    registrar: RegistrarId,
    tld: Tld,
    email: &str,
    nonce: usize,
    report: &mut ProbeReport,
) {
    let label = format!("probe-{}-{nonce}-ext", slug(&report.registrar));
    let Ok(domain) = world.purchase(
        registrar,
        &label,
        tld,
        Hosting::Registrar { plan: Plan::Free },
        email.to_string(),
    ) else {
        return;
    };
    // Step 4: disable registrar hosting, run our own nameserver.
    if world.switch_to_owner_hosting(&domain).is_err() {
        report
            .notes
            .push("registrar does not allow external nameservers".into());
        return;
    }
    let Ok(real_ds) = world.owner_sign_zone(&domain) else {
        return;
    };

    // Step 5: find a working channel.
    let channels = [
        (DsChannel::Web, DsSubmission::Web),
        (
            DsChannel::Email,
            DsSubmission::Email {
                claimed_from: email.to_string(),
                actual_from: email.to_string(),
            },
        ),
        (DsChannel::Chat, DsSubmission::Chat),
        (DsChannel::Ticket, DsSubmission::Ticket),
        (DsChannel::FetchDnskey, DsSubmission::FetchDnskey),
    ];
    for (channel, submission) in channels {
        match world.upload_ds(&domain, real_ds.clone(), submission) {
            Ok(UploadOutcome::ChannelUnsupported) => continue,
            Ok(UploadOutcome::DnssecUnsupported) => {
                report
                    .notes
                    .push(format!("channel exists but DS never published for {tld}"));
                report.ds_channel = Some(channel);
                break;
            }
            Ok(UploadOutcome::Accepted) => {
                report.external_support = Finding::Yes;
                report.ds_channel = Some(channel);
                break;
            }
            Ok(UploadOutcome::AcceptedOnWrongDomain(victim)) => {
                report.external_support = Finding::Yes;
                report.ds_channel = Some(channel);
                report.notes.push(format!(
                    "SECURITY: agent installed our DS on {victim} (chat mishap)"
                ));
                // Retry; with the mishap logged, continue probing.
                let _ = world.upload_ds(&domain, real_ds.clone(), DsSubmission::Chat);
                break;
            }
            Ok(UploadOutcome::RejectedInvalid) | Ok(UploadOutcome::EmailNotVerified) => {
                // Channel exists (we got a substantive response).
                report.external_support = Finding::Yes;
                report.ds_channel = Some(channel);
                break;
            }
            Err(_) => continue,
        }
    }

    let Some(channel) = report.ds_channel else {
        report.external_support = Finding::No;
        return;
    };

    // Step 6: verify the DS deployment completed.
    let obs = world.observation_of(&domain);
    report.external_fully_deployed =
        match classify(&domain, &obs, world.today.epoch_seconds()) {
            DeploymentStatus::FullyDeployed => Finding::Yes,
            DeploymentStatus::PartiallyDeployed => Finding::Partial,
            _ => Finding::No,
        };

    // Step 7: upload a DS that does NOT match the served DNSKEY. The
    // FetchDnskey channel takes no customer data at all, so there is
    // nothing to corrupt — inherently validated.
    if channel == DsChannel::FetchDnskey {
        report.validates_ds = Finding::Yes;
        return;
    }
    let wrong_ds = DsRdata {
        key_tag: real_ds.key_tag.wrapping_add(1),
        algorithm: real_ds.algorithm,
        digest_type: real_ds.digest_type,
        digest: real_ds.digest.iter().map(|b| b ^ 0x5A).collect(),
    };
    let submission = submission_for(channel, email, email);
    match world.upload_ds(&domain, wrong_ds, submission) {
        Ok(UploadOutcome::RejectedInvalid) => report.validates_ds = Finding::Yes,
        Ok(UploadOutcome::Accepted) | Ok(UploadOutcome::AcceptedOnWrongDomain(_)) => {
            report.validates_ds = Finding::No;
            report
                .notes
                .push("accepted arbitrary bytes as a DS record".into());
            // Restore the correct DS for subsequent checks.
            let _ = world.upload_ds(&domain, real_ds.clone(), submission_for(channel, email, email));
        }
        Ok(UploadOutcome::DnssecUnsupported) => report.validates_ds = Finding::NotApplicable,
        _ => {}
    }

    // Step 8: email authentication tests (only for email channels).
    if channel == DsChannel::Email {
        // Forged From: header from an attacker-controlled mailbox.
        let forged = DsSubmission::Email {
            claimed_from: email.to_string(),
            actual_from: "attacker@evil.example".to_string(),
        };
        match world.upload_ds(&domain, real_ds.clone(), forged) {
            Ok(UploadOutcome::Accepted) => {
                report.verifies_email = Finding::No;
                report
                    .notes
                    .push("SECURITY: accepted DS from forged email sender".into());
            }
            Ok(UploadOutcome::EmailNotVerified) => report.verifies_email = Finding::Yes,
            _ => {}
        }
        // Mail from a completely different address, no forgery at all.
        let foreign = DsSubmission::Email {
            claimed_from: "stranger@elsewhere.example".to_string(),
            actual_from: "stranger@elsewhere.example".to_string(),
        };
        match world.upload_ds(&domain, real_ds, foreign) {
            Ok(UploadOutcome::Accepted) => {
                report.accepts_foreign_email = Finding::Yes;
                report.notes.push(
                    "SECURITY: accepted DS from an address other than the registrant's".into(),
                );
            }
            Ok(UploadOutcome::EmailNotVerified) => {
                report.accepts_foreign_email = Finding::No;
            }
            _ => {}
        }
    }
}

fn submission_for(channel: DsChannel, claimed: &str, actual: &str) -> DsSubmission {
    match channel {
        DsChannel::Web => DsSubmission::Web,
        DsChannel::Email => DsSubmission::Email {
            claimed_from: claimed.to_string(),
            actual_from: actual.to_string(),
        },
        DsChannel::Chat => DsSubmission::Chat,
        DsChannel::Ticket => DsSubmission::Ticket,
        DsChannel::FetchDnskey => DsSubmission::FetchDnskey,
    }
}

fn slug(s: &str) -> String {
    s.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase()
}

/// Extension helpers on ecosystem types used by the harness.
trait RegistrarExt {
    /// The nameserver domain of the registrar's hosting operator.
    fn operator_ns_domain(&self, world: &World) -> String;
}

impl RegistrarExt for dsec_ecosystem::Registrar {
    fn operator_ns_domain(&self, world: &World) -> String {
        world.operator(self.operator).ns_domain.to_string()
    }
}
