//! The structured result of probing one registrar — the data behind one
//! row of Table 2 or Table 3.

use std::collections::BTreeMap;

use dsec_ecosystem::Tld;

/// Three-valued probe findings (the paper's ● / ▲ / ✗).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Finding {
    /// Supported / verified (●).
    Yes,
    /// Partially / conditionally (▲).
    Partial,
    /// Unsupported / not done (✗).
    No,
    /// Not applicable / not probed (–).
    NotApplicable,
}

impl Finding {
    /// The paper's table glyph.
    pub fn glyph(self) -> &'static str {
        match self {
            Finding::Yes => "●",
            Finding::Partial => "▲",
            Finding::No => "✗",
            Finding::NotApplicable => "-",
        }
    }

    /// Plain-ASCII variant for terminals without the glyphs.
    pub fn ascii(self) -> &'static str {
        match self {
            Finding::Yes => "Y",
            Finding::Partial => "~",
            Finding::No => "x",
            Finding::NotApplicable => "-",
        }
    }
}

/// Which DS conveyance channel the registrar offered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DsChannel {
    /// Web form.
    Web,
    /// Email.
    Email,
    /// Live chat with an agent.
    Chat,
    /// Support ticket.
    Ticket,
    /// Registrar fetches the DNSKEY itself (PCExtreme).
    FetchDnskey,
}

/// One registrar's probe outcome.
#[derive(Debug, Clone)]
pub struct ProbeReport {
    /// Registrar display name.
    pub registrar: String,
    /// Nameserver domain (the operator key).
    pub ns_domain: String,

    // --- registrar as DNS operator (§5.2) ---
    /// Signed automatically on a stock purchase.
    pub dnssec_default: Finding,
    /// Signed after a free opt-in.
    pub dnssec_optin: Finding,
    /// Signed only after paying; the price in cents if so.
    pub dnssec_paid_cents: Option<u32>,
    /// Any way at all to get a hosted domain signed.
    pub operator_support: Finding,
    /// Once signed, was the deployment complete (DS uploaded and chain
    /// validating)?
    pub hosted_fully_deployed: Finding,

    // --- owner as DNS operator (§5.3) ---
    /// Any DS conveyance channel at all.
    pub external_support: Finding,
    /// The channel that worked, if any.
    pub ds_channel: Option<DsChannel>,
    /// The registrar validated the DS against the served DNSKEY.
    pub validates_ds: Finding,
    /// The email channel authenticated the sender.
    pub verifies_email: Finding,
    /// The email channel accepted a completely foreign address (the worst
    /// observation of §6.4).
    pub accepts_foreign_email: Finding,
    /// A correct end-to-end owner-operated deployment was achieved.
    pub external_fully_deployed: Finding,

    // --- per-TLD DS publication (Table 3's ▲ column) ---
    /// For each TLD the registrar sells with hosted signing: does the DS
    /// actually reach the registry?
    pub publishes_ds: BTreeMap<Tld, bool>,

    /// Free-form anecdotes collected along the way (wrong-domain installs,
    /// forged email acceptance, …).
    pub notes: Vec<String>,
}

impl ProbeReport {
    /// A blank report for `registrar`.
    pub fn new(registrar: impl Into<String>, ns_domain: impl Into<String>) -> Self {
        ProbeReport {
            registrar: registrar.into(),
            ns_domain: ns_domain.into(),
            dnssec_default: Finding::No,
            dnssec_optin: Finding::No,
            dnssec_paid_cents: None,
            operator_support: Finding::No,
            hosted_fully_deployed: Finding::NotApplicable,
            external_support: Finding::No,
            ds_channel: None,
            validates_ds: Finding::NotApplicable,
            verifies_email: Finding::NotApplicable,
            accepts_foreign_email: Finding::NotApplicable,
            external_fully_deployed: Finding::NotApplicable,
            publishes_ds: BTreeMap::new(),
            notes: Vec::new(),
        }
    }

    /// Whether this registrar supports DNSSEC in *some* arrangement — the
    /// paper's headline counting.
    pub fn any_dnssec_support(&self) -> bool {
        self.operator_support == Finding::Yes || self.external_support == Finding::Yes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs() {
        assert_eq!(Finding::Yes.glyph(), "●");
        assert_eq!(Finding::Partial.glyph(), "▲");
        assert_eq!(Finding::No.glyph(), "✗");
        assert_eq!(Finding::NotApplicable.ascii(), "-");
    }

    #[test]
    fn blank_report_supports_nothing() {
        let r = ProbeReport::new("X", "x.net");
        assert!(!r.any_dnssec_support());
        assert_eq!(r.dnssec_default, Finding::No);
    }
}
