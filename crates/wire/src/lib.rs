//! # dsec-wire — the DNS substrate
//!
//! A standalone, sans-I/O DNS data-model and wire-format layer in the style
//! of smoltcp: everything is plain data plus encode/decode, with no sockets,
//! no runtime, and explicit typed errors.
//!
//! - [`name`]: domain names with RFC 4034 §6.1 canonical ordering;
//! - [`intern`]: a striped name interner giving hot paths dense `u32`
//!   keys and a stable cross-run name hash;
//! - [`fnv`]: an FNV-1a hasher for simulator-internal Name-keyed maps;
//! - [`rrtype`]: TYPE/CLASS registries and the NSEC type bitmap;
//! - [`rdata`]: typed RDATA for A/AAAA/NS/CNAME/SOA/MX/TXT/DNSKEY/DS/
//!   RRSIG/NSEC/CDS/CDNSKEY plus an opaque RFC 3597 fallback;
//! - [`record`]: records, RRsets, and the canonical RRset stream DNSSEC
//!   signs;
//! - [`wire`]: the low-level reader/writer with RFC 1035 name compression;
//! - [`message`]: full messages with EDNS(0) and the DO/AD/CD bits;
//! - [`zone`]: the zone model with a master-file text form.

#![warn(missing_docs)]

pub mod fnv;
pub mod intern;
pub mod message;
pub mod name;
pub mod rdata;
pub mod record;
pub mod rrtype;
pub mod wire;
pub mod zone;

pub use fnv::{FnvBuildHasher, FnvHashMap, FnvHashSet, FnvHasher};
pub use intern::{name_hash64, NameId, NameInterner};
pub use message::{Edns, Flags, Message, Opcode, Question, Rcode};
pub use name::{Label, Name};
pub use rdata::{DnskeyRdata, DsRdata, RData, RrsigRdata, SoaRdata};
pub use record::{group_rrsets, Record, RrSet};
pub use rrtype::{RrClass, RrType, TypeBitmap};
pub use wire::{WireReader, WireWriter};
pub use zone::Zone;

/// Errors from parsing or constructing DNS data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before a complete value was read.
    Truncated,
    /// A label of zero length appeared inside a name's text form.
    EmptyLabel,
    /// A label exceeded 63 octets.
    LabelTooLong(usize),
    /// A name exceeded 255 wire octets.
    NameTooLong(usize),
    /// A `\`-escape in a name's text form was malformed.
    BadEscape,
    /// A compression pointer pointed forward (or at itself).
    BadPointer,
    /// Compression pointers formed a loop.
    PointerLoop,
    /// Reserved label type bits (0x40/0x80) were used.
    BadLabelType(u8),
    /// An NSEC type bitmap violated the window-block grammar.
    BadTypeBitmap,
    /// RDATA did not occupy exactly RDLENGTH bytes.
    RdataLengthMismatch {
        /// RDLENGTH from the record header.
        expected: usize,
        /// Bytes the typed parser actually consumed.
        actual: usize,
    },
    /// A message carried more than one OPT record.
    DuplicateOpt,
    /// Bytes remained after the last section.
    TrailingBytes(usize),
    /// An RRset constructor was given zero records.
    EmptyRrSet,
    /// An RRset constructor was given records with mixed (name, class, type).
    MixedRrSet,
    /// A record's owner is not at/below the zone origin.
    OutOfZone {
        /// The offending owner name.
        name: String,
        /// The zone origin.
        origin: String,
    },
    /// A zone text line could not be parsed.
    ZoneSyntax {
        /// 1-based line number (0 for whole-file problems).
        line: usize,
        /// What was wrong.
        what: &'static str,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated input"),
            WireError::EmptyLabel => write!(f, "empty label"),
            WireError::LabelTooLong(n) => write!(f, "label of {n} octets exceeds 63"),
            WireError::NameTooLong(n) => write!(f, "name of {n} octets exceeds 255"),
            WireError::BadEscape => write!(f, "malformed escape sequence"),
            WireError::BadPointer => write!(f, "compression pointer does not point backwards"),
            WireError::PointerLoop => write!(f, "compression pointer loop"),
            WireError::BadLabelType(b) => write!(f, "reserved label type {b:#04x}"),
            WireError::BadTypeBitmap => write!(f, "malformed NSEC type bitmap"),
            WireError::RdataLengthMismatch { expected, actual } => {
                write!(f, "RDATA length mismatch: RDLENGTH {expected}, parsed {actual}")
            }
            WireError::DuplicateOpt => write!(f, "more than one OPT record"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::EmptyRrSet => write!(f, "RRset must contain at least one record"),
            WireError::MixedRrSet => {
                write!(f, "RRset records must share owner, class, and type")
            }
            WireError::OutOfZone { name, origin } => {
                write!(f, "{name} is outside zone {origin}")
            }
            WireError::ZoneSyntax { line, what } => {
                write!(f, "zone syntax error at line {line}: {what}")
            }
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy for a random valid label string (letters/digits/hyphen).
    fn label_str() -> impl Strategy<Value = String> {
        proptest::string::string_regex("[a-zA-Z0-9-]{1,20}").unwrap()
    }

    fn arb_name() -> impl Strategy<Value = Name> {
        proptest::collection::vec(label_str(), 0..5)
            .prop_map(|labels| Name::parse(&labels.join(".")).unwrap())
    }

    fn arb_rdata() -> impl Strategy<Value = RData> {
        prop_oneof![
            any::<[u8; 4]>().prop_map(|b| RData::A(b.into())),
            any::<[u8; 16]>().prop_map(|b| RData::Aaaa(b.into())),
            arb_name().prop_map(RData::Ns),
            arb_name().prop_map(RData::Cname),
            (any::<u16>(), arb_name())
                .prop_map(|(preference, exchange)| RData::Mx { preference, exchange }),
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..50), 1..4)
                .prop_map(RData::Txt),
            (any::<u16>(), any::<u8>(), any::<u8>(), proptest::collection::vec(any::<u8>(), 1..64))
                .prop_map(|(key_tag, algorithm, digest_type, digest)| RData::Ds(DsRdata {
                    key_tag,
                    algorithm,
                    digest_type,
                    digest
                })),
            (any::<u16>(), any::<u8>(), proptest::collection::vec(any::<u8>(), 1..64)).prop_map(
                |(flags, algorithm, public_key)| RData::Dnskey(DnskeyRdata {
                    flags,
                    protocol: 3,
                    algorithm,
                    public_key
                })
            ),
        ]
    }

    proptest! {
        #[test]
        fn name_text_round_trip(n in arb_name()) {
            let text = n.to_string();
            prop_assert_eq!(Name::parse(&text).unwrap(), n);
        }

        #[test]
        fn name_wire_round_trip(n in arb_name()) {
            let mut w = WireWriter::uncompressed();
            w.put_name(&n);
            let buf = w.into_bytes();
            let mut r = WireReader::new(&buf);
            prop_assert_eq!(r.get_name().unwrap(), n);
        }

        #[test]
        fn canonical_cmp_is_total_order(a in arb_name(), b in arb_name(), c in arb_name()) {
            use std::cmp::Ordering;
            // Antisymmetry
            prop_assert_eq!(a.canonical_cmp(&b), b.canonical_cmp(&a).reverse());
            // Transitivity (only check the Less chain)
            if a.canonical_cmp(&b) == Ordering::Less && b.canonical_cmp(&c) == Ordering::Less {
                prop_assert_eq!(a.canonical_cmp(&c), Ordering::Less);
            }
            // Reflexivity via equality
            prop_assert_eq!(a.canonical_cmp(&a), Ordering::Equal);
        }

        #[test]
        fn rdata_wire_round_trip(rd in arb_rdata()) {
            let wire = rd.to_wire();
            let mut r = WireReader::new(&wire);
            let back = RData::decode(rd.rtype(), &mut r, wire.len()).unwrap();
            prop_assert_eq!(back, rd);
        }

        #[test]
        fn record_wire_round_trip(n in arb_name(), ttl in any::<u32>(), rd in arb_rdata()) {
            let rec = Record::new(n, ttl, rd);
            let mut w = WireWriter::new();
            rec.encode(&mut w);
            let buf = w.into_bytes();
            let mut r = WireReader::new(&buf);
            prop_assert_eq!(Record::decode(&mut r).unwrap(), rec);
        }

        #[test]
        fn message_wire_round_trip(
            id in any::<u16>(),
            qname in arb_name(),
            records in proptest::collection::vec((arb_name(), any::<u32>(), arb_rdata()), 0..6),
            dnssec_ok in any::<bool>(),
        ) {
            let mut msg = Message::query(id, qname, RrType::A, dnssec_ok);
            for (n, ttl, rd) in records {
                msg.answers.push(Record::new(n, ttl, rd));
            }
            let back = Message::from_wire(&msg.to_wire()).unwrap();
            prop_assert_eq!(back, msg);
        }

        #[test]
        fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Message::from_wire(&data);
        }

        #[test]
        fn zone_text_round_trip(
            records in proptest::collection::vec((label_str(), any::<u32>(), arb_rdata()), 0..8)
        ) {
            let origin = Name::parse("example.com").unwrap();
            let mut zone = Zone::new(origin.clone());
            for (l, ttl, rd) in records {
                let owner = origin.child(&l).unwrap();
                zone.add(Record::new(owner, ttl, rd)).unwrap();
            }
            let back = Zone::from_text(&zone.to_text()).unwrap();
            prop_assert_eq!(back, zone);
        }
    }
}
