//! Zone model: the set of RRsets a single organization serves, with a
//! master-file style text form (serialize and parse).
//!
//! The registry/registrar simulation manipulates zones through this type:
//! TLD registries hold delegation-only zones (NS + DS per child), and DNS
//! operators hold the customer zones that get signed.

use std::collections::BTreeMap;
use std::fmt;

use crate::name::Name;
use crate::rdata::{DnskeyRdata, DsRdata, Nsec3ParamRdata, Nsec3Rdata, RData, RrsigRdata, SoaRdata};
use crate::record::{Record, RrSet};
use crate::rrtype::{RrType, TypeBitmap};
use crate::WireError;

/// A DNS zone: an origin name and the records at or below it.
///
/// Records are indexed by (owner, type); each index entry is a non-empty
/// record list forming one RRset. Owner names are stored in canonical
/// (lowercase) form for lookup purposes; the records keep their case.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Zone {
    origin: Name,
    records: BTreeMap<(Name, u16), Vec<Record>>,
}

impl Zone {
    /// An empty zone rooted at `origin`.
    pub fn new(origin: Name) -> Self {
        Zone {
            origin,
            records: BTreeMap::new(),
        }
    }

    /// The zone origin.
    pub fn origin(&self) -> &Name {
        &self.origin
    }

    /// Index key for *insertion*: owners are stored in canonical form so
    /// iteration APIs hand out lowercase names.
    fn key(name: &Name, rtype: RrType) -> (Name, u16) {
        (name.to_canonical(), rtype.number())
    }

    /// Index key for *lookup*: `Name`'s `Ord`/`Eq` already fold ASCII
    /// case, so probing skips the per-label lowercase allocation that
    /// `to_canonical` pays.
    fn probe(name: &Name, rtype: RrType) -> (Name, u16) {
        (name.clone(), rtype.number())
    }

    /// Adds a record. Returns an error if the owner is outside the zone.
    /// Exact duplicates are ignored (DNS RRsets are sets).
    pub fn add(&mut self, record: Record) -> Result<(), WireError> {
        if !record.name.is_subdomain_of(&self.origin) {
            return Err(WireError::OutOfZone {
                name: record.name.to_string(),
                origin: self.origin.to_string(),
            });
        }
        let entry = self
            .records
            .entry(Self::key(&record.name, record.rtype()))
            .or_default();
        if !entry.contains(&record) {
            entry.push(record);
        }
        Ok(())
    }

    /// Removes the whole RRset at (name, rtype); returns how many records
    /// were removed.
    pub fn remove_rrset(&mut self, name: &Name, rtype: RrType) -> usize {
        self.records
            .remove(&Self::probe(name, rtype))
            .map_or(0, |v| v.len())
    }

    /// Removes every record owned by `name`, of any type.
    pub fn remove_name(&mut self, name: &Name) -> usize {
        let canon = name.to_canonical();
        let keys: Vec<_> = self
            .records
            .keys()
            .filter(|(n, _)| *n == canon)
            .cloned()
            .collect();
        keys.into_iter()
            .map(|k| self.records.remove(&k).map_or(0, |v| v.len()))
            .sum()
    }

    /// The RRset at (name, rtype), if any, as an owned [`RrSet`].
    pub fn rrset(&self, name: &Name, rtype: RrType) -> Option<RrSet> {
        self.records
            .get(&Self::probe(name, rtype))
            .map(|v| RrSet::new(v.clone()).expect("zone index entries are valid RRsets"))
    }

    /// The records at (name, rtype), if any, borrowed — the query hot
    /// path's lookup, which clones nothing.
    pub fn rrset_records(&self, name: &Name, rtype: RrType) -> Option<&[Record]> {
        self.records
            .get(&Self::probe(name, rtype))
            .map(Vec::as_slice)
    }

    /// All records at `name`, any type.
    pub fn records_at(&self, name: &Name) -> Vec<Record> {
        let canon = name.to_canonical();
        self.records
            .iter()
            .filter(|((n, _), _)| *n == canon)
            .flat_map(|(_, v)| v.iter().cloned())
            .collect()
    }

    /// True if any record exists at `name` (of any type), or underneath it.
    pub fn name_exists(&self, name: &Name) -> bool {
        let canon = name.to_canonical();
        self.records
            .keys()
            .any(|(n, _)| n == &canon || n.is_strict_subdomain_of(&canon))
    }

    /// Iterates every record in canonical owner order.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.records.values().flatten()
    }

    /// Iterates every RRset in canonical owner order.
    pub fn rrsets(&self) -> impl Iterator<Item = RrSet> + '_ {
        self.records
            .values()
            .map(|v| RrSet::new(v.clone()).expect("zone index entries are valid RRsets"))
    }

    /// Total record count.
    pub fn len(&self) -> usize {
        self.records.values().map(Vec::len).sum()
    }

    /// True when the zone holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All distinct owner names, canonical order.
    pub fn owner_names(&self) -> Vec<Name> {
        let mut names: Vec<Name> = self.records.keys().map(|(n, _)| n.clone()).collect();
        names.dedup();
        names
    }

    /// Distinct owner names exactly one label below the origin, canonical
    /// order — a parent zone's delegation points. Clones only the
    /// matching names, so enumerating a TLD zone's 10⁵ delegations does
    /// not also copy every other owner in the zone.
    pub fn child_names(&self) -> Vec<Name> {
        let depth = self.origin.label_count() + 1;
        let mut names: Vec<Name> = self
            .records
            .keys()
            .filter(|(n, _)| n.label_count() == depth)
            .map(|(n, _)| n.clone())
            .collect();
        names.dedup();
        names
    }

    /// The types present at `name`, as an NSEC-style bitmap.
    pub fn types_at(&self, name: &Name) -> TypeBitmap {
        let canon = name.to_canonical();
        TypeBitmap::from_types(
            self.records
                .keys()
                .filter(|(n, _)| *n == canon)
                .map(|&(_, t)| RrType::from_number(t)),
        )
    }

    /// Finds the deepest delegation (an NS RRset strictly below the origin,
    /// at or above `qname`). Returns the cut owner and its NS set.
    pub fn find_delegation(&self, qname: &Name) -> Option<(Name, RrSet)> {
        let mut cut = qname.to_canonical();
        loop {
            if !cut.is_strict_subdomain_of(&self.origin) {
                return None;
            }
            if let Some(set) = self.rrset(&cut, RrType::Ns) {
                return Some((cut, set));
            }
            cut = cut.parent()?;
        }
    }

    /// Serializes to a master-file style text form, one record per line,
    /// preceded by an `$ORIGIN` directive.
    pub fn to_text(&self) -> String {
        let mut out = format!("$ORIGIN {}\n", self.origin);
        for record in self.iter() {
            out.push_str(&record.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses the text form produced by [`Zone::to_text`] (absolute owner
    /// names, `name ttl class type rdata` per line, `;` comments).
    pub fn from_text(text: &str) -> Result<Self, WireError> {
        let mut origin: Option<Name> = None;
        let mut records = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let mut tokens = tokenize(line);
            if line.starts_with("$ORIGIN") {
                tokens.remove(0);
                let o = tokens.first().ok_or(WireError::ZoneSyntax {
                    line: lineno + 1,
                    what: "missing $ORIGIN argument",
                })?;
                origin = Some(Name::parse(o)?);
                continue;
            }
            if tokens.len() < 4 {
                return Err(WireError::ZoneSyntax {
                    line: lineno + 1,
                    what: "expected: name ttl class type rdata",
                });
            }
            let name = Name::parse(&tokens[0])?;
            let ttl: u32 = tokens[1].parse().map_err(|_| WireError::ZoneSyntax {
                line: lineno + 1,
                what: "bad TTL",
            })?;
            if !tokens[2].eq_ignore_ascii_case("IN") {
                return Err(WireError::ZoneSyntax {
                    line: lineno + 1,
                    what: "only class IN is supported",
                });
            }
            let rtype = RrType::parse(&tokens[3]).ok_or(WireError::ZoneSyntax {
                line: lineno + 1,
                what: "unknown record type",
            })?;
            let rdata = parse_rdata(rtype, &tokens[4..]).map_err(|_| WireError::ZoneSyntax {
                line: lineno + 1,
                what: "bad RDATA",
            })?;
            records.push(Record::new(name, ttl, rdata));
        }
        let origin = origin.ok_or(WireError::ZoneSyntax {
            line: 0,
            what: "missing $ORIGIN",
        })?;
        let mut zone = Zone::new(origin);
        for record in records {
            zone.add(record)?;
        }
        Ok(zone)
    }
}

impl fmt::Display for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

/// Strips a `;` comment, ignoring semicolons inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ';' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Splits a zone-file line into tokens, honoring double quotes for TXT.
fn tokenize(line: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in line.chars() {
        if escaped {
            // Keep the escape intact; TXT parsing unescapes later.
            current.push('\\');
            current.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => {
                escaped = true;
            }
            '"' => {
                in_quotes = !in_quotes;
                // Keep quote markers so TXT parsing can distinguish
                // quoted empty strings.
                current.push('"');
            }
            c if c.is_whitespace() && !in_quotes => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Parses RDATA presentation tokens for `rtype`.
fn parse_rdata(rtype: RrType, t: &[String]) -> Result<RData, ()> {
    let tok = |i: usize| -> Result<&str, ()> { t.get(i).map(String::as_str).ok_or(()) };
    let num = |i: usize| -> Result<u32, ()> { tok(i)?.parse().map_err(|_| ()) };
    Ok(match rtype {
        RrType::A => RData::A(tok(0)?.parse().map_err(|_| ())?),
        RrType::Aaaa => RData::Aaaa(tok(0)?.parse().map_err(|_| ())?),
        RrType::Ns => RData::Ns(Name::parse(tok(0)?).map_err(|_| ())?),
        RrType::Cname => RData::Cname(Name::parse(tok(0)?).map_err(|_| ())?),
        RrType::Soa => RData::Soa(SoaRdata {
            mname: Name::parse(tok(0)?).map_err(|_| ())?,
            rname: Name::parse(tok(1)?).map_err(|_| ())?,
            serial: num(2)?,
            refresh: num(3)?,
            retry: num(4)?,
            expire: num(5)?,
            minimum: num(6)?,
        }),
        RrType::Mx => RData::Mx {
            preference: num(0)? as u16,
            exchange: Name::parse(tok(1)?).map_err(|_| ())?,
        },
        RrType::Txt => {
            let mut strings = Vec::new();
            for s in t {
                let inner = s.strip_prefix('"').and_then(|x| x.strip_suffix('"'));
                strings.push(unescape_txt(inner.unwrap_or(s))?);
            }
            RData::Txt(strings)
        }
        RrType::Dnskey | RrType::Cdnskey => {
            let key = DnskeyRdata {
                flags: num(0)? as u16,
                protocol: num(1)? as u8,
                algorithm: num(2)? as u8,
                public_key: dsec_crypto::base64::decode(&t[3..].join("")).map_err(|_| ())?,
            };
            if rtype == RrType::Dnskey {
                RData::Dnskey(key)
            } else {
                RData::Cdnskey(key)
            }
        }
        RrType::Ds | RrType::Cds => {
            let ds = DsRdata {
                key_tag: num(0)? as u16,
                algorithm: num(1)? as u8,
                digest_type: num(2)? as u8,
                digest: parse_hex(&t[3..].join("")).ok_or(())?,
            };
            if rtype == RrType::Ds {
                RData::Ds(ds)
            } else {
                RData::Cds(ds)
            }
        }
        RrType::Rrsig => RData::Rrsig(RrsigRdata {
            type_covered: RrType::parse(tok(0)?).ok_or(())?,
            algorithm: num(1)? as u8,
            labels: num(2)? as u8,
            original_ttl: num(3)?,
            expiration: num(4)?,
            inception: num(5)?,
            key_tag: num(6)? as u16,
            signer_name: Name::parse(tok(7)?).map_err(|_| ())?,
            signature: dsec_crypto::base64::decode(&t[8..].join("")).map_err(|_| ())?,
        }),
        RrType::Nsec => {
            let next = Name::parse(tok(0)?).map_err(|_| ())?;
            let mut types = Vec::new();
            for s in &t[1..] {
                types.push(RrType::parse(s).ok_or(())?);
            }
            RData::Nsec {
                next,
                types: TypeBitmap::from_types(types),
            }
        }
        RrType::Nsec3 => {
            let salt = if tok(3)? == "-" {
                Vec::new()
            } else {
                parse_hex(tok(3)?).ok_or(())?
            };
            let next_hashed = dsec_crypto::base32::decode_hex(tok(4)?).ok_or(())?;
            let mut types = Vec::new();
            for s in &t[5..] {
                types.push(RrType::parse(s).ok_or(())?);
            }
            RData::Nsec3(Nsec3Rdata {
                hash_algorithm: num(0)? as u8,
                flags: num(1)? as u8,
                iterations: num(2)? as u16,
                salt,
                next_hashed,
                types: TypeBitmap::from_types(types),
            })
        }
        RrType::Nsec3Param => {
            let salt = if tok(3)? == "-" {
                Vec::new()
            } else {
                parse_hex(tok(3)?).ok_or(())?
            };
            RData::Nsec3Param(Nsec3ParamRdata {
                hash_algorithm: num(0)? as u8,
                flags: num(1)? as u8,
                iterations: num(2)? as u16,
                salt,
            })
        }
        other => {
            // RFC 3597: \# <len> <hex>
            if tok(0)? != "\\#" {
                return Err(());
            }
            let len: usize = tok(1)?.parse().map_err(|_| ())?;
            let data = parse_hex(&t[2..].join("")).ok_or(())?;
            if data.len() != len {
                return Err(());
            }
            RData::Unknown { rtype: other, data }
        }
    })
}

/// Reverses the TXT presentation escaping: `\\`, `\"`, and `\DDD`.
fn unescape_txt(s: &str) -> Result<Vec<u8>, ()> {
    let mut out = Vec::with_capacity(s.len());
    let mut bytes = s.bytes();
    while let Some(b) = bytes.next() {
        if b != b'\\' {
            out.push(b);
            continue;
        }
        let next = bytes.next().ok_or(())?;
        if next.is_ascii_digit() {
            let d2 = bytes.next().ok_or(())?;
            let d3 = bytes.next().ok_or(())?;
            if !d2.is_ascii_digit() || !d3.is_ascii_digit() {
                return Err(());
            }
            let v = (next - b'0') as u32 * 100 + (d2 - b'0') as u32 * 10 + (d3 - b'0') as u32;
            if v > 255 {
                return Err(());
            }
            out.push(v as u8);
        } else {
            out.push(next);
        }
    }
    Ok(out)
}

fn parse_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn sample_zone() -> Zone {
        let mut z = Zone::new(name("example.com"));
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Soa(SoaRdata {
                mname: name("ns1.example.com"),
                rname: name("hostmaster.example.com"),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        ))
        .unwrap();
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Ns(name("ns1.example.com")),
        ))
        .unwrap();
        z.add(Record::new(
            name("www.example.com"),
            300,
            RData::A("192.0.2.10".parse().unwrap()),
        ))
        .unwrap();
        z
    }

    #[test]
    fn add_and_lookup() {
        let z = sample_zone();
        assert_eq!(z.len(), 3);
        let set = z.rrset(&name("www.example.com"), RrType::A).unwrap();
        assert_eq!(set.len(), 1);
        assert!(z.rrset(&name("www.example.com"), RrType::Aaaa).is_none());
        assert!(z.rrset(&name("other.example.com"), RrType::A).is_none());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let z = sample_zone();
        assert!(z.rrset(&name("WWW.EXAMPLE.COM"), RrType::A).is_some());
    }

    #[test]
    fn add_rejects_out_of_zone() {
        let mut z = sample_zone();
        let err = z.add(Record::new(
            name("example.org"),
            60,
            RData::A("192.0.2.1".parse().unwrap()),
        ));
        assert!(err.is_err());
    }

    #[test]
    fn duplicate_records_are_ignored() {
        let mut z = sample_zone();
        let rec = Record::new(
            name("www.example.com"),
            300,
            RData::A("192.0.2.10".parse().unwrap()),
        );
        z.add(rec).unwrap();
        assert_eq!(z.rrset(&name("www.example.com"), RrType::A).unwrap().len(), 1);
    }

    #[test]
    fn remove_rrset_and_name() {
        let mut z = sample_zone();
        assert_eq!(z.remove_rrset(&name("www.example.com"), RrType::A), 1);
        assert_eq!(z.remove_rrset(&name("www.example.com"), RrType::A), 0);
        assert_eq!(z.remove_name(&name("example.com")), 2);
        assert!(z.is_empty());
    }

    #[test]
    fn name_exists_includes_descendants() {
        let z = sample_zone();
        assert!(z.name_exists(&name("example.com")));
        assert!(z.name_exists(&name("www.example.com")));
        assert!(!z.name_exists(&name("nope.example.com")));
    }

    #[test]
    fn types_at_owner() {
        let z = sample_zone();
        let types = z.types_at(&name("example.com"));
        assert!(types.contains(RrType::Soa));
        assert!(types.contains(RrType::Ns));
        assert!(!types.contains(RrType::A));
    }

    #[test]
    fn find_delegation() {
        let mut tld = Zone::new(name("com"));
        tld.add(Record::new(
            name("example.com"),
            172800,
            RData::Ns(name("ns1.example-dns.net")),
        ))
        .unwrap();
        let (cut, set) = tld.find_delegation(&name("www.example.com")).unwrap();
        assert_eq!(cut, name("example.com"));
        assert_eq!(set.len(), 1);
        // Queries for the zone apex of the TLD itself find no delegation.
        assert!(tld.find_delegation(&name("com")).is_none());
        assert!(tld.find_delegation(&name("other.com")).is_none());
    }

    #[test]
    fn text_round_trip() {
        let z = sample_zone();
        let text = z.to_text();
        let back = Zone::from_text(&text).unwrap();
        assert_eq!(back, z);
    }

    #[test]
    fn text_round_trip_dnssec_types() {
        let mut z = Zone::new(name("example.com"));
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Dnskey(DnskeyRdata {
                flags: 257,
                protocol: 3,
                algorithm: 8,
                public_key: vec![1, 2, 3, 4, 5, 6, 7, 8],
            }),
        ))
        .unwrap();
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Ds(DsRdata {
                key_tag: 60485,
                algorithm: 8,
                digest_type: 2,
                digest: vec![0xAB; 32],
            }),
        ))
        .unwrap();
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Rrsig(RrsigRdata {
                type_covered: RrType::Dnskey,
                algorithm: 8,
                labels: 2,
                original_ttl: 3600,
                expiration: 1483228800,
                inception: 1480550400,
                key_tag: 60485,
                signer_name: name("example.com"),
                signature: vec![9; 64],
            }),
        ))
        .unwrap();
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Nsec {
                next: name("www.example.com"),
                types: TypeBitmap::from_types([RrType::Soa, RrType::Dnskey]),
            },
        ))
        .unwrap();
        let back = Zone::from_text(&z.to_text()).unwrap();
        assert_eq!(back, z);
    }

    #[test]
    fn text_round_trip_nsec3() {
        let mut z = Zone::new(name("example.com"));
        z.add(Record::new(
            name("0p9mhaveqvm6t7vbl5lop2u3t2rp3tom.example.com"),
            3600,
            RData::Nsec3(Nsec3Rdata {
                hash_algorithm: 1,
                flags: 0,
                iterations: 12,
                salt: vec![0xAA, 0xBB, 0xCC, 0xDD],
                next_hashed: vec![0x5C; 20],
                types: TypeBitmap::from_types([RrType::A, RrType::Rrsig]),
            }),
        ))
        .unwrap();
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Nsec3Param(Nsec3ParamRdata {
                hash_algorithm: 1,
                flags: 0,
                iterations: 12,
                salt: vec![],
            }),
        ))
        .unwrap();
        let back = Zone::from_text(&z.to_text()).unwrap();
        assert_eq!(back, z);
    }

    #[test]
    fn text_round_trip_txt_and_unknown() {
        let mut z = Zone::new(name("example.com"));
        z.add(Record::new(
            name("example.com"),
            60,
            RData::Txt(vec![b"v=spf1 -all".to_vec()]),
        ))
        .unwrap();
        z.add(Record::new(
            name("example.com"),
            60,
            RData::Unknown {
                rtype: RrType::Unknown(999),
                data: vec![0xde, 0xad],
            },
        ))
        .unwrap();
        let back = Zone::from_text(&z.to_text()).unwrap();
        assert_eq!(back, z);
    }

    #[test]
    fn parse_rejects_syntax_errors() {
        assert!(Zone::from_text("example.com. 60 IN A 192.0.2.1").is_err()); // no $ORIGIN
        assert!(Zone::from_text("$ORIGIN example.com.\nfoo").is_err());
        assert!(Zone::from_text("$ORIGIN example.com.\nx.example.com. abc IN A 192.0.2.1").is_err());
        assert!(Zone::from_text("$ORIGIN example.com.\nx.example.com. 60 CH A 192.0.2.1").is_err());
        assert!(Zone::from_text("$ORIGIN example.com.\nx.example.com. 60 IN A notanip").is_err());
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let z = Zone::from_text(
            "; header comment\n$ORIGIN example.com.\n\nwww.example.com. 60 IN A 192.0.2.1 ; inline\n",
        )
        .unwrap();
        assert_eq!(z.len(), 1);
    }
}
