//! Domain names (RFC 1035 §3.1) with DNSSEC canonical ordering (RFC 4034 §6.1).
//!
//! A [`Name`] is always *absolute* (rooted). Labels preserve the case they
//! were created with, but equality, hashing, and ordering are ASCII
//! case-insensitive, as the DNS requires. The canonical form used for
//! signing lowercases every label.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::WireError;

/// Maximum length of a domain name in wire octets (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;
/// Maximum length of a single label in octets.
pub const MAX_LABEL_LEN: usize = 63;

/// One label of a domain name: 1–63 arbitrary octets.
///
/// Arbitrary octets are legal in DNS labels; the text form escapes
/// non-printable bytes as `\DDD` and literal dots as `\.`.
#[derive(Debug, Clone, Eq)]
pub struct Label(Vec<u8>);

impl Label {
    /// Creates a label from raw octets.
    pub fn new(octets: impl Into<Vec<u8>>) -> Result<Self, WireError> {
        let octets = octets.into();
        if octets.is_empty() {
            return Err(WireError::EmptyLabel);
        }
        if octets.len() > MAX_LABEL_LEN {
            return Err(WireError::LabelTooLong(octets.len()));
        }
        Ok(Label(octets))
    }

    /// Raw octets of the label.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in octets.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Labels are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// A copy with every ASCII letter lowercased (DNSSEC canonical form).
    pub fn to_lowercase(&self) -> Label {
        Label(self.0.iter().map(|b| b.to_ascii_lowercase()).collect())
    }

    fn canonical_cmp(&self, other: &Label) -> Ordering {
        // Case-insensitive byte-wise comparison per RFC 4034 §6.1.
        let a = self.0.iter().map(|b| b.to_ascii_lowercase());
        let b = other.0.iter().map(|b| b.to_ascii_lowercase());
        a.cmp(b)
    }
}

impl PartialEq for Label {
    fn eq(&self, other: &Self) -> bool {
        self.0.len() == other.0.len()
            && self
                .0
                .iter()
                .zip(&other.0)
                .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }
}

impl Hash for Label {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for b in &self.0 {
            state.write_u8(b.to_ascii_lowercase());
        }
    }
}

impl fmt::Display for Label {
    /// Presentation format with `\.`, `\\`, and `\DDD` escaping.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.0 {
            match b {
                b'.' => write!(f, "\\.")?,
                b'\\' => write!(f, "\\\\")?,
                0x21..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\{b:03}")?,
            }
        }
        Ok(())
    }
}

/// An absolute domain name: a sequence of labels, most-specific first.
///
/// `Name::root()` is the empty sequence. Equality/ordering are
/// case-insensitive; [`Name::canonical_cmp`] implements the RFC 4034 §6.1
/// canonical ordering (by reversed label sequence), which differs from the
/// derived lexicographic order and is what `Ord` delegates to so that
/// sorted collections of names agree with DNSSEC.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Name {
    labels: Vec<Label>,
}

impl Name {
    /// The DNS root (`.`).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Parses a presentation-format name. A trailing dot is optional; the
    /// result is always absolute. `"."` and `""` both give the root.
    ///
    /// Supports `\.`, `\\`, and `\DDD` escapes.
    pub fn parse(s: &str) -> Result<Self, WireError> {
        if s.is_empty() || s == "." {
            return Ok(Name::root());
        }
        let mut labels = Vec::new();
        let mut current = Vec::new();
        let mut chars = s.bytes().peekable();
        while let Some(b) = chars.next() {
            match b {
                b'.' => {
                    if current.is_empty() {
                        return Err(WireError::EmptyLabel);
                    }
                    labels.push(Label::new(std::mem::take(&mut current))?);
                }
                b'\\' => {
                    let next = chars.next().ok_or(WireError::BadEscape)?;
                    if next.is_ascii_digit() {
                        let d2 = chars.next().ok_or(WireError::BadEscape)?;
                        let d3 = chars.next().ok_or(WireError::BadEscape)?;
                        if !d2.is_ascii_digit() || !d3.is_ascii_digit() {
                            return Err(WireError::BadEscape);
                        }
                        let v = (next - b'0') as u32 * 100
                            + (d2 - b'0') as u32 * 10
                            + (d3 - b'0') as u32;
                        if v > 255 {
                            return Err(WireError::BadEscape);
                        }
                        current.push(v as u8);
                    } else {
                        current.push(next);
                    }
                }
                other => current.push(other),
            }
        }
        if !current.is_empty() {
            labels.push(Label::new(current)?);
        }
        let name = Name { labels };
        name.check_len()?;
        Ok(name)
    }

    /// Builds a name from labels (most-specific first).
    pub fn from_labels(labels: Vec<Label>) -> Result<Self, WireError> {
        let name = Name { labels };
        name.check_len()?;
        Ok(name)
    }

    fn check_len(&self) -> Result<(), WireError> {
        if self.wire_len() > MAX_NAME_LEN {
            return Err(WireError::NameTooLong(self.wire_len()));
        }
        Ok(())
    }

    /// Labels, most-specific first.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Number of labels (0 for the root).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// True for the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Length in wire-format octets (including the terminating zero).
    pub fn wire_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// The parent zone cut (`example.com.` → `com.`); `None` for the root.
    pub fn parent(&self) -> Option<Name> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// Prepends a label (`www` + `example.com.` → `www.example.com.`).
    pub fn child(&self, label: &str) -> Result<Name, WireError> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(Label::new(label.as_bytes().to_vec())?);
        labels.extend(self.labels.iter().cloned());
        Name::from_labels(labels)
    }

    /// True if `self` equals `other` or is underneath it
    /// (`www.example.com.` is a subdomain of `example.com.` and of `.`).
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels[offset..]
            .iter()
            .zip(&other.labels)
            .all(|(a, b)| a == b)
    }

    /// True if `self` is *strictly* underneath `other`.
    pub fn is_strict_subdomain_of(&self, other: &Name) -> bool {
        self.labels.len() > other.labels.len() && self.is_subdomain_of(other)
    }

    /// Second-level-domain view: for `ns1.foo.example.com.` returns
    /// `example.com.`; identity for names with ≤ 2 labels.
    ///
    /// This is the grouping key the paper (§4.2) uses to identify the DNS
    /// operator from NS records.
    pub fn second_level(&self) -> Name {
        if self.labels.len() <= 2 {
            return self.clone();
        }
        Name {
            labels: self.labels[self.labels.len() - 2..].to_vec(),
        }
    }

    /// RFC 4034 §6.1 canonical ordering: compare label sequences starting
    /// from the root (i.e., reversed), case-insensitively, shorter
    /// sequence first on prefix ties.
    pub fn canonical_cmp(&self, other: &Name) -> Ordering {
        let mut a = self.labels.iter().rev();
        let mut b = other.labels.iter().rev();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return Ordering::Equal,
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
                (Some(la), Some(lb)) => match la.canonical_cmp(lb) {
                    Ordering::Equal => continue,
                    o => return o,
                },
            }
        }
    }

    /// A copy with all labels lowercased (the canonical form used when
    /// hashing owner names into DS digests and signing RRsets).
    pub fn to_canonical(&self) -> Name {
        Name {
            labels: self.labels.iter().map(Label::to_lowercase).collect(),
        }
    }

    /// Uncompressed canonical wire form (lowercased, no pointers) —
    /// exactly what DNSSEC digests and signatures consume.
    pub fn to_canonical_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        for label in &self.labels {
            let lower = label.to_lowercase();
            out.push(lower.len() as u8);
            out.extend_from_slice(lower.as_bytes());
        }
        out.push(0);
        out
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> Ordering {
        self.canonical_cmp(other)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for label in &self.labels {
            write!(f, "{label}.")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Name {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(name("example.com").to_string(), "example.com.");
        assert_eq!(name("example.com.").to_string(), "example.com.");
        assert_eq!(name(".").to_string(), ".");
        assert_eq!(name("").to_string(), ".");
        assert_eq!(name("WWW.Example.COM").to_string(), "WWW.Example.COM.");
    }

    #[test]
    fn case_insensitive_equality() {
        assert_eq!(name("Example.COM"), name("example.com"));
        assert_ne!(name("example.com"), name("example.org"));
    }

    #[test]
    fn escapes_round_trip() {
        let n = Name::parse("a\\.b.example").unwrap();
        assert_eq!(n.label_count(), 2);
        assert_eq!(n.labels()[0].as_bytes(), b"a.b");
        assert_eq!(n.to_string(), "a\\.b.example.");
        let re = Name::parse(&n.to_string()).unwrap();
        assert_eq!(re, n);
    }

    #[test]
    fn decimal_escape() {
        let n = Name::parse("\\001\\255.x").unwrap();
        assert_eq!(n.labels()[0].as_bytes(), &[1u8, 255]);
        assert_eq!(Name::parse(&n.to_string()).unwrap(), n);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Name::parse("a..b").is_err());
        assert!(Name::parse(&"a".repeat(64)).is_err());
        assert!(Name::parse("x\\").is_err());
        assert!(Name::parse("x\\25").is_err());
        assert!(Name::parse("x\\999").is_err());
        // 255-octet limit: 4 × 63-byte labels + dots exceeds it.
        let long = vec!["a".repeat(63); 4].join(".");
        assert!(Name::parse(&long).is_err());
    }

    #[test]
    fn parent_and_child() {
        let n = name("www.example.com");
        assert_eq!(n.parent().unwrap(), name("example.com"));
        assert_eq!(name("com").parent().unwrap(), Name::root());
        assert!(Name::root().parent().is_none());
        assert_eq!(name("example.com").child("www").unwrap(), n);
    }

    #[test]
    fn subdomain_relations() {
        assert!(name("www.example.com").is_subdomain_of(&name("example.com")));
        assert!(name("example.com").is_subdomain_of(&name("example.com")));
        assert!(name("example.com").is_subdomain_of(&Name::root()));
        assert!(!name("example.com").is_subdomain_of(&name("example.org")));
        assert!(!name("notexample.com").is_subdomain_of(&name("example.com")));
        assert!(name("www.example.com").is_strict_subdomain_of(&name("example.com")));
        assert!(!name("example.com").is_strict_subdomain_of(&name("example.com")));
    }

    #[test]
    fn second_level_grouping() {
        // The paper's operator-identification rule.
        assert_eq!(
            name("ns01.domaincontrol.com").second_level(),
            name("domaincontrol.com")
        );
        assert_eq!(
            name("a.b.c.ovh.net").second_level(),
            name("ovh.net")
        );
        assert_eq!(name("example.com").second_level(), name("example.com"));
        assert_eq!(name("com").second_level(), name("com"));
    }

    #[test]
    fn canonical_order_rfc4034_example() {
        // RFC 4034 §6.1 example ordering.
        let sorted = [
            "example",
            "a.example",
            "yljkjljk.a.example",
            "Z.a.example",
            "zABC.a.EXAMPLE",
            "z.example",
            "\\001.z.example",
            "*.z.example",
            "\\200.z.example",
        ];
        for w in sorted.windows(2) {
            let a = Name::parse(w[0]).unwrap();
            let b = Name::parse(w[1]).unwrap();
            assert_eq!(
                a.canonical_cmp(&b),
                Ordering::Less,
                "{} < {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn ord_is_canonical() {
        let mut names = [name("z.example"), name("a.example"), name("example")];
        names.sort();
        assert_eq!(
            names.iter().map(|n| n.to_string()).collect::<Vec<_>>(),
            vec!["example.", "a.example.", "z.example."]
        );
    }

    #[test]
    fn canonical_wire_is_lowercase() {
        let n = name("WwW.ExAmPlE.CoM");
        let wire = n.to_canonical_wire();
        assert_eq!(
            wire,
            b"\x03www\x07example\x03com\x00".to_vec()
        );
    }

    #[test]
    fn wire_len() {
        assert_eq!(Name::root().wire_len(), 1);
        assert_eq!(name("example.com").wire_len(), 13);
    }
}
