//! Resource record types and classes (RFC 1035 §3.2, IANA DNS parameters),
//! plus the RFC 4034 §4.1.2 type bitmap used by NSEC records.

use std::fmt;

/// A resource record TYPE, by IANA number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RrType {
    /// IPv4 host address (1).
    A,
    /// Authoritative nameserver (2).
    Ns,
    /// Canonical name alias (5).
    Cname,
    /// Start of authority (6).
    Soa,
    /// Mail exchange (15).
    Mx,
    /// Text strings (16).
    Txt,
    /// IPv6 host address (28).
    Aaaa,
    /// EDNS(0) pseudo-RR (41).
    Opt,
    /// Delegation signer (43).
    Ds,
    /// DNSSEC signature (46).
    Rrsig,
    /// Authenticated denial of existence (47).
    Nsec,
    /// DNSSEC public key (48).
    Dnskey,
    /// Hashed authenticated denial, RFC 5155 (50).
    Nsec3,
    /// NSEC3 zone parameters, RFC 5155 (51).
    Nsec3Param,
    /// Child DS for automated delegation maintenance, RFC 7344 (59).
    Cds,
    /// Child DNSKEY, RFC 7344 (60).
    Cdnskey,
    /// Any other type, preserved by number.
    Unknown(u16),
}

impl RrType {
    /// IANA TYPE number.
    pub fn number(self) -> u16 {
        match self {
            RrType::A => 1,
            RrType::Ns => 2,
            RrType::Cname => 5,
            RrType::Soa => 6,
            RrType::Mx => 15,
            RrType::Txt => 16,
            RrType::Aaaa => 28,
            RrType::Opt => 41,
            RrType::Ds => 43,
            RrType::Rrsig => 46,
            RrType::Nsec => 47,
            RrType::Dnskey => 48,
            RrType::Nsec3 => 50,
            RrType::Nsec3Param => 51,
            RrType::Cds => 59,
            RrType::Cdnskey => 60,
            RrType::Unknown(n) => n,
        }
    }

    /// Maps an IANA number to a type.
    pub fn from_number(n: u16) -> Self {
        match n {
            1 => RrType::A,
            2 => RrType::Ns,
            5 => RrType::Cname,
            6 => RrType::Soa,
            15 => RrType::Mx,
            16 => RrType::Txt,
            28 => RrType::Aaaa,
            41 => RrType::Opt,
            43 => RrType::Ds,
            46 => RrType::Rrsig,
            47 => RrType::Nsec,
            48 => RrType::Dnskey,
            50 => RrType::Nsec3,
            51 => RrType::Nsec3Param,
            59 => RrType::Cds,
            60 => RrType::Cdnskey,
            other => RrType::Unknown(other),
        }
    }

    /// Parses a type mnemonic (`"DNSKEY"`), including RFC 3597 `TYPE12345`.
    pub fn parse(s: &str) -> Option<Self> {
        let t = match s.to_ascii_uppercase().as_str() {
            "A" => RrType::A,
            "NS" => RrType::Ns,
            "CNAME" => RrType::Cname,
            "SOA" => RrType::Soa,
            "MX" => RrType::Mx,
            "TXT" => RrType::Txt,
            "AAAA" => RrType::Aaaa,
            "OPT" => RrType::Opt,
            "DS" => RrType::Ds,
            "RRSIG" => RrType::Rrsig,
            "NSEC" => RrType::Nsec,
            "DNSKEY" => RrType::Dnskey,
            "NSEC3" => RrType::Nsec3,
            "NSEC3PARAM" => RrType::Nsec3Param,
            "CDS" => RrType::Cds,
            "CDNSKEY" => RrType::Cdnskey,
            other => {
                let n = other.strip_prefix("TYPE")?.parse().ok()?;
                RrType::from_number(n)
            }
        };
        Some(t)
    }
}

impl fmt::Display for RrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrType::A => write!(f, "A"),
            RrType::Ns => write!(f, "NS"),
            RrType::Cname => write!(f, "CNAME"),
            RrType::Soa => write!(f, "SOA"),
            RrType::Mx => write!(f, "MX"),
            RrType::Txt => write!(f, "TXT"),
            RrType::Aaaa => write!(f, "AAAA"),
            RrType::Opt => write!(f, "OPT"),
            RrType::Ds => write!(f, "DS"),
            RrType::Rrsig => write!(f, "RRSIG"),
            RrType::Nsec => write!(f, "NSEC"),
            RrType::Dnskey => write!(f, "DNSKEY"),
            RrType::Nsec3 => write!(f, "NSEC3"),
            RrType::Nsec3Param => write!(f, "NSEC3PARAM"),
            RrType::Cds => write!(f, "CDS"),
            RrType::Cdnskey => write!(f, "CDNSKEY"),
            RrType::Unknown(n) => write!(f, "TYPE{n}"),
        }
    }
}

/// A resource record CLASS. Only `IN` matters here; others are preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RrClass {
    /// The Internet (1).
    In,
    /// Anything else, by number.
    Unknown(u16),
}

impl RrClass {
    /// IANA CLASS number.
    pub fn number(self) -> u16 {
        match self {
            RrClass::In => 1,
            RrClass::Unknown(n) => n,
        }
    }

    /// Maps an IANA number to a class.
    pub fn from_number(n: u16) -> Self {
        match n {
            1 => RrClass::In,
            other => RrClass::Unknown(other),
        }
    }
}

impl fmt::Display for RrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrClass::In => write!(f, "IN"),
            RrClass::Unknown(n) => write!(f, "CLASS{n}"),
        }
    }
}

/// An RFC 4034 §4.1.2 type bitmap, as found in NSEC RDATA.
///
/// Stored as a sorted, deduplicated list of type numbers; converts to and
/// from the window-block wire encoding.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct TypeBitmap {
    types: Vec<u16>,
}

impl TypeBitmap {
    /// Builds from any iterator of types; sorts and deduplicates.
    pub fn from_types(types: impl IntoIterator<Item = RrType>) -> Self {
        let mut v: Vec<u16> = types.into_iter().map(RrType::number).collect();
        v.sort_unstable();
        v.dedup();
        TypeBitmap { types: v }
    }

    /// True iff the bitmap contains `t`.
    pub fn contains(&self, t: RrType) -> bool {
        self.types.binary_search(&t.number()).is_ok()
    }

    /// Iterates the contained types in ascending numeric order.
    pub fn iter(&self) -> impl Iterator<Item = RrType> + '_ {
        self.types.iter().map(|&n| RrType::from_number(n))
    }

    /// Number of contained types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// True iff no types are present.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Encodes as RFC 4034 window blocks.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.types.len() {
            let window = (self.types[i] >> 8) as u8;
            // Collect the bitmap for this 256-type window.
            let mut bitmap = [0u8; 32];
            let mut max_byte = 0usize;
            while i < self.types.len() && (self.types[i] >> 8) as u8 == window {
                let low = (self.types[i] & 0xff) as usize;
                bitmap[low / 8] |= 0x80 >> (low % 8);
                max_byte = low / 8;
                i += 1;
            }
            out.push(window);
            out.push((max_byte + 1) as u8);
            out.extend_from_slice(&bitmap[..=max_byte]);
        }
        out
    }

    /// Decodes RFC 4034 window blocks.
    pub fn from_wire(mut data: &[u8]) -> Result<Self, crate::WireError> {
        let mut types = Vec::new();
        let mut last_window: i32 = -1;
        while !data.is_empty() {
            if data.len() < 2 {
                return Err(crate::WireError::Truncated);
            }
            let window = data[0];
            let len = data[1] as usize;
            if len == 0 || len > 32 || data.len() < 2 + len {
                return Err(crate::WireError::BadTypeBitmap);
            }
            if (window as i32) <= last_window {
                return Err(crate::WireError::BadTypeBitmap);
            }
            last_window = window as i32;
            for (byte_idx, &byte) in data[2..2 + len].iter().enumerate() {
                for bit in 0..8 {
                    if byte & (0x80 >> bit) != 0 {
                        types.push(((window as u16) << 8) | (byte_idx * 8 + bit) as u16);
                    }
                }
            }
            data = &data[2 + len..];
        }
        Ok(TypeBitmap { types })
    }
}

impl fmt::Display for TypeBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for t in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_number_round_trip() {
        for n in 0..300u16 {
            assert_eq!(RrType::from_number(n).number(), n);
        }
    }

    #[test]
    fn type_parse_and_display() {
        assert_eq!(RrType::parse("dnskey"), Some(RrType::Dnskey));
        assert_eq!(RrType::parse("DS"), Some(RrType::Ds));
        assert_eq!(RrType::parse("TYPE999"), Some(RrType::Unknown(999)));
        assert_eq!(RrType::parse("TYPE46"), Some(RrType::Rrsig));
        assert_eq!(RrType::parse("NOPE"), None);
        assert_eq!(RrType::Cdnskey.to_string(), "CDNSKEY");
        assert_eq!(RrType::Unknown(999).to_string(), "TYPE999");
    }

    #[test]
    fn class_round_trip() {
        assert_eq!(RrClass::from_number(1), RrClass::In);
        assert_eq!(RrClass::from_number(3).number(), 3);
        assert_eq!(RrClass::In.to_string(), "IN");
    }

    #[test]
    fn bitmap_round_trip() {
        let bm = TypeBitmap::from_types([
            RrType::A,
            RrType::Ns,
            RrType::Rrsig,
            RrType::Nsec,
            RrType::Unknown(1234),
        ]);
        let wire = bm.to_wire();
        let back = TypeBitmap::from_wire(&wire).unwrap();
        assert_eq!(back, bm);
        assert!(back.contains(RrType::A));
        assert!(back.contains(RrType::Unknown(1234)));
        assert!(!back.contains(RrType::Mx));
    }

    #[test]
    fn bitmap_dedups_and_sorts() {
        let bm = TypeBitmap::from_types([RrType::Ns, RrType::A, RrType::Ns]);
        assert_eq!(bm.len(), 2);
        let listed: Vec<RrType> = bm.iter().collect();
        assert_eq!(listed, vec![RrType::A, RrType::Ns]);
    }

    #[test]
    fn bitmap_empty() {
        let bm = TypeBitmap::default();
        assert!(bm.is_empty());
        assert!(bm.to_wire().is_empty());
        assert_eq!(TypeBitmap::from_wire(&[]).unwrap(), bm);
    }

    #[test]
    fn bitmap_rejects_malformed() {
        assert!(TypeBitmap::from_wire(&[0]).is_err()); // truncated header
        assert!(TypeBitmap::from_wire(&[0, 0]).is_err()); // zero length
        assert!(TypeBitmap::from_wire(&[0, 33]).is_err()); // oversize window
        assert!(TypeBitmap::from_wire(&[0, 2, 0xff]).is_err()); // short data
        // Windows must be strictly increasing.
        assert!(TypeBitmap::from_wire(&[1, 1, 0x80, 0, 1, 0x80]).is_err());
    }

    #[test]
    fn bitmap_display() {
        let bm = TypeBitmap::from_types([RrType::Ns, RrType::A]);
        assert_eq!(bm.to_string(), "A NS");
    }

    #[test]
    fn bitmap_rfc4034_example_shape() {
        // A/MX/RRSIG/NSEC/TYPE1234 example from RFC 4034 §4.3.
        let bm = TypeBitmap::from_types([
            RrType::A,
            RrType::Mx,
            RrType::Rrsig,
            RrType::Nsec,
            RrType::Unknown(1234),
        ]);
        let wire = bm.to_wire();
        // Expected: window 0 block (6 bytes of bitmap) then window 4 block.
        assert_eq!(wire[0], 0x00);
        assert_eq!(wire[1], 0x06);
        assert_eq!(&wire[2..8], &[0x40, 0x01, 0x00, 0x00, 0x00, 0x03]);
        assert_eq!(wire[8], 0x04);
        assert_eq!(wire[9], 0x1b);
    }
}
