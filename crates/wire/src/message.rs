//! DNS messages (RFC 1035 §4) with EDNS(0) (RFC 6891) and the DNSSEC header
//! bits (RFC 4035 §3): DO, AD, and CD.

use crate::name::Name;
use crate::rdata::RData;
use crate::record::Record;
use crate::rrtype::{RrClass, RrType};
use crate::wire::{WireReader, WireWriter};
use crate::WireError;

/// Response codes (RCODE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error (0).
    NoError,
    /// Format error (1).
    FormErr,
    /// Server failure (2) — what a validating resolver returns for bogus data.
    ServFail,
    /// Name does not exist (3).
    NxDomain,
    /// Not implemented (4).
    NotImp,
    /// Refused (5).
    Refused,
    /// Anything else.
    Unknown(u8),
}

impl Rcode {
    /// Numeric RCODE value (low 4 bits of the header field).
    pub fn number(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Unknown(n) => n,
        }
    }

    /// Maps a numeric value.
    pub fn from_number(n: u8) -> Self {
        match n {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Unknown(other),
        }
    }
}

/// Operation codes (OPCODE). Only QUERY is used in this study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Standard query (0).
    Query,
    /// Anything else.
    Unknown(u8),
}

impl Opcode {
    /// Numeric opcode.
    pub fn number(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::Unknown(n) => n,
        }
    }

    /// Maps a numeric value.
    pub fn from_number(n: u8) -> Self {
        match n {
            0 => Opcode::Query,
            other => Opcode::Unknown(other),
        }
    }
}

/// Header flag bits (excluding opcode/rcode, carried separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// QR: this is a response.
    pub response: bool,
    /// AA: authoritative answer.
    pub authoritative: bool,
    /// TC: truncated.
    pub truncated: bool,
    /// RD: recursion desired.
    pub recursion_desired: bool,
    /// RA: recursion available.
    pub recursion_available: bool,
    /// AD: authentic data (RFC 4035 §3.2.3).
    pub authentic_data: bool,
    /// CD: checking disabled (RFC 4035 §3.2.2).
    pub checking_disabled: bool,
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    /// Queried name.
    pub name: Name,
    /// Queried type.
    pub qtype: RrType,
    /// Queried class.
    pub qclass: RrClass,
}

impl Question {
    /// Convenience constructor for class-IN questions.
    pub fn new(name: Name, qtype: RrType) -> Self {
        Question {
            name,
            qtype,
            qclass: RrClass::In,
        }
    }
}

/// A complete DNS message.
///
/// EDNS(0) is modeled explicitly: `edns` carries the DO bit and advertised
/// UDP size, and is serialized as an OPT pseudo-record in the additional
/// section. OPT records never appear in `additional` itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Message ID.
    pub id: u16,
    /// Opcode.
    pub opcode: Opcode,
    /// Header flags.
    pub flags: Flags,
    /// Response code.
    pub rcode: Rcode,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authorities: Vec<Record>,
    /// Additional section (excluding OPT).
    pub additionals: Vec<Record>,
    /// EDNS(0) options, if present.
    pub edns: Option<Edns>,
}

/// EDNS(0) parameters (RFC 6891).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edns {
    /// Advertised maximum UDP payload size.
    pub udp_payload_size: u16,
    /// DO bit: the querier wants DNSSEC records (RFC 3225).
    pub dnssec_ok: bool,
}

impl Default for Edns {
    fn default() -> Self {
        Edns {
            udp_payload_size: 4096,
            dnssec_ok: true,
        }
    }
}

impl Message {
    /// A fresh query for (name, type) with RD clear (iterative) and, when
    /// `dnssec_ok`, an EDNS OPT with the DO bit.
    pub fn query(id: u16, name: Name, qtype: RrType, dnssec_ok: bool) -> Self {
        Message {
            id,
            opcode: Opcode::Query,
            flags: Flags::default(),
            rcode: Rcode::NoError,
            questions: vec![Question::new(name, qtype)],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
            edns: dnssec_ok.then(Edns::default),
        }
    }

    /// A response skeleton echoing this query's id, question, and EDNS.
    pub fn response_to(&self) -> Message {
        Message {
            id: self.id,
            opcode: self.opcode,
            flags: Flags {
                response: true,
                recursion_desired: self.flags.recursion_desired,
                checking_disabled: self.flags.checking_disabled,
                ..Flags::default()
            },
            rcode: Rcode::NoError,
            questions: self.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
            edns: self.edns,
        }
    }

    /// True when the querier asked for DNSSEC records.
    pub fn dnssec_ok(&self) -> bool {
        self.edns.is_some_and(|e| e.dnssec_ok)
    }

    /// Serializes to wire format with name compression.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u16(self.id);
        let mut flags1: u8 = 0;
        if self.flags.response {
            flags1 |= 0x80;
        }
        flags1 |= (self.opcode.number() & 0x0F) << 3;
        if self.flags.authoritative {
            flags1 |= 0x04;
        }
        if self.flags.truncated {
            flags1 |= 0x02;
        }
        if self.flags.recursion_desired {
            flags1 |= 0x01;
        }
        let mut flags2: u8 = 0;
        if self.flags.recursion_available {
            flags2 |= 0x80;
        }
        if self.flags.authentic_data {
            flags2 |= 0x20;
        }
        if self.flags.checking_disabled {
            flags2 |= 0x10;
        }
        flags2 |= self.rcode.number() & 0x0F;
        w.put_u8(flags1);
        w.put_u8(flags2);
        w.put_u16(self.questions.len() as u16);
        w.put_u16(self.answers.len() as u16);
        w.put_u16(self.authorities.len() as u16);
        let arcount = self.additionals.len() + usize::from(self.edns.is_some());
        w.put_u16(arcount as u16);
        for q in &self.questions {
            w.put_name(&q.name);
            w.put_u16(q.qtype.number());
            w.put_u16(q.qclass.number());
        }
        for section in [&self.answers, &self.authorities, &self.additionals] {
            for record in section {
                record.encode(&mut w);
            }
        }
        if let Some(edns) = &self.edns {
            // OPT pseudo-RR: root owner, CLASS = payload size,
            // TTL = ext-rcode/version/flags (DO is bit 15 of the low 16).
            let ttl: u32 = if edns.dnssec_ok { 0x0000_8000 } else { 0 };
            let opt = Record {
                name: Name::root(),
                class: RrClass::Unknown(edns.udp_payload_size),
                ttl,
                rdata: RData::Unknown {
                    rtype: RrType::Opt,
                    data: Vec::new(),
                },
            };
            opt.encode(&mut w);
        }
        w.into_bytes()
    }

    /// Parses a wire-format message.
    pub fn from_wire(data: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(data);
        let id = r.get_u16()?;
        let flags1 = r.get_u8()?;
        let flags2 = r.get_u8()?;
        let qdcount = r.get_u16()?;
        let ancount = r.get_u16()?;
        let nscount = r.get_u16()?;
        let arcount = r.get_u16()?;
        let mut msg = Message {
            id,
            opcode: Opcode::from_number((flags1 >> 3) & 0x0F),
            flags: Flags {
                response: flags1 & 0x80 != 0,
                authoritative: flags1 & 0x04 != 0,
                truncated: flags1 & 0x02 != 0,
                recursion_desired: flags1 & 0x01 != 0,
                recursion_available: flags2 & 0x80 != 0,
                authentic_data: flags2 & 0x20 != 0,
                checking_disabled: flags2 & 0x10 != 0,
            },
            rcode: Rcode::from_number(flags2 & 0x0F),
            questions: Vec::with_capacity(qdcount as usize),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
            edns: None,
        };
        for _ in 0..qdcount {
            msg.questions.push(Question {
                name: r.get_name()?,
                qtype: RrType::from_number(r.get_u16()?),
                qclass: RrClass::from_number(r.get_u16()?),
            });
        }
        for _ in 0..ancount {
            msg.answers.push(Record::decode(&mut r)?);
        }
        for _ in 0..nscount {
            msg.authorities.push(Record::decode(&mut r)?);
        }
        for _ in 0..arcount {
            let record = Record::decode(&mut r)?;
            if record.rtype() == RrType::Opt {
                if msg.edns.is_some() {
                    return Err(WireError::DuplicateOpt);
                }
                msg.edns = Some(Edns {
                    udp_payload_size: record.class.number(),
                    dnssec_ok: record.ttl & 0x0000_8000 != 0,
                });
            } else {
                msg.additionals.push(record);
            }
        }
        if !r.is_at_end() {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn query_round_trip() {
        let q = Message::query(0x1234, name("example.com"), RrType::A, true);
        let wire = q.to_wire();
        let back = Message::from_wire(&wire).unwrap();
        assert_eq!(back, q);
        assert!(back.dnssec_ok());
        assert_eq!(back.edns.unwrap().udp_payload_size, 4096);
    }

    #[test]
    fn query_without_edns() {
        let q = Message::query(1, name("example.com"), RrType::A, false);
        let back = Message::from_wire(&q.to_wire()).unwrap();
        assert!(back.edns.is_none());
        assert!(!back.dnssec_ok());
    }

    #[test]
    fn response_round_trip_with_all_sections() {
        let q = Message::query(7, name("example.com"), RrType::Ns, true);
        let mut resp = q.response_to();
        resp.flags.authoritative = true;
        resp.answers.push(Record::new(
            name("example.com"),
            300,
            RData::Ns(name("ns1.example.com")),
        ));
        resp.authorities.push(Record::new(
            name("example.com"),
            300,
            RData::Ns(name("ns2.example.com")),
        ));
        resp.additionals.push(Record::new(
            name("ns1.example.com"),
            300,
            RData::A("192.0.2.1".parse().unwrap()),
        ));
        let back = Message::from_wire(&resp.to_wire()).unwrap();
        assert_eq!(back, resp);
        assert!(back.flags.response);
        assert!(back.flags.authoritative);
    }

    #[test]
    fn all_flags_round_trip() {
        let mut m = Message::query(1, name("x"), RrType::A, true);
        m.flags = Flags {
            response: true,
            authoritative: true,
            truncated: true,
            recursion_desired: true,
            recursion_available: true,
            authentic_data: true,
            checking_disabled: true,
        };
        m.rcode = Rcode::NxDomain;
        let back = Message::from_wire(&m.to_wire()).unwrap();
        assert_eq!(back.flags, m.flags);
        assert_eq!(back.rcode, Rcode::NxDomain);
    }

    #[test]
    fn rcode_round_trip() {
        for n in 0..16u8 {
            assert_eq!(Rcode::from_number(n).number(), n);
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut wire = Message::query(1, name("x"), RrType::A, false).to_wire();
        wire.push(0);
        assert!(matches!(
            Message::from_wire(&wire),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn rejects_truncated_header() {
        assert!(Message::from_wire(&[0, 1, 2]).is_err());
    }

    #[test]
    fn rejects_duplicate_opt() {
        let mut m = Message::query(1, name("x"), RrType::A, true);
        // Manually produce a message with two OPTs by serializing and
        // appending another OPT record.
        let mut wire = m.to_wire();
        // Bump ARCOUNT from 1 to 2.
        wire[11] = 2;
        let opt = Record {
            name: Name::root(),
            class: RrClass::Unknown(512),
            ttl: 0,
            rdata: RData::Unknown {
                rtype: RrType::Opt,
                data: Vec::new(),
            },
        };
        let mut w = WireWriter::uncompressed();
        opt.encode(&mut w);
        wire.extend_from_slice(&w.into_bytes());
        assert!(matches!(
            Message::from_wire(&wire),
            Err(WireError::DuplicateOpt)
        ));
        m.edns = None; // silence unused-mut lint paths
    }

    #[test]
    fn do_bit_encoding() {
        let with = Message::query(1, name("x"), RrType::A, true).to_wire();
        let parsed = Message::from_wire(&with).unwrap();
        assert!(parsed.edns.unwrap().dnssec_ok);
        let mut m = Message::query(1, name("x"), RrType::A, true);
        m.edns = Some(Edns {
            udp_payload_size: 1232,
            dnssec_ok: false,
        });
        let parsed = Message::from_wire(&m.to_wire()).unwrap();
        let e = parsed.edns.unwrap();
        assert!(!e.dnssec_ok);
        assert_eq!(e.udp_payload_size, 1232);
    }

    #[test]
    fn response_skeleton_echoes_query() {
        let mut q = Message::query(9, name("example.com"), RrType::Ds, true);
        q.flags.checking_disabled = true;
        let r = q.response_to();
        assert_eq!(r.id, 9);
        assert!(r.flags.response);
        assert!(r.flags.checking_disabled);
        assert_eq!(r.questions, q.questions);
        assert_eq!(r.edns, q.edns);
    }
}
