//! A minimal FNV-1a hasher for the simulator's hot, short-key maps.
//!
//! [`Name`](crate::Name) hashes case-insensitively by feeding lowercased
//! label bytes to the hasher **one byte at a time** — the worst possible
//! access pattern for SipHash (the `HashMap` default), which pays its
//! per-write overhead on every byte. FNV-1a folds a byte in with one xor
//! and one multiply, which makes Name-keyed lookups several times
//! cheaper; the scan cache, the per-domain generation maps, and the
//! resolver cache's shard maps all sit on per-query hot paths and use
//! [`FnvHashMap`].
//!
//! FNV is not DoS-resistant. Every key hashed here is simulator-internal
//! (generated domain names, dense cache ids), never attacker-chosen, so
//! hash-flooding resistance buys nothing.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit FNV-1a streaming hasher.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_BASIS)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }
}

/// `BuildHasher` producing [`FnvHasher`]s (zero-sized, `Default`).
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// A `HashMap` keyed with FNV-1a — drop-in for simulator-internal keys.
pub type FnvHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;

/// A `HashSet` hashed with FNV-1a.
pub type FnvHashSet<T> = HashSet<T, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Name;

    #[test]
    fn byte_stream_matches_reference_fnv1a() {
        // FNV-1a("a") and FNV-1a("foobar") reference values.
        let mut h = FnvHasher::default();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = FnvHasher::default();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn write_u8_agrees_with_write() {
        let mut a = FnvHasher::default();
        let mut b = FnvHasher::default();
        a.write(b"example");
        for &byte in b"example" {
            b.write_u8(byte);
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn name_keys_stay_case_insensitive() {
        let mut map: FnvHashMap<Name, u32> = FnvHashMap::default();
        map.insert(Name::parse("Example.COM").unwrap(), 7);
        assert_eq!(map.get(&Name::parse("example.com").unwrap()), Some(&7));
        let mut set: FnvHashSet<Name> = FnvHashSet::default();
        set.insert(Name::parse("a.nl").unwrap());
        assert!(set.contains(&Name::parse("A.NL").unwrap()));
    }
}
