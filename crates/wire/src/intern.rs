//! Name interning: stable `u32` ids for domain names on hot paths.
//!
//! The scanner, the resolver cache, and the traffic plane all key maps by
//! [`Name`]. A `Name` is a heap structure (a `Vec` of label `Vec`s), so
//! using it as a key costs a multi-label case-folding hash per probe and
//! a deep clone per insert. A [`NameInterner`] assigns each distinct name
//! a dense [`NameId`] once; after that, hot-path lookups hash a single
//! `u32` and never touch label bytes again.
//!
//! The interner is striped 16 ways by [`name_hash64`] so concurrent
//! workers interning different names rarely contend on the same lock,
//! and repeat interning of an already-known name takes only a stripe
//! *read* lock. Ids are stable for the lifetime of the interner — entries
//! are never evicted (an id handed out must stay valid), so its memory is
//! bounded by the number of *distinct* names it ever sees: in this
//! codebase, the registered-domain population, not the query volume.

use std::sync::RwLock;

use crate::fnv::FnvHashMap;
use crate::name::Name;

/// Number of independently locked stripes (must be a power of two).
const STRIPES: usize = 16;

/// Bits of a [`NameId`] reserved for the per-stripe slot index.
const SLOT_BITS: u32 = 28;

/// A stable, dense identifier for an interned [`Name`].
///
/// Ids are only meaningful to the [`NameInterner`] that issued them, and
/// compare/hash as plain integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameId(u32);

impl NameId {
    /// The raw integer value (stripe index in the top 4 bits).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a `NameId` from a value previously obtained via
    /// [`NameId::raw`]. Only meaningful with raw values that came from
    /// the same interner — [`NameInterner::resolve`] returns `None` for
    /// ids the interner never issued.
    pub fn from_raw(raw: u32) -> NameId {
        NameId(raw)
    }
}

#[derive(Debug, Default)]
struct Stripe {
    /// Name → slot within this stripe.
    ids: FnvHashMap<Name, u32>,
    /// Slot → name, for [`NameInterner::resolve`].
    names: Vec<Name>,
}

/// A concurrent, striped name-to-id table. See the module docs.
#[derive(Debug)]
pub struct NameInterner {
    stripes: Vec<RwLock<Stripe>>,
}

impl Default for NameInterner {
    fn default() -> Self {
        NameInterner {
            stripes: (0..STRIPES).map(|_| RwLock::new(Stripe::default())).collect(),
        }
    }
}

impl NameInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The id for `name`, assigning a fresh one on first sight.
    /// Case-insensitive: `WWW.Example.COM` and `www.example.com` intern
    /// to the same id ([`Name`] equality and [`name_hash64`] both fold
    /// ASCII case).
    pub fn intern(&self, name: &Name) -> NameId {
        let stripe_idx = (name_hash64(name) as usize) & (STRIPES - 1);
        let stripe = &self.stripes[stripe_idx];
        if let Some(&slot) = read_lock(stripe).ids.get(name) {
            return NameId(((stripe_idx as u32) << SLOT_BITS) | slot);
        }
        let mut guard = stripe.write().unwrap_or_else(|e| e.into_inner());
        let slot = match guard.ids.get(name) {
            Some(&slot) => slot,
            None => {
                let slot = guard.names.len() as u32;
                assert!(slot < (1 << SLOT_BITS), "interner stripe overflow");
                guard.names.push(name.clone());
                guard.ids.insert(name.clone(), slot);
                slot
            }
        };
        NameId(((stripe_idx as u32) << SLOT_BITS) | slot)
    }

    /// The id for `name` if it was interned before (never assigns).
    pub fn get(&self, name: &Name) -> Option<NameId> {
        let stripe_idx = (name_hash64(name) as usize) & (STRIPES - 1);
        read_lock(&self.stripes[stripe_idx])
            .ids
            .get(name)
            .map(|&slot| NameId(((stripe_idx as u32) << SLOT_BITS) | slot))
    }

    /// The name behind `id` (a clone), or `None` for an id this interner
    /// never issued.
    pub fn resolve(&self, id: NameId) -> Option<Name> {
        let stripe_idx = (id.0 >> SLOT_BITS) as usize;
        let slot = (id.0 & ((1 << SLOT_BITS) - 1)) as usize;
        read_lock(self.stripes.get(stripe_idx)?).names.get(slot).cloned()
    }

    /// How many distinct names are interned.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| read_lock(s).names.len()).sum()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn read_lock(stripe: &RwLock<Stripe>) -> std::sync::RwLockReadGuard<'_, Stripe> {
    stripe.read().unwrap_or_else(|e| e.into_inner())
}

/// A stable, case-insensitive 64-bit FNV-1a hash over a name's labels.
///
/// Identical for names that compare equal (ASCII case folded per label,
/// labels separated by an `0xff` sentinel that cannot appear *as a
/// length-prefix boundary* ambiguity since labels are hashed in order).
/// Deterministic across processes and platforms — used to pick interner
/// stripes, resolver cache shards, and traffic worker shards, so the
/// same key always lands in the same place run-to-run.
pub fn name_hash64(name: &Name) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for label in name.labels() {
        for &b in label.as_bytes() {
            hash ^= b.to_ascii_lowercase() as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash ^= 0xff;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn interning_is_idempotent_and_case_insensitive() {
        let interner = NameInterner::new();
        let a = interner.intern(&name("www.example.com"));
        let b = interner.intern(&name("WWW.Example.COM"));
        let c = interner.intern(&name("mail.example.com"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.get(&name("www.EXAMPLE.com")), Some(a));
        assert_eq!(interner.get(&name("absent.example.com")), None);
    }

    #[test]
    fn resolve_round_trips() {
        let interner = NameInterner::new();
        let id = interner.intern(&name("a.b.example.net"));
        assert_eq!(interner.resolve(id), Some(name("a.b.example.net")));
        assert_eq!(interner.resolve(NameId(0x0fff_ffff)), None);
        assert!(interner.resolve(NameId(u32::MAX)).is_none());
    }

    #[test]
    fn hash_folds_case_and_separates_labels() {
        assert_eq!(name_hash64(&name("www.example.com")), name_hash64(&name("WWW.EXAMPLE.com")));
        assert_ne!(name_hash64(&name("ab.c")), name_hash64(&name("a.bc")));
        assert_ne!(name_hash64(&name("example.com")), name_hash64(&name("example.net")));
        // Root hashes to the FNV offset basis — stable across runs.
        assert_eq!(name_hash64(&Name::root()), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn concurrent_interning_agrees_on_ids() {
        let interner = NameInterner::new();
        let names: Vec<Name> = (0..64).map(|i| name(&format!("d{i}.example.com"))).collect();
        let ids: Vec<Vec<NameId>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let names = &names;
                    let interner = &interner;
                    scope.spawn(move || names.iter().map(|n| interner.intern(n)).collect())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for worker in &ids[1..] {
            assert_eq!(worker, &ids[0], "every worker sees the same ids");
        }
        assert_eq!(interner.len(), 64);
    }

    #[test]
    fn empty_interner_reports_empty() {
        let interner = NameInterner::new();
        assert!(interner.is_empty());
        assert_eq!(interner.len(), 0);
        interner.intern(&Name::root());
        assert!(!interner.is_empty());
    }
}
