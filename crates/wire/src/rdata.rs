//! Typed RDATA for every record type the study needs (RFC 1035, RFC 4034,
//! RFC 7344), plus an opaque fallback for everything else.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use dsec_crypto::base64;

use crate::name::Name;
use crate::rrtype::{RrType, TypeBitmap};
use crate::wire::{WireReader, WireWriter};
use crate::WireError;

/// DNSKEY flags bit for "Zone Key" (bit 7 of the flags field).
pub const DNSKEY_FLAG_ZONE: u16 = 0x0100;
/// DNSKEY flags bit for "Secure Entry Point" (KSK marker, bit 15).
pub const DNSKEY_FLAG_SEP: u16 = 0x0001;

/// DNSKEY RDATA (RFC 4034 §2). Also used verbatim for CDNSKEY (RFC 7344).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DnskeyRdata {
    /// Flags: zone-key bit 0x0100; SEP (KSK) bit 0x0001.
    pub flags: u16,
    /// Protocol; must be 3 for DNSSEC.
    pub protocol: u8,
    /// IANA algorithm number.
    pub algorithm: u8,
    /// Public key material (RFC 3110 format for RSA).
    pub public_key: Vec<u8>,
}

impl DnskeyRdata {
    /// Conventional ZSK flags (zone key, no SEP).
    pub fn zsk_flags() -> u16 {
        DNSKEY_FLAG_ZONE
    }

    /// Conventional KSK flags (zone key + SEP).
    pub fn ksk_flags() -> u16 {
        DNSKEY_FLAG_ZONE | DNSKEY_FLAG_SEP
    }

    /// True if the SEP (KSK) bit is set.
    pub fn is_ksk(&self) -> bool {
        self.flags & DNSKEY_FLAG_SEP != 0
    }

    /// True if the zone-key bit is set (required for validation use).
    pub fn is_zone_key(&self) -> bool {
        self.flags & DNSKEY_FLAG_ZONE != 0
    }

    /// RDATA wire encoding (also the input to the key-tag computation).
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.public_key.len());
        out.extend_from_slice(&self.flags.to_be_bytes());
        out.push(self.protocol);
        out.push(self.algorithm);
        out.extend_from_slice(&self.public_key);
        out
    }

    /// RFC 4034 Appendix B key tag of this key.
    pub fn key_tag(&self) -> u16 {
        dsec_crypto::key_tag(&self.to_wire())
    }
}

/// DS RDATA (RFC 4034 §5). Also used verbatim for CDS (RFC 7344).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DsRdata {
    /// Key tag of the referenced DNSKEY.
    pub key_tag: u16,
    /// Algorithm number of the referenced DNSKEY.
    pub algorithm: u8,
    /// Digest type number.
    pub digest_type: u8,
    /// The digest itself.
    pub digest: Vec<u8>,
}

/// RRSIG RDATA (RFC 4034 §3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RrsigRdata {
    /// The type of the RRset this signature covers.
    pub type_covered: RrType,
    /// Algorithm of the signing DNSKEY.
    pub algorithm: u8,
    /// Label count of the owner name (wildcard detection).
    pub labels: u8,
    /// The original TTL of the covered RRset.
    pub original_ttl: u32,
    /// Expiration time (seconds since the UNIX epoch).
    pub expiration: u32,
    /// Inception time (seconds since the UNIX epoch).
    pub inception: u32,
    /// Key tag of the signing DNSKEY.
    pub key_tag: u16,
    /// Owner of the signing DNSKEY.
    pub signer_name: Name,
    /// The signature bytes.
    pub signature: Vec<u8>,
}

impl RrsigRdata {
    /// The RDATA prefix covered by the signature (everything up to and
    /// excluding the signature field), with the signer name canonicalized.
    pub fn signed_prefix(&self) -> Vec<u8> {
        let mut w = WireWriter::uncompressed();
        w.put_u16(self.type_covered.number());
        w.put_u8(self.algorithm);
        w.put_u8(self.labels);
        w.put_u32(self.original_ttl);
        w.put_u32(self.expiration);
        w.put_u32(self.inception);
        w.put_u16(self.key_tag);
        w.put_bytes(&self.signer_name.to_canonical_wire());
        w.into_bytes()
    }
}

/// NSEC3 RDATA (RFC 5155 §3). The owner name carries the base32hex hash;
/// the RDATA carries the parameters, the next hash, and the type bitmap.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Nsec3Rdata {
    /// Hash algorithm (1 = SHA-1, the only defined value).
    pub hash_algorithm: u8,
    /// Flags (bit 0 = opt-out).
    pub flags: u8,
    /// Additional hash iterations.
    pub iterations: u16,
    /// Salt (empty = no salt).
    pub salt: Vec<u8>,
    /// Hash of the next owner in hash order (raw bytes, not base32hex).
    pub next_hashed: Vec<u8>,
    /// Types present at the original owner.
    pub types: TypeBitmap,
}

/// NSEC3PARAM RDATA (RFC 5155 §4): the zone-apex advertisement of the
/// NSEC3 parameters in use.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Nsec3ParamRdata {
    /// Hash algorithm (1 = SHA-1).
    pub hash_algorithm: u8,
    /// Flags (must be 0 here).
    pub flags: u8,
    /// Additional hash iterations.
    pub iterations: u16,
    /// Salt.
    pub salt: Vec<u8>,
}

/// SOA RDATA (RFC 1035 §3.3.13).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SoaRdata {
    /// Primary nameserver.
    pub mname: Name,
    /// Responsible mailbox (encoded as a name).
    pub rname: Name,
    /// Zone serial number.
    pub serial: u32,
    /// Secondary refresh interval (seconds).
    pub refresh: u32,
    /// Retry interval (seconds).
    pub retry: u32,
    /// Expiry (seconds).
    pub expire: u32,
    /// Negative-caching TTL (seconds).
    pub minimum: u32,
}

/// Typed RDATA.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Authoritative nameserver.
    Ns(Name),
    /// Alias.
    Cname(Name),
    /// Start of authority.
    Soa(SoaRdata),
    /// Mail exchange.
    Mx {
        /// Preference (lower wins).
        preference: u16,
        /// Exchange host.
        exchange: Name,
    },
    /// Text strings (each ≤ 255 bytes).
    Txt(Vec<Vec<u8>>),
    /// DNSSEC public key.
    Dnskey(DnskeyRdata),
    /// Delegation signer.
    Ds(DsRdata),
    /// Signature.
    Rrsig(RrsigRdata),
    /// Authenticated denial.
    Nsec {
        /// Next owner name in canonical order.
        next: Name,
        /// Types present at this owner.
        types: TypeBitmap,
    },
    /// Hashed authenticated denial (RFC 5155).
    Nsec3(Nsec3Rdata),
    /// NSEC3 parameters at the apex (RFC 5155).
    Nsec3Param(Nsec3ParamRdata),
    /// Child DS (RFC 7344): same wire form as DS.
    Cds(DsRdata),
    /// Child DNSKEY (RFC 7344): same wire form as DNSKEY.
    Cdnskey(DnskeyRdata),
    /// Opaque RDATA for types this library does not model.
    Unknown {
        /// The record type.
        rtype: RrType,
        /// Raw RDATA bytes.
        data: Vec<u8>,
    },
}

impl RData {
    /// The record type this RDATA belongs to.
    pub fn rtype(&self) -> RrType {
        match self {
            RData::A(_) => RrType::A,
            RData::Aaaa(_) => RrType::Aaaa,
            RData::Ns(_) => RrType::Ns,
            RData::Cname(_) => RrType::Cname,
            RData::Soa(_) => RrType::Soa,
            RData::Mx { .. } => RrType::Mx,
            RData::Txt(_) => RrType::Txt,
            RData::Dnskey(_) => RrType::Dnskey,
            RData::Ds(_) => RrType::Ds,
            RData::Rrsig(_) => RrType::Rrsig,
            RData::Nsec { .. } => RrType::Nsec,
            RData::Nsec3(_) => RrType::Nsec3,
            RData::Nsec3Param(_) => RrType::Nsec3Param,
            RData::Cds(_) => RrType::Cds,
            RData::Cdnskey(_) => RrType::Cdnskey,
            RData::Unknown { rtype, .. } => *rtype,
        }
    }

    /// Encodes the RDATA into `w`. Embedded names follow the writer's
    /// compression setting except for DNSSEC types, which never compress
    /// (RFC 3597 §4).
    pub fn encode(&self, w: &mut WireWriter) {
        match self {
            RData::A(a) => w.put_bytes(&a.octets()),
            RData::Aaaa(a) => w.put_bytes(&a.octets()),
            RData::Ns(n) => w.put_name(n),
            RData::Cname(n) => w.put_name(n),
            RData::Soa(soa) => {
                w.put_name(&soa.mname);
                w.put_name(&soa.rname);
                w.put_u32(soa.serial);
                w.put_u32(soa.refresh);
                w.put_u32(soa.retry);
                w.put_u32(soa.expire);
                w.put_u32(soa.minimum);
            }
            RData::Mx {
                preference,
                exchange,
            } => {
                w.put_u16(*preference);
                w.put_name(exchange);
            }
            RData::Txt(strings) => {
                for s in strings {
                    w.put_u8(s.len() as u8);
                    w.put_bytes(s);
                }
            }
            RData::Dnskey(k) | RData::Cdnskey(k) => w.put_bytes(&k.to_wire()),
            RData::Ds(ds) | RData::Cds(ds) => {
                w.put_u16(ds.key_tag);
                w.put_u8(ds.algorithm);
                w.put_u8(ds.digest_type);
                w.put_bytes(&ds.digest);
            }
            RData::Rrsig(sig) => {
                w.put_bytes(&sig.signed_prefix_raw());
                w.put_bytes(&sig.signature);
            }
            RData::Nsec { next, types } => {
                // NSEC next-name never compresses.
                let mut inner = WireWriter::uncompressed();
                inner.put_name(next);
                w.put_bytes(&inner.into_bytes());
                w.put_bytes(&types.to_wire());
            }
            RData::Nsec3(n) => {
                w.put_u8(n.hash_algorithm);
                w.put_u8(n.flags);
                w.put_u16(n.iterations);
                w.put_u8(n.salt.len() as u8);
                w.put_bytes(&n.salt);
                w.put_u8(n.next_hashed.len() as u8);
                w.put_bytes(&n.next_hashed);
                w.put_bytes(&n.types.to_wire());
            }
            RData::Nsec3Param(p) => {
                w.put_u8(p.hash_algorithm);
                w.put_u8(p.flags);
                w.put_u16(p.iterations);
                w.put_u8(p.salt.len() as u8);
                w.put_bytes(&p.salt);
            }
            RData::Unknown { data, .. } => w.put_bytes(data),
        }
    }

    /// The plain wire encoding as a standalone byte vector (no compression).
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::uncompressed();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Canonical RDATA form for DNSSEC (RFC 4034 §6.2): no compression and
    /// embedded names lowercased for the types that list requires.
    pub fn to_canonical_wire(&self) -> Vec<u8> {
        let canonical = match self {
            RData::Ns(n) => RData::Ns(n.to_canonical()),
            RData::Cname(n) => RData::Cname(n.to_canonical()),
            RData::Mx {
                preference,
                exchange,
            } => RData::Mx {
                preference: *preference,
                exchange: exchange.to_canonical(),
            },
            RData::Soa(soa) => RData::Soa(SoaRdata {
                mname: soa.mname.to_canonical(),
                rname: soa.rname.to_canonical(),
                ..soa.clone()
            }),
            RData::Rrsig(sig) => RData::Rrsig(RrsigRdata {
                signer_name: sig.signer_name.to_canonical(),
                ..sig.clone()
            }),
            RData::Nsec { next, types } => RData::Nsec {
                next: next.to_canonical(),
                types: types.clone(),
            },
            other => other.clone(),
        };
        canonical.to_wire()
    }

    /// Decodes RDATA of type `rtype` from `r`; the RDATA occupies exactly
    /// `rdlen` bytes starting at the current position (names inside may
    /// point backwards into the surrounding message).
    pub fn decode(rtype: RrType, r: &mut WireReader<'_>, rdlen: usize) -> Result<Self, WireError> {
        let end = r.position() + rdlen;
        if r.remaining() < rdlen {
            return Err(WireError::Truncated);
        }
        let rdata = match rtype {
            RrType::A => {
                let b = r.get_bytes(4)?;
                RData::A(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
            }
            RrType::Aaaa => {
                let b: [u8; 16] = r.get_bytes(16)?.try_into().unwrap();
                RData::Aaaa(Ipv6Addr::from(b))
            }
            RrType::Ns => RData::Ns(r.get_name()?),
            RrType::Cname => RData::Cname(r.get_name()?),
            RrType::Soa => RData::Soa(SoaRdata {
                mname: r.get_name()?,
                rname: r.get_name()?,
                serial: r.get_u32()?,
                refresh: r.get_u32()?,
                retry: r.get_u32()?,
                expire: r.get_u32()?,
                minimum: r.get_u32()?,
            }),
            RrType::Mx => RData::Mx {
                preference: r.get_u16()?,
                exchange: r.get_name()?,
            },
            RrType::Txt => {
                let mut strings = Vec::new();
                while r.position() < end {
                    let len = r.get_u8()? as usize;
                    strings.push(r.get_bytes(len)?.to_vec());
                }
                RData::Txt(strings)
            }
            RrType::Dnskey | RrType::Cdnskey => {
                if rdlen < 4 {
                    return Err(WireError::Truncated);
                }
                let k = DnskeyRdata {
                    flags: r.get_u16()?,
                    protocol: r.get_u8()?,
                    algorithm: r.get_u8()?,
                    public_key: r.get_bytes(end - r.position())?.to_vec(),
                };
                if rtype == RrType::Dnskey {
                    RData::Dnskey(k)
                } else {
                    RData::Cdnskey(k)
                }
            }
            RrType::Ds | RrType::Cds => {
                if rdlen < 4 {
                    return Err(WireError::Truncated);
                }
                let ds = DsRdata {
                    key_tag: r.get_u16()?,
                    algorithm: r.get_u8()?,
                    digest_type: r.get_u8()?,
                    digest: r.get_bytes(end - r.position())?.to_vec(),
                };
                if rtype == RrType::Ds {
                    RData::Ds(ds)
                } else {
                    RData::Cds(ds)
                }
            }
            RrType::Rrsig => {
                let type_covered = RrType::from_number(r.get_u16()?);
                let algorithm = r.get_u8()?;
                let labels = r.get_u8()?;
                let original_ttl = r.get_u32()?;
                let expiration = r.get_u32()?;
                let inception = r.get_u32()?;
                let key_tag = r.get_u16()?;
                let signer_name = r.get_name()?;
                if r.position() > end {
                    return Err(WireError::Truncated);
                }
                let signature = r.get_bytes(end - r.position())?.to_vec();
                RData::Rrsig(RrsigRdata {
                    type_covered,
                    algorithm,
                    labels,
                    original_ttl,
                    expiration,
                    inception,
                    key_tag,
                    signer_name,
                    signature,
                })
            }
            RrType::Nsec => {
                let next = r.get_name()?;
                if r.position() > end {
                    return Err(WireError::Truncated);
                }
                let types = TypeBitmap::from_wire(r.get_bytes(end - r.position())?)?;
                RData::Nsec { next, types }
            }
            RrType::Nsec3 => {
                if rdlen < 6 {
                    return Err(WireError::Truncated);
                }
                let hash_algorithm = r.get_u8()?;
                let flags = r.get_u8()?;
                let iterations = r.get_u16()?;
                let salt_len = r.get_u8()? as usize;
                let salt = r.get_bytes(salt_len)?.to_vec();
                let hash_len = r.get_u8()? as usize;
                let next_hashed = r.get_bytes(hash_len)?.to_vec();
                if r.position() > end {
                    return Err(WireError::Truncated);
                }
                let types = TypeBitmap::from_wire(r.get_bytes(end - r.position())?)?;
                RData::Nsec3(Nsec3Rdata {
                    hash_algorithm,
                    flags,
                    iterations,
                    salt,
                    next_hashed,
                    types,
                })
            }
            RrType::Nsec3Param => {
                if rdlen < 5 {
                    return Err(WireError::Truncated);
                }
                let hash_algorithm = r.get_u8()?;
                let flags = r.get_u8()?;
                let iterations = r.get_u16()?;
                let salt_len = r.get_u8()? as usize;
                let salt = r.get_bytes(salt_len)?.to_vec();
                RData::Nsec3Param(Nsec3ParamRdata {
                    hash_algorithm,
                    flags,
                    iterations,
                    salt,
                })
            }
            other => RData::Unknown {
                rtype: other,
                data: r.get_bytes(rdlen)?.to_vec(),
            },
        };
        if r.position() != end {
            return Err(WireError::RdataLengthMismatch {
                expected: rdlen,
                actual: r.position() + rdlen - end,
            });
        }
        Ok(rdata)
    }
}

impl RrsigRdata {
    /// The RDATA fields before the signature, signer name *not* lowercased
    /// (used for plain wire encoding; signing uses [`Self::signed_prefix`]).
    fn signed_prefix_raw(&self) -> Vec<u8> {
        let mut w = WireWriter::uncompressed();
        w.put_u16(self.type_covered.number());
        w.put_u8(self.algorithm);
        w.put_u8(self.labels);
        w.put_u32(self.original_ttl);
        w.put_u32(self.expiration);
        w.put_u32(self.inception);
        w.put_u16(self.key_tag);
        w.put_name(&self.signer_name);
        w.into_bytes()
    }
}

impl fmt::Display for RData {
    /// Zone-file presentation form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RData::A(a) => write!(f, "{a}"),
            RData::Aaaa(a) => write!(f, "{a}"),
            RData::Ns(n) => write!(f, "{n}"),
            RData::Cname(n) => write!(f, "{n}"),
            RData::Soa(s) => write!(
                f,
                "{} {} {} {} {} {} {}",
                s.mname, s.rname, s.serial, s.refresh, s.retry, s.expire, s.minimum
            ),
            RData::Mx {
                preference,
                exchange,
            } => write!(f, "{preference} {exchange}"),
            RData::Txt(strings) => {
                let mut first = true;
                for s in strings {
                    if !first {
                        write!(f, " ")?;
                    }
                    write!(f, "\"{}\"", escape_txt(s))?;
                    first = false;
                }
                Ok(())
            }
            RData::Dnskey(k) | RData::Cdnskey(k) => write!(
                f,
                "{} {} {} {}",
                k.flags,
                k.protocol,
                k.algorithm,
                base64::encode(&k.public_key)
            ),
            RData::Ds(d) | RData::Cds(d) => write!(
                f,
                "{} {} {} {}",
                d.key_tag,
                d.algorithm,
                d.digest_type,
                hex(&d.digest)
            ),
            RData::Rrsig(s) => write!(
                f,
                "{} {} {} {} {} {} {} {} {}",
                s.type_covered,
                s.algorithm,
                s.labels,
                s.original_ttl,
                s.expiration,
                s.inception,
                s.key_tag,
                s.signer_name,
                base64::encode(&s.signature)
            ),
            RData::Nsec { next, types } => write!(f, "{next} {types}"),
            RData::Nsec3(n) => write!(
                f,
                "{} {} {} {} {} {}",
                n.hash_algorithm,
                n.flags,
                n.iterations,
                if n.salt.is_empty() { "-".into() } else { hex(&n.salt) },
                dsec_crypto::base32::encode_hex(&n.next_hashed),
                n.types
            ),
            RData::Nsec3Param(p) => write!(
                f,
                "{} {} {} {}",
                p.hash_algorithm,
                p.flags,
                p.iterations,
                if p.salt.is_empty() { "-".into() } else { hex(&p.salt) },
            ),
            RData::Unknown { data, .. } => {
                // RFC 3597 unknown-type presentation.
                write!(f, "\\# {} {}", data.len(), hex(data))
            }
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02X}")).collect()
}

fn escape_txt(s: &[u8]) -> String {
    s.iter()
        .flat_map(|&b| match b {
            b'"' => "\\\"".chars().collect::<Vec<_>>(),
            b'\\' => "\\\\".chars().collect(),
            0x20..=0x7e => vec![b as char],
            _ => format!("\\{b:03}").chars().collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn round_trip(rdata: RData) {
        let wire = rdata.to_wire();
        let mut r = WireReader::new(&wire);
        let back = RData::decode(rdata.rtype(), &mut r, wire.len()).unwrap();
        assert_eq!(back, rdata);
        assert!(r.is_at_end());
    }

    #[test]
    fn a_round_trip() {
        round_trip(RData::A("192.0.2.1".parse().unwrap()));
    }

    #[test]
    fn aaaa_round_trip() {
        round_trip(RData::Aaaa("2001:db8::1".parse().unwrap()));
    }

    #[test]
    fn ns_cname_mx_round_trip() {
        round_trip(RData::Ns(name("ns1.example.com")));
        round_trip(RData::Cname(name("alias.example.com")));
        round_trip(RData::Mx {
            preference: 10,
            exchange: name("mail.example.com"),
        });
    }

    #[test]
    fn soa_round_trip() {
        round_trip(RData::Soa(SoaRdata {
            mname: name("ns1.example.com"),
            rname: name("hostmaster.example.com"),
            serial: 2016123100,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 3600,
        }));
    }

    #[test]
    fn txt_round_trip() {
        round_trip(RData::Txt(vec![b"hello".to_vec(), b"world".to_vec()]));
        round_trip(RData::Txt(vec![vec![]]));
    }

    #[test]
    fn dnskey_round_trip_and_flags() {
        let k = DnskeyRdata {
            flags: DnskeyRdata::ksk_flags(),
            protocol: 3,
            algorithm: 8,
            public_key: vec![1, 2, 3, 4, 5],
        };
        assert!(k.is_ksk());
        assert!(k.is_zone_key());
        round_trip(RData::Dnskey(k.clone()));
        round_trip(RData::Cdnskey(k));
        let zsk = DnskeyRdata {
            flags: DnskeyRdata::zsk_flags(),
            protocol: 3,
            algorithm: 8,
            public_key: vec![9],
        };
        assert!(!zsk.is_ksk());
    }

    #[test]
    fn ds_round_trip() {
        let ds = DsRdata {
            key_tag: 60485,
            algorithm: 8,
            digest_type: 2,
            digest: vec![0xAB; 32],
        };
        round_trip(RData::Ds(ds.clone()));
        round_trip(RData::Cds(ds));
    }

    #[test]
    fn rrsig_round_trip() {
        round_trip(RData::Rrsig(RrsigRdata {
            type_covered: RrType::A,
            algorithm: 8,
            labels: 2,
            original_ttl: 3600,
            expiration: 1483228800,
            inception: 1480550400,
            key_tag: 12345,
            signer_name: name("example.com"),
            signature: vec![7; 64],
        }));
    }

    #[test]
    fn nsec_round_trip() {
        round_trip(RData::Nsec {
            next: name("b.example.com"),
            types: TypeBitmap::from_types([RrType::A, RrType::Rrsig, RrType::Nsec]),
        });
    }

    #[test]
    fn nsec3_round_trip() {
        round_trip(RData::Nsec3(Nsec3Rdata {
            hash_algorithm: 1,
            flags: 1,
            iterations: 12,
            salt: vec![0xaa, 0xbb, 0xcc, 0xdd],
            next_hashed: vec![0x1A; 20],
            types: TypeBitmap::from_types([RrType::A, RrType::Rrsig]),
        }));
        // Empty salt is legal.
        round_trip(RData::Nsec3(Nsec3Rdata {
            hash_algorithm: 1,
            flags: 0,
            iterations: 0,
            salt: vec![],
            next_hashed: vec![0x2B; 20],
            types: TypeBitmap::from_types([RrType::Soa]),
        }));
    }

    #[test]
    fn nsec3param_round_trip() {
        round_trip(RData::Nsec3Param(Nsec3ParamRdata {
            hash_algorithm: 1,
            flags: 0,
            iterations: 12,
            salt: vec![0xaa, 0xbb],
        }));
    }

    #[test]
    fn nsec3_display_uses_base32hex_and_dash_salt() {
        let n = RData::Nsec3(Nsec3Rdata {
            hash_algorithm: 1,
            flags: 0,
            iterations: 0,
            salt: vec![],
            next_hashed: b"foobar".to_vec(),
            types: TypeBitmap::from_types([RrType::A]),
        });
        assert_eq!(n.to_string(), "1 0 0 - cpnmuoj1e8 A");
    }

    #[test]
    fn unknown_round_trip() {
        round_trip(RData::Unknown {
            rtype: RrType::Unknown(999),
            data: vec![1, 2, 3],
        });
    }

    #[test]
    fn decode_rejects_length_mismatch() {
        // An A record with 5 RDATA bytes.
        let wire = [192, 0, 2, 1, 9];
        let mut r = WireReader::new(&wire);
        assert!(RData::decode(RrType::A, &mut r, 5).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let wire = [192, 0];
        let mut r = WireReader::new(&wire);
        assert!(RData::decode(RrType::A, &mut r, 4).is_err());
        let mut r2 = WireReader::new(&[0, 1, 2]);
        assert!(RData::decode(RrType::Dnskey, &mut r2, 3).is_err());
    }

    #[test]
    fn canonical_lowercases_embedded_names() {
        let rd = RData::Ns(name("NS1.Example.COM"));
        let canon = rd.to_canonical_wire();
        assert_eq!(canon, b"\x03ns1\x07example\x03com\x00".to_vec());
        // A-record canonical form equals plain form.
        let a = RData::A("192.0.2.1".parse().unwrap());
        assert_eq!(a.to_canonical_wire(), a.to_wire());
    }

    #[test]
    fn key_tag_changes_with_material() {
        let k1 = DnskeyRdata {
            flags: 256,
            protocol: 3,
            algorithm: 8,
            public_key: vec![1, 2, 3],
        };
        let k2 = DnskeyRdata {
            public_key: vec![1, 2, 4],
            ..k1.clone()
        };
        assert_ne!(k1.key_tag(), k2.key_tag());
    }

    #[test]
    fn display_forms() {
        assert_eq!(RData::A("192.0.2.1".parse().unwrap()).to_string(), "192.0.2.1");
        let ds = RData::Ds(DsRdata {
            key_tag: 1,
            algorithm: 8,
            digest_type: 2,
            digest: vec![0xde, 0xad],
        });
        assert_eq!(ds.to_string(), "1 8 2 DEAD");
        let txt = RData::Txt(vec![b"a\"b".to_vec()]);
        assert_eq!(txt.to_string(), "\"a\\\"b\"");
        let unk = RData::Unknown {
            rtype: RrType::Unknown(999),
            data: vec![1, 2],
        };
        assert_eq!(unk.to_string(), "\\# 2 0102");
    }
}
