//! Resource records and RRsets, including the RFC 4034 §6 canonical RRset
//! form that DNSSEC signatures cover.

use std::fmt;

use crate::name::Name;
use crate::rdata::RData;
use crate::rrtype::{RrClass, RrType};
use crate::wire::{WireReader, WireWriter};
use crate::WireError;

/// A single resource record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Class (IN everywhere in this study).
    pub class: RrClass,
    /// Time to live, seconds.
    pub ttl: u32,
    /// Typed RDATA.
    pub rdata: RData,
}

impl Record {
    /// Convenience constructor for class-IN records.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Self {
        Record {
            name,
            class: RrClass::In,
            ttl,
            rdata,
        }
    }

    /// The record type (derived from the RDATA).
    pub fn rtype(&self) -> RrType {
        self.rdata.rtype()
    }

    /// Encodes the full record (name, type, class, TTL, RDLENGTH, RDATA).
    pub fn encode(&self, w: &mut WireWriter) {
        w.put_name(&self.name);
        w.put_u16(self.rtype().number());
        w.put_u16(self.class.number());
        w.put_u32(self.ttl);
        let len_pos = w.len();
        w.put_u16(0);
        let rdata_start = w.len();
        self.rdata.encode(w);
        let rdlen = w.len() - rdata_start;
        w.patch_u16(len_pos, rdlen as u16);
    }

    /// Decodes one record at the reader's position.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let name = r.get_name()?;
        let rtype = RrType::from_number(r.get_u16()?);
        let class = RrClass::from_number(r.get_u16()?);
        let ttl = r.get_u32()?;
        let rdlen = r.get_u16()? as usize;
        let rdata = RData::decode(rtype, r, rdlen)?;
        Ok(Record {
            name,
            class,
            ttl,
            rdata,
        })
    }

    /// The canonical wire form of this record with `ttl` overriding the
    /// record's own TTL (signatures cover the RRSIG's `original_ttl`).
    fn canonical_wire_with_ttl(&self, ttl: u32) -> Vec<u8> {
        let rdata = self.rdata.to_canonical_wire();
        let mut w = WireWriter::uncompressed();
        w.put_bytes(&self.name.to_canonical_wire());
        w.put_u16(self.rtype().number());
        w.put_u16(self.class.number());
        w.put_u32(ttl);
        w.put_u16(rdata.len() as u16);
        w.put_bytes(&rdata);
        w.into_bytes()
    }
}

impl fmt::Display for Record {
    /// Zone-file presentation: `name ttl class type rdata`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {}",
            self.name,
            self.ttl,
            self.class,
            self.rtype(),
            self.rdata
        )
    }
}

/// An RRset: all records sharing (owner, class, type).
///
/// DNSSEC signs RRsets, not records, so this is the unit the signer and
/// validator operate on. The constructor enforces the sharing invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RrSet {
    records: Vec<Record>,
}

impl RrSet {
    /// Builds an RRset; all records must share owner, class, and type, and
    /// the set must be non-empty.
    pub fn new(records: Vec<Record>) -> Result<Self, WireError> {
        let first = records.first().ok_or(WireError::EmptyRrSet)?;
        let (name, class, rtype) = (first.name.clone(), first.class, first.rtype());
        for r in &records {
            if r.name != name || r.class != class || r.rtype() != rtype {
                return Err(WireError::MixedRrSet);
            }
        }
        Ok(RrSet { records })
    }

    /// Owner name.
    pub fn name(&self) -> &Name {
        &self.records[0].name
    }

    /// Record type.
    pub fn rtype(&self) -> RrType {
        self.records[0].rtype()
    }

    /// Class.
    pub fn class(&self) -> RrClass {
        self.records[0].class
    }

    /// TTL of the set (the first record's; sets are normally uniform).
    pub fn ttl(&self) -> u32 {
        self.records[0].ttl
    }

    /// The records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// RRsets are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The canonical byte stream DNSSEC signatures cover for this RRset
    /// (RFC 4034 §3.1.8.1, after the RRSIG prefix): each record in
    /// canonical form with `original_ttl`, sorted by canonical RDATA.
    pub fn canonical_wire(&self, original_ttl: u32) -> Vec<u8> {
        let mut encoded: Vec<Vec<u8>> = self
            .records
            .iter()
            .map(|r| r.canonical_wire_with_ttl(original_ttl))
            .collect();
        // Sorting whole canonical records is equivalent to sorting by
        // canonical RDATA because the prefix (name/type/class/TTL) is
        // identical across the set — except RDLENGTH, which precedes the
        // RDATA; shorter RDATA sorts first either way only if the prefix
        // comparison is on RDATA bytes. Sort on the RDATA suffix directly.
        let prefix_len = self.records[0]
            .name
            .to_canonical_wire()
            .len()
            + 2 // type
            + 2 // class
            + 4 // ttl
            + 2; // rdlength
        encoded.sort_by(|a, b| a[prefix_len..].cmp(&b[prefix_len..]));
        encoded.dedup();
        encoded.concat()
    }
}

/// Groups loose records into RRsets, preserving first-seen order of sets.
pub fn group_rrsets(records: &[Record]) -> Vec<RrSet> {
    let mut sets: Vec<RrSet> = Vec::new();
    for record in records {
        if let Some(set) = sets.iter_mut().find(|s| {
            s.name() == &record.name && s.rtype() == record.rtype() && s.class() == record.class
        }) {
            set.records.push(record.clone());
        } else {
            sets.push(RrSet {
                records: vec![record.clone()],
            });
        }
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdata::DsRdata;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn a(owner: &str, ip: &str) -> Record {
        Record::new(name(owner), 3600, RData::A(ip.parse().unwrap()))
    }

    #[test]
    fn record_round_trip() {
        let rec = a("www.example.com", "192.0.2.1");
        let mut w = WireWriter::new();
        rec.encode(&mut w);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(Record::decode(&mut r).unwrap(), rec);
        assert!(r.is_at_end());
    }

    #[test]
    fn record_round_trip_with_compression_in_rdata() {
        let rec = Record::new(name("example.com"), 300, RData::Ns(name("ns1.example.com")));
        let mut w = WireWriter::new();
        rec.encode(&mut w);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(Record::decode(&mut r).unwrap(), rec);
    }

    #[test]
    fn display_format() {
        let rec = a("www.example.com", "192.0.2.1");
        assert_eq!(rec.to_string(), "www.example.com. 3600 IN A 192.0.2.1");
    }

    #[test]
    fn rrset_enforces_sharing() {
        assert!(RrSet::new(vec![]).is_err());
        assert!(RrSet::new(vec![
            a("x.example", "192.0.2.1"),
            a("y.example", "192.0.2.2")
        ])
        .is_err());
        let ok = RrSet::new(vec![
            a("x.example", "192.0.2.1"),
            a("x.example", "192.0.2.2"),
        ])
        .unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok.rtype(), RrType::A);
    }

    #[test]
    fn canonical_wire_sorts_by_rdata() {
        let set1 = RrSet::new(vec![
            a("x.example", "192.0.2.2"),
            a("x.example", "192.0.2.1"),
        ])
        .unwrap();
        let set2 = RrSet::new(vec![
            a("x.example", "192.0.2.1"),
            a("x.example", "192.0.2.2"),
        ])
        .unwrap();
        assert_eq!(set1.canonical_wire(3600), set2.canonical_wire(3600));
    }

    #[test]
    fn canonical_wire_dedups() {
        let set = RrSet::new(vec![
            a("x.example", "192.0.2.1"),
            a("x.example", "192.0.2.1"),
        ])
        .unwrap();
        let single = RrSet::new(vec![a("x.example", "192.0.2.1")]).unwrap();
        assert_eq!(set.canonical_wire(3600), single.canonical_wire(3600));
    }

    #[test]
    fn canonical_wire_uses_original_ttl() {
        let set = RrSet::new(vec![a("x.example", "192.0.2.1")]).unwrap();
        assert_ne!(set.canonical_wire(3600), set.canonical_wire(300));
    }

    #[test]
    fn canonical_wire_is_case_insensitive() {
        let lower = RrSet::new(vec![a("x.example", "192.0.2.1")]).unwrap();
        let upper = RrSet::new(vec![a("X.EXAMPLE", "192.0.2.1")]).unwrap();
        assert_eq!(lower.canonical_wire(60), upper.canonical_wire(60));
    }

    #[test]
    fn group_rrsets_partitions() {
        let records = vec![
            a("x.example", "192.0.2.1"),
            Record::new(name("x.example"), 60, RData::Ns(name("ns.example"))),
            a("x.example", "192.0.2.2"),
            a("y.example", "192.0.2.3"),
        ];
        let sets = group_rrsets(&records);
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0].len(), 2); // both A records of x.example
        assert_eq!(sets[1].rtype(), RrType::Ns);
        assert_eq!(sets[2].name(), &name("y.example"));
    }

    #[test]
    fn ds_record_round_trip_through_record_layer() {
        let rec = Record::new(
            name("example.com"),
            86400,
            RData::Ds(DsRdata {
                key_tag: 12345,
                algorithm: 8,
                digest_type: 2,
                digest: vec![0xCC; 32],
            }),
        );
        let mut w = WireWriter::new();
        rec.encode(&mut w);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(Record::decode(&mut r).unwrap(), rec);
    }
}
