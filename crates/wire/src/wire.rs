//! Low-level wire-format reader and writer (RFC 1035 §4.1.4 compression).
//!
//! [`WireWriter`] appends big-endian integers, raw bytes, and domain names,
//! optionally compressing names with pointers to earlier occurrences.
//! [`WireReader`] is a cursor over a full message buffer — it must see the
//! whole message because compression pointers reference absolute offsets.

use std::collections::HashMap;

use crate::name::{Label, Name};
use crate::WireError;

/// Maximum pointer offset (14 bits).
const MAX_POINTER: usize = 0x3FFF;

/// Serializes DNS wire data with optional name compression.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
    /// Maps a name's presentation of its remaining labels to the offset of
    /// its first occurrence (for compression pointers).
    name_offsets: HashMap<String, usize>,
    /// When false (the canonical/RDATA-signing mode), names are never
    /// compressed.
    compression: bool,
}

impl WireWriter {
    /// A writer with compression enabled (message building).
    pub fn new() -> Self {
        WireWriter {
            buf: Vec::with_capacity(512),
            name_offsets: HashMap::new(),
            compression: true,
        }
    }

    /// A writer that never emits compression pointers. Required for RDATA
    /// of DNSSEC-signed types (RFC 3597 §4: new types must not compress).
    pub fn uncompressed() -> Self {
        WireWriter {
            compression: false,
            ..Self::new()
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a domain name, emitting a compression pointer when a suffix
    /// of the name was already written (and compression is enabled).
    pub fn put_name(&mut self, name: &Name) {
        let labels = name.labels();
        for i in 0..labels.len() {
            let suffix_key = suffix_key(&labels[i..]);
            if self.compression {
                if let Some(&off) = self.name_offsets.get(&suffix_key) {
                    let ptr = 0xC000u16 | off as u16;
                    self.put_u16(ptr);
                    return;
                }
                if self.buf.len() <= MAX_POINTER {
                    self.name_offsets.insert(suffix_key, self.buf.len());
                }
            }
            let label = &labels[i];
            self.buf.push(label.len() as u8);
            self.buf.extend_from_slice(label.as_bytes());
        }
        self.buf.push(0);
    }

    /// Overwrites a previously written big-endian u16 at `offset`
    /// (used to patch RDLENGTH after RDATA is serialized).
    pub fn patch_u16(&mut self, offset: usize, v: u16) {
        self.buf[offset..offset + 2].copy_from_slice(&v.to_be_bytes());
    }
}

/// Case-insensitive key for a label suffix.
fn suffix_key(labels: &[Label]) -> String {
    let mut key = String::new();
    for l in labels {
        for &b in l.as_bytes() {
            key.push(b.to_ascii_lowercase() as char);
        }
        key.push('\u{0}');
    }
    key
}

/// A cursor over a DNS message buffer with pointer-chasing name decoding.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader positioned at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        WireReader { data, pos: 0 }
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when the cursor is at the end.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.data.len()
    }

    /// Advances the cursor to an absolute position (for bounded sub-reads).
    pub fn seek(&mut self, pos: usize) -> Result<(), WireError> {
        if pos > self.data.len() {
            return Err(WireError::Truncated);
        }
        self.pos = pos;
        Ok(())
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        let b = *self.data.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian u16.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let hi = self.get_u8()? as u16;
        let lo = self.get_u8()? as u16;
        Ok((hi << 8) | lo)
    }

    /// Reads a big-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let hi = self.get_u16()? as u32;
        let lo = self.get_u16()? as u32;
        Ok((hi << 16) | lo)
    }

    /// Reads `len` raw bytes.
    pub fn get_bytes(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < len {
            return Err(WireError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Reads a (possibly compressed) domain name, chasing pointers with a
    /// hop limit so malicious loops cannot hang the decoder.
    pub fn get_name(&mut self) -> Result<Name, WireError> {
        let mut labels = Vec::new();
        let mut pos = self.pos;
        let mut jumped = false;
        let mut hops = 0;
        loop {
            let len = *self.data.get(pos).ok_or(WireError::Truncated)? as usize;
            match len {
                0 => {
                    pos += 1;
                    if !jumped {
                        self.pos = pos;
                    }
                    return Name::from_labels(labels);
                }
                l if l & 0xC0 == 0xC0 => {
                    let lo = *self.data.get(pos + 1).ok_or(WireError::Truncated)? as usize;
                    let target = ((len & 0x3F) << 8) | lo;
                    if !jumped {
                        self.pos = pos + 2;
                        jumped = true;
                    }
                    // Pointers must go strictly backwards; combined with the
                    // hop cap this bounds the walk.
                    if target >= pos {
                        return Err(WireError::BadPointer);
                    }
                    hops += 1;
                    if hops > 128 {
                        return Err(WireError::PointerLoop);
                    }
                    pos = target;
                }
                l if l & 0xC0 != 0 => return Err(WireError::BadLabelType(len as u8)),
                l => {
                    let start = pos + 1;
                    let end = start + l;
                    if end > self.data.len() {
                        return Err(WireError::Truncated);
                    }
                    labels.push(Label::new(self.data[start..end].to_vec())?);
                    pos = end;
                    if !jumped {
                        self.pos = pos;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn integers_round_trip() {
        let mut w = WireWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEADBEEF);
        w.put_bytes(&[1, 2, 3]);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0x1234);
        assert_eq!(r.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.get_bytes(3).unwrap(), &[1, 2, 3]);
        assert!(r.is_at_end());
        assert!(r.get_u8().is_err());
    }

    #[test]
    fn name_round_trip_uncompressed() {
        let mut w = WireWriter::uncompressed();
        w.put_name(&name("www.example.com"));
        w.put_name(&name("example.com"));
        let buf = w.into_bytes();
        // No pointers: total length is full encodings.
        assert_eq!(buf.len(), 17 + 13);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_name().unwrap(), name("www.example.com"));
        assert_eq!(r.get_name().unwrap(), name("example.com"));
    }

    #[test]
    fn compression_reuses_suffix() {
        let mut w = WireWriter::new();
        w.put_name(&name("www.example.com"));
        w.put_name(&name("mail.example.com"));
        w.put_name(&name("example.com"));
        let buf = w.into_bytes();
        // Second name: "mail" label (5) + pointer (2); third: pointer only.
        assert_eq!(buf.len(), 17 + 7 + 2);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_name().unwrap(), name("www.example.com"));
        assert_eq!(r.get_name().unwrap(), name("mail.example.com"));
        assert_eq!(r.get_name().unwrap(), name("example.com"));
        assert!(r.is_at_end());
    }

    #[test]
    fn compression_is_case_insensitive() {
        let mut w = WireWriter::new();
        w.put_name(&name("EXAMPLE.com"));
        w.put_name(&name("example.COM"));
        let buf = w.into_bytes();
        assert_eq!(buf.len(), 13 + 2);
    }

    #[test]
    fn root_name() {
        let mut w = WireWriter::new();
        w.put_name(&Name::root());
        let buf = w.into_bytes();
        assert_eq!(buf, vec![0]);
        let mut r = WireReader::new(&buf);
        assert!(r.get_name().unwrap().is_root());
    }

    #[test]
    fn reader_rejects_forward_pointer() {
        // Pointer to itself.
        let buf = [0xC0, 0x00];
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.get_name(), Err(WireError::BadPointer)));
    }

    #[test]
    fn reader_rejects_pointer_loop() {
        // Two pointers bouncing: 0 -> ... can't loop forward, so craft
        // a label then pointer back into itself indirectly.
        // offset 0: label "a", offset 2: pointer to 0 → name "a" then "a"...
        // That resolves: a -> pointer(0) -> reads label a again -> pointer...
        let buf = [1, b'a', 0xC0, 0x00];
        let mut r = WireReader::new(&buf);
        r.seek(2).unwrap();
        // pointer at 2 goes to 0, reads "a", then hits pointer at 2 again —
        // but target 0 < pos 2 each time... the cycle a(0)→ptr(2)→a(0) is
        // caught by the hop cap.
        assert!(r.get_name().is_err());
    }

    #[test]
    fn reader_rejects_bad_label_type() {
        let buf = [0x80, 0x01];
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.get_name(), Err(WireError::BadLabelType(_))));
    }

    #[test]
    fn reader_rejects_truncated_label() {
        let buf = [5, b'a', b'b'];
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.get_name(), Err(WireError::Truncated)));
    }

    #[test]
    fn patch_u16() {
        let mut w = WireWriter::new();
        w.put_u16(0);
        w.put_u8(7);
        w.patch_u16(0, 0xBEEF);
        assert_eq!(w.into_bytes(), vec![0xBE, 0xEF, 7]);
    }

    #[test]
    fn pointer_only_emitted_within_range() {
        // Names written past offset 0x3FFF must not be recorded as targets.
        let mut w = WireWriter::new();
        w.put_bytes(&vec![0u8; 0x4000]);
        w.put_name(&name("deep.example"));
        w.put_name(&name("deep.example"));
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        r.seek(0x4000).unwrap();
        assert_eq!(r.get_name().unwrap(), name("deep.example"));
        assert_eq!(r.get_name().unwrap(), name("deep.example"));
    }
}
