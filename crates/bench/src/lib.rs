//! # dsec-bench — experiment regeneration benches
//!
//! Criterion benches double as the experiment harness: each bench target
//! regenerates one of the paper's tables or figures (printing the
//! paper-vs-measured checkpoints once) and then benchmarks the analysis
//! step. Micro benches cover the substrates (crypto, wire, signing,
//! validation, resolution, scanning).

#![warn(missing_docs)]

/// Builds the tiny shared world used by table/figure benches.
pub fn tiny_paper_world() -> dsec_workloads::PaperWorld {
    dsec_workloads::build(&dsec_workloads::PopulationConfig::tiny())
}
