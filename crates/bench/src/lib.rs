//! # dsec-bench — experiment regeneration benches
//!
//! Criterion benches double as the experiment harness: each bench target
//! regenerates one of the paper's tables or figures (printing the
//! paper-vs-measured checkpoints once) and then benchmarks the analysis
//! step. Micro benches cover the substrates (crypto, wire, signing,
//! validation, resolution, scanning).

#![warn(missing_docs)]

/// Builds the tiny shared world used by table/figure benches.
pub fn tiny_paper_world() -> dsec_workloads::PaperWorld {
    dsec_workloads::build(&dsec_workloads::PopulationConfig::tiny())
}

/// The host's usable parallelism, detected once and shared by every
/// bench harness so the `scaling_checked` gates all agree.
///
/// `std::thread::available_parallelism` honors cgroup CPU quotas, which
/// is what we want on CI — a 1-core container genuinely cannot check
/// 8-thread scaling, and the gate must skip rather than record a bogus
/// ratio. `DSEC_HOST_THREADS` overrides the detection for runners whose
/// sandbox hides the real core count from the process.
pub fn host_threads() -> usize {
    std::env::var("DSEC_HOST_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}
