//! The user-traffic plane benchmark: query throughput and latency
//! percentiles at 1/4/8 worker threads, emitted as `BENCH_traffic.json`
//! so the repo carries a perf trajectory across changes.
//!
//! Two throughput numbers per run:
//!
//! - `sim_qps` — queries per *simulated* second: the stream length over
//!   the busiest worker's summed simulated latency. This is the scaling
//!   metric: it is deterministic, machine-independent, and measures how
//!   well the key-hash sharding balances the closed-loop client
//!   pipelines (8 perfectly balanced workers retire the stream in 1/8th
//!   of the simulated time).
//! - `wall_qps` — queries per wall-clock second on this host, reported
//!   for the record but asserted on nowhere: CI machines and the
//!   dev container may have a single core.
//!
//! ```sh
//! cargo bench --bench traffic                 # full workload, 1:2000
//! DSEC_BENCH_SMOKE=1 cargo bench --bench traffic   # CI smoke mode
//! DSEC_BENCH_OUT=/tmp/b.json cargo bench --bench traffic
//! ```
//!
//! Plain `main` (harness = false), JSON written by hand — same shape as
//! the `longitudinal` bench.

use dsec_traffic::{run_load, LoadConfig, TrafficReport};
use dsec_workloads::{build, PopulationConfig};

struct Run {
    threads: usize,
    report: TrafficReport,
}

impl Run {
    fn to_json(&self) -> String {
        let r = &self.report;
        format!(
            "    {{\"threads\": {}, \"queries\": {}, \"sim_qps\": {:.1}, \"wall_qps\": {:.1}, \
             \"p50_ms\": {}, \"p90_ms\": {}, \"p99_ms\": {}, \"p999_ms\": {}, \
             \"mean_ms\": {:.2}, \"cache_hit_rate\": {:.4}, \
             \"secure\": {}, \"insecure\": {}, \"bogus\": {}, \"servfail\": {}, \
             \"stale\": {}, \"negative\": {}}}",
            self.threads,
            r.total,
            r.sim_qps(),
            r.wall_qps(),
            r.histogram.p50(),
            r.histogram.p90(),
            r.histogram.p99(),
            r.histogram.p999(),
            r.histogram.mean_ms(),
            r.cache_hit_rate(),
            r.outcomes.secure,
            r.outcomes.insecure,
            r.outcomes.bogus,
            r.outcomes.servfail,
            r.outcomes.stale,
            r.outcomes.negative,
        )
    }
}

fn main() {
    let smoke = std::env::var("DSEC_BENCH_SMOKE").is_ok();
    let (population, base): (PopulationConfig, LoadConfig) = if smoke {
        (PopulationConfig::tiny(), LoadConfig::tiny())
    } else {
        (
            PopulationConfig::default(),
            LoadConfig::default().with_queries(
                std::env::var("DSEC_BENCH_QUERIES")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(60_000),
            ),
        )
    };
    let thread_counts: &[usize] = &[1, 4, 8];

    eprintln!(
        "traffic bench: building {} population…",
        if smoke { "smoke (tiny)" } else { "full (1:2000)" }
    );
    let started = std::time::Instant::now();
    let pw = build(&population);
    eprintln!(
        "built {} domains in {:.1}s; {} queries per run",
        pw.world.domain_count(),
        started.elapsed().as_secs_f64(),
        base.queries,
    );

    let mut runs: Vec<Run> = Vec::new();
    let reps = if smoke { 1 } else { 3 };
    for &threads in thread_counts {
        let config = base.clone().with_threads(threads);
        // Best-of-N: everything in the report except wall-clock time is
        // deterministic, so reps differ only in `elapsed_ms` — keep the
        // run with the least scheduler noise.
        let mut report = run_load(&pw.world, &config);
        for _ in 1..reps {
            let rep = run_load(&pw.world, &config);
            assert_eq!(rep.outcomes, report.outcomes, "reps must be deterministic");
            if rep.elapsed_ms < report.elapsed_ms {
                report = rep;
            }
        }
        assert_eq!(report.outcomes.total(), report.total, "every query classified");
        assert_eq!(report.outcomes.bogus, 0, "fault-free load must see no bogus");
        // The seeded per-query RTT jitter must keep the tail percentiles
        // distinct — a collapsed p50 == p99 == p999 means the latency
        // model degenerated back to a constant.
        assert!(
            report.histogram.p50() < report.histogram.p99()
                && report.histogram.p99() < report.histogram.p999(),
            "degenerate latency percentiles: p50 {} p99 {} p999 {}",
            report.histogram.p50(),
            report.histogram.p99(),
            report.histogram.p999(),
        );
        eprintln!(
            "threads={:<2} sim {:>8.1} q/s | wall {:>8.1} q/s | p50 {:>4} ms p99 {:>4} ms \
             p999 {:>4} ms | hit rate {:.1}% | {:.1}% secure",
            threads,
            report.sim_qps(),
            report.wall_qps(),
            report.histogram.p50(),
            report.histogram.p99(),
            report.histogram.p999(),
            100.0 * report.cache_hit_rate(),
            100.0 * report.outcomes.secure_share(),
        );
        runs.push(Run { threads, report });
    }

    // Thread-count invariance: the sharded drivers must agree on every
    // outcome cell no matter how many workers split the stream.
    for run in &runs[1..] {
        assert_eq!(
            run.report.outcomes, runs[0].report.outcomes,
            "outcome counts differ between {} and {} threads",
            runs[0].threads, run.threads
        );
        assert_eq!(
            run.report.by_registrar, runs[0].report.by_registrar,
            "registrar attribution differs between thread counts"
        );
    }

    let first = &runs[0];
    let last = &runs[runs.len() - 1];
    let sim_speedup = last.report.sim_qps() / first.report.sim_qps();
    // Wall-clock scaling is the contention metric: with the striped
    // cache and per-worker accumulators, more workers must never lower
    // real throughput. Judged only on hosts with the cores to show it.
    let host_threads = dsec_bench::host_threads();
    let wall_scaling = last.report.wall_qps() / first.report.wall_qps().max(f64::MIN_POSITIVE);
    // Whether the wall-clock scaling assertion below actually ran: on a
    // small host the flat `wall_qps_scaling_1_to_8` is expected (there
    // are no cores to scale over) and CI must read it as "skipped".
    let scaling_checked = !smoke && host_threads >= 8;
    eprintln!(
        "simulated-time scaling {} → {} threads: {:.2}x | wall-clock scaling {:.2}x \
         (host has {} hardware threads)",
        first.threads, last.threads, sim_speedup, wall_scaling, host_threads
    );

    let json = format!(
        "{{\n  \"bench\": \"traffic\",\n  \"smoke\": {},\n  \"scale\": {},\n  \
         \"domains\": {},\n  \"queries\": {},\n  \"host_threads\": {},\n  \
         \"scaling_checked\": {},\n  \"sim_speedup_1_to_8\": {:.2},\n  \
         \"wall_qps_scaling_1_to_8\": {:.2},\n  \"runs\": [\n{}\n  ]\n}}\n",
        smoke,
        population.scale,
        pw.world.domain_count(),
        base.queries,
        host_threads,
        scaling_checked,
        sim_speedup,
        wall_scaling,
        runs.iter()
            .map(Run::to_json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );

    let out = std::env::var("DSEC_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_traffic.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write BENCH_traffic.json");
    eprintln!("wrote {out}");

    // The driver's contract: 8 balanced workers must retire the stream
    // in well under the single worker's simulated time. Checked in both
    // modes — simulated time is deterministic, so even the smoke
    // population gives stable numbers.
    assert!(
        sim_speedup > 1.5,
        "simulated-time throughput only scaled {sim_speedup:.2}x from 1 to 8 threads"
    );

    // Contention guard: where the hardware can actually run 8 workers,
    // wall-clock throughput must not degrade as threads are added.
    if scaling_checked {
        assert!(
            wall_scaling >= 1.0,
            "wall-clock throughput fell with threads: {wall_scaling:.2}x from {} to {}",
            first.threads,
            last.threads
        );
    }
}
