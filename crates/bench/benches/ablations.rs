//! Ablation / extension benches (DESIGN.md E-X1…E-X3): the paper's §8
//! recommendations as measurable what-ifs, plus their cost.

use criterion::{criterion_group, criterion_main, Criterion};

use dsec_core::{
    experiment_cds_bootstrap, experiment_default_signing_ablation, experiment_rollover,
};

fn bench_cds_bootstrap(c: &mut Criterion) {
    let result = experiment_cds_bootstrap(12);
    println!("\n{result}\n{}", result.artifact);
    assert!(result.reproduced(), "{result}");
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("cds_bootstrap_12_domains", |b| {
        b.iter(|| experiment_cds_bootstrap(12))
    });
    group.finish();
}

fn bench_default_signing(c: &mut Criterion) {
    let result = experiment_default_signing_ablation(4, 6);
    println!("\n{result}\n{}", result.artifact);
    assert!(result.reproduced(), "{result}");
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("default_signing_4x6", |b| {
        b.iter(|| experiment_default_signing_ablation(4, 6))
    });
    group.finish();
}

fn bench_rollover(c: &mut Criterion) {
    let result = experiment_rollover();
    println!("\n{result}");
    assert!(result.reproduced(), "{result}");
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("rollover_both_modes", |b| b.iter(experiment_rollover));
    group.finish();
}

criterion_group!(benches, bench_cds_bootstrap, bench_default_signing, bench_rollover);
criterion_main!(benches);
