//! Regenerates the paper's Tables 1–4. Each bench prints the table and
//! its paper-vs-measured checkpoints once, then benchmarks the analysis
//! step (probe / aggregation / rendering).

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, Criterion};

use dsec_core::{
    experiment_table1, experiment_table2, experiment_table3, experiment_table4, TOP10_DNSSEC,
    TOP20,
};
use dsec_probe::{probe_all, ProbeReport};
use dsec_scanner::Snapshot;
use dsec_workloads::{build, PaperWorld, PopulationConfig};

struct Shared {
    paper_world: PaperWorld,
    snapshot: Snapshot,
    top20: Vec<ProbeReport>,
    top10: Vec<ProbeReport>,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| {
        let mut pw = build(&PopulationConfig::tiny());
        let snapshot = Snapshot::take(&pw.world);
        let top20 = probe_all(&mut pw.world, &TOP20);
        let top10 = probe_all(&mut pw.world, &TOP10_DNSSEC);
        Shared {
            paper_world: pw,
            snapshot,
            top20,
            top10,
        }
    })
}

fn bench_table1(c: &mut Criterion) {
    let s = shared();
    let result = experiment_table1(&s.snapshot, 400_000);
    println!("\n{result}\n{}", result.artifact);
    c.bench_function("table1_regenerate", |b| {
        b.iter(|| experiment_table1(&s.snapshot, 400_000))
    });
}

fn bench_table2(c: &mut Criterion) {
    let s = shared();
    let result = experiment_table2(&s.top20, Some(&s.snapshot));
    println!("\n{result}");
    assert!(result.reproduced(), "Table 2 checkpoints must hold:\n{result}");
    c.bench_function("table2_regenerate", |b| {
        b.iter(|| experiment_table2(&s.top20, Some(&s.snapshot)))
    });
    // Benchmark the probe itself (the paper's hands-on phase) against a
    // fresh world so purchases don't collide.
    let mut group = c.benchmark_group("table2_probe");
    group.sample_size(10);
    group.bench_function("probe_top20", |b| {
        b.iter_batched(
            || build(&PopulationConfig::tiny()),
            |mut pw| probe_all(&mut pw.world, &TOP20),
            criterion::BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_table3(c: &mut Criterion) {
    let s = shared();
    let result = experiment_table3(&s.top10, Some(&s.snapshot));
    println!("\n{result}");
    assert!(result.reproduced(), "Table 3 checkpoints must hold:\n{result}");
    c.bench_function("table3_regenerate", |b| {
        b.iter(|| experiment_table3(&s.top10, Some(&s.snapshot)))
    });
}

fn bench_table4(c: &mut Criterion) {
    let s = shared();
    let result = experiment_table4(&s.paper_world.world);
    println!("\n{result}\n{}", result.artifact);
    assert!(result.reproduced(), "Table 4 checkpoints must hold:\n{result}");
    c.bench_function("table4_regenerate", |b| {
        b.iter(|| experiment_table4(&s.paper_world.world))
    });
}

criterion_group!(benches, bench_table1, bench_table2, bench_table3, bench_table4);
criterion_main!(benches);
