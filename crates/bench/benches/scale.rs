//! The population-scale benchmark: builds the paper population at a
//! ladder of 1:N scales, runs a streamed (spill-to-disk, day-pipelined)
//! campaign at each, and emits `BENCH_scale.json` tracking domains/s and
//! peak RSS — the flat-memory evidence for the columnar ecosystem and
//! streaming snapshot store.
//!
//! ```sh
//! cargo bench --bench scale                    # 1:2000, 1:200, 1:20
//! DSEC_BENCH_SMOKE=1 cargo bench --bench scale # CI: 1:2000 + short 1:200
//! DSEC_BENCH_OUT=/tmp/s.json cargo bench --bench scale
//! ```
//!
//! Scales run smallest population first, so the monotone `VmHWM` read
//! after each run attributes the peak to that scale (each step grows the
//! population ~10×, dwarfing its predecessors). A second read taken
//! right after the world build splits each peak into the build's share
//! (the simulated universe itself — zones, keys, registries — which is
//! inherently O(domains)) and the campaign's share (scan caches, spill
//! buffers, authority response caches), which is what the streaming
//! snapshot store and the cache caps keep sublinear. At the smallest
//! scale the streamed campaign's CSVs are asserted byte-identical to
//! the sequential in-memory path over an identically built world.
//!
//! Plain `main` (harness = false), hand-written JSON — same conventions
//! as the other bench targets.

use std::time::Instant;

use dsec_scanner::{
    scan_campaign_cached, scan_campaign_streamed, CampaignConfig, ScanCache,
};
use dsec_workloads::{build, PopulationConfig};

/// Peak resident set (VmHWM) of this process, in MiB. Linux only; other
/// platforms report 0 and `rss_available: false`.
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb / 1024.0);
        }
    }
    None
}

struct ScaleRun {
    scale: u64,
    domains: u64,
    build_s: f64,
    snapshots: u32,
    campaign_s: f64,
    build_peak_rss_mb: f64,
    peak_rss_mb: f64,
    hit_rate: f64,
}

impl ScaleRun {
    /// Domains scanned per second across the whole campaign (cold first
    /// snapshot plus all warm ones).
    fn domains_per_s(&self) -> f64 {
        if self.campaign_s > 0.0 {
            self.domains as f64 * self.snapshots as f64 / self.campaign_s
        } else {
            f64::INFINITY
        }
    }

    /// High-water growth attributable to the campaign itself: peak after
    /// the campaign minus peak after the world build. The build share is
    /// the simulated universe and scales with the population by
    /// construction; this remainder is the machinery under test.
    fn campaign_rss_mb(&self) -> f64 {
        (self.peak_rss_mb - self.build_peak_rss_mb).max(0.0)
    }

    fn to_json(&self) -> String {
        format!(
            "    {{\"scale\": {}, \"domains\": {}, \"build_s\": {:.1}, \"snapshots\": {}, \
             \"campaign_s\": {:.1}, \"domains_per_s\": {:.1}, \"build_peak_rss_mb\": {:.1}, \
             \"peak_rss_mb\": {:.1}, \"campaign_rss_mb\": {:.1}, \"warm_hit_rate\": {:.4}}}",
            self.scale,
            self.domains,
            self.build_s,
            self.snapshots,
            self.campaign_s,
            self.domains_per_s(),
            self.build_peak_rss_mb,
            self.peak_rss_mb,
            self.campaign_rss_mb(),
            self.hit_rate,
        )
    }
}

fn main() {
    let smoke = std::env::var("DSEC_BENCH_SMOKE").is_ok();
    let host_threads = dsec_bench::host_threads();
    // Smoke keeps CI quick: the two small scales over a 4-snapshot
    // window. The full ladder ends at 1:20 (~8M domains) over the whole
    // 21-month window — the tentpole target.
    let scales: &[u64] = if smoke { &[2000, 200] } else { &[2000, 200, 20] };
    let rss_available = peak_rss_mb().is_some();

    let mut runs: Vec<ScaleRun> = Vec::new();
    let mut streamed_matches_memory = true;
    for &scale in scales {
        let population = PopulationConfig {
            scale,
            ..PopulationConfig::default()
        };
        eprintln!("scale bench: building 1:{} population…", scale);
        let built = Instant::now();
        let mut pw = build(&population);
        let build_s = built.elapsed().as_secs_f64();
        let domains = pw.world.domain_count() as u64;
        let build_peak = peak_rss_mb().unwrap_or(0.0);
        eprintln!("built {} domains in {:.1}s", domains, build_s);

        let until = if smoke {
            pw.world.today.plus_days(21)
        } else {
            pw.world.config.end
        };
        let config = CampaignConfig::new(until, 7);
        let spill = std::env::temp_dir().join(format!(
            "dsec-scale-bench-{}-{}.snap",
            std::process::id(),
            scale
        ));

        let mut cache = ScanCache::new();
        let started = Instant::now();
        let streamed = scan_campaign_streamed(&mut pw.world, &config, &mut cache, &spill)
            .expect("streamed campaign completes");
        let campaign_s = started.elapsed().as_secs_f64();
        let stats = cache.stats();
        let hit_rate = stats.hit_rate();
        let snapshots = streamed.len();

        // Byte-identity of the streamed path, checked at the smallest
        // scale (an identically built world re-runs the same campaign
        // through the in-memory store; determinism makes the scans
        // equal, so any CSV divergence is a spill/replay bug).
        if scale == scales[0] {
            let mut pw2 = build(&population);
            let mut cache2 = ScanCache::new();
            let memory = scan_campaign_cached(&mut pw2.world, &config, &mut cache2);
            let latest = memory.latest().expect("campaign has snapshots");
            let operators: Vec<String> = latest
                .cells
                .keys()
                .map(|(op, _)| op.clone())
                .take(16)
                .collect();
            for op in &operators {
                let streamed_csv = streamed.to_csv(op).expect("replay CSV");
                let streamed_ext = streamed.to_csv_extended(op).expect("replay CSV");
                if streamed_csv != memory.to_csv(op) || streamed_ext != memory.to_csv_extended(op)
                {
                    streamed_matches_memory = false;
                }
            }
            assert!(
                streamed_matches_memory,
                "streamed CSVs must byte-match the in-memory path"
            );
            eprintln!(
                "streamed CSVs byte-match the in-memory path ({} operators checked)",
                operators.len()
            );
        }

        std::fs::remove_file(&spill).ok();
        let peak = peak_rss_mb().unwrap_or(0.0);
        let run = ScaleRun {
            scale,
            domains,
            build_s,
            snapshots,
            campaign_s,
            build_peak_rss_mb: build_peak,
            peak_rss_mb: peak,
            hit_rate,
        };
        eprintln!(
            "scale 1:{:<5} {:>9} domains | {:>3} snapshots in {:>7.1}s ({:>9.1} dom/s) | \
             peak RSS {:>8.1} MiB (campaign {:>7.1} MiB) | warm hit rate {:.1}%",
            run.scale,
            run.domains,
            run.snapshots,
            run.campaign_s,
            run.domains_per_s(),
            run.peak_rss_mb,
            run.campaign_rss_mb(),
            100.0 * run.hit_rate,
        );
        runs.push(run);
    }

    // Sublinear-memory gate, judged between the last two scales (the
    // pair the acceptance criterion names). The world build is the
    // simulated universe and scales with the population by construction,
    // so the gate binds the *campaign-attributable* high-water growth:
    // scan caches, spill buffers, and authority response caches, which
    // the streaming store and the cache caps are supposed to keep flat.
    // Total peak RSS growth is reported alongside for the record. The
    // gate needs a meaningful baseline: a short smoke window at 1:2000
    // leaves the previous rung's campaign share down in allocator noise,
    // so the assert arms only when it clears a floor.
    const CAMPAIGN_GATE_FLOOR_MB: f64 = 256.0;
    let (rss_growth, campaign_rss_growth, population_growth) = if runs.len() >= 2 {
        let prev = &runs[runs.len() - 2];
        let last = &runs[runs.len() - 1];
        (
            if prev.peak_rss_mb > 0.0 {
                last.peak_rss_mb / prev.peak_rss_mb
            } else {
                0.0
            },
            if prev.campaign_rss_mb() > 0.0 {
                last.campaign_rss_mb() / prev.campaign_rss_mb()
            } else {
                0.0
            },
            last.domains as f64 / prev.domains.max(1) as f64,
        )
    } else {
        (0.0, 0.0, 0.0)
    };
    let campaign_gate_armed = rss_available
        && runs.len() >= 2
        && runs[runs.len() - 2].campaign_rss_mb() >= CAMPAIGN_GATE_FLOOR_MB;

    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"smoke\": {},\n  \"host_threads\": {},\n  \
         \"rss_available\": {},\n  \"streamed_matches_memory\": {},\n  \
         \"rss_growth_last_step\": {:.3},\n  \"campaign_rss_growth_last_step\": {:.3},\n  \
         \"campaign_gate_armed\": {},\n  \"population_growth_last_step\": {:.3},\n  \
         \"scales\": [\n{}\n  ]\n}}\n",
        smoke,
        host_threads,
        rss_available,
        streamed_matches_memory,
        rss_growth,
        campaign_rss_growth,
        campaign_gate_armed,
        population_growth,
        runs.iter()
            .map(ScaleRun::to_json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    let out = std::env::var("DSEC_BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_scale.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    // Write before asserting so a failed gate still leaves the numbers.
    std::fs::write(&out, &json).expect("write BENCH_scale.json");
    eprintln!("wrote {out}");

    if rss_available && runs.len() >= 2 && rss_growth > 0.0 {
        eprintln!(
            "RSS growth over last scale step: total {:.2}×, campaign-attributable {:.2}×, \
             for {:.2}× domains",
            rss_growth, campaign_rss_growth, population_growth
        );
        if campaign_gate_armed {
            assert!(
                campaign_rss_growth < population_growth,
                "campaign-attributable RSS must grow sublinearly in population \
                 ({campaign_rss_growth:.2}× RSS for {population_growth:.2}× domains)"
            );
        }
    }
}
