//! Micro-benchmarks of the substrates: crypto, wire format, zone signing,
//! chain validation, resolution, and scanning throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dsec_crypto::rsa::{RsaHash, RsaPrivateKey};
use dsec_crypto::sha::sha256;
use dsec_crypto::{Algorithm, DigestType};
use dsec_dnssec::{authenticate_dnskeys, sign_zone, SignerConfig, ZoneKeys};
use dsec_ecosystem::{
    ExternalDs, Hosting, OperatorDnssec, Plan, RegistrarPolicy, Tld, TldPolicy, TldRole, World,
    WorldConfig, ALL_TLDS,
};
use dsec_resolver::Resolver;
use dsec_scanner::Snapshot;
use dsec_wire::{Message, Name, RData, Record, RrSet, RrType, SoaRdata, Zone};

const NOW: u32 = 1_450_000_000;

fn name(s: &str) -> Name {
    Name::parse(s).unwrap()
}

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    group.sample_size(20);

    let data = vec![0xABu8; 4096];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256_4k", |b| b.iter(|| sha256(&data)));
    group.throughput(Throughput::Elements(1));

    for bits in [512usize, 1024] {
        let mut rng = StdRng::seed_from_u64(bits as u64);
        let key = RsaPrivateKey::generate(&mut rng, bits);
        let sig = key.sign(RsaHash::Sha256, b"benchmark message");
        group.bench_function(format!("rsa{bits}_sign"), |b| {
            b.iter(|| key.sign(RsaHash::Sha256, b"benchmark message"))
        });
        group.bench_function(format!("rsa{bits}_verify"), |b| {
            b.iter(|| key.public.verify(RsaHash::Sha256, b"benchmark message", &sig))
        });
    }
    group.bench_function("rsa512_keygen", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            RsaPrivateKey::generate(&mut rng, 512)
        })
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    let mut msg = Message::query(7, name("www.example.com"), RrType::A, true);
    for i in 0..10 {
        msg.answers.push(Record::new(
            name(&format!("host{i}.example.com")),
            300,
            RData::A("192.0.2.7".parse().unwrap()),
        ));
    }
    let wire = msg.to_wire();
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("message_encode", |b| b.iter(|| msg.to_wire()));
    group.bench_function("message_decode", |b| b.iter(|| Message::from_wire(&wire).unwrap()));
    group.finish();
}

fn test_zone(keys: &ZoneKeys, hosts: usize) -> Zone {
    let mut zone = Zone::new(keys.zone.clone());
    zone.add(Record::new(
        keys.zone.clone(),
        3600,
        RData::Soa(SoaRdata {
            mname: name("ns1.op.net"),
            rname: name("hostmaster.op.net"),
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 1_209_600,
            minimum: 300,
        }),
    ))
    .unwrap();
    zone.add(Record::new(keys.zone.clone(), 3600, RData::Ns(name("ns1.op.net"))))
        .unwrap();
    for i in 0..hosts {
        zone.add(Record::new(
            keys.zone.child(&format!("h{i}")).unwrap(),
            300,
            RData::A("192.0.2.9".parse().unwrap()),
        ))
        .unwrap();
    }
    zone
}

fn bench_dnssec(c: &mut Criterion) {
    let mut group = c.benchmark_group("dnssec");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(5);
    let keys = ZoneKeys::generate_default(&mut rng, name("example.com"), Algorithm::RsaSha256)
        .unwrap();
    let cfg = SignerConfig::valid_from(NOW, 30 * 86_400);

    for hosts in [2usize, 20] {
        let zone = test_zone(&keys, hosts);
        group.bench_function(format!("sign_zone_{hosts}_hosts"), |b| {
            b.iter_batched(
                || zone.clone(),
                |mut z| sign_zone(&mut z, &keys, &cfg).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }

    // Chain-link validation (DS ↔ DNSKEY + RRSIG check).
    let mut signed = test_zone(&keys, 2);
    sign_zone(&mut signed, &keys, &cfg).unwrap();
    let dnskey_rrset = signed.rrset(&keys.zone, RrType::Dnskey).unwrap();
    let sigs = dsec_dnssec::validate::covering_rrsigs(
        signed.rrset(&keys.zone, RrType::Rrsig).as_ref(),
        RrType::Dnskey,
    );
    let ds = vec![keys.ds(DigestType::Sha256)];
    group.bench_function("authenticate_dnskeys", |b| {
        b.iter(|| authenticate_dnskeys(&keys.zone, &dnskey_rrset, &sigs, &ds, NOW).unwrap())
    });

    // RRset canonicalization (the signing hot path).
    let rrset = RrSet::new(vec![
        Record::new(name("h.example.com"), 300, RData::A("192.0.2.1".parse().unwrap())),
        Record::new(name("h.example.com"), 300, RData::A("192.0.2.2".parse().unwrap())),
    ])
    .unwrap();
    group.bench_function("canonical_rrset", |b| b.iter(|| rrset.canonical_wire(300)));
    group.finish();
}

fn small_world() -> (World, Name) {
    let mut w = World::new(WorldConfig {
        key_pool: 2,
        ..WorldConfig::default()
    });
    let r = w.add_registrar(
        "BenchReg",
        name("benchreg.net"),
        RegistrarPolicy {
            operator_dnssec: OperatorDnssec::Default,
            external_ds: ExternalDs::Web { validates: true },
            tlds: ALL_TLDS
                .iter()
                .map(|&t| (t, TldPolicy::full(TldRole::Registrar)))
                .collect(),
        },
    );
    let mut last = name("placeholder.com");
    for i in 0..50 {
        last = w
            .purchase(
                r,
                &format!("bench{i}"),
                Tld::Com,
                Hosting::Registrar { plan: Plan::Free },
                "o@x",
            )
            .unwrap();
    }
    (w, last)
}

fn bench_resolution_and_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("system");
    group.sample_size(20);
    let (world, domain) = small_world();
    let resolver = Resolver::new(world.network.clone(), world.trust_anchor());
    let www = domain.child("www").unwrap();
    let now = world.today.epoch_seconds();
    group.bench_function("secure_resolution_cold", |b| {
        b.iter(|| resolver.resolve(&www, RrType::A, now).unwrap())
    });
    group.bench_function("secure_resolution_cached", |b| {
        b.iter(|| resolver.resolve_cached(&www, RrType::A, now).unwrap())
    });
    group.throughput(Throughput::Elements(world.domain_count() as u64));
    group.bench_function("scanner_snapshot_50_domains", |b| {
        b.iter(|| Snapshot::take_filtered(&world, &[Tld::Com]))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_crypto,
    bench_wire,
    bench_dnssec,
    bench_resolution_and_scan
);
criterion_main!(benches);
