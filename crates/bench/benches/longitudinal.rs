//! The longitudinal pipeline benchmark: cold- vs warm-cache snapshot
//! throughput at 1/4/8 scan threads, emitted as `BENCH_longitudinal.json`
//! so the repo carries a perf trajectory across changes.
//!
//! A *cold* scan starts from an empty [`ScanCache`] and queries every
//! domain; the *warm* scan runs one simulated day later, so only domains
//! the ecosystem actually changed are re-queried. The interesting numbers
//! are domains/second and the warm-over-cold speedup.
//!
//! ```sh
//! cargo bench --bench longitudinal                # full_study workload
//! DSEC_BENCH_SMOKE=1 cargo bench --bench longitudinal   # CI smoke mode
//! DSEC_BENCH_OUT=/tmp/b.json cargo bench --bench longitudinal
//! ```
//!
//! Plain `main` (harness = false): timing a multi-second scan needs no
//! statistical harness, and the JSON is written by hand so the bench
//! crate gains no serialization dependency.

use std::time::Instant;

use dsec_ecosystem::ALL_TLDS;
use dsec_scanner::{ScanCache, ScanOptions, Snapshot};
use dsec_workloads::{build, PopulationConfig};

struct Run {
    threads: usize,
    domains: u64,
    cold_ms: f64,
    warm_ms: f64,
    hit_rate: f64,
}

impl Run {
    fn speedup(&self) -> f64 {
        if self.warm_ms > 0.0 {
            self.cold_ms / self.warm_ms
        } else {
            f64::INFINITY
        }
    }

    fn to_json(&self) -> String {
        format!(
            "    {{\"threads\": {}, \"domains\": {}, \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \
             \"cold_domains_per_s\": {:.1}, \"warm_domains_per_s\": {:.1}, \
             \"warm_speedup\": {:.2}, \"warm_hit_rate\": {:.4}}}",
            self.threads,
            self.domains,
            self.cold_ms,
            self.warm_ms,
            rate(self.domains, self.cold_ms),
            rate(self.domains, self.warm_ms),
            self.speedup(),
            self.hit_rate,
        )
    }
}

fn rate(domains: u64, ms: f64) -> f64 {
    if ms > 0.0 {
        domains as f64 / (ms / 1000.0)
    } else {
        f64::INFINITY
    }
}

fn main() {
    // `cargo bench` forwards harness flags like `--bench`; ignore them.
    let smoke = std::env::var("DSEC_BENCH_SMOKE").is_ok();
    let (population, thread_counts): (PopulationConfig, &[usize]) = if smoke {
        (PopulationConfig::tiny(), &[1, 4])
    } else {
        // The full_study workload: the default 1:2000-scale population.
        (PopulationConfig::default(), &[1, 4, 8])
    };

    eprintln!(
        "longitudinal bench: building {} population…",
        if smoke { "smoke (tiny)" } else { "full_study (1:2000)" }
    );
    let built = Instant::now();
    let mut pw = build(&population);
    let domains = pw.world.domain_count() as u64;
    eprintln!("built {} domains in {:.1}s", domains, built.elapsed().as_secs_f64());

    let mut runs: Vec<Run> = Vec::new();
    for &threads in thread_counts {
        let options = ScanOptions {
            threads,
            ..ScanOptions::default()
        };
        let mut cache = ScanCache::new();

        let started = Instant::now();
        let cold = Snapshot::take_cached(&pw.world, &ALL_TLDS, &options, &mut cache);
        let cold_ms = started.elapsed().as_secs_f64() * 1000.0;
        assert!(!cold.cells.is_empty(), "cold scan produced cells");

        // One simulated day of ecosystem churn, then the warm scan —
        // best-of-N on a clone of the post-cold cache, so every rep sees
        // the identical warm state and only the fastest timing counts
        // (the scan itself is deterministic; reps only shed scheduler
        // noise).
        pw.world.tick();
        let reps = if smoke { 1 } else { 3 };
        let mut warm_ms = f64::INFINITY;
        let mut hit_rate = 0.0;
        for _ in 0..reps {
            let mut warm_cache = cache.clone();
            let hits_before = warm_cache.stats().hits;
            let misses_before = warm_cache.stats().misses;
            let started = Instant::now();
            let warm = Snapshot::take_cached(&pw.world, &ALL_TLDS, &options, &mut warm_cache);
            let ms = started.elapsed().as_secs_f64() * 1000.0;
            assert!(!warm.cells.is_empty(), "warm scan produced cells");
            warm_ms = warm_ms.min(ms);
            let hits = warm_cache.stats().hits - hits_before;
            let misses = warm_cache.stats().misses - misses_before;
            hit_rate = hits as f64 / (hits + misses).max(1) as f64;
        }
        let run = Run {
            threads,
            domains,
            cold_ms,
            warm_ms,
            hit_rate,
        };
        eprintln!(
            "threads={:<2} cold {:>9.1} ms ({:>9.1} dom/s) | warm {:>9.1} ms ({:>9.1} dom/s) | \
             speedup {:>6.1}x | hit rate {:.1}%",
            run.threads,
            run.cold_ms,
            rate(domains, run.cold_ms),
            run.warm_ms,
            rate(domains, run.warm_ms),
            run.speedup(),
            100.0 * run.hit_rate,
        );
        runs.push(run);
    }

    // Thread scaling of the warm (cache-dominated) path: the contention
    // metric this bench guards. > 1.0 means adding workers helps; < 1.0
    // means they fight over locks. Judged only on hosts that actually
    // have the cores (`host_threads`) — a single-core container cannot
    // show parallel speedup no matter how contention-free the code is.
    let host_threads = dsec_bench::host_threads();
    let first = &runs[0];
    let last = &runs[runs.len() - 1];
    let warm_scaling = first.warm_ms / last.warm_ms.max(f64::MIN_POSITIVE);
    // Whether the scaling assertions below actually ran: a small host
    // cannot exhibit parallel speedup, so there `warm_scaling_1_to_8` is
    // informational and CI must treat it as "skipped", not "passed".
    let scaling_checked = !smoke && host_threads >= 8;
    // The steady-state metric the wire-response cache targets: how close
    // a later cold scan (fresh ScanCache, warm authority plane) gets to
    // the warm scan. Taken from the final run — by then the authorities
    // have served every question at least once.
    let cold_within_warm_ratio = last.cold_ms / last.warm_ms.max(f64::MIN_POSITIVE);
    eprintln!(
        "warm scaling {} → {} threads: {:.2}x (host has {} hardware threads); \
         cold/warm ratio at {} threads: {:.2}",
        first.threads, last.threads, warm_scaling, host_threads, last.threads,
        cold_within_warm_ratio
    );

    let json = format!(
        "{{\n  \"bench\": \"longitudinal\",\n  \"smoke\": {},\n  \"scale\": {},\n  \
         \"domains\": {},\n  \"tlds\": {},\n  \"host_threads\": {},\n  \
         \"scaling_checked\": {},\n  \"warm_scaling_1_to_8\": {:.2},\n  \
         \"cold_within_warm_ratio\": {:.2},\n  \"runs\": [\n{}\n  ]\n}}\n",
        smoke,
        population.scale,
        domains,
        ALL_TLDS.len(),
        host_threads,
        scaling_checked,
        warm_scaling,
        cold_within_warm_ratio,
        runs.iter()
            .map(Run::to_json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );

    let out = std::env::var("DSEC_BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_longitudinal.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    std::fs::write(&out, &json).expect("write BENCH_longitudinal.json");
    eprintln!("wrote {out}");

    // The pipeline's contracts, checked on the real workload (smoke
    // populations are too small for stable timing):
    //
    // 1. On the FIRST run — the only genuinely cold authority plane — a
    //    day-later warm scan must still be at least twice as fast as the
    //    cold scan (the ScanCache's reason to exist).
    // 2. On the LAST run the authority plane is warm, so a cold scan
    //    (fresh ScanCache) must land within 2× of the warm scan — the
    //    wire-response cache's contract.
    if !smoke {
        assert!(
            first.speedup() >= 2.0,
            "warm scan at {} threads only {:.2}x faster than cold",
            first.threads,
            first.speedup()
        );
        assert!(
            cold_within_warm_ratio <= 2.0,
            "steady-state cold scan at {} threads is {cold_within_warm_ratio:.2}x warm \
             (wire-response cache not absorbing the cold path)",
            last.threads
        );
        // Contention guard, only meaningful with real cores under the
        // workers: more threads must never make the warm scan slower.
        if scaling_checked {
            assert!(
                warm_scaling >= 1.0,
                "warm scan got slower with threads: {warm_scaling:.2}x from {} to {}",
                first.threads,
                last.threads
            );
        }
    }
}
