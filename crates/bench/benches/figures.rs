//! Regenerates the paper's Figures 3–8. The longitudinal figures run a
//! real scan campaign over the measurement window on a mid-scale
//! population (no anonymous tail — the named registrars are what the
//! figures show), print the series and checkpoints once, and then
//! benchmark the analysis steps.

use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, Criterion};

use dsec_core::{
    experiment_figure3, experiment_figure4, experiment_figure5, experiment_figure6,
    experiment_figure7, experiment_figure8, experiment_s52,
};
use dsec_reports::GTLDS;
use dsec_scanner::{coverage_curve, scan_campaign, CampaignConfig, LongitudinalStore, Metric, Snapshot};
use dsec_workloads::{build, PopulationConfig};

struct Campaign {
    store: LongitudinalStore,
    last: Snapshot,
}

/// Mid-scale named-registrars-only campaign over the full window.
fn campaign() -> &'static Campaign {
    static CAMPAIGN: OnceLock<Campaign> = OnceLock::new();
    CAMPAIGN.get_or_init(|| {
        // The scale the full_study example reproduces 11/11 at; smaller
        // scales leave the niche registrars with single-digit domain
        // counts and binomially noisy percentages.
        let config = PopulationConfig {
            scale: 2_000,
            tail_operators: 0,
            ..Default::default()
        };
        let mut pw = build(&config);
        let until = pw.world.config.end;
        let store = scan_campaign(&mut pw.world, &CampaignConfig::new(until, 28));
        let last = store.latest().expect("snapshots exist").clone();
        Campaign { store, last }
    })
}

/// Tiny full-population snapshot (with tail) for the Figure 3 CDF.
fn tail_snapshot() -> &'static Snapshot {
    static SNAPSHOT: OnceLock<Snapshot> = OnceLock::new();
    SNAPSHOT.get_or_init(|| {
        let pw = build(&PopulationConfig {
            scale: 4_000,
            tail_operators: 300,
            ..Default::default()
        });
        Snapshot::take(&pw.world)
    })
}

fn bench_figure3(c: &mut Criterion) {
    let snapshot = tail_snapshot();
    let result = experiment_figure3(snapshot);
    println!("\n{result}\n{}", result.artifact);
    c.bench_function("figure3_cdf", |b| {
        b.iter(|| {
            (
                coverage_curve(snapshot, &GTLDS, Metric::All),
                coverage_curve(snapshot, &GTLDS, Metric::Partial),
                coverage_curve(snapshot, &GTLDS, Metric::Full),
            )
        })
    });
}

fn bench_figure4(c: &mut Criterion) {
    let campaign = campaign();
    let result = experiment_figure4(&campaign.store);
    println!("\n{result}");
    c.bench_function("figure4_series", |b| {
        b.iter(|| experiment_figure4(&campaign.store))
    });
}

fn bench_figure5(c: &mut Criterion) {
    let campaign = campaign();
    let result = experiment_figure5(&campaign.store);
    println!("\n{result}");
    c.bench_function("figure5_series", |b| {
        b.iter(|| experiment_figure5(&campaign.store))
    });
}

fn bench_figure6(c: &mut Criterion) {
    let campaign = campaign();
    let result = experiment_figure6(&campaign.store);
    println!("\n{result}");
    c.bench_function("figure6_series", |b| {
        b.iter(|| experiment_figure6(&campaign.store))
    });
}

fn bench_figure7(c: &mut Criterion) {
    let campaign = campaign();
    let result = experiment_figure7(&campaign.store);
    println!("\n{result}");
    c.bench_function("figure7_series", |b| {
        b.iter(|| experiment_figure7(&campaign.store))
    });
}

fn bench_figure8(c: &mut Criterion) {
    let campaign = campaign();
    let result = experiment_figure8(&campaign.store);
    println!("\n{result}");
    c.bench_function("figure8_series", |b| {
        b.iter(|| experiment_figure8(&campaign.store))
    });
}

fn bench_s52(c: &mut Criterion) {
    let campaign = campaign();
    let result = experiment_s52(&campaign.last);
    println!("\n{result}");
    c.bench_function("s52_scalars", |b| b.iter(|| experiment_s52(&campaign.last)));
}

criterion_group!(
    benches,
    bench_figure3,
    bench_figure4,
    bench_figure5,
    bench_figure6,
    bench_figure7,
    bench_figure8,
    bench_s52
);
criterion_main!(benches);
