//! DNS-operator identification from NS records (§4.2 of the paper).
//!
//! Domains are grouped by the second-level domain of their authoritative
//! nameservers — `ns01.domaincontrol.com` and `ns02.domaincontrol.com`
//! both map to the operator `domaincontrol.com`. Two special cases from
//! the paper's footnotes are honored:
//!
//! - footnote 15: Amazon's nameservers follow `awsdns-NN.<tld>` and are
//!   grouped by the `awsdns` label regardless of TLD;
//! - footnote 13: 1AND1's nameservers share the `1and1` second-level
//!   label across many ccTLDs and are grouped by that label.

use dsec_wire::Name;

/// The operator grouping key for one nameserver hostname.
pub fn operator_key(ns: &Name) -> Name {
    let sld = ns.second_level().to_canonical();
    if let Some(label) = sld.labels().first() {
        let text = label
            .as_bytes()
            .iter()
            .map(|&b| b.to_ascii_lowercase() as char)
            .collect::<String>();
        // Footnote 15: awsdns-13.net, awsdns-07.org, … → "awsdns".
        if text.starts_with("awsdns") {
            return Name::parse("awsdns.group").expect("static name");
        }
        // Footnote 13: 1and1 spread across ccTLDs → "1and1".
        if text == "1and1" {
            return Name::parse("1and1.group").expect("static name");
        }
    }
    sld
}

/// Groups a full NS set; the first NS record decides (sets are uniform in
/// practice, and the paper groups by the shared SLD).
pub fn operator_of(ns_set: &[Name]) -> Option<Name> {
    ns_set.first().map(operator_key)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn plain_sld_grouping() {
        assert_eq!(
            operator_key(&name("ns01.domaincontrol.com")),
            name("domaincontrol.com")
        );
        assert_eq!(operator_key(&name("dns1.registrar-servers.com")), name("registrar-servers.com"));
        assert_eq!(operator_key(&name("a.b.c.ovh.net")), name("ovh.net"));
    }

    #[test]
    fn grouping_is_case_insensitive() {
        assert_eq!(
            operator_key(&name("NS01.DomainControl.COM")),
            name("domaincontrol.com")
        );
    }

    #[test]
    fn awsdns_footnote_15() {
        assert_eq!(operator_key(&name("ns-1.awsdns-13.net")), name("awsdns.group"));
        assert_eq!(operator_key(&name("ns-2.awsdns-07.org")), name("awsdns.group"));
        assert_eq!(
            operator_key(&name("x.awsdns-99.net")),
            operator_key(&name("y.awsdns-01.com"))
        );
    }

    #[test]
    fn oneandone_footnote_13() {
        assert_eq!(operator_key(&name("ns.1and1.com")), name("1and1.group"));
        assert_eq!(operator_key(&name("ns.1and1.de")), name("1and1.group"));
    }

    #[test]
    fn operator_of_uses_first_ns() {
        let set = vec![name("ns01.op.net"), name("ns02.op.net")];
        assert_eq!(operator_of(&set), Some(name("op.net")));
        assert_eq!(operator_of(&[]), None);
    }
}
